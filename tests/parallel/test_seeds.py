"""Properties of the deterministic seed-derivation scheme."""

from __future__ import annotations

import pytest

from repro.parallel.seeds import derive_seed, spawn_seeds


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1993, "fig11", 5, 0) == derive_seed(1993, "fig11", 5, 0)

    def test_component_sensitivity(self):
        base = derive_seed(1993, "fig11", 5, 0)
        assert derive_seed(1994, "fig11", 5, 0) != base
        assert derive_seed(1993, "fig12", 5, 0) != base
        assert derive_seed(1993, "fig11", 6, 0) != base
        assert derive_seed(1993, "fig11", 5, 1) != base

    def test_type_distinction(self):
        """'1' and 1 and 1.0 and True are different key components."""
        seeds = {
            derive_seed(0, "1"),
            derive_seed(0, 1),
            derive_seed(0, 1.0),
            derive_seed(0, True),
        }
        assert len(seeds) == 4

    def test_structure_distinction(self):
        """(a, b), ((a), b) and (ab) do not collide via flat encoding."""
        assert derive_seed(0, ("a", "b")) != derive_seed(0, "ab")
        assert derive_seed(0, ("a",), "b") != derive_seed(0, "a", ("b",))

    def test_nested_containers_and_none(self):
        assert derive_seed(7, ["x", (1, 2.5, None)]) == derive_seed(7, ("x", [1, 2.5, None]))

    def test_range_is_nonnegative_63_bit(self):
        for i in range(200):
            seed = derive_seed(42, "range-check", i)
            assert 0 <= seed < (1 << 63)

    def test_rejects_unencodable_components(self):
        with pytest.raises(TypeError):
            derive_seed(0, object())

    def test_rejection_names_the_offending_component(self):
        """The error identifies *which* component broke, and its type --
        'unhashable seed component' with no culprit was undebuggable in
        a 5-component key."""
        with pytest.raises(TypeError, match=r"\{'bad'\} of type set"):
            derive_seed(0, "fig11", 5, {"bad"})
        with pytest.raises(TypeError, match="of type dict"):
            derive_seed(0, ("nested", {"m": 1}))
        # the message teaches the accepted types
        with pytest.raises(TypeError, match="tuples/lists"):
            derive_seed(0, b"bytes")

    def test_accepted_by_numpy_and_random(self):
        import random

        import numpy as np

        seed = derive_seed(1, "consumers")
        random.Random(seed)
        np.random.default_rng(seed)


class TestSpawnSeeds:
    def test_count_and_distinctness(self):
        seeds = spawn_seeds(1993, "workers", 64)
        assert len(seeds) == 64
        assert len(set(seeds)) == 64

    def test_label_independence(self):
        assert spawn_seeds(1993, "a", 8) != spawn_seeds(1993, "b", 8)

    def test_prefix_stability(self):
        """Growing the count extends, never reshuffles, the stream."""
        assert spawn_seeds(5, "sweep", 16)[:8] == spawn_seeds(5, "sweep", 8)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, "x", -1)
