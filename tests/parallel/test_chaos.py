"""Chaos tests: the sweep runtime under injected process-level failure.

Every test here damages the runtime mid-flight -- killed workers,
injected hangs, a crashed sweep process, truncated journals, corrupted
cache entries -- and asserts the same two invariants each time:

1. the sweep still *terminates*, and
2. the results are **byte-identical** to an undisturbed serial run.

The point functions live at module level so they pickle by reference
into pool workers; destructive behaviors are gated on
``os.getpid() != _PARENT_PID`` so the in-process fallback (which runs
in the parent) always completes.
"""

from __future__ import annotations

import functools
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.analysis.experiments import run_sweep, sweep_run_id
from repro.obs.exporters import to_chrome_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.sink import capture
from repro.obs.trace_spans import trace_capture
from repro.parallel.engine import run_points, sweep_context
from repro.parallel.journal import load_journal
from repro.parallel.resilience import RetryPolicy, WatchdogConfig

_PARENT_PID = os.getpid()
_REPO_ROOT = Path(__file__).resolve().parents[2]

#: A watchdog tuned for test speed: hangs are declared within ~half a
#: second and retries back off for milliseconds, not seconds.
_FAST_WATCHDOG = WatchdogConfig(
    soft_timeout_s=0.2,
    hard_timeout_s=0.45,
    poll_s=0.05,
    retry=RetryPolicy(max_retries=2, backoff_base_s=0.01, backoff_cap_s=0.05),
    quarantine_after=2,
    pool_loss_limit=10,
)


def _square(x: int) -> int:
    return x * x


def _die_in_worker(x: int) -> int:
    if os.getpid() != _PARENT_PID:
        os._exit(13)  # hard crash mid-chunk
    return x * x


def _hang_in_worker(x: int) -> int:
    if os.getpid() != _PARENT_PID:
        time.sleep(60.0)  # way past the hard timeout; killed, not joined
    return x * x


class TestWatchdogEngine:
    def test_healthy_sweep_unaffected_by_watchdog(self):
        with sweep_context(jobs=2, chunk_size=2, watchdog=_FAST_WATCHDOG) as registry:
            assert run_points(_square, range(8)) == [x * x for x in range(8)]
        snap = registry.snapshot()
        assert snap["sim.parallel.points_remote"]["value"] == 8
        assert "sim.resilience.hung_chunks" not in snap
        assert "sim.resilience.quarantined_points" not in snap

    def test_crashing_workers_retry_then_quarantine(self):
        """Workers that die on every attempt: each point burns its
        retry budget, is quarantined as poison, and completes
        in-process -- the sweep terminates with full results."""
        with capture() as sink:
            with sweep_context(
                jobs=2, chunk_size=2, watchdog=_FAST_WATCHDOG
            ) as registry:
                assert run_points(_die_in_worker, range(6)) == [
                    x * x for x in range(6)
                ]
        snap = registry.snapshot()
        assert snap["sim.resilience.quarantined_points"]["value"] == 6
        assert snap["sim.resilience.requeued_points"]["value"] == 6
        assert snap["sim.resilience.pool_losses"]["value"] >= 1
        events = {r.extra["event"] for r in sink.records if r.kind == "resilience-event"}
        assert "point-quarantined" in events

    def test_hung_workers_are_killed_and_sweep_terminates(self):
        """The pre-watchdog engine would block forever here; the
        watchdog must declare the pool hung within the hard timeout,
        kill it, and finish the points in-process."""
        start = time.perf_counter()
        with sweep_context(
            jobs=2, chunk_size=1, watchdog=_FAST_WATCHDOG
        ) as registry:
            assert run_points(_hang_in_worker, range(4)) == [0, 1, 4, 9]
        elapsed = time.perf_counter() - start
        assert elapsed < 30.0  # terminated by the watchdog, not the sleep
        snap = registry.snapshot()
        assert snap["sim.resilience.hung_chunks"]["value"] >= 1
        assert snap["sim.resilience.pool_losses"]["value"] >= 1
        assert snap["sim.resilience.soft_timeouts"]["value"] >= 1

    def test_repeated_pool_loss_degrades_to_in_process(self):
        wd = WatchdogConfig(
            soft_timeout_s=0.2,
            hard_timeout_s=0.45,
            poll_s=0.05,
            retry=RetryPolicy(max_retries=5, backoff_base_s=0.01, backoff_cap_s=0.02),
            quarantine_after=10,  # never reached: degradation fires first
            pool_loss_limit=1,
        )
        with sweep_context(jobs=2, chunk_size=2, watchdog=wd) as registry:
            assert run_points(_die_in_worker, range(4)) == [0, 1, 4, 9]
        snap = registry.snapshot()
        assert snap["sim.resilience.degraded_points"]["value"] == 4
        assert snap["sim.parallel.fallback_points"]["value"] == 4


def _crashing_delay_point(monkeypatch, crash_after: int):
    """Replace the fig11/fig12 point function with a wrapper that
    raises after ``crash_after`` successful points.  functools.wraps
    keeps the journal fingerprint identical to the real function, as a
    real crash-and-resume would see."""
    from repro.analysis import delay as delay_mod

    original = delay_mod._delay_point
    calls = {"n": 0}

    @functools.wraps(original)
    def wrapper(spec):
        if calls["n"] >= crash_after:
            raise RuntimeError("injected mid-sweep crash")
        calls["n"] += 1
        return original(spec)

    monkeypatch.setattr(delay_mod, "_delay_point", wrapper)


class TestCrashResume:
    def test_fig11_crash_then_resume_is_byte_identical(self, tmp_path, monkeypatch):
        """The acceptance scenario, in-process: a journaled fig11 sweep
        dies mid-run; resuming it completes from the checkpoint and
        renders byte-identically to an undisturbed serial run."""
        reference = run_sweep(["fig11"], fast=True)["fig11"].to_json()

        journal_dir = tmp_path / "journal"
        _crashing_delay_point(monkeypatch, crash_after=4)
        with pytest.raises(RuntimeError, match="injected"):
            run_sweep(["fig11"], fast=True, journal_dir=str(journal_dir))
        monkeypatch.undo()

        run_id = sweep_run_id(["fig11"], fast=True)
        journal_path = journal_dir / f"{run_id}.jsonl"
        crashed = load_journal(journal_path)
        assert crashed.records == 4  # every pre-crash point was fsync'd
        assert crashed.run_id == run_id

        registry = MetricsRegistry()
        resumed = run_sweep(
            ["fig11"],
            fast=True,
            journal_dir=str(journal_dir),
            resume=True,
            metrics=registry,
        )["fig11"]
        assert resumed.to_json() == reference
        snap = registry.snapshot()
        assert snap["sim.resilience.journal_hits"]["value"] == 4

    def test_resume_emits_sweep_resumed_event(self, tmp_path, monkeypatch):
        journal_dir = tmp_path / "journal"
        _crashing_delay_point(monkeypatch, crash_after=2)
        with pytest.raises(RuntimeError):
            run_sweep(["fig11"], fast=True, journal_dir=str(journal_dir))
        monkeypatch.undo()
        with capture() as sink:
            run_sweep(
                ["fig11"], fast=True, journal_dir=str(journal_dir), resume=True
            )
        resumes = [r for r in sink.records if r.kind == "resilience-event"
                   and r.extra["event"] == "sweep-resumed"]
        assert resumes and resumes[0].extra["skipped"] == 2

    def test_truncated_journal_still_resumes_byte_identically(self, tmp_path):
        """A torn final write (the classic crash artifact) costs one
        point of recompute, never correctness."""
        reference = run_sweep(["fig11"], fast=True)["fig11"].to_json()
        journal_dir = tmp_path / "journal"
        run_sweep(["fig11"], fast=True, journal_dir=str(journal_dir))
        journal_path = journal_dir / f"{sweep_run_id(['fig11'], fast=True)}.jsonl"
        raw = journal_path.read_bytes()
        journal_path.write_bytes(raw[: int(len(raw) * 0.8)])  # tear the tail

        registry = MetricsRegistry()
        resumed = run_sweep(
            ["fig11"], fast=True, journal_dir=str(journal_dir),
            resume=True, metrics=registry,
        )["fig11"]
        assert resumed.to_json() == reference
        hits = registry.snapshot()["sim.resilience.journal_hits"]["value"]
        assert 0 < hits < 10  # some resumed, the torn tail recomputed

    def test_corrupted_journal_records_recompute_not_crash(self, tmp_path):
        reference = run_sweep(["fig11"], fast=True)["fig11"].to_json()
        journal_dir = tmp_path / "journal"
        run_sweep(["fig11"], fast=True, journal_dir=str(journal_dir))
        journal_path = journal_dir / f"{sweep_run_id(['fig11'], fast=True)}.jsonl"
        lines = journal_path.read_text().splitlines()
        # tamper with two records: one unparseable, one checksum-stale
        lines[2] = lines[2][: len(lines[2]) // 2]
        record = json.loads(lines[3])
        record["result"] = {"forged": True}
        lines[3] = json.dumps(record)
        journal_path.write_text("\n".join(lines) + "\n")

        resumed = run_sweep(
            ["fig11"], fast=True, journal_dir=str(journal_dir), resume=True
        )["fig11"]
        assert resumed.to_json() == reference


class TestTraceChaos:
    """Span replay across the process boundary under worker failure.

    A chunk that dies after opening spans must never corrupt the parent
    trace: every surviving span still parents within the trace, ids stay
    unique, and the trace still exports as a valid Chrome trace."""

    @staticmethod
    def _assert_trace_coherent(tracer) -> None:
        ids = [s.span_id for s in tracer.spans]
        assert len(set(ids)) == len(ids), "span ids collided"
        known = set(ids)
        for s in tracer.spans:
            assert s.trace_id == tracer.trace_id
            assert s.parent_id is None or s.parent_id in known, (
                f"dangling parent {s.parent_id!r} on {s.name}"
            )
        # and the whole thing still serializes as a Chrome trace
        json.dumps(to_chrome_trace(tracer))

    def test_healthy_parallel_run_replays_chunk_spans(self):
        with trace_capture(label="chaos-healthy") as tracer:
            with sweep_context(jobs=2, chunk_size=2, watchdog=_FAST_WATCHDOG):
                assert run_points(_square, range(8)) == [x * x for x in range(8)]
        by_name = {}
        for s in tracer.spans:
            by_name.setdefault(s.name, []).append(s)
        (dispatch,) = by_name["parallel.dispatch"]
        assert by_name["parallel.chunk"], "worker spans never replayed"
        for chunk in by_name["parallel.chunk"]:
            assert chunk.parent_id == dispatch.span_id
        self._assert_trace_coherent(tracer)

    def test_dying_workers_leave_parent_trace_coherent(self):
        """Every chunk dies mid-flight (its span snapshot is lost with
        the worker); retries burn out, points are quarantined and finish
        in-process under the parent tracer.  Results stay correct and
        the parent trace stays internally consistent."""
        with trace_capture(label="chaos-crash") as tracer:
            with sweep_context(
                jobs=2, chunk_size=2, watchdog=_FAST_WATCHDOG
            ) as registry:
                assert run_points(_die_in_worker, range(6)) == [
                    x * x for x in range(6)
                ]
        snap = registry.snapshot()
        assert snap["sim.resilience.quarantined_points"]["value"] == 6
        names = {s.name for s in tracer.spans}
        assert "parallel.dispatch" in names
        assert "resilience.point-quarantined" in names
        # no span from a dead worker may dangle or collide
        self._assert_trace_coherent(tracer)
        assert all(s.finished or s.attrs.get("partial") for s in tracer.spans)


class TestCacheChaos:
    def test_corrupt_cache_entries_quarantined_and_recomputed(self, tmp_path):
        """The acceptance scenario for cache integrity: damage on disk
        is contained (quarantined) and recomputed, never fatal, and the
        re-run renders byte-identically."""
        cache_dir = tmp_path / "cache"
        reference = run_sweep(["fig11"], fast=True, cache_dir=str(cache_dir))[
            "fig11"
        ].to_json()
        entries = sorted(
            p for p in cache_dir.rglob("*.json") if "_quarantine" not in p.parts
        )
        assert entries
        entries[0].write_text("{torn mid-write", encoding="utf-8")
        envelope = json.loads(entries[1].read_text())
        envelope["value"] = {"forged": "payload"}
        entries[1].write_text(json.dumps(envelope), encoding="utf-8")

        registry = MetricsRegistry()
        rerun = run_sweep(
            ["fig11"], fast=True, cache_dir=str(cache_dir), metrics=registry
        )["fig11"]
        assert rerun.to_json() == reference
        snap = registry.snapshot()
        assert snap["sim.resilience.cache_quarantined"]["value"] == 2
        quarantined = list((cache_dir / "_quarantine").iterdir())
        assert len(quarantined) == 2


@pytest.mark.slow
class TestKilledSweepProcess:
    def test_sigkilled_sweep_resumes_via_cli_byte_identically(self, tmp_path):
        """The full acceptance scenario, end to end through the CLI: a
        journaled parallel fig11 sweep is SIGKILLed mid-run (taking its
        worker pool with it), then ``sweep --resume`` completes it with
        output byte-identical to an undisturbed run."""
        journal_dir = tmp_path / "journal"
        cache_dir = tmp_path / "cache"
        env = dict(os.environ, PYTHONPATH=str(_REPO_ROOT / "src"))
        env.pop("REPRO_FULL", None)
        argv = [
            sys.executable, "-m", "repro", "sweep", "fig11", "--json",
            "--jobs", "2", "--journal-dir", str(journal_dir),
            "--cache-dir", str(cache_dir),
        ]
        victim = subprocess.Popen(
            argv, env=env, cwd=_REPO_ROOT, start_new_session=True,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        run_id = None
        try:
            # wait for a few checkpointed points, then kill the whole
            # process group (sweep parent + pool workers) mid-run
            deadline = time.time() + 60.0
            journal_path = None
            while time.time() < deadline:
                candidates = list(journal_dir.glob("*.jsonl"))
                if candidates:
                    journal_path = candidates[0]
                    if len(journal_path.read_text().splitlines()) >= 3:
                        break
                if victim.poll() is not None:
                    break  # finished before we could kill it; still fine
                time.sleep(0.02)
            assert journal_path is not None, "sweep never opened its journal"
            run_id = journal_path.stem
            if victim.poll() is None:
                os.killpg(victim.pid, signal.SIGKILL)
        finally:
            victim.wait(timeout=30)

        load = load_journal(journal_path)
        assert load.run_id == run_id

        resumed = subprocess.run(
            argv + ["--resume", run_id], env=env, cwd=_REPO_ROOT,
            capture_output=True, text=True, timeout=300,
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "served from journal" in resumed.stderr

        reference = run_sweep(["fig11"], fast=True)["fig11"]
        document = json.loads(resumed.stdout)
        assert document["fig11"] == json.loads(reference.to_json())
