"""Fabric chaos tests: the TCP sweep fabric under process-level failure.

Same invariants as tests/parallel/test_chaos.py, one transport up: a
sweep distributed over real worker *processes* on a real socket must
terminate and produce results byte-identical to the serial run, no
matter which side of the wire dies.  The suite covers the frame
protocol, worker loss (SIGKILL mid-sweep), total fleet loss
(degradation back to the local pool), and coordinator loss (SIGKILL
then ``--resume``, plus orphaned workers noticing and exiting).
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.analysis.experiments import run_sweep, sweep_run_id
from repro.obs.metrics import MetricsRegistry
from repro.obs.sink import capture
from repro.parallel.engine import run_points, sweep_context
from repro.parallel.fabric import (
    MAX_FRAME_BYTES,
    FabricConfig,
    TcpCoordinator,
    recv_frame,
    send_frame,
)
from repro.parallel.journal import load_journal
from repro.parallel.resilience import RetryPolicy, WatchdogConfig

_REPO_ROOT = Path(__file__).resolve().parents[2]

#: Generous heartbeat timeouts: worker death is detected by connection
#: EOF (instant), not by timeout, so these only bound true wedges.
_FABRIC_WATCHDOG = WatchdogConfig(
    soft_timeout_s=2.0,
    hard_timeout_s=6.0,
    poll_s=0.05,
    retry=RetryPolicy(max_retries=3, backoff_base_s=0.01, backoff_cap_s=0.05),
    quarantine_after=3,
    pool_loss_limit=10,
)


def _square(x: int) -> int:
    return x * x


def _slow_square(x: int) -> int:
    time.sleep(0.05)
    return x * x


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _worker_env() -> dict:
    env = dict(os.environ, PYTHONPATH=str(_REPO_ROOT / "src"))
    env.pop("REPRO_FULL", None)
    return env


def _spawn_worker(port: int, *extra: str) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "worker",
            "--connect", f"127.0.0.1:{port}", "--beat-s", "0.05", *extra,
        ],
        env=_worker_env(), cwd=_REPO_ROOT,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def _reap(workers: list, timeout: float = 20.0) -> list:
    codes = []
    for proc in workers:
        try:
            codes.append(proc.wait(timeout=timeout))
        except subprocess.TimeoutExpired:  # pragma: no cover - test failure path
            proc.kill()
            proc.wait()
            codes.append(None)
    return codes


class TestFrameProtocol:
    def test_roundtrip(self):
        a, b = socket.socketpair()
        try:
            payload = {"type": "chunk", "chunk": [(0, 1), (1, 2)], "trace_id": None}
            send_frame(a, payload)
            assert recv_frame(b) == payload
        finally:
            a.close()
            b.close()

    def test_eof_reads_none_not_raises(self):
        a, b = socket.socketpair()
        send_frame(a, {"type": "heartbeat"})
        a.close()
        try:
            assert recv_frame(b) == {"type": "heartbeat"}
            assert recv_frame(b) is None  # clean EOF
        finally:
            b.close()

    def test_torn_frame_reads_none(self):
        a, b = socket.socketpair()
        try:
            import pickle
            import struct
            blob = pickle.dumps({"type": "result"})
            a.sendall(struct.pack(">Q", len(blob)) + blob[: len(blob) // 2])
            a.close()
            assert recv_frame(b) is None  # torn mid-frame EOF
        finally:
            b.close()

    def test_oversized_frame_rejected_by_sender(self):
        a, b = socket.socketpair()
        try:
            with pytest.raises(ValueError, match="exceeds"):
                send_frame(a, b"x" * (MAX_FRAME_BYTES + 1))
        finally:
            a.close()
            b.close()


class TestFabricConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="bind_port"):
            FabricConfig(bind_port=70000)
        with pytest.raises(ValueError, match="min_workers"):
            FabricConfig(min_workers=-1)
        with pytest.raises(ValueError, match="wait_s"):
            FabricConfig(wait_s=-0.1)


class TestDegradedToLocal:
    def test_zero_workers_degrades_and_completes(self):
        """A fabric that never gains a worker must cost one failed
        round, then finish every point on the local pool."""
        comm = TcpCoordinator(FabricConfig(), watchdog=_FABRIC_WATCHDOG)
        with capture() as sink:
            with sweep_context(
                jobs=2, chunk_size=2, watchdog=_FABRIC_WATCHDOG, fabric=comm
            ) as registry:
                assert run_points(_square, range(8)) == [x * x for x in range(8)]
        snap = registry.snapshot()
        assert snap["sim.fabric.degraded_to_local"]["value"] == 1
        events = [r.extra["event"] for r in sink.records if r.kind == "fabric-event"]
        assert "fabric-degraded-local" in events
        assert events[0] == "fabric-started" and events[-1] == "fabric-stopped"


@pytest.mark.slow
class TestTcpFabric:
    def test_two_workers_byte_identical_to_serial(self):
        """The tentpole invariant: a fig9 sweep distributed over two
        worker processes renders byte-identically to the serial run."""
        reference = run_sweep(["fig9"], fast=True)["fig9"].to_json()
        port = _free_port()
        workers = [_spawn_worker(port), _spawn_worker(port)]
        try:
            registry = MetricsRegistry()
            distributed = run_sweep(
                ["fig9"], fast=True, metrics=registry,
                fabric=FabricConfig(bind_port=port, min_workers=2, wait_s=30.0),
            )["fig9"]
            assert distributed.to_json() == reference
            snap = registry.snapshot()
            assert snap["sim.fabric.workers_joined"]["value"] == 2
            assert snap["sim.fabric.chunks_completed"]["value"] > 0
            assert snap["sim.fabric.points_remote"]["value"] > 0
            assert "sim.fabric.hosts_lost" not in snap
        finally:
            codes = _reap(workers)
        # the coordinator's shutdown frame lets both workers exit 0
        assert codes == [0, 0]

    def test_sigkilled_worker_mid_sweep_results_intact(self):
        """Kill one of two workers mid-sweep: the dead host is detected
        (EOF, not timeout), its chunk requeues to the survivor, and the
        results match the serial run exactly."""
        port = _free_port()
        workers = [_spawn_worker(port), _spawn_worker(port)]
        specs = list(range(30))
        victim = workers[0]

        def assassinate() -> None:
            time.sleep(0.4)  # well inside the ~0.75 s sweep
            victim.kill()

        try:
            with capture() as sink:
                with sweep_context(
                    jobs=2, chunk_size=2, watchdog=_FABRIC_WATCHDOG,
                    fabric=FabricConfig(bind_port=port, min_workers=2, wait_s=30.0),
                ) as registry:
                    killer = threading.Thread(target=assassinate)
                    killer.start()
                    try:
                        assert run_points(_slow_square, specs) == [x * x for x in specs]
                    finally:
                        killer.join()
        finally:
            _reap(workers)
        snap = registry.snapshot()
        assert snap["sim.fabric.hosts_lost"]["value"] >= 1
        assert snap["sim.fabric.requeued_chunks"]["value"] >= 1
        events = {r.extra["event"] for r in sink.records if r.kind == "fabric-event"}
        assert "host-lost" in events

    def test_late_worker_joins_running_fabric(self):
        """Admission stays open after the sweep starts: a worker that
        connects late still serves chunks."""
        port = _free_port()
        comm = TcpCoordinator(
            FabricConfig(bind_port=port, min_workers=0, wait_s=0.0),
            watchdog=_FABRIC_WATCHDOG,
        )
        worker = None
        try:
            with sweep_context(
                jobs=2, chunk_size=2, watchdog=_FABRIC_WATCHDOG, fabric=comm
            ) as registry:
                worker = _spawn_worker(port)
                deadline = time.monotonic() + 20.0
                while comm.worker_count == 0 and time.monotonic() < deadline:
                    time.sleep(0.02)
                assert comm.worker_count == 1
                assert run_points(_square, range(10)) == [x * x for x in range(10)]
            snap = registry.snapshot()
            assert snap["sim.fabric.points_remote"]["value"] == 10
        finally:
            if worker is not None:
                assert _reap([worker]) == [0]


@pytest.mark.slow
class TestKilledCoordinator:
    def test_sigkilled_coordinator_resumes_byte_identically(self, tmp_path):
        """The acceptance scenario across hosts: a journaled fabric
        sweep's coordinator is SIGKILLed mid-run; orphaned workers
        notice the dead link and exit on their own; ``sweep --resume``
        then completes the run bit-identically from the journal."""
        journal_dir = tmp_path / "journal"
        port = _free_port()
        env = _worker_env()
        workers = [_spawn_worker(port), _spawn_worker(port)]
        argv = [
            sys.executable, "-m", "repro", "sweep", "fig11", "--json",
            "--journal-dir", str(journal_dir),
            "--fabric-port", str(port), "--fabric-min-workers", "2",
            "--fabric-wait-s", "30",
        ]
        coordinator = subprocess.Popen(
            argv, env=env, cwd=_REPO_ROOT, start_new_session=True,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            # wait for checkpointed points, then SIGKILL the coordinator
            deadline = time.time() + 90.0
            journal_path = None
            while time.time() < deadline:
                candidates = list(journal_dir.glob("*.jsonl"))
                if candidates:
                    journal_path = candidates[0]
                    if len(journal_path.read_text().splitlines()) >= 3:
                        break
                if coordinator.poll() is not None:
                    break  # finished before the kill; resume still exercised
                time.sleep(0.02)
            assert journal_path is not None, "coordinator never opened its journal"
            if coordinator.poll() is None:
                os.killpg(coordinator.pid, signal.SIGKILL)
        finally:
            coordinator.wait(timeout=30)

        # the orphaned workers must notice the dead coordinator and
        # exit by themselves -- no one is left to tell them
        codes = _reap(workers, timeout=30.0)
        assert all(code is not None for code in codes), "orphaned worker leaked"

        run_id = journal_path.stem
        assert load_journal(journal_path, run_id=run_id).run_id == run_id

        resume_argv = [
            sys.executable, "-m", "repro", "sweep", "fig11", "--json",
            "--journal-dir", str(journal_dir), "--resume", run_id,
        ]
        resumed = subprocess.run(
            resume_argv, env=env, cwd=_REPO_ROOT,
            capture_output=True, text=True, timeout=300,
        )
        assert resumed.returncode == 0, resumed.stderr

        reference = run_sweep(["fig11"], fast=True)["fig11"]
        assert sweep_run_id(["fig11"], fast=True) == run_id
        document = json.loads(resumed.stdout)
        assert document["fig11"] == json.loads(reference.to_json())
