"""The sweep engine: dispatch, ordering, fallback, merging.

The point functions live at module level so they pickle by reference
into pool workers (the engine's own requirement of its callers).
"""

from __future__ import annotations

import os

import pytest

from repro.obs.metrics import MetricsRegistry, merge_snapshot
from repro.obs.sink import MemorySink, capture
from repro.obs.telemetry import RunRecord, new_run_id
from repro.parallel.engine import default_jobs, run_points, sweep_context

_PARENT_PID = os.getpid()


def _square(x: int) -> int:
    return x * x


def _emit_and_square(x: int) -> int:
    from repro.obs import sink

    sink.emit(RunRecord(run_id=new_run_id(), kind="test-point", n=0, extra={"x": x}))
    return x * x


def _die_in_worker(x: int) -> int:
    if os.getpid() != _PARENT_PID:
        os._exit(13)  # hard crash: exercises BrokenProcessPool handling
    return x * x


def _fail_on_seven(x: int) -> int:
    if x == 7:
        raise ValueError("seven is right out")
    return x * x


class TestSerialPath:
    def test_no_context_is_a_plain_map(self):
        assert run_points(_square, [3, 1, 2]) == [9, 1, 4]

    def test_jobs_one_stays_in_process(self):
        with sweep_context(jobs=1) as registry:
            assert run_points(_square, range(5)) == [0, 1, 4, 9, 16]
        snap = registry.snapshot()
        assert snap["sim.parallel.points_total"]["value"] == 5
        assert "sim.parallel.points_remote" not in snap

    def test_single_point_never_pays_pool_cost(self):
        with sweep_context(jobs=4) as registry:
            assert run_points(_square, [6]) == [36]
        assert "sim.parallel.chunks" not in registry.snapshot()


class TestParallelPath:
    def test_results_in_submission_order(self):
        with sweep_context(jobs=2, chunk_size=2) as registry:
            assert run_points(_square, range(11)) == [x * x for x in range(11)]
        snap = registry.snapshot()
        assert snap["sim.parallel.points_total"]["value"] == 11
        assert snap["sim.parallel.points_remote"]["value"] == 11
        assert snap["sim.parallel.chunks"]["value"] == 6
        assert snap["sim.parallel.worker_failures"]["value"] == 0

    def test_worker_telemetry_merges_into_parent_sink(self):
        with capture() as sink:
            with sweep_context(jobs=2, chunk_size=1):
                run_points(_emit_and_square, range(4))
        xs = sorted(r.extra["x"] for r in sink.records)
        assert xs == [0, 1, 2, 3]
        assert all(r.kind == "test-point" for r in sink.records)

    def test_no_parent_sink_discards_worker_records(self):
        with sweep_context(jobs=2, chunk_size=1):
            assert run_points(_emit_and_square, range(3)) == [0, 1, 4]

    def test_nested_contexts_restore_outer(self):
        with sweep_context(jobs=1) as outer:
            with sweep_context(jobs=1) as inner:
                run_points(_square, [1, 2])
            run_points(_square, [3, 4])
        assert inner.snapshot()["sim.parallel.points_total"]["value"] == 2
        assert outer.snapshot()["sim.parallel.points_total"]["value"] == 2

    def test_default_jobs_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3
        monkeypatch.delenv("REPRO_JOBS")
        assert default_jobs() >= 1


class TestFallback:
    def test_dead_workers_fall_back_in_process(self):
        with sweep_context(jobs=2, chunk_size=2) as registry:
            assert run_points(_die_in_worker, range(6)) == [x * x for x in range(6)]
        snap = registry.snapshot()
        assert snap["sim.parallel.worker_failures"]["value"] >= 1
        assert snap["sim.parallel.fallback_points"]["value"] == 6

    def test_unpicklable_fn_falls_back_in_process(self):
        with sweep_context(jobs=2) as registry:
            assert run_points(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]
        assert registry.snapshot()["sim.parallel.worker_failures"]["value"] >= 1

    def test_deterministic_point_errors_still_surface(self):
        with sweep_context(jobs=2, chunk_size=2):
            with pytest.raises(ValueError, match="seven"):
                run_points(_fail_on_seven, range(10))


class TestMergeSnapshot:
    def test_counters_timers_histograms_add(self):
        source = MetricsRegistry()
        source.counter("c").inc(3)
        source.timer("t").record(0.25)
        hist = source.histogram("h", (1.0, 2.0))
        hist.observe(0.5)
        hist.observe(5.0)
        target = MetricsRegistry()
        target.counter("c").inc(1)
        merge_snapshot(target, source.snapshot())
        merge_snapshot(target, source.snapshot())
        snap = target.snapshot()
        assert snap["c"]["value"] == 7
        assert snap["t"]["count"] == 2
        assert snap["t"]["total_seconds"] == 0.5
        assert snap["h"]["count"] == 4
        assert snap["h"]["overflow"] == 2
        assert snap["h"]["min"] == 0.5 and snap["h"]["max"] == 5.0

    def test_gauge_keeps_latest_with_merged_extrema(self):
        source = MetricsRegistry()
        source.gauge("g").set(-5)
        source.gauge("g").set(2)
        target = MetricsRegistry()
        target.gauge("g").set(10)
        merge_snapshot(target, source.snapshot())
        snap = target.snapshot()["g"]
        assert snap["value"] == 2
        assert snap["min"] == -5 and snap["max"] == 10

    def test_histogram_bounds_mismatch_rejected(self):
        source = MetricsRegistry()
        source.histogram("h", (1.0, 2.0)).observe(0.5)
        target = MetricsRegistry()
        target.histogram("h", (1.0, 3.0))
        with pytest.raises(ValueError, match="bounds mismatch"):
            merge_snapshot(target, source.snapshot())

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown instrument"):
            merge_snapshot(MetricsRegistry(), {"x": {"type": "mystery"}})


class TestWorkerSinkIsolation:
    def test_memory_sink_records_are_buffered_not_shared(self):
        """A MemorySink in the parent must not receive direct worker
        writes (workers buffer and the parent replays)."""
        sink = MemorySink()
        with capture(sink):
            with sweep_context(jobs=2, chunk_size=1):
                run_points(_emit_and_square, range(3))
        assert len(sink.records) == 3
