"""Journal self-healing: damaged or foreign content never aborts resume.

The journal's contract (src/repro/parallel/journal.py) is that loading
is *total*: any line that cannot be proven to be an intact record of
this run is skipped and counted, and the affected points recompute.
These tests drive the three damage classes the fleet actually
produces:

- a **torn final line** -- the coordinator was SIGKILLed mid-``write``;
- **interleaved records from two run ids** -- two sweeps
  misconfigured onto one journal path;
- a **checksum-valid-but-stale-schema record** -- a journal written by
  a newer (or older) format whose per-record checksum still verifies.
"""

from __future__ import annotations

import json

from repro.parallel.journal import (
    JOURNAL_SCHEMA,
    SweepJournal,
    _record_checksum,
    load_journal,
    point_fingerprint,
)


def _point(spec: int) -> int:
    return spec * spec


def _fps(count: int) -> list[str]:
    return [point_fingerprint(_point, x) for x in range(count)]


def _record_line(fingerprint: str, result: object, schema: int = JOURNAL_SCHEMA) -> str:
    """A raw journal record line with a *valid* checksum."""
    return json.dumps(
        {
            "schema": schema,
            "fp": fingerprint,
            "result": result,
            "sum": _record_checksum(fingerprint, result),
        },
        separators=(",", ":"),
    )


def _header_line(run_id: str) -> str:
    return json.dumps(
        {"schema": JOURNAL_SCHEMA, "header": True, "run_id": run_id, "meta": None},
        separators=(",", ":"),
    )


class TestTornFinalLine:
    def test_torn_tail_skipped_and_resume_continues(self, tmp_path):
        path = tmp_path / "run.jsonl"
        fps = _fps(4)
        with SweepJournal(path, run_id="r1") as journal:
            for x, fp in enumerate(fps[:3]):
                journal.append(fp, _point(x))
        # SIGKILL mid-write: the final record loses its last bytes
        raw = path.read_bytes()
        path.write_bytes(raw[:-9])

        with SweepJournal(path, run_id="r1", resume=True) as resumed:
            assert resumed.resumed_records == 2
            assert resumed.corrupt_records == 1
            assert resumed.lookup(fps[0]) == 0
            assert resumed.lookup(fps[1]) == 1
            # the torn point recomputes and re-journals...
            assert SweepJournal.is_miss(resumed.lookup(fps[2]))
            resumed.append(fps[2], _point(2))
            resumed.append(fps[3], _point(3))

        # ...and the healed file loads fully intact
        load = load_journal(path, run_id="r1")
        assert load.corrupt == 1  # the torn stump is still on disk
        assert load.records == 4
        assert load.results[fps[2]] == 4 and load.results[fps[3]] == 9

    def test_torn_header_means_empty_but_loadable(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with SweepJournal(path, run_id="r1"):
            pass
        raw = path.read_bytes()
        path.write_bytes(raw[:-5])
        load = load_journal(path)
        assert load.records == 0
        assert load.corrupt == 1
        assert load.run_id is None


class TestInterleavedRuns:
    def _interleaved_file(self, tmp_path):
        """One file accidentally shared by runs "aaa" and "bbb"."""
        path = tmp_path / "shared.jsonl"
        fps = _fps(4)
        lines = [
            _header_line("aaa"),
            _record_line(fps[0], 0),
            _header_line("bbb"),
            _record_line(fps[1], -111),  # bbb's (wrong) value for point 1
            _record_line(fps[2], -222),
            _header_line("aaa"),
            _record_line(fps[1], 1),  # aaa's value for point 1
            _record_line(fps[3], 9),
        ]
        path.write_text("\n".join(lines) + "\n")
        return path, fps

    def test_foreign_records_skipped_not_adopted(self, tmp_path):
        path, fps = self._interleaved_file(tmp_path)
        load = load_journal(path, run_id="aaa")
        assert load.records == 3
        assert load.foreign == 2
        assert load.corrupt == 0
        assert load.results == {fps[0]: 0, fps[1]: 1, fps[3]: 9}
        assert fps[2] not in load.results  # bbb-only point recomputes

    def test_resume_with_run_id_never_sees_foreign_results(self, tmp_path):
        path, fps = self._interleaved_file(tmp_path)
        with SweepJournal(path, run_id="aaa", resume=True) as journal:
            assert journal.foreign_records == 2
            assert journal.lookup(fps[1]) == 1  # aaa's value, not bbb's -111
            assert SweepJournal.is_miss(journal.lookup(fps[2]))

    def test_anonymous_load_keeps_single_writer_behaviour(self, tmp_path):
        # without an expected run id every intact record is adopted --
        # the single-writer common case must not change
        path, fps = self._interleaved_file(tmp_path)
        load = load_journal(path)
        assert load.records == 5
        assert load.foreign == 0


class TestStaleSchemaRecord:
    def test_checksum_valid_stale_schema_is_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        fps = _fps(3)
        lines = [
            _header_line("r1"),
            _record_line(fps[0], 0),
            # a future-format record whose checksum genuinely verifies:
            # the schema gate must win before the checksum is consulted
            _record_line(fps[1], 1, schema=JOURNAL_SCHEMA + 1),
            _record_line(fps[2], 4),
        ]
        path.write_text("\n".join(lines) + "\n")
        load = load_journal(path, run_id="r1")
        assert load.records == 2
        assert load.corrupt == 1
        assert fps[1] not in load.results

    def test_resume_recomputes_the_stale_point(self, tmp_path):
        path = tmp_path / "run.jsonl"
        fps = _fps(2)
        lines = [
            _header_line("r1"),
            _record_line(fps[0], 0),
            _record_line(fps[1], 1, schema=JOURNAL_SCHEMA + 1),
        ]
        path.write_text("\n".join(lines) + "\n")
        with SweepJournal(path, run_id="r1", resume=True) as journal:
            assert journal.resumed_records == 1
            assert journal.corrupt_records == 1
            assert SweepJournal.is_miss(journal.lookup(fps[1]))
            journal.append(fps[1], _point(1))
        assert load_journal(path, run_id="r1").results[fps[1]] == 1


class TestMixedDamage:
    def test_all_three_classes_in_one_file(self, tmp_path):
        """One load survives tearing, interleaving, and stale schemas."""
        path = tmp_path / "run.jsonl"
        fps = _fps(5)
        lines = [
            _header_line("aaa"),
            _record_line(fps[0], 0),
            _record_line(fps[1], 1, schema=JOURNAL_SCHEMA + 7),  # stale schema
            _header_line("bbb"),
            _record_line(fps[2], -4),  # foreign
            _header_line("aaa"),
            _record_line(fps[3], 9),
        ]
        text = "\n".join(lines) + "\n"
        text += _record_line(fps[4], 16)[:-11]  # torn final line
        path.write_text(text)
        load = load_journal(path, run_id="aaa")
        assert load.results == {fps[0]: 0, fps[3]: 9}
        assert load.records == 2
        assert load.corrupt == 2  # stale schema + torn tail
        assert load.foreign == 1
