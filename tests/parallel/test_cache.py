"""The content-addressed schedule/delay cache: layers, keys, artifacts."""

from __future__ import annotations

import json

import pytest

from repro.multicast.ports import ALL_PORT, ONE_PORT
from repro.multicast.registry import get_algorithm
from repro.obs.metrics import MetricsRegistry
from repro.parallel.cache import (
    ScheduleCache,
    activate_cache,
    cache_key,
    cached_delay_stats,
    cached_schedule_table,
)
from repro.simulator.params import NCUBE2
from repro.simulator.run import simulate_multicast

FIG8 = (4, 0, [1, 3, 5, 7, 11, 12, 14, 15])


@pytest.fixture
def active_cache(tmp_path):
    """A disk-backed cache installed as the process-wide active cache."""
    cache = ScheduleCache(tmp_path / "cache", metrics=MetricsRegistry())
    previous = activate_cache(cache)
    try:
        yield cache
    finally:
        activate_cache(previous)


class TestCacheKey:
    def test_field_order_irrelevant(self):
        assert cache_key("k", a=1, b=2) == cache_key("k", b=2, a=1)

    def test_kind_and_fields_distinguish(self):
        assert cache_key("schedule", n=4) != cache_key("delay", n=4)
        assert cache_key("schedule", n=4) != cache_key("schedule", n=5)


class TestLayers:
    def test_memory_roundtrip_and_stats(self):
        cache = ScheduleCache()
        key = cache_key("t", x=1)
        assert cache.get(key) is None
        cache.put(key, {"v": 2})
        assert cache.get(key) == {"v": 2}
        assert cache.stats() == {
            "entries": 1, "hits": 1, "misses": 1, "disk_hits": 0, "puts": 1,
            "quarantined": 0, "hit_ratio": 0.5,
        }

    def test_hit_ratio(self):
        cache = ScheduleCache()
        assert cache.hit_ratio() == 0.0  # no lookups yet
        key = cache_key("t", x=1)
        cache.get(key)  # miss
        cache.put(key, {"v": 1})
        cache.get(key)
        cache.get(key)  # two hits
        assert cache.hit_ratio() == pytest.approx(2 / 3)
        assert cache.stats()["hit_ratio"] == pytest.approx(2 / 3)

    def test_disk_shared_between_instances(self, tmp_path):
        writer = ScheduleCache(tmp_path)
        key = cache_key("t", x=1)
        writer.put(key, {"v": [1, 2.5]})
        reader = ScheduleCache(tmp_path)  # fresh memory layer, same dir
        assert reader.get(key) == {"v": [1, 2.5]}
        assert reader.disk_hits == 1

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        cache = ScheduleCache(tmp_path)
        key = cache_key("t", x=1)
        path = tmp_path / key[:2] / f"{key}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{not json")
        assert ScheduleCache(tmp_path).get(key) is None

    def test_values_survive_json_exactly(self, tmp_path):
        value = {"f": 8030.400000000001, "i": 1 << 40}
        cache = ScheduleCache(tmp_path)
        key = cache_key("t", x=2)
        cache.put(key, value)
        assert ScheduleCache(tmp_path).get(key) == value

    def test_metrics_counters(self):
        registry = MetricsRegistry()
        cache = ScheduleCache(metrics=registry)
        key = cache_key("t", x=3)
        cache.get(key)
        cache.put(key, {"v": 1})
        cache.get(key)
        snap = registry.snapshot()
        assert snap["sim.parallel.cache_misses"]["value"] == 1
        assert snap["sim.parallel.cache_puts"]["value"] == 1
        assert snap["sim.parallel.cache_hits"]["value"] == 1


class TestCachedArtifacts:
    def test_schedule_table_matches_direct_computation(self, active_cache):
        n, source, dests = FIG8
        for ports in (ALL_PORT, ONE_PORT):
            for name in ("ucube", "wsort"):
                sched = get_algorithm(name).schedule(n, source, dests, ports)
                table = cached_schedule_table(name, n, source, dests, ports)
                assert table["max_step"] == sched.max_step
                assert table["dest_steps"] == {
                    str(d): s for d, s in sched.dest_steps.items()
                }

    def test_schedule_table_hit_on_second_call(self, active_cache):
        n, source, dests = FIG8
        cached_schedule_table("wsort", n, source, dests, ALL_PORT)
        misses = active_cache.misses
        again = cached_schedule_table("wsort", n, source, dests, ALL_PORT)
        assert active_cache.misses == misses  # no recompute
        assert again["max_step"] == 2  # Fig. 8(c)

    def test_destination_order_is_canonicalized(self, active_cache):
        n, source, dests = FIG8
        cached_schedule_table("wsort", n, source, dests, ALL_PORT)
        hits = active_cache.hits
        cached_schedule_table("wsort", n, source, list(reversed(dests)), ALL_PORT)
        assert active_cache.hits == hits + 1

    def test_delay_stats_match_simulator(self, active_cache):
        n, source, dests = FIG8
        tree = get_algorithm("wsort").build_tree(n, source, dests)
        res = simulate_multicast(tree, 4096, NCUBE2, ALL_PORT)
        stats = cached_delay_stats("wsort", n, source, dests, 4096, NCUBE2, ALL_PORT)
        assert stats["avg_delay_us"] == res.avg_delay
        assert stats["max_delay_us"] == res.max_delay
        assert stats["total_blocked_us"] == res.total_blocked_time
        # warm call is served from memory
        misses = active_cache.misses
        assert cached_delay_stats("wsort", n, source, dests, 4096, NCUBE2, ALL_PORT) == stats
        assert active_cache.misses == misses

    def test_no_active_cache_computes_directly(self):
        n, source, dests = FIG8
        table = cached_schedule_table("wsort", n, source, dests, ALL_PORT)
        assert table["max_step"] == 2

    def test_disk_entries_are_checksummed_envelopes(self, active_cache):
        n, source, dests = FIG8
        cached_schedule_table("ucube", n, source, dests, ALL_PORT)
        files = list(active_cache.cache_dir.rglob("*.json"))
        assert len(files) == 1
        envelope = json.loads(files[0].read_text())
        assert envelope["key"] == files[0].stem
        assert "checksum" in envelope
        assert "max_step" in envelope["value"]
