"""Bit-identity regression: parallel and cached sweeps change nothing.

``run_experiment(..., jobs=4)`` must produce byte-identical tables to
the serial path for the fig09 (stepwise) and fig11 (simulated delay)
fast sweeps -- cache cold and cache warm -- because per-point seeds
live in the point specs and every cached value round-trips JSON
exactly.  This is the contract that lets the parallel engine replace
the serial evaluation everywhere.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import run_experiment, run_sweep
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace_spans import get_tracer, trace_capture

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def serial_tables():
    return {
        "fig9": run_experiment("fig9", fast=True),
        "fig11": run_experiment("fig11", fast=True),
    }


@pytest.mark.parametrize("fig", ["fig9", "fig11"])
def test_jobs4_cold_and_warm_cache_byte_identical(fig, serial_tables, tmp_path):
    serial = serial_tables[fig]
    cache_dir = tmp_path / "cache"

    cold = run_experiment(fig, fast=True, jobs=4, cache_dir=cache_dir)
    assert cold.to_json() == serial.to_json()
    assert cold.render() == serial.render()

    warm_metrics = MetricsRegistry()
    warm = run_sweep(
        [fig], fast=True, jobs=4, cache_dir=cache_dir, metrics=warm_metrics
    )[fig]
    assert warm.to_json() == serial.to_json()
    assert warm.render() == serial.render()
    snap = warm_metrics.snapshot()
    assert snap["sim.parallel.cache_hits"]["value"] > 0
    assert snap["sim.parallel.worker_failures"]["value"] == 0


def test_serial_with_cache_byte_identical(serial_tables, tmp_path):
    """jobs=1 + cache is the same table too (cache layer alone)."""
    cached = run_experiment("fig9", fast=True, jobs=1, cache_dir=tmp_path / "c")
    assert cached.to_json() == serial_tables["fig9"].to_json()


@pytest.mark.parametrize("fig", ["fig9", "fig11"])
def test_tracing_is_bit_identical(fig, serial_tables):
    """Tracing observes, never perturbs: a traced sweep renders the
    same bytes as an untraced one (and hence as the seed outputs)."""
    with trace_capture(label="bit-identity") as tracer:
        traced = run_experiment(fig, fast=True)
    assert get_tracer() is None  # capture restored the off state
    assert traced.to_json() == serial_tables[fig].to_json()
    assert traced.render() == serial_tables[fig].render()
    # the trace itself is non-trivial: per-point spans were recorded
    point_span = "point.steps" if fig == "fig9" else "point.delay"
    assert {s.name for s in tracer.spans} >= {"experiment", point_span}


@pytest.mark.parametrize("fig", ["fig9", "fig11"])
def test_traced_parallel_sweep_bit_identical(fig, serial_tables, tmp_path):
    """Tracing composed with the parallel engine (worker span replay
    active) still changes nothing in the rendered tables."""
    with trace_capture(label="bit-identity-parallel"):
        traced = run_experiment(fig, fast=True, jobs=2, cache_dir=tmp_path / "c")
    assert traced.to_json() == serial_tables[fig].to_json()


def test_fig11_fig12_share_cached_points(tmp_path):
    """Figures 11 and 12 are two views of one sweep: under a shared
    context fig12 re-simulates nothing."""
    registry = MetricsRegistry()
    tables = run_sweep(
        ["fig11", "fig12"],
        fast=True,
        jobs=2,
        cache_dir=tmp_path / "c",
        metrics=registry,
    )
    assert tables["fig11"].to_json() == run_experiment("fig11", fast=True).to_json()
    assert tables["fig12"].to_json() == run_experiment("fig12", fast=True).to_json()
    snap = registry.snapshot()
    # fig12's simulated points (10 x-values x 20 sets x 4 algorithms)
    # are all hits against fig11's entries
    assert snap["sim.parallel.cache_hits"]["value"] >= 800
