"""Unit tests for the resilience layer: retry/watchdog policies, the
sweep journal, and cache integrity auditing.

Chaos-style integration tests (killed workers, injected hangs, corrupt
files mid-sweep) live in test_chaos.py; this file covers the building
blocks in isolation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from enum import Enum

import pytest

from repro.obs.sink import capture
from repro.parallel.cache import (
    ScheduleCache,
    cache_key,
    gc_cache_dir,
    verify_cache_dir,
)
from repro.parallel.journal import (
    JOURNAL_SCHEMA,
    SweepJournal,
    derive_run_id,
    load_journal,
    point_fingerprint,
)
from repro.parallel.resilience import (
    PointTracker,
    RetryPolicy,
    WatchdogConfig,
    emit_resilience_event,
)


def _point(x: int) -> int:
    return x * x


class TestRetryPolicy:
    def test_backoff_doubles_then_caps(self):
        policy = RetryPolicy(max_retries=5, backoff_base_s=0.1, backoff_cap_s=0.35)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.35)  # capped, not 0.4
        assert policy.backoff(10) == pytest.approx(0.35)

    def test_matches_faults_sim_backoff_shape(self):
        """Same curve as the simulated source-retry backoff, scaled to
        seconds: min(base * 2**(k-1), cap)."""
        policy = RetryPolicy(backoff_base_s=0.05, backoff_cap_s=2.0)
        for attempt in range(1, 8):
            expected = min(0.05 * 2 ** (attempt - 1), 2.0)
            assert policy.backoff(attempt) == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_s=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy().backoff(0)


class TestWatchdogConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            WatchdogConfig(soft_timeout_s=10.0, hard_timeout_s=5.0)
        with pytest.raises(ValueError):
            WatchdogConfig(poll_s=0.0)
        with pytest.raises(ValueError):
            WatchdogConfig(quarantine_after=0)
        with pytest.raises(ValueError):
            WatchdogConfig(pool_loss_limit=0)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WATCHDOG_SOFT_S", "1.5")
        monkeypatch.setenv("REPRO_WATCHDOG_HARD_S", "9.0")
        monkeypatch.setenv("REPRO_WATCHDOG_RETRIES", "4")
        cfg = WatchdogConfig.from_env()
        assert cfg.soft_timeout_s == 1.5
        assert cfg.hard_timeout_s == 9.0
        assert cfg.retry.max_retries == 4

    def test_from_env_clamps_hard_to_soft(self, monkeypatch):
        monkeypatch.setenv("REPRO_WATCHDOG_SOFT_S", "60")
        monkeypatch.setenv("REPRO_WATCHDOG_HARD_S", "10")
        cfg = WatchdogConfig.from_env()
        assert cfg.hard_timeout_s == 60.0


class TestPointTracker:
    def test_quarantines_after_threshold(self):
        tracker = PointTracker(quarantine_after=3)
        assert tracker.record_failure(7) is False
        assert tracker.record_failure(7) is False
        assert tracker.record_failure(7) is True
        assert tracker.is_quarantined(7)
        assert not tracker.is_quarantined(8)
        assert tracker.total_failures == 3

    def test_points_are_tracked_independently(self):
        tracker = PointTracker(quarantine_after=2)
        tracker.record_failure(1)
        tracker.record_failure(2)
        assert not tracker.quarantined
        assert tracker.record_failure(1) is True
        assert tracker.quarantined == {1}


class TestResilienceEvents:
    def test_events_reach_the_active_sink(self):
        with capture() as sink:
            emit_resilience_event("point-quarantined", point=3, failures=2)
        (record,) = sink.records
        assert record.kind == "resilience-event"
        assert record.extra["event"] == "point-quarantined"
        assert record.extra["point"] == 3

    def test_no_sink_is_a_noop(self):
        emit_resilience_event("hung-pool-killed")  # must not raise


class _Color(Enum):
    RED = 1
    BLUE = 2


@dataclass(frozen=True)
class _Spec:
    m: int
    sets: tuple[int, ...]


class TestPointFingerprint:
    def test_deterministic_and_spec_sensitive(self):
        fp = point_fingerprint(_point, _Spec(3, (1, 2)))
        assert fp == point_fingerprint(_point, _Spec(3, (1, 2)))
        assert fp != point_fingerprint(_point, _Spec(4, (1, 2)))

    def test_function_identity_matters(self):
        spec = _Spec(3, (1, 2))
        assert point_fingerprint(_point, spec) != point_fingerprint(len, spec)

    def test_tuple_and_list_canonicalize_identically(self):
        """JSON round-trips tuples as lists; the fingerprint must not
        distinguish them or resumed points would never match."""
        assert point_fingerprint(_point, (1, 2, [3])) == point_fingerprint(
            _point, [1, 2, (3,)]
        )

    def test_enums_dicts_and_sets_are_canonical(self):
        a = point_fingerprint(_point, {"c": _Color.RED, "s": {3, 1, 2}})
        b = point_fingerprint(_point, {"s": frozenset({1, 2, 3}), "c": _Color.RED})
        assert a == b
        assert a != point_fingerprint(_point, {"c": _Color.BLUE, "s": {1, 2, 3}})

    def test_unsupported_component_is_a_clear_error(self):
        with pytest.raises(TypeError, match="cannot fingerprint spec component"):
            point_fingerprint(_point, object())


class TestDeriveRunId:
    def test_content_addressed(self):
        a = derive_run_id(["fig11"], True, 1)
        assert a == derive_run_id(["fig11"], True, 1)
        assert a != derive_run_id(["fig11"], False, 1)
        assert a != derive_run_id(["fig12"], True, 1)
        assert len(a) == 12


class TestSweepJournal:
    def test_append_lookup_roundtrip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with SweepJournal(path, run_id="abc") as journal:
            fp = point_fingerprint(_point, 3)
            assert SweepJournal.is_miss(journal.lookup(fp))
            assert journal.append(fp, {"v": 9}) is True
            assert journal.lookup(fp) == {"v": 9}
            assert len(journal) == 1

    def test_resume_serves_prior_records(self, tmp_path):
        path = tmp_path / "run.jsonl"
        fp = point_fingerprint(_point, 5)
        with SweepJournal(path, run_id="abc", meta={"ids": ["fig11"]}) as journal:
            journal.append(fp, [25, 2.5])
        with SweepJournal(path, resume=True) as resumed:
            assert resumed.run_id == "abc"
            assert resumed.resumed_records == 1
            assert resumed.lookup(fp) == [25, 2.5]

    def test_fresh_open_truncates(self, tmp_path):
        path = tmp_path / "run.jsonl"
        fp = point_fingerprint(_point, 5)
        with SweepJournal(path, run_id="old") as journal:
            journal.append(fp, 25)
        with SweepJournal(path, run_id="new") as fresh:
            assert SweepJournal.is_miss(fresh.lookup(fp))
        assert load_journal(path).run_id == "new"

    def test_journaled_none_is_not_a_miss(self, tmp_path):
        with SweepJournal(tmp_path / "j.jsonl") as journal:
            fp = point_fingerprint(_point, 0)
            journal.append(fp, None)
            assert journal.lookup(fp) is None
            assert not SweepJournal.is_miss(journal.lookup(fp))

    def test_unserializable_result_is_skipped_not_fatal(self, tmp_path):
        with SweepJournal(tmp_path / "j.jsonl") as journal:
            assert journal.append("fp", object()) is False
            assert journal.skipped_appends == 1
        assert load_journal(tmp_path / "j.jsonl").records == 0

    def test_torn_tail_is_skipped_on_load(self, tmp_path):
        path = tmp_path / "j.jsonl"
        fps = [point_fingerprint(_point, x) for x in range(3)]
        with SweepJournal(path, run_id="r") as journal:
            for x, fp in enumerate(fps):
                journal.append(fp, x * x)
        # simulate a torn final write: cut the file mid-line
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 7])
        load = load_journal(path)
        assert load.records == 2
        assert load.corrupt == 1
        assert load.results[fps[0]] == 0 and load.results[fps[1]] == 1

    def test_checksum_mismatch_is_skipped_on_load(self, tmp_path):
        path = tmp_path / "j.jsonl"
        fp = point_fingerprint(_point, 2)
        with SweepJournal(path, run_id="r") as journal:
            journal.append(fp, 4)
        lines = path.read_text().splitlines()
        payload = json.loads(lines[1])
        payload["result"] = 5  # tampered result, stale checksum
        lines[1] = json.dumps(payload)
        path.write_text("\n".join(lines) + "\n")
        load = load_journal(path)
        assert load.records == 0
        assert load.corrupt == 1

    def test_stale_schema_is_skipped_on_load(self, tmp_path):
        path = tmp_path / "j.jsonl"
        fp = point_fingerprint(_point, 2)
        with SweepJournal(path, run_id="r") as journal:
            journal.append(fp, 4)
        text = path.read_text().replace(
            f'"schema":{JOURNAL_SCHEMA}', f'"schema":{JOURNAL_SCHEMA + 1}'
        )
        path.write_text(text)
        load = load_journal(path)
        assert load.records == 0
        assert load.corrupt == 2  # header + record

    def test_missing_file_loads_empty(self, tmp_path):
        load = load_journal(tmp_path / "absent.jsonl")
        assert load.records == 0 and not load.results


class TestCacheIntegrity:
    def _seed_cache(self, tmp_path, n: int = 3) -> ScheduleCache:
        cache = ScheduleCache(tmp_path)
        for x in range(n):
            cache.put(cache_key("t", x=x), {"v": x})
        return cache

    def test_corrupt_entry_quarantined_on_read(self, tmp_path):
        self._seed_cache(tmp_path)
        key = cache_key("t", x=1)
        path = tmp_path / key[:2] / f"{key}.json"
        path.write_text("{torn", encoding="utf-8")
        reader = ScheduleCache(tmp_path)
        assert reader.get(key) is None  # a miss, not a crash
        assert reader.quarantined == 1
        assert not path.exists()
        assert list((tmp_path / "_quarantine").glob("corrupt-*"))
        # the caller recomputes and the cache heals
        reader.put(key, {"v": 1})
        assert ScheduleCache(tmp_path).get(key) == {"v": 1}

    def test_checksum_mismatch_quarantined_on_read(self, tmp_path):
        self._seed_cache(tmp_path)
        key = cache_key("t", x=2)
        path = tmp_path / key[:2] / f"{key}.json"
        envelope = json.loads(path.read_text())
        envelope["value"] = {"v": 999}  # tampered, checksum now stale
        path.write_text(json.dumps(envelope))
        reader = ScheduleCache(tmp_path)
        assert reader.get(key) is None
        assert reader.quarantined == 1

    def test_verify_clean_directory(self, tmp_path):
        self._seed_cache(tmp_path)
        audit = verify_cache_dir(tmp_path)
        assert audit.ok == 3
        assert audit.clean
        assert audit.damaged_total == 0

    def test_verify_finds_each_damage_class(self, tmp_path):
        self._seed_cache(tmp_path)
        keys = [cache_key("t", x=x) for x in range(3)]
        paths = [tmp_path / k[:2] / f"{k}.json" for k in keys]
        paths[0].write_text("{torn")
        env = json.loads(paths[1].read_text())
        env["schema"] = 999
        paths[1].write_text(json.dumps(env))
        # entry filed under the wrong key (e.g. a botched manual copy)
        wrong = tmp_path / keys[2][:2] / ("0" * 64 + ".json")
        wrong.write_text(paths[2].read_text())
        audit = verify_cache_dir(tmp_path)
        assert audit.ok == 1  # only the untouched copy of key 2
        assert set(audit.damaged) == {"corrupt", "stale-schema", "key-mismatch"}

    def test_verify_repair_then_gc(self, tmp_path):
        self._seed_cache(tmp_path)
        key = cache_key("t", x=0)
        (tmp_path / key[:2] / f"{key}.json").write_text("{torn")
        (tmp_path / "stray.tmp").write_text("partial write")
        audit = verify_cache_dir(tmp_path, repair=True)
        assert audit.repaired == 1
        assert audit.stray_tmp == 1
        # repaired damage is contained, not gone: verify reports it
        # pending gc (but no longer as damage)
        after = verify_cache_dir(tmp_path)
        assert after.clean and after.quarantined_pending == 1
        removed = gc_cache_dir(tmp_path)
        assert removed["quarantined"] == 1
        assert removed["tmp"] == 1
        assert verify_cache_dir(tmp_path).clean

    def test_verify_missing_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            verify_cache_dir(tmp_path / "absent")
