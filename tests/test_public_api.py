"""Public-API surface tests: every advertised name exists and imports.

Guards against accidental API breakage: everything in each package's
``__all__`` must resolve, and the documented top-level entry points
must stay available.
"""

from __future__ import annotations

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.multicast",
    "repro.simulator",
    "repro.collectives",
    "repro.analysis",
    "repro.mesh",
    "repro.obs",
]


@pytest.mark.parametrize("pkg", PACKAGES)
def test_all_names_resolve(pkg):
    mod = importlib.import_module(pkg)
    assert hasattr(mod, "__all__") and mod.__all__
    for name in mod.__all__:
        assert hasattr(mod, name), f"{pkg}.__all__ lists missing name {name!r}"


@pytest.mark.parametrize("pkg", PACKAGES)
def test_all_is_sorted_and_unique(pkg):
    mod = importlib.import_module(pkg)
    assert len(set(mod.__all__)) == len(mod.__all__)


def test_readme_quickstart_names():
    """The names used in README's quickstart exist at the documented
    locations."""
    from repro import ALL_PORT, UCube, WSort  # noqa: F401
    from repro.collectives import HypercubeCollectives  # noqa: F401
    from repro.simulator import NCUBE2, simulate_multicast  # noqa: F401


def test_version():
    import repro

    assert repro.__version__


def test_readme_quickstart_snippet_behaviour():
    """Run the README quickstart verbatim and check its stated outputs."""
    from repro import ALL_PORT, WSort
    from repro.simulator import NCUBE2, simulate_multicast

    dests = [0b0001, 0b0011, 0b0101, 0b0111, 0b1011, 0b1100, 0b1110, 0b1111]
    tree = WSort().build_tree(n=4, source=0, destinations=dests)
    sched = tree.schedule(ALL_PORT)
    assert sched.max_step == 2
    assert sched.check_contention()
    res = simulate_multicast(tree, size=4096, timings=NCUBE2, ports=ALL_PORT)
    assert res.total_blocked_time == 0.0
