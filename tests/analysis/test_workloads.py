"""Tests for workload generation."""

from __future__ import annotations

import pytest

from repro.analysis.workloads import random_destination_sets


class TestRandomDestinationSets:
    def test_shape(self):
        sets = random_destination_sets(5, 7, 10, seed=1)
        assert len(sets) == 10
        assert all(len(s) == 7 for s in sets)

    def test_distinct_and_excludes_source(self):
        for s in random_destination_sets(5, 20, 50, seed=2, source=3):
            assert len(set(s)) == 20
            assert 3 not in s
            assert all(0 <= u < 32 for u in s)

    def test_deterministic(self):
        a = random_destination_sets(6, 10, 5, seed=42)
        b = random_destination_sets(6, 10, 5, seed=42)
        assert a == b

    def test_seed_changes_output(self):
        a = random_destination_sets(6, 10, 5, seed=42)
        b = random_destination_sets(6, 10, 5, seed=43)
        assert a != b

    def test_full_broadcast_set(self):
        sets = random_destination_sets(4, 15, 3, seed=1)
        assert all(sorted(s) == [u for u in range(16) if u != 0] for s in sets)

    def test_m_too_large(self):
        with pytest.raises(ValueError):
            random_destination_sets(3, 8, 1, seed=1)

    def test_m_zero(self):
        with pytest.raises(ValueError):
            random_destination_sets(3, 0, 1, seed=1)

    def test_bad_source(self):
        with pytest.raises(ValueError):
            random_destination_sets(3, 1, 1, seed=1, source=8)

    def test_sorted_output(self):
        for s in random_destination_sets(6, 12, 5, seed=9):
            assert s == sorted(s)

    def test_coverage_over_many_draws(self):
        """Every non-source node should appear eventually (uniformity
        smoke test)."""
        seen: set[int] = set()
        for s in random_destination_sets(4, 5, 60, seed=3):
            seen |= set(s)
        assert seen == set(range(1, 16))
