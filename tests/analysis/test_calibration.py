"""Tests for timing-model calibration."""

from __future__ import annotations

import pytest

from repro.analysis.calibration import fit_timings, measure_unicast_samples
from repro.simulator.params import NCUBE2, Timings


class TestFitTimings:
    def test_exact_recovery_from_synthetic(self):
        t_sw, t_hop, t_byte = 160.0, 2.0, 0.45
        samples = [
            (s, h, t_sw + h * t_hop + s * t_byte)
            for s in (64, 512, 4096)
            for h in (1, 3, 5)
        ]
        fit = fit_timings(samples)
        assert fit.t_software == pytest.approx(t_sw)
        assert fit.t_hop == pytest.approx(t_hop)
        assert fit.t_byte == pytest.approx(t_byte)
        assert fit.residual_rms == pytest.approx(0.0, abs=1e-6)

    def test_roundtrip_through_simulator(self):
        """Measure the simulator, fit, recover the simulator's constants."""
        samples = measure_unicast_samples(6, NCUBE2)
        fit = fit_timings(samples)
        assert fit.t_software == pytest.approx(NCUBE2.t_setup + NCUBE2.t_recv, rel=1e-6)
        assert fit.t_hop == pytest.approx(NCUBE2.t_hop, rel=1e-6)
        assert fit.t_byte == pytest.approx(NCUBE2.t_byte, rel=1e-6)

    def test_to_timings_split(self):
        fit = fit_timings(
            [(64, 1, 100.0), (64, 2, 101.0), (512, 1, 148.0), (512, 2, 149.0)]
        )
        t = fit.to_timings(recv_fraction=0.25)
        assert t.t_recv == pytest.approx(fit.t_software * 0.25)
        assert t.t_setup == pytest.approx(fit.t_software * 0.75)
        with pytest.raises(ValueError):
            fit.to_timings(recv_fraction=2.0)

    def test_insufficient_samples(self):
        with pytest.raises(ValueError):
            fit_timings([(64, 1, 100.0), (64, 2, 101.0)])

    def test_degenerate_samples(self):
        with pytest.raises(ValueError):
            fit_timings([(64, 1, 1.0), (64, 1, 2.0), (64, 1, 3.0)])
        with pytest.raises(ValueError):
            fit_timings([(64, 1, 1.0), (128, 1, 2.0), (256, 1, 3.0)])

    def test_nonsense_samples_rejected(self):
        # delays shrinking with size -> negative t_byte -> rejected
        with pytest.raises(ValueError):
            fit_timings(
                [(64, 1, 300.0), (4096, 1, 10.0), (64, 3, 310.0), (4096, 3, 20.0)]
            )

    def test_noisy_fit_reports_residual(self):
        base = [(s, h, 100.0 + 2.0 * h + 0.5 * s) for s in (64, 1024) for h in (1, 4)]
        noisy = [(s, h, d + (1 if i % 2 else -1)) for i, (s, h, d) in enumerate(base)]
        fit = fit_timings(noisy)
        assert fit.residual_rms > 0


class TestMeasureSamples:
    def test_sample_grid(self):
        samples = measure_unicast_samples(4, NCUBE2, sizes=(64, 128), max_hops=3)
        assert len(samples) == 6
        assert {h for _, h, _ in samples} == {1, 2, 3}

    def test_measured_delay_matches_closed_form(self):
        t = Timings(t_setup=10, t_recv=20, t_byte=1.0, t_hop=3.0)
        samples = measure_unicast_samples(4, t, sizes=(100,), max_hops=2)
        for size, h, d in samples:
            assert d == pytest.approx(t.unicast_latency(size, h))
