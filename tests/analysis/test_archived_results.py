"""Validation of archived full-parity results.

The paper-parity sweeps (REPRO_FULL) archive their tables under
``benchmarks/results/full/``; these tests re-validate those artifacts
against the shape criteria without re-running the sweeps, so a stale or
regressed archive is caught by the plain test suite.  Skipped when the
archive has not been generated yet.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.shapes import FIGURE_CRITERIA, check_figure
from repro.analysis.tables import Table

FULL_DIR = Path(__file__).parent.parent.parent / "benchmarks" / "results" / "full"


def load(fig_id: str) -> Table:
    path = FULL_DIR / f"{fig_id}.txt"
    if not path.exists():
        pytest.skip(f"no archived full results for {fig_id} (run REPRO_FULL benches)")
    return Table.parse(path.read_text())


@pytest.mark.parametrize("fig_id", sorted(FIGURE_CRITERIA))
def test_archived_figure_passes_shape_criteria(fig_id):
    table = load(fig_id)
    for c in check_figure(fig_id, table):
        assert c.passed, f"{fig_id}: {c.claim} -- {c.detail}"


def test_archived_fig9_uses_paper_parameters():
    table = load("fig9")
    assert "100 random sets" in table.title


def test_archived_fig13_uses_paper_parameters():
    table = load("fig13")
    assert "100 sets" in table.title
    assert max(table.x_values) == 1023


def test_archived_tables_parse_cleanly():
    for path in sorted(FULL_DIR.glob("*.txt")) if FULL_DIR.exists() else []:
        table = Table.parse(path.read_text())
        assert table.x_values, path.name
