"""Tests for the experiment harness and the figures' shape criteria.

These encode DESIGN.md's shape assertions: not absolute microseconds,
but who wins, the staircase, the smoothing, and the crossovers the
paper reports.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis import run_experiment
from repro.analysis.delay import delay_experiment
from repro.analysis.experiments import EXPERIMENTS
from repro.analysis.steps import stepwise_experiment
from repro.analysis.tables import Table, geometric_grid, linear_grid


class TestTable:
    def test_render_contains_values(self):
        t = Table("T", "m", [1, 2], {"a": [1.5, 2.5], "b": [3.0, 4.0]})
        out = t.render(1)
        assert "1.5" in out and "4.0" in out and "T" in out

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ValueError):
            Table("T", "m", [1, 2], {"a": [1.0]})

    def test_row_and_column(self):
        t = Table("T", "m", [1, 2], {"a": [1.0, 2.0]})
        assert t.row(2) == {"a": 2.0}
        assert t.column("a") == [1.0, 2.0]

    def test_grids(self):
        assert linear_grid(2, 10, 2) == [2, 4, 6, 8, 10]
        assert linear_grid(1, 10, 4) == [1, 5, 9, 10]
        g = geometric_grid(1, 1000, 4)
        assert g[0] == 1 and g[-1] == 1000
        assert g == sorted(set(g))
        with pytest.raises(ValueError):
            geometric_grid(0, 10, 3)


class TestStepwiseShapes:
    """Figure 9/10 shape criteria on a reduced sweep."""

    @pytest.fixture(scope="class")
    def res(self):
        return stepwise_experiment(
            n=6, m_values=[1, 4, 8, 16, 24, 32, 48, 63], sets_per_point=30, seed=11
        )

    def test_ucube_staircase(self, res):
        """U-cube's mean max steps equal ceil(log2(m+1)) exactly."""
        for m, steps in res.series("ucube"):
            assert steps == pytest.approx(math.ceil(math.log2(m + 1)))

    def test_all_port_algorithms_never_worse(self, res):
        # Combine/W-sort never exceed U-cube; Maxport can (Section 4.1)
        # but only slightly in the mean
        for name in ("combine", "wsort"):
            for (m, s), (_, u) in zip(res.series(name), res.series("ucube")):
                assert s <= u + 1e-9
        for (m, s), (_, u) in zip(res.series("maxport"), res.series("ucube")):
            assert s <= u + 0.5

    def test_wsort_best_at_moderate_m(self, res):
        for m in (16, 24, 32):
            row = {name: dict(res.series(name))[m] for name in res.mean_steps}
            assert row["wsort"] <= min(row["maxport"], row["combine"]) + 1e-9
            assert row["wsort"] < row["ucube"]

    def test_smoothing(self, res):
        """The new algorithms vary continuously where U-cube jumps:
        their per-point variance between staircase plateaus is non-zero."""
        wsort = dict(res.series("wsort"))
        # strictly increasing on average across the sweep (no plateaus
        # pinned to the staircase)
        values = [wsort[m] for m in (4, 8, 16, 24, 32, 48)]
        assert all(b >= a for a, b in zip(values, values[1:]))
        assert any(v != math.ceil(math.log2(m + 1)) for m, v in wsort.items())

    def test_min_max_bracket_mean(self, res):
        for name in res.mean_steps:
            for lo, mu, hi in zip(
                res.min_steps[name], res.mean_steps[name], res.max_steps[name]
            ):
                assert lo <= mu <= hi


class TestDelayShapes:
    """Figure 11-14 shape criteria on a reduced sweep (5-cube)."""

    @pytest.fixture(scope="class")
    def res(self):
        return delay_experiment(
            n=5, m_values=[1, 4, 8, 16, 24, 31], sets_per_point=10, seed=23
        )

    def test_ucube_dominated(self, res):
        """All multiport algorithms beat U-cube on average delay for
        non-trivial destination counts."""
        for name in ("maxport", "combine", "wsort"):
            for m, v in res.series(name, "avg"):
                if m >= 4:
                    u = dict(res.series("ucube", "avg"))[m]
                    assert v < u + 1e-6

    def test_broadcast_anomaly(self, res):
        """Figure 11's anomaly: U-cube average delay for some multicast
        is *worse* than for full broadcast."""
        u = dict(res.series("ucube", "avg"))
        assert max(u[m] for m in (16, 24)) > u[31]

    def test_all_algorithms_equal_at_broadcast_and_unicast(self, res):
        for metric in ("avg", "max"):
            for m in (1, 31):
                vals = {name: dict(res.series(name, metric))[m] for name in res.avg_delay}
                assert max(vals.values()) == pytest.approx(min(vals.values()))

    def test_max_ge_avg(self, res):
        for name in res.avg_delay:
            for a, mx in zip(res.avg_delay[name], res.max_delay[name]):
                assert mx >= a - 1e-9

    def test_delays_grow_with_m(self, res):
        for name in res.avg_delay:
            series = res.avg_delay[name]
            assert series[-1] > series[0]

    def test_wsort_never_blocks(self, res):
        assert all(b == 0.0 for b in res.blocked_time["wsort"])


class TestExperimentRegistry:
    def test_all_figures_present(self):
        for fid in ("fig9", "fig10", "fig11", "fig12", "fig13", "fig14"):
            assert fid in EXPERIMENTS

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_fig9_fast_runs(self):
        t = run_experiment("fig9", fast=True)
        assert t.x_values[0] == 1
        assert set(t.columns) == {"ucube", "maxport", "combine", "wsort"}

    def test_ablation_wsort_fast_runs(self):
        t = run_experiment("ablation-wsort", fast=True)
        # weighted_sort never hurts Maxport
        for w, m in zip(t.column("wsort"), t.column("maxport")):
            assert w <= m + 1e-9

    def test_ablation_resolution_fast_runs(self):
        t = run_experiment("ablation-resolution", fast=True)
        # aggregate step counts are resolution-order invariant in
        # distribution; with paired uniform sets the means are close
        for d, a in zip(t.column("desc"), t.column("asc")):
            assert abs(d - a) <= 0.5

    def test_ablation_ports_ordering(self):
        t = run_experiment("ablation-ports", fast=True)
        for one, two, allp in zip(
            t.column("one-port"), t.column("2-port"), t.column("all-port")
        ):
            assert allp <= two + 1e-6 <= one + 1e-6

    def test_ablation_concurrent_fast_runs(self):
        t = run_experiment("ablation-concurrent", fast=True)
        assert t.x_values == [1, 2, 4, 8]
        # interference only slows things down, and wsort keeps the lead
        for name in t.columns:
            col = t.column(name)
            assert col[-1] >= col[0] * 0.98
        for i in range(len(t.x_values)):
            assert t.column("wsort")[i] < t.column("ucube")[i]

    def test_ablation_sensitivity_fast_runs(self):
        t = run_experiment("ablation-sensitivity", fast=True)
        # improvement stays positive across the whole grid
        for name in t.columns:
            assert all(v > 0 for v in t.column(name))
