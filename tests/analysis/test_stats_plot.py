"""Tests for analysis statistics and ASCII plotting."""

from __future__ import annotations

import math

import hypothesis.strategies as st
import pytest
from hypothesis import given

from repro.analysis.plot import ascii_plot
from repro.analysis.stats import paired_improvement, summarize
from repro.analysis.tables import Table


class TestSummarize:
    def test_single_sample(self):
        s = summarize([5.0])
        assert s.mean == 5.0 and s.std == 0.0
        assert s.ci_low == s.ci_high == 5.0

    def test_known_values(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.mean == pytest.approx(2.5)
        assert s.std == pytest.approx(math.sqrt(5 / 3))
        assert s.minimum == 1.0 and s.maximum == 4.0
        assert s.count == 4

    def test_ci_contains_mean(self):
        s = summarize([3.0, 4.0, 5.0, 6.0], confidence=0.99)
        assert s.ci_low <= s.mean <= s.ci_high

    def test_higher_confidence_wider(self):
        data = [1.0, 5.0, 2.0, 8.0, 3.0]
        s90 = summarize(data, 0.90)
        s99 = summarize(data, 0.99)
        assert (s99.ci_high - s99.ci_low) > (s90.ci_high - s90.ci_low)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_unknown_confidence_rejected(self):
        with pytest.raises(ValueError):
            summarize([1.0], confidence=0.5)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=50))
    def test_bounds(self, data):
        s = summarize(data)
        eps = 1e-9 * max(1.0, abs(s.minimum), abs(s.maximum))  # fp accumulation slack
        assert s.minimum - eps <= s.mean <= s.maximum + eps


class TestPairedImprovement:
    def test_perfect_improvement(self):
        s = paired_improvement([10.0, 20.0], [5.0, 10.0])
        assert s.mean == pytest.approx(0.5)

    def test_no_improvement(self):
        s = paired_improvement([10.0, 10.0], [10.0, 10.0])
        assert s.mean == pytest.approx(0.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            paired_improvement([1.0], [1.0, 2.0])

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            paired_improvement([0.0], [1.0])


class TestAsciiPlot:
    @pytest.fixture
    def table(self):
        return Table(
            "demo",
            "m",
            [1, 2, 4, 8],
            {"ucube": [1.0, 2.0, 3.0, 4.0], "wsort": [1.0, 1.5, 2.0, 2.5]},
        )

    def test_contains_markers_and_legend(self, table):
        out = ascii_plot(table)
        assert "o=ucube" in out and "x=wsort" in out
        assert "o" in out and "x" in out
        assert "demo" in out

    def test_extremes_labeled(self, table):
        out = ascii_plot(table)
        assert "4" in out and "1" in out

    def test_size_validation(self, table):
        with pytest.raises(ValueError):
            ascii_plot(table, width=4)

    def test_flat_series(self):
        t = Table("flat", "m", [1, 2], {"a": [5.0, 5.0]})
        out = ascii_plot(t)
        assert "a=a" not in out  # legend formatted as marker=name
        assert "o=a" in out

    def test_single_point(self):
        t = Table("pt", "m", [3], {"a": [2.0]})
        assert "o=a" in ascii_plot(t)
