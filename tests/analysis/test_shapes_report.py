"""Tests for the shape criteria, table parsing, and report generation."""

from __future__ import annotations

import pytest

from repro.analysis.report import figure_section, markdown_report
from repro.analysis.shapes import FIGURE_CRITERIA, check_figure
from repro.analysis.tables import Table


def staircase_table():
    """A synthetic table satisfying all fig9 criteria."""
    xs = [1, 3, 7, 8, 16, 32, 48, 63]
    import math

    ucube = [float(math.ceil(math.log2(m + 1))) for m in xs]
    wsort = [max(1.0, u - 1.0) for u in ucube]
    combine = [max(1.0, u - 0.5) for u in ucube]
    maxport = [u + 0.2 for u in ucube]
    return Table(
        "synthetic fig9",
        "m",
        xs,
        {"ucube": ucube, "maxport": maxport, "combine": combine, "wsort": wsort},
    )


class TestCheckFigure:
    def test_all_figures_have_criteria(self):
        assert set(FIGURE_CRITERIA) == {f"fig{i}" for i in range(9, 15)}

    def test_synthetic_fig9_passes(self):
        results = check_figure("fig9", staircase_table())
        assert all(c.passed for c in results), [c.detail for c in results if not c.passed]

    def test_broken_staircase_detected(self):
        t = staircase_table()
        t.columns["ucube"][2] += 1.0
        results = check_figure("fig9", t)
        assert not results[0].passed
        assert "m=" in results[0].detail

    def test_wsort_regression_detected(self):
        t = staircase_table()
        t.columns["wsort"] = [u + 1.0 for u in t.columns["ucube"]]
        results = check_figure("fig9", t)
        assert any(not c.passed for c in results)

    def test_unknown_figure(self):
        with pytest.raises(KeyError):
            check_figure("fig99", staircase_table())


class TestTableParse:
    def test_roundtrip(self):
        t = staircase_table()
        t.notes.append("a note")
        parsed = Table.parse(t.render(2))
        assert parsed.x_values == t.x_values
        assert set(parsed.columns) == set(t.columns)
        for name in t.columns:
            assert parsed.columns[name] == pytest.approx(t.columns[name], abs=0.01)
        assert parsed.notes == ["a note"]

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            Table.parse("not\na\ntable")

    def test_malformed_row_rejected(self):
        t = staircase_table()
        text = t.render(2) + "\n 1 2"
        with pytest.raises(ValueError):
            Table.parse(text)


class TestReport:
    def test_figure_section_contains_verdicts(self):
        section = figure_section("fig9", staircase_table())
        assert "| PASS |" in section
        assert "```" in section

    def test_markdown_report_single_figure(self):
        rep = markdown_report(fast=True, figures=["fig9"])
        assert "Figure 9" in rep
        assert "FAIL" not in rep

    def test_unknown_figure_rejected(self):
        with pytest.raises(KeyError):
            markdown_report(figures=["nope"])
