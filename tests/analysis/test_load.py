"""Tests for static channel-load analysis."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.analysis.load import channel_load, load_summary
from repro.multicast import Combine, Maxport, UCube, WSort
from repro.multicast.maxport import MaxportSubcube
from tests.conftest import multicast_cases

FIG3_DESTS = [0b0001, 0b0011, 0b0101, 0b0111, 0b1011, 0b1100, 0b1110, 0b1111]


class TestChannelLoad:
    def test_empty_tree(self):
        tree = UCube().build_tree(3, 0, [])
        assert channel_load(tree) == {}
        s = load_summary(tree)
        assert s.max_multiplicity == 0 and s.distinct_channels == 0

    def test_total_equals_hops(self):
        tree = UCube().build_tree(4, 0, FIG3_DESTS)
        assert load_summary(tree).total_traversals == tree.total_hops()

    def test_fig3_ucube_reuses_channels(self):
        """The Fig. 3(d) conflict shows up statically: channel
        (0111, d3) carries two unicasts."""
        tree = UCube().build_tree(4, 0, FIG3_DESTS)
        load = channel_load(tree)
        assert load[(0b0111, 3)] == 2
        assert load_summary(tree).max_multiplicity >= 2

    @given(case=multicast_cases())
    def test_maxport_wsort_globally_arc_disjoint(self, case):
        """Maxport and W-sort trees use every channel at most once --
        the structural form of their zero-blocking guarantee."""
        n, source, dests = case
        for alg in (Maxport(), MaxportSubcube(), WSort()):
            tree = alg.build_tree(n, source, dests)
            assert load_summary(tree).max_multiplicity <= 1

    @given(case=multicast_cases(max_n=5))
    def test_mean_at_most_max(self, case):
        n, source, dests = case
        for alg in (UCube(), Combine(), WSort()):
            s = load_summary(alg.build_tree(n, source, dests))
            if s.distinct_channels:
                assert 1 <= s.mean_multiplicity <= s.max_multiplicity

    def test_ucube_heavier_than_wsort_on_average(self):
        """Across random instances U-cube's worst channel is never
        lighter than W-sort's."""
        from repro.analysis.workloads import random_destination_sets

        heavier = 0
        for i, dests in enumerate(random_destination_sets(6, 20, 20, seed=91)):
            u = load_summary(UCube().build_tree(6, 0, dests)).max_multiplicity
            w = load_summary(WSort().build_tree(6, 0, dests)).max_multiplicity
            assert w <= u
            heavier += u > w
        assert heavier > 0
