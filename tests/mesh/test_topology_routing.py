"""Tests for the 2D mesh topology and XY routing."""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given

from repro.mesh.routing import xy_arcs, xy_path
from repro.mesh.topology import EAST, Mesh2D, NORTH, SOUTH, WEST


@st.composite
def mesh_pairs(draw):
    cols = draw(st.integers(1, 8))
    rows = draw(st.integers(1, 8))
    mesh = Mesh2D(cols, rows)
    u = draw(st.integers(0, mesh.size - 1))
    v = draw(st.integers(0, mesh.size - 1))
    return mesh, u, v


class TestMesh2D:
    def test_ids_and_coords_roundtrip(self):
        mesh = Mesh2D(4, 3)
        for y in range(3):
            for x in range(4):
                assert mesh.coords(mesh.node(x, y)) == (x, y)

    def test_size(self):
        assert Mesh2D(4, 3).size == 12

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Mesh2D(0, 3)

    def test_neighbors(self):
        mesh = Mesh2D(3, 3)
        center = mesh.node(1, 1)
        assert mesh.neighbor(center, EAST) == mesh.node(2, 1)
        assert mesh.neighbor(center, WEST) == mesh.node(0, 1)
        assert mesh.neighbor(center, NORTH) == mesh.node(1, 2)
        assert mesh.neighbor(center, SOUTH) == mesh.node(1, 0)

    def test_boundary_neighbors_none(self):
        mesh = Mesh2D(3, 3)
        assert mesh.neighbor(mesh.node(0, 0), WEST) is None
        assert mesh.neighbor(mesh.node(0, 0), SOUTH) is None
        assert mesh.neighbor(mesh.node(2, 2), EAST) is None
        assert mesh.neighbor(mesh.node(2, 2), NORTH) is None

    def test_unknown_direction(self):
        with pytest.raises(ValueError):
            Mesh2D(3, 3).neighbor(0, 7)

    def test_validate_node(self):
        mesh = Mesh2D(3, 3)
        with pytest.raises(ValueError):
            mesh.validate_node(9)
        with pytest.raises(TypeError):
            mesh.validate_node("x")

    def test_validate_arc(self):
        mesh = Mesh2D(3, 3)
        mesh.validate_arc((0, EAST))
        with pytest.raises(ValueError):
            mesh.validate_arc((0, WEST))

    @given(mp=mesh_pairs())
    def test_distance_symmetric(self, mp):
        mesh, u, v = mp
        assert mesh.distance(u, v) == mesh.distance(v, u)


class TestXYRouting:
    def test_x_then_y(self):
        mesh = Mesh2D(4, 4)
        path = xy_path(mesh, mesh.node(0, 0), mesh.node(2, 2))
        coords = [mesh.coords(u) for u in path]
        assert coords == [(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)]

    def test_westward_and_southward(self):
        mesh = Mesh2D(4, 4)
        path = xy_path(mesh, mesh.node(3, 3), mesh.node(1, 0))
        coords = [mesh.coords(u) for u in path]
        assert coords == [(3, 3), (2, 3), (1, 3), (1, 2), (1, 1), (1, 0)]

    def test_self_route_empty(self):
        mesh = Mesh2D(3, 3)
        assert xy_arcs(mesh, 4, 4) == []
        assert xy_path(mesh, 4, 4) == [4]

    @given(mp=mesh_pairs())
    def test_length_is_manhattan(self, mp):
        mesh, u, v = mp
        assert len(xy_arcs(mesh, u, v)) == mesh.distance(u, v)

    @given(mp=mesh_pairs())
    def test_path_valid(self, mp):
        mesh, u, v = mp
        path = xy_path(mesh, u, v)
        assert path[0] == u and path[-1] == v
        for a, b in zip(path, path[1:]):
            assert mesh.distance(a, b) == 1

    @given(mp=mesh_pairs())
    def test_deterministic(self, mp):
        mesh, u, v = mp
        assert xy_arcs(mesh, u, v) == xy_arcs(mesh, u, v)


class TestXYDeadlockFreedom:
    """XY routing's channel dependency graph is acyclic (the mesh analog
    of the E-cube argument, same Dally-Seitz machinery)."""

    def test_acyclic(self):
        import networkx as nx

        mesh = Mesh2D(4, 4)
        g = nx.DiGraph()
        for u in range(mesh.size):
            for v in range(mesh.size):
                if u == v:
                    continue
                arcs = xy_arcs(mesh, u, v)
                for a, b in zip(arcs, arcs[1:]):
                    g.add_edge(a, b)
        assert nx.is_directed_acyclic_graph(g)

    def test_dependencies_only_x_to_y(self):
        mesh = Mesh2D(4, 4)
        for u in range(mesh.size):
            for v in range(mesh.size):
                if u == v:
                    continue
                arcs = xy_arcs(mesh, u, v)
                seen_y = False
                for _, direction in arcs:
                    if direction in (NORTH, SOUTH):
                        seen_y = True
                    else:
                        assert not seen_y, "X move after a Y move"
