"""Tests for the U-mesh multicast algorithm."""

from __future__ import annotations

import math

import hypothesis.strategies as st
import pytest
from hypothesis import given

from repro.mesh import Mesh2D, MeshTree, UMesh, simulate_mesh_multicast
from repro.multicast.ports import ALL_PORT, ONE_PORT
from repro.simulator.params import NCUBE2, STEP


@st.composite
def umesh_cases(draw):
    cols = draw(st.integers(2, 7))
    rows = draw(st.integers(2, 7))
    mesh = Mesh2D(cols, rows)
    source = draw(st.integers(0, mesh.size - 1))
    dests = draw(
        st.sets(
            st.integers(0, mesh.size - 1).filter(lambda x: x != source),
            min_size=1,
            max_size=mesh.size - 1,
        )
    )
    return mesh, source, sorted(dests)


class TestTreeStructure:
    @given(case=umesh_cases())
    def test_covers_destinations_exactly_once(self, case):
        mesh, source, dests = case
        tree = UMesh().build_tree(mesh, source, dests)
        assert {s.dst for s in tree.sends} == set(dests)
        assert len(tree.sends) == len(dests)
        assert tree.relay_nodes == set()

    def test_validation(self):
        mesh = Mesh2D(3, 3)
        with pytest.raises(ValueError):
            UMesh().build_tree(mesh, 0, [0, 1])
        with pytest.raises(ValueError):
            UMesh().build_tree(mesh, 0, [1, 1])
        with pytest.raises(ValueError):
            UMesh().build_tree(mesh, 0, [99])

    def test_empty_destinations(self):
        mesh = Mesh2D(3, 3)
        tree = UMesh().build_tree(mesh, 4, [])
        assert tree.sends == []
        assert tree.schedule(ONE_PORT).max_step == 0


class TestOnePortOptimality:
    """U-mesh matches U-cube's one-port bound: ceil(log2(m+1)) steps."""

    @given(case=umesh_cases())
    def test_step_count(self, case):
        mesh, source, dests = case
        tree = UMesh().build_tree(mesh, source, dests)
        assert tree.schedule(ONE_PORT).max_step == math.ceil(math.log2(len(dests) + 1))

    def test_broadcast_whole_mesh(self):
        mesh = Mesh2D(4, 4)
        dests = [u for u in range(16) if u != 5]
        tree = UMesh().build_tree(mesh, 5, dests)
        assert tree.schedule(ONE_PORT).max_step == 4  # ceil(log2(16))


class TestContentionFreedom:
    """The [9] guarantee: contention-free on one-port XY-routed meshes."""

    @given(case=umesh_cases())
    def test_definition4_with_xy_arcs(self, case):
        mesh, source, dests = case
        sched = UMesh().build_tree(mesh, source, dests).schedule(ONE_PORT)
        report = sched.check_contention()
        assert report.ok, report.summary()

    @given(case=umesh_cases())
    def test_zero_blocking_one_port(self, case):
        mesh, source, dests = case
        tree = UMesh().build_tree(mesh, source, dests)
        res = simulate_mesh_multicast(tree, 512, NCUBE2, ONE_PORT)
        assert res.total_blocked_time == 0.0

    def test_exhaustive_3x3(self):
        """Every source and every destination subset of a 3x3 mesh."""
        from itertools import combinations

        mesh = Mesh2D(3, 3)
        alg = UMesh()
        for source in range(9):
            others = [u for u in range(9) if u != source]
            for m in (1, 2, 3, 8):
                for dests in combinations(others, m):
                    sched = alg.build_tree(mesh, source, list(dests)).schedule(ONE_PORT)
                    assert sched.check_contention().ok
                    assert sched.max_step == math.ceil(math.log2(m + 1))


class TestSimulation:
    def test_delays_reported(self):
        mesh = Mesh2D(4, 4)
        tree = UMesh().build_tree(mesh, 0, [3, 7, 12, 15])
        res = simulate_mesh_multicast(tree, 4096, NCUBE2, ONE_PORT)
        assert set(res.delays) == {3, 7, 12, 15}
        assert 0 < res.avg_delay <= res.max_delay

    def test_step_semantics_under_unit_costs(self):
        mesh = Mesh2D(4, 4)
        tree = UMesh().build_tree(mesh, 5, [0, 3, 10, 14, 15])
        sched = tree.schedule(ONE_PORT)
        res = simulate_mesh_multicast(tree, size=1, timings=STEP, ports=ONE_PORT)
        for d in tree.destinations:
            assert res.delays[d] == pytest.approx(sched.dest_steps[d])

    def test_all_port_not_slower(self):
        mesh = Mesh2D(5, 5)
        dests = [1, 3, 8, 11, 17, 22, 24]
        tree = UMesh().build_tree(mesh, 12, dests)
        one = simulate_mesh_multicast(tree, 4096, NCUBE2, ONE_PORT)
        allp = simulate_mesh_multicast(tree, 4096, NCUBE2, ALL_PORT)
        assert allp.avg_delay <= one.avg_delay + 1e-9

    def test_flit_level_cross_validation(self):
        """The mesh's XY routes through the exact flit-level model agree
        with the channel-holding model within the pipeline-fill term."""
        from repro.mesh.routing import xy_arcs
        from repro.simulator.engine import Simulator
        from repro.simulator.flitlevel import FlitLevelNetwork
        from repro.simulator.network import WormholeNetwork
        from repro.simulator.params import Timings

        mesh = Mesh2D(4, 4)
        t = Timings(t_setup=0, t_recv=0, t_byte=1.0, t_hop=4.0)
        src, dst, flits = mesh.node(0, 0), mesh.node(3, 2), 64
        route = lambda u, v: xy_arcs(mesh, u, v)  # noqa: E731

        sim_f = Simulator()
        fn = FlitLevelNetwork(sim_f, 1, timings=t, route=route)
        fw = fn.inject(src, dst, flits)
        sim_f.run()
        fn.assert_quiescent()

        sim_h = Simulator()
        hn = WormholeNetwork(sim_h, 1, timings=t, route=route)
        hn.validate_node = lambda node, what: mesh.validate_node(node, what)
        hn.validate_arc = mesh.validate_arc
        hw = hn.make_worm(src, dst, flits)
        hn.inject(hw)
        sim_h.run()

        h = mesh.distance(src, dst)
        assert fw.t_delivered >= hw.t_delivered - 1e-9
        assert fw.t_delivered - hw.t_delivered <= h * (t.t_byte + t.t_hop) + 1e-9

    def test_hand_built_tree_with_relay(self):
        mesh = Mesh2D(3, 3)
        tree = MeshTree(mesh, 0, [8])
        tree.add_send(0, 4)  # relay CPU
        tree.add_send(4, 8)
        assert tree.relay_nodes == {4}
        res = simulate_mesh_multicast(tree, 128)
        assert 8 in res.delays
