"""End-to-end simulator tests: multicast trees through the timed model,
including the STEP cross-validation against the abstract scheduler."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.multicast import (
    ALL_PORT,
    ONE_PORT,
    Combine,
    Maxport,
    UCube,
    WSort,
    k_port,
)
from repro.simulator import NCUBE2, STEP, Timings, simulate_multicast
from tests.conftest import multicast_cases

FIG3_DESTS = [0b0001, 0b0011, 0b0101, 0b0111, 0b1011, 0b1100, 0b1110, 0b1111]
PAPER_ALGS = [UCube(), Maxport(), Combine(), WSort()]


class TestStepCrossValidation:
    """Under STEP timings (unit cost per unicast, zero overheads) the
    simulated delivery time of every destination must equal its step in
    the greedy schedule -- the simulator and the analytical scheduler
    are two independent implementations of the same semantics."""

    @pytest.mark.parametrize("alg", PAPER_ALGS, ids=lambda a: a.name)
    def test_fig3_destinations(self, alg):
        tree = alg.build_tree(4, 0, FIG3_DESTS)
        sched = tree.schedule(ALL_PORT)
        res = simulate_multicast(tree, size=1, timings=STEP, ports=ALL_PORT, trace=True)
        for d in FIG3_DESTS:
            assert res.delays[d] == pytest.approx(sched.dest_steps[d])
        assert res.network.trace.overlapping_pairs() == []

    @pytest.mark.parametrize("alg", PAPER_ALGS, ids=lambda a: a.name)
    @given(case=multicast_cases(max_n=5))
    def test_random_all_port(self, alg, case):
        n, source, dests = case
        tree = alg.build_tree(n, source, dests)
        sched = tree.schedule(ALL_PORT)
        res = simulate_multicast(tree, size=1, timings=STEP, ports=ALL_PORT)
        for d in dests:
            assert res.delays[d] == pytest.approx(sched.dest_steps[d])

    @pytest.mark.parametrize("alg", PAPER_ALGS, ids=lambda a: a.name)
    @given(case=multicast_cases(max_n=4))
    def test_random_one_port(self, alg, case):
        n, source, dests = case
        tree = alg.build_tree(n, source, dests)
        sched = tree.schedule(ONE_PORT)
        res = simulate_multicast(tree, size=1, timings=STEP, ports=ONE_PORT)
        for d in dests:
            assert res.delays[d] == pytest.approx(sched.dest_steps[d])


class TestZeroBlocking:
    """Maxport and W-sort route every sender's unicasts into disjoint
    subcubes, so their worms must never block, for any message size or
    port model -- the strongest run-time expression of Theorems 1/2/6."""

    @pytest.mark.parametrize("alg", [Maxport(), WSort()], ids=lambda a: a.name)
    @given(case=multicast_cases(max_n=6))
    def test_no_blocking_all_port(self, alg, case):
        n, source, dests = case
        tree = alg.build_tree(n, source, dests)
        res = simulate_multicast(tree, size=512, timings=NCUBE2, ports=ALL_PORT)
        assert res.total_blocked_time == 0.0

    @pytest.mark.parametrize("alg", PAPER_ALGS, ids=lambda a: a.name)
    @given(case=multicast_cases(max_n=5))
    def test_one_port_never_blocks(self, alg, case):
        """On one-port nodes sends serialize at the injection port, so
        contention-free algorithms show zero *channel* blocking."""
        n, source, dests = case
        tree = alg.build_tree(n, source, dests)
        res = simulate_multicast(tree, size=256, timings=NCUBE2, ports=ONE_PORT)
        assert res.total_blocked_time == 0.0


class TestDelays:
    def test_single_destination_closed_form(self):
        tree = UCube().build_tree(4, 0, [0b1111])
        res = simulate_multicast(tree, size=4096, timings=NCUBE2, ports=ALL_PORT)
        assert res.delays[0b1111] == pytest.approx(NCUBE2.unicast_latency(4096, 4))

    def test_avg_and_max(self):
        tree = WSort().build_tree(4, 0, FIG3_DESTS)
        res = simulate_multicast(tree, 4096, NCUBE2, ALL_PORT)
        assert 0 < res.avg_delay <= res.max_delay
        assert res.max_delay == max(res.delays[d] for d in FIG3_DESTS)
        assert res.completion_time >= res.max_delay

    def test_all_port_beats_one_port_on_average(self):
        tree = WSort().build_tree(5, 0, list(range(1, 32)))
        one = simulate_multicast(tree, 4096, NCUBE2, ONE_PORT)
        allp = simulate_multicast(tree, 4096, NCUBE2, ALL_PORT)
        assert allp.avg_delay < one.avg_delay

    def test_k_port_between_extremes(self):
        tree = WSort().build_tree(5, 0, list(range(1, 32)))
        one = simulate_multicast(tree, 4096, NCUBE2, ONE_PORT).avg_delay
        two = simulate_multicast(tree, 4096, NCUBE2, k_port(2)).avg_delay
        allp = simulate_multicast(tree, 4096, NCUBE2, ALL_PORT).avg_delay
        assert allp <= two <= one

    def test_message_size_scales_delay(self):
        tree = WSort().build_tree(4, 0, FIG3_DESTS)
        small = simulate_multicast(tree, 64, NCUBE2, ALL_PORT).max_delay
        large = simulate_multicast(tree, 4096, NCUBE2, ALL_PORT).max_delay
        assert large > small

    def test_deterministic(self):
        tree = Combine().build_tree(5, 3, [1, 2, 8, 9, 17, 30])
        r1 = simulate_multicast(tree, 4096, NCUBE2, ALL_PORT)
        r2 = simulate_multicast(tree, 4096, NCUBE2, ALL_PORT)
        assert r1.delays == r2.delays

    def test_empty_tree(self):
        from repro.multicast import MulticastTree

        tree = MulticastTree(3, 0, [])
        res = simulate_multicast(tree, 4096, NCUBE2, ALL_PORT)
        assert res.max_delay == 0.0
        assert res.avg_delay == 0.0

    @given(case=multicast_cases(max_n=5))
    def test_every_destination_delivered_once(self, case):
        n, source, dests = case
        tree = Combine().build_tree(n, source, dests)
        res = simulate_multicast(tree, 128, NCUBE2, ALL_PORT)
        assert set(res.delays) == set(dests)
        assert all(res.delays[d] > 0 for d in dests)

    @given(case=multicast_cases(max_n=5))
    def test_ucube_one_port_delay_structure(self, case):
        """One-port U-cube delay grows stepwise: max delay is close to
        max_step * (per-step time) for 4 KB messages."""
        n, source, dests = case
        tree = UCube().build_tree(n, source, dests)
        steps = tree.schedule(ONE_PORT).max_step
        res = simulate_multicast(tree, 4096, NCUBE2, ONE_PORT)
        per_step_min = NCUBE2.t_setup + 4096 * NCUBE2.t_byte + NCUBE2.t_recv
        per_step_max = per_step_min + n * NCUBE2.t_hop
        assert steps * per_step_min * 0.9 <= res.max_delay <= steps * per_step_max * 1.1


class TestFig3dTiming:
    def test_1011_delayed_behind_1100(self):
        """The Fig. 3(d) effect in continuous time: U-cube's worm to 1011
        blocks behind the worm to 1100 on an all-port machine."""
        tree = UCube().build_tree(4, 0, FIG3_DESTS)
        res = simulate_multicast(tree, 4096, NCUBE2, ALL_PORT)
        assert res.total_blocked_time > 0
        assert res.delays[0b1011] > res.delays[0b1100]

    def test_wsort_removes_the_blocking(self):
        tree = WSort().build_tree(4, 0, FIG3_DESTS)
        res = simulate_multicast(tree, 4096, NCUBE2, ALL_PORT)
        assert res.total_blocked_time == 0.0
        u = simulate_multicast(UCube().build_tree(4, 0, FIG3_DESTS), 4096, NCUBE2, ALL_PORT)
        assert res.max_delay < u.max_delay
