"""Tests for the wormhole network model: latency, blocking, invariants."""

from __future__ import annotations

import pytest

from repro.core.paths import ResolutionOrder
from repro.simulator.engine import Simulator
from repro.simulator.message import WormState
from repro.simulator.network import WormholeNetwork
from repro.simulator.params import NCUBE2, STEP, Timings


def make_net(n=4, timings=NCUBE2, trace=True, collect=None):
    sim = Simulator()
    net = WormholeNetwork(sim, n, timings=timings, trace=trace, on_delivered=collect)
    return sim, net


class TestUnblockedLatency:
    def test_single_hop(self):
        sim, net = make_net()
        w = net.make_worm(0, 1, size=100)
        net.inject(w)
        sim.run()
        # t_hop + 100 * t_byte
        assert w.t_delivered == pytest.approx(NCUBE2.t_hop + 100 * NCUBE2.t_byte)
        assert w.state is WormState.DELIVERED
        assert w.blocked_time == 0.0

    def test_distance_insensitivity(self):
        """Wormhole hallmark: for a 4 KB message, 1 hop vs 4 hops differ
        by only 3 * t_hop -- a fraction of a percent."""
        sim1, net1 = make_net()
        w1 = net1.make_worm(0, 0b0001, 4096)
        net1.inject(w1)
        sim1.run()
        sim4, net4 = make_net()
        w4 = net4.make_worm(0, 0b1111, 4096)
        net4.inject(w4)
        sim4.run()
        assert w4.t_delivered - w1.t_delivered == pytest.approx(3 * NCUBE2.t_hop)
        assert (w4.t_delivered - w1.t_delivered) / w1.t_delivered < 0.01

    def test_matches_closed_form(self):
        sim, net = make_net()
        w = net.make_worm(0b0101, 0b1110, 4096)
        net.inject(w)
        sim.run()
        assert w.t_delivered == pytest.approx(NCUBE2.network_time(4096, 3))

    def test_step_timings_unit_latency(self):
        sim, net = make_net(timings=STEP)
        w = net.make_worm(0, 0b1111, size=1)
        net.inject(w)
        sim.run()
        assert w.t_delivered == pytest.approx(1.0)


class TestBlocking:
    def test_two_worms_same_channel_serialize(self):
        sim, net = make_net(timings=STEP)
        a = net.make_worm(0b0000, 0b1100, 1)  # arcs (0,3),(8,2)
        b = net.make_worm(0b0000, 0b1011, 1)  # arcs (0,3),(8,1),(9,1)
        net.inject(a)
        net.inject(b)
        sim.run()
        assert a.t_delivered == pytest.approx(1.0)
        assert b.t_delivered == pytest.approx(2.0)
        assert b.blocked_time == pytest.approx(1.0)
        assert a.blocked_time == 0.0

    def test_fifo_wakeup_order(self):
        sim, net = make_net(timings=STEP)
        worms = [net.make_worm(0, 0b1000 | k, 1) for k in range(3)]
        for w in worms:
            net.inject(w)
        sim.run()
        # all three compete for channel (0, 3); FIFO by injection order
        times = [w.t_delivered for w in worms]
        assert times == sorted(times)
        assert times[0] < times[1] < times[2]

    def test_blocked_worm_holds_upstream_channels(self):
        """A header blocked mid-path keeps its acquired channels busy,
        blocking a third worm that needs them (chained blocking)."""
        timings = Timings(t_setup=0, t_recv=0, t_byte=100.0, t_hop=1.0)
        sim, net = make_net(timings=timings, n=4)
        # a: 8->14 occupies (8,2),(12,1) for a long time
        a = net.make_worm(0b1000, 0b1110, 10)
        net.inject(a)
        # b: 0->14: acquires (0,3), then blocks on (8,2) held by a
        b = net.make_worm(0b0000, 0b1110, 10)
        net.inject(b)
        # c: 0->9: needs (0,3) -- held by the *blocked* b
        c = net.make_worm(0b0000, 0b1001, 10)
        net.inject(c)
        sim.run()
        assert b.blocked_time > 0
        assert c.blocked_time > 0
        # c can only finish after b finishes releasing (0,3)
        assert c.t_delivered > b.t_delivered

    def test_opposite_direction_channels_independent(self):
        """Two messages in opposite directions between neighbors do not
        contend (each direction is its own channel)."""
        sim, net = make_net(timings=STEP)
        a = net.make_worm(0, 1, 1)
        b = net.make_worm(1, 0, 1)
        net.inject(a)
        net.inject(b)
        sim.run()
        assert a.t_delivered == pytest.approx(1.0)
        assert b.t_delivered == pytest.approx(1.0)
        assert net.total_blocked_time == 0.0


class TestInvariants:
    def test_trace_no_overlaps(self):
        sim, net = make_net(timings=STEP)
        for dst in (0b1100, 0b1011, 0b0111, 0b0101):
            net.inject(net.make_worm(0, dst, 1))
        sim.run()
        net.assert_quiescent()
        assert net.trace.overlapping_pairs() == []

    def test_quiescence_check_catches_stuck(self):
        sim, net = make_net()
        net.make_worm(0, 1, 10)  # never injected
        with pytest.raises(AssertionError):
            net.assert_quiescent()

    def test_double_injection_rejected(self):
        sim, net = make_net()
        w = net.make_worm(0, 1, 10)
        net.inject(w)
        with pytest.raises(ValueError):
            net.inject(w)

    def test_worm_validation(self):
        _, net = make_net()
        with pytest.raises(ValueError):
            net.make_worm(0, 0, 10)
        with pytest.raises(ValueError):
            net.make_worm(0, 99, 10)
        with pytest.raises(ValueError):
            net.make_worm(0, 1, 0)

    def test_bad_dimension_rejected(self):
        _, net = make_net(n=2)
        with pytest.raises(ValueError):
            net.channel((0, 5))

    def test_dimension_must_be_positive(self):
        with pytest.raises(ValueError):
            WormholeNetwork(Simulator(), 0)


class TestResolutionOrder:
    def test_ascending_routes(self):
        sim = Simulator()
        net = WormholeNetwork(sim, 4, timings=STEP, order=ResolutionOrder.ASCENDING)
        w = net.make_worm(0b0101, 0b1110, 1)
        assert [a for a in w.arcs] == [(0b0101, 0), (0b0100, 1), (0b0110, 3)]

    def test_ascending_contention_differs(self):
        """0->3 and 0->1 share their first arc only under ascending
        resolution."""
        sim_d = Simulator()
        net_d = WormholeNetwork(sim_d, 2, timings=STEP)
        net_d.inject(net_d.make_worm(0, 3, 1))
        net_d.inject(net_d.make_worm(0, 1, 1))
        sim_d.run()
        assert net_d.total_blocked_time == 0.0

        sim_a = Simulator()
        net_a = WormholeNetwork(sim_a, 2, timings=STEP, order=ResolutionOrder.ASCENDING)
        net_a.inject(net_a.make_worm(0, 3, 1))
        net_a.inject(net_a.make_worm(0, 1, 1))
        sim_a.run()
        assert net_a.total_blocked_time > 0.0


class TestTimingsValidation:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Timings(t_setup=-1)

    def test_unicast_latency_formula(self):
        t = Timings(t_setup=10, t_recv=20, t_byte=2, t_hop=1)
        assert t.unicast_latency(100, 3) == 10 + 3 + 200 + 20
