"""Tests for ChannelTrace audit helpers and error paths."""

from __future__ import annotations

import pytest

from repro.simulator.trace import ChannelTrace, Occupancy


class TestOccupyRelease:
    def test_round_trip_records_occupancy(self):
        trace = ChannelTrace(enabled=True)
        trace.occupy((0, 1), worm_uid=7, now=1.0)
        trace.release((0, 1), worm_uid=7, now=5.0)
        assert trace.records == [Occupancy((0, 1), 7, 1.0, 5.0)]
        assert trace.records[0].duration == 4.0

    def test_double_occupy_rejected(self):
        trace = ChannelTrace(enabled=True)
        trace.occupy((0, 1), 1, 0.0)
        with pytest.raises(AssertionError, match="double-occupied"):
            trace.occupy((0, 1), 2, 1.0)

    def test_release_never_occupied_is_descriptive(self):
        """A release with no matching occupy (e.g. trace enabled
        mid-run) raises a descriptive AssertionError, not a KeyError."""
        trace = ChannelTrace(enabled=True)
        with pytest.raises(AssertionError, match="never occupied"):
            trace.release((3, 2), worm_uid=9, now=4.0)

    def test_release_by_wrong_worm_rejected(self):
        trace = ChannelTrace(enabled=True)
        trace.occupy((0, 0), 1, 0.0)
        with pytest.raises(AssertionError, match="held by"):
            trace.release((0, 0), worm_uid=2, now=1.0)

    def test_disabled_trace_records_nothing(self):
        trace = ChannelTrace(enabled=False)
        trace.occupy((0, 0), 1, 0.0)
        trace.release((0, 0), 1, 1.0)
        trace.finish()
        assert trace.records == []


class TestFinish:
    def test_clean_trace_passes(self):
        trace = ChannelTrace(enabled=True)
        trace.occupy((0, 0), 1, 0.0)
        trace.release((0, 0), 1, 1.0)
        trace.finish()

    def test_half_open_trace_fails(self):
        trace = ChannelTrace(enabled=True)
        trace.occupy((0, 0), 1, 0.0)
        trace.occupy((1, 1), 2, 0.0)
        trace.release((0, 0), 1, 1.0)
        with pytest.raises(AssertionError, match="still held"):
            trace.finish()


class TestOverlappingPairs:
    def test_detects_hand_built_overlap(self):
        trace = ChannelTrace(enabled=True)
        a = Occupancy((0, 1), 1, 0.0, 10.0)
        b = Occupancy((0, 1), 2, 5.0, 15.0)  # overlaps a on the same arc
        c = Occupancy((1, 0), 3, 0.0, 20.0)  # different arc: no conflict
        trace.records.extend([a, b, c])
        assert trace.overlapping_pairs() == [(a, b)]

    def test_touching_intervals_do_not_overlap(self):
        trace = ChannelTrace(enabled=True)
        trace.records.extend(
            [Occupancy((0, 1), 1, 0.0, 5.0), Occupancy((0, 1), 2, 5.0, 9.0)]
        )
        assert trace.overlapping_pairs() == []

    def test_empty_trace(self):
        assert ChannelTrace(enabled=True).overlapping_pairs() == []


class TestUtilization:
    def test_positive_horizon(self):
        trace = ChannelTrace(enabled=True)
        trace.records.extend(
            [
                Occupancy((0, 1), 1, 0.0, 25.0),
                Occupancy((0, 1), 2, 50.0, 75.0),  # (0,1) busy 50/100
                Occupancy((1, 0), 3, 0.0, 10.0),  # (1,0) busy 10/100
            ]
        )
        util = trace.utilization(horizon=100.0)
        assert util == {(0, 1): 0.5, (1, 0): 0.1}

    def test_zero_horizon_is_empty(self):
        trace = ChannelTrace(enabled=True)
        trace.records.append(Occupancy((0, 1), 1, 0.0, 5.0))
        assert trace.utilization(horizon=0.0) == {}
