"""Tests for the channel-occupancy timeline renderer."""

from __future__ import annotations

from repro.multicast import ALL_PORT, UCube, WSort
from repro.simulator import STEP, simulate_multicast
from repro.simulator.timeline import render_timeline
from repro.simulator.trace import ChannelTrace


class TestRenderTimeline:
    def test_empty_trace(self):
        assert "no channel activity" in render_timeline(ChannelTrace(), 4)

    def test_renders_all_channels(self):
        tree = WSort().build_tree(4, 0, [1, 3, 5, 7, 11, 12, 14, 15])
        res = simulate_multicast(tree, size=1, timings=STEP, ports=ALL_PORT, trace=True)
        out = render_timeline(res.network.trace, 4)
        # one row per used channel
        used = {r.arc for r in res.network.trace.records}
        assert out.count("|") == 2 * len(used)
        assert "0000.d3" in out

    def test_glyphs_and_legend(self):
        tree = UCube().build_tree(3, 0, [1, 2, 4])
        res = simulate_multicast(tree, size=1, timings=STEP, trace=True)
        out = render_timeline(res.network.trace, 3)
        assert "worm0" in out
        assert "channel occupancy" in out

    def test_blocking_visible_as_later_start(self):
        """Under U-cube-on-all-port the blocked worm's tenure on the
        shared channel begins after the first worm's ends."""
        tree = UCube().build_tree(
            4, 0, [0b0001, 0b0011, 0b0101, 0b0111, 0b1011, 0b1100, 0b1110, 0b1111]
        )
        res = simulate_multicast(tree, size=1, timings=STEP, trace=True)
        shared = [(r.worm_uid, r.t_start, r.t_end)
                  for r in res.network.trace.records if r.arc == (0b0111, 3)]
        assert len(shared) == 2
        shared.sort(key=lambda t: t[1])
        assert shared[0][2] <= shared[1][1] + 1e-9
        out = render_timeline(res.network.trace, 4)
        assert "0111.d3" in out

    def test_width_clamp(self):
        tree = WSort().build_tree(3, 0, [1, 2])
        res = simulate_multicast(tree, size=1, timings=STEP, trace=True)
        out = render_timeline(res.network.trace, 3, width=20)
        body_lines = [ln for ln in out.splitlines() if "|" in ln]
        assert all(len(ln.split("|")[1]) == 20 for ln in body_lines)
