"""Tests for simulator-vs-analytical-model validation."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.multicast import ALL_PORT, ONE_PORT, Maxport, MulticastTree, UCube, WSort
from repro.simulator import NCUBE2, Timings, simulate_multicast
from repro.simulator.validation import predict_delays, validate_against_model
from tests.conftest import multicast_cases


class TestPredictDelays:
    def test_single_unicast_closed_form(self):
        tree = MulticastTree(4, 0, [0b1111])
        tree.add_send(0, 0b1111)
        pred = predict_delays(tree, size=4096)
        assert pred[0b1111] == pytest.approx(NCUBE2.unicast_latency(4096, 4))

    def test_chain_accumulates(self):
        tree = MulticastTree(3, 0, [1, 3])
        tree.add_send(0, 1, chain=(3,))
        tree.add_send(1, 3)
        pred = predict_delays(tree, size=100)
        one = NCUBE2.unicast_latency(100, 1)
        assert pred[1] == pytest.approx(one)
        assert pred[3] == pytest.approx(2 * one)

    def test_one_port_serialization(self):
        tree = MulticastTree(3, 0, [1, 2, 4])
        for d in (4, 2, 1):
            tree.add_send(0, d)
        pred = predict_delays(tree, size=100, ports=ONE_PORT)
        # each successive send waits for the previous delivery
        times = sorted(pred.values())
        assert times[1] > times[0] and times[2] > times[1]

    def test_unordered_tree_rejected(self):
        tree = MulticastTree(3, 0, [1, 3])
        tree.add_send(1, 3)  # child before parent
        tree.add_send(0, 1)
        with pytest.raises(ValueError):
            predict_delays(tree)


class TestValidation:
    @pytest.mark.parametrize("alg", [Maxport(), WSort()], ids=lambda a: a.name)
    @given(case=multicast_cases(max_n=6))
    def test_contention_free_algorithms_match_exactly(self, alg, case):
        """For distinct-channel algorithms the event simulator equals
        the closed-form model to float precision."""
        n, source, dests = case
        tree = alg.build_tree(n, source, dests)
        report = validate_against_model(tree, size=2048)
        assert report.ok, f"max rel error {report.max_rel_error}"

    @given(case=multicast_cases(max_n=5))
    def test_simulator_never_undercuts_model(self, case):
        """Blocking can only add delay: simulated >= predicted for every
        algorithm and destination."""
        n, source, dests = case
        for alg in (UCube(), Maxport(), WSort()):
            tree = alg.build_tree(n, source, dests)
            sim = simulate_multicast(tree, 2048, NCUBE2, ALL_PORT)
            pred = predict_delays(tree, 2048, NCUBE2, ALL_PORT)
            for d in dests:
                assert sim.delays[d] >= pred[d] - 1e-6

    def test_custom_timings(self):
        t = Timings(t_setup=10, t_recv=5, t_byte=0.1, t_hop=1)
        tree = WSort().build_tree(4, 0, [1, 3, 5, 7, 11, 12, 14, 15])
        report = validate_against_model(tree, size=512, timings=t)
        assert report.ok
        assert report.destinations == 8
