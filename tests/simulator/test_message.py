"""Unit tests for worm bookkeeping (message.py)."""

from __future__ import annotations

import pytest

from repro.simulator.engine import Simulator
from repro.simulator.message import Worm, WormState
from repro.simulator.network import WormholeNetwork
from repro.simulator.params import STEP


class TestWormAccounting:
    def test_initial_state(self):
        sim = Simulator()
        net = WormholeNetwork(sim, 3)
        w = net.make_worm(0, 5, 100)
        assert w.state is WormState.PENDING
        assert w.hops == 2
        assert w.t_created == 0.0
        assert w.t_injected == -1.0

    def test_network_latency_requires_delivery(self):
        sim = Simulator()
        net = WormholeNetwork(sim, 3)
        w = net.make_worm(0, 1, 10)
        with pytest.raises(ValueError):
            _ = w.network_latency
        net.inject(w)
        sim.run()
        assert w.network_latency == pytest.approx(w.t_delivered - w.t_injected)

    def test_blocked_time_accumulates_across_blocks(self):
        sim = Simulator()
        net = WormholeNetwork(sim, 4, timings=STEP)
        # three worms all wanting channel (0, 3): the last blocks twice
        a = net.make_worm(0, 0b1000, 1)
        b = net.make_worm(0, 0b1001, 1)
        c = net.make_worm(0, 0b1010, 1)
        for w in (a, b, c):
            net.inject(w)
        sim.run()
        assert a.blocked_time == 0.0
        assert b.blocked_time == pytest.approx(1.0)
        assert c.blocked_time == pytest.approx(2.0)

    def test_mark_unblocked_without_block_is_noop(self):
        sim = Simulator()
        net = WormholeNetwork(sim, 3)
        w = net.make_worm(0, 1, 10)
        w.mark_unblocked(5.0)
        assert w.blocked_time == 0.0

    def test_held_count_tracks_prefix(self):
        sim = Simulator()
        net = WormholeNetwork(sim, 4, timings=STEP)
        w = net.make_worm(0, 0b1111, 4)
        net.inject(w)
        sim.run()
        assert w.held == 4  # all four path channels were acquired
        assert w.state is WormState.DELIVERED
