"""Tests for routing functions and deadlock analysis.

E-cube routing's deadlock freedom is what lets the paper ignore
deadlock; these tests make that argument executable and then *break*
it with an unordered minimal routing function, producing and detecting
a genuine circular wait in the simulator.
"""

from __future__ import annotations

import pytest

from repro.core.paths import ResolutionOrder, ecube_arcs
from repro.simulator.deadlock import (
    channel_dependency_graph,
    find_dependency_cycle,
    is_deadlock_free,
    waiting_cycle,
)
from repro.simulator.engine import Simulator
from repro.simulator.network import WormholeNetwork
from repro.simulator.params import Timings
from repro.simulator.routing import (
    ecube_routing,
    random_minimal_routing,
    validate_route,
)


class TestRoutingFunctions:
    def test_ecube_matches_paths_module(self):
        route = ecube_routing()
        for u in range(16):
            for v in range(16):
                assert route(u, v) == ecube_arcs(u, v)

    def test_ecube_ascending(self):
        route = ecube_routing(ResolutionOrder.ASCENDING)
        assert route(0b0101, 0b1110) == ecube_arcs(
            0b0101, 0b1110, ResolutionOrder.ASCENDING
        )

    def test_random_minimal_is_minimal(self):
        from repro.core.addressing import hamming

        route = random_minimal_routing(seed=1)
        for u in range(16):
            for v in range(16):
                arcs = route(u, v)
                assert len(arcs) == hamming(u, v)
                validate_route(u, v, arcs)

    def test_random_minimal_deterministic_per_seed(self):
        pairs = [(0, 15), (3, 12), (5, 10)]
        a = [random_minimal_routing(7)(u, v) for u, v in pairs]
        b = [random_minimal_routing(7)(u, v) for u, v in pairs]
        assert a == b

    def test_validate_route_rejects_bad_walks(self):
        with pytest.raises(ValueError):
            validate_route(0, 3, [(0, 0), (0, 1)])  # disconnected
        with pytest.raises(ValueError):
            validate_route(0, 0, [(0, 0), (1, 0), (0, 0)])  # channel reuse
        with pytest.raises(ValueError):
            validate_route(0, 3, [(0, 0)])  # wrong endpoint


class TestDependencyGraph:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_ecube_is_deadlock_free(self, n):
        assert is_deadlock_free(n, ecube_routing())
        assert is_deadlock_free(n, ecube_routing(ResolutionOrder.ASCENDING))

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_ecube_has_no_cycle_witness(self, n):
        assert find_dependency_cycle(n, ecube_routing()) is None

    def test_random_minimal_has_cycles(self):
        cycle = find_dependency_cycle(3, random_minimal_routing(seed=0))
        assert cycle is not None
        assert len(cycle) >= 2

    def test_graph_node_count(self):
        g = channel_dependency_graph(3, ecube_routing())
        assert g.number_of_nodes() == 3 * 8  # n * 2^n directed channels

    def test_ecube_edges_descend_dimensions(self):
        g = channel_dependency_graph(4, ecube_routing())
        for (u, d1), (v, d2) in g.edges():
            assert d1 > d2  # descending resolution: strictly decreasing


class TestLiveDeadlock:
    def _ring_deadlock_network(self):
        """Four worms in a 2-cube chasing each other around the cycle
        00 -> 01 -> 11 -> 10 -> 00, each needing the channel the next
        one holds.  Slow transfer keeps all of them in flight."""
        sim = Simulator()
        t = Timings(t_setup=0, t_recv=0, t_byte=1000.0, t_hop=1.0)
        # custom routes forming a cycle: each worm travels two hops
        # around the ring (minimal in a 2-cube, but unordered)
        ring = [0b00, 0b01, 0b11, 0b10]
        routes = {}
        for i in range(4):
            a, b, c = ring[i], ring[(i + 1) % 4], ring[(i + 2) % 4]
            routes[(a, c)] = [
                (a, (a ^ b).bit_length() - 1),
                (b, (b ^ c).bit_length() - 1),
            ]
        net = WormholeNetwork(
            sim, 2, timings=t, route=lambda u, v: list(routes[(u, v)])
        )
        for i in range(4):
            a, c = ring[i], ring[(i + 2) % 4]
            net.inject(net.make_worm(a, c, size=10))
        return sim, net

    def test_deadlock_detected(self):
        sim, net = self._ring_deadlock_network()
        sim.run()
        # no progress possible: quiescence check fails ...
        with pytest.raises(AssertionError):
            net.assert_quiescent()
        # ... and the wait-for graph contains a genuine cycle
        cycle = waiting_cycle(net)
        assert cycle is not None
        assert len(cycle) >= 2

    def test_no_waiting_cycle_under_ecube(self):
        sim = Simulator()
        net = WormholeNetwork(sim, 4, timings=Timings(0, 0, 1000.0, 1.0))
        for dst in (0b1100, 0b1011, 0b0111, 0b1111):
            net.inject(net.make_worm(0, dst, 10))
        # mid-flight: some worms blocked, but never circularly
        sim.run(until=5.0)
        assert waiting_cycle(net) is None
        sim.run()
        net.assert_quiescent()
