"""Tests for concurrent multicasts sharing one network."""

from __future__ import annotations

import pytest

from repro.multicast import UCube, WSort
from repro.simulator import NCUBE2, simulate_multicast
from repro.simulator.multirun import simulate_concurrent_multicasts


def make_trees(alg, n, specs):
    return [alg.build_tree(n, src, dests) for src, dests in specs]


class TestSingleEquivalence:
    def test_one_tree_matches_plain_run(self):
        tree = WSort().build_tree(4, 0, [1, 3, 5, 7, 11, 12, 14, 15])
        single = simulate_multicast(tree, 4096, NCUBE2)
        multi = simulate_concurrent_multicasts([tree], 4096, NCUBE2)
        assert multi.delays[0] == pytest.approx(single.delays)
        assert multi.avg_delays[0] == pytest.approx(single.avg_delay)


class TestConcurrent:
    SPECS = [(0, [3, 5, 9, 14]), (15, [1, 2, 6, 12]), (6, [0, 8, 11, 13])]

    def test_all_operations_complete(self):
        trees = make_trees(WSort(), 4, self.SPECS)
        res = simulate_concurrent_multicasts(trees, 2048, NCUBE2)
        for tree, delays in zip(trees, res.delays):
            assert set(tree.destinations) <= set(delays)

    def test_interference_only_slows_down(self):
        trees = make_trees(WSort(), 4, self.SPECS)
        together = simulate_concurrent_multicasts(trees, 4096, NCUBE2)
        for i, tree in enumerate(trees):
            alone = simulate_multicast(tree, 4096, NCUBE2)
            for d in tree.destinations:
                assert together.delays[i][d] >= alone.delays[d] - 1e-6

    def test_staggered_starts_reduce_interference(self):
        trees = make_trees(UCube(), 4, self.SPECS)
        tight = simulate_concurrent_multicasts(trees, 4096, NCUBE2)
        wide = simulate_concurrent_multicasts(
            trees, 4096, NCUBE2, start_times=[0.0, 30000.0, 60000.0]
        )
        assert wide.total_blocked_time <= tight.total_blocked_time

    def test_makespan_at_least_single_op(self):
        trees = make_trees(WSort(), 4, self.SPECS)
        res = simulate_concurrent_multicasts(trees, 4096, NCUBE2)
        alone = max(
            simulate_multicast(t, 4096, NCUBE2).max_delay for t in trees
        )
        assert res.makespan >= alone - 1e-6

    def test_deterministic(self):
        trees = make_trees(WSort(), 4, self.SPECS)
        a = simulate_concurrent_multicasts(trees, 1024, NCUBE2)
        b = simulate_concurrent_multicasts(trees, 1024, NCUBE2)
        assert a.delays == b.delays


class TestValidation:
    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            simulate_concurrent_multicasts([])

    def test_mixed_dimensions_rejected(self):
        t1 = WSort().build_tree(3, 0, [1])
        t2 = WSort().build_tree(4, 0, [1])
        with pytest.raises(ValueError):
            simulate_concurrent_multicasts([t1, t2])

    def test_start_times_length_checked(self):
        t = WSort().build_tree(3, 0, [1])
        with pytest.raises(ValueError):
            simulate_concurrent_multicasts([t], start_times=[0.0, 1.0])

    def test_negative_start_rejected(self):
        t = WSort().build_tree(3, 0, [1])
        with pytest.raises(ValueError):
            simulate_concurrent_multicasts([t], start_times=[-1.0])
