"""Tests for the discrete-event kernel."""

from __future__ import annotations

import pytest

from repro.simulator.engine import Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(3.0, log.append, "c")
        sim.schedule(1.0, log.append, "a")
        sim.schedule(2.0, log.append, "b")
        sim.run()
        assert log == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_fifo_tie_break(self):
        """Simultaneous events fire in scheduling order (determinism)."""
        sim = Simulator()
        log = []
        for tag in range(5):
            sim.schedule(1.0, log.append, tag)
        sim.run()
        assert log == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-0.1, lambda: None)

    def test_schedule_at(self):
        sim = Simulator()
        log = []
        sim.schedule_at(4.5, lambda: log.append(sim.now))
        sim.run()
        assert log == [4.5]

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []

        def first():
            log.append(("first", sim.now))
            sim.schedule(2.0, second)

        def second():
            log.append(("second", sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert log == [("first", 1.0), ("second", 3.0)]

    def test_zero_delay_fires_after_current(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: (log.append("a"), sim.schedule(0.0, log.append, "b")))
        sim.schedule(1.0, log.append, "c")
        sim.run()
        assert log[0] == "a"
        assert set(log) == {"a", "b", "c"}


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        log = []
        ev = sim.schedule(1.0, log.append, "x")
        ev.cancel()
        sim.run()
        assert log == []

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        ev.cancel()
        assert sim.peek() == 2.0


class TestRunLimits:
    def test_until(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, log.append, "a")
        sim.schedule(5.0, log.append, "b")
        sim.run(until=3.0)
        assert log == ["a"]
        assert sim.now == 3.0  # clock advanced to the horizon
        sim.run()
        assert log == ["a", "b"]

    def test_max_events_guard(self):
        sim = Simulator()

        def loop():
            sim.schedule(1.0, loop)

        sim.schedule(1.0, loop)
        with pytest.raises(RuntimeError):
            sim.run(max_events=100)

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(3):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 3
