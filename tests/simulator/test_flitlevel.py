"""Tests for the flit-level reference simulator, and cross-validation of
the channel-holding abstraction against it.

This mirrors the paper's own methodology: MultiSim simulated wormhole
networks above the flit level and was validated against real hardware;
our channel-holding model is validated against this exact flit-level
model instead.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.addressing import hamming
from repro.simulator.engine import Simulator
from repro.simulator.flitlevel import FlitLevelNetwork
from repro.simulator.network import WormholeNetwork
from repro.simulator.params import NCUBE2, Timings
from tests.conftest import multicast_cases

T = Timings(t_setup=0.0, t_recv=0.0, t_byte=1.0, t_hop=4.0)


def flit_run(injections, n=4, timings=T, buffers=2):
    sim = Simulator()
    net = FlitLevelNetwork(sim, n, timings=timings, buffer_flits=buffers)
    worms = [net.inject(src, dst, flits) for src, dst, flits in injections]
    sim.run()
    net.assert_quiescent()
    return worms


def holding_run(injections, n=4, timings=T):
    sim = Simulator()
    net = WormholeNetwork(sim, n, timings=timings)
    worms = []
    for src, dst, flits in injections:
        w = net.make_worm(src, dst, flits)
        net.inject(w)
        worms.append(w)
    sim.run()
    net.assert_quiescent()
    return worms


class TestSingleWorm:
    def test_pipeline_latency(self):
        """h hops, F flits: header pays (t_flit + t_hop) per hop, the
        remaining flits pipeline at t_flit each."""
        (w,) = flit_run([(0, 0b1111, 16)])
        h, f = 4, 16
        assert w.t_delivered == pytest.approx(h * (1.0 + 4.0) + (f - 1) * 1.0)

    def test_single_flit(self):
        (w,) = flit_run([(0, 1, 1)])
        assert w.t_delivered == pytest.approx(1.0 + 4.0)

    def test_distance_insensitive_for_long_messages(self):
        (w1,) = flit_run([(0, 0b0001, 256)])
        (w4,) = flit_run([(0, 0b1111, 256)])
        assert (w4.t_delivered - w1.t_delivered) / w1.t_delivered < 0.06

    def test_validation_errors(self):
        sim = Simulator()
        net = FlitLevelNetwork(sim, 3)
        with pytest.raises(ValueError):
            net.inject(0, 0, 4)
        with pytest.raises(ValueError):
            net.inject(0, 1, 0)
        with pytest.raises(ValueError):
            FlitLevelNetwork(sim, 3, buffer_flits=0)


class TestBackpressure:
    def test_blocked_header_stalls_pipeline(self):
        """A long worm holding a channel stalls a second worm needing
        it; with tiny buffers the second worm's flits pile up close to
        the source."""
        worms = flit_run(
            [(0b1000, 0b1110, 64), (0b0000, 0b1110, 64)], buffers=1
        )
        a, b = worms
        assert b.t_delivered > a.t_delivered
        # b could not have finished earlier than serially acquiring the
        # shared channel after a's tail passed it
        assert b.t_delivered > 64 * 1.0

    def test_fifo_granting(self):
        worms = flit_run([(0, 8 | k, 32) for k in range(3)])
        times = [w.t_delivered for w in worms]
        assert times == sorted(times)


class TestWholeTreeFlitLevel:
    """Entire multicast trees through the flit-level model."""

    @settings(max_examples=15)
    @given(case=multicast_cases(max_n=4))
    def test_wsort_tree_matches_holding_model(self, case):
        from repro.multicast import ALL_PORT, WSort
        from repro.simulator.flitlevel import simulate_tree_flitlevel
        from repro.simulator.run import simulate_multicast

        n, source, dests = case
        tree = WSort().build_tree(n, source, dests)
        fl = simulate_tree_flitlevel(tree, flits=32, timings=T)
        hl = simulate_multicast(tree, size=32, timings=T, ports=ALL_PORT)
        for d in dests:
            assert fl[d] >= hl.delays[d] - 1e-9
            # accumulated pipeline-fill slack: bounded by the total hops
            # of d's forwarding chain times (t_flit + t_hop)
            assert fl[d] <= hl.delays[d] + tree.total_hops() * (T.t_byte + T.t_hop)

    def test_ucube_fig3_ordering_preserved(self):
        """At flit level the Fig. 3(d) serialization still delays 1011
        behind 1100."""
        from repro.multicast import UCube
        from repro.simulator.flitlevel import simulate_tree_flitlevel

        tree = UCube().build_tree(
            4, 0, [0b0001, 0b0011, 0b0101, 0b0111, 0b1011, 0b1100, 0b1110, 0b1111]
        )
        fl = simulate_tree_flitlevel(tree, flits=64, timings=T)
        assert fl[0b1011] > fl[0b1100]


class TestCrossValidation:
    """The channel-holding model against flit-level ground truth."""

    @settings(max_examples=40)
    @given(case=multicast_cases(max_n=4))
    def test_contention_free_single_worms(self, case):
        """For an isolated unicast the two models differ only by the
        pipeline fill term, bounded by hops * t_flit + hops * t_hop."""
        n, source, dests = case
        dst = dests[0]
        flits = 64
        (fw,) = flit_run([(source, dst, flits)], n=n)
        (hw,) = holding_run([(source, dst, flits)], n=n)
        h = hamming(source, dst)
        assert fw.t_delivered >= hw.t_delivered - 1e-9
        assert fw.t_delivered - hw.t_delivered <= h * (T.t_byte + T.t_hop) + 1e-9

    def test_holding_model_conservative_on_conflicts(self):
        """Under contention the holding model (channels held until full
        delivery) must not report *less* total delay than flit level
        reports for the last delivery."""
        inj = [(0b0000, 0b1100, 64), (0b0000, 0b1011, 64), (0b0111, 0b1100, 64)]
        fl = flit_run(inj)
        hl = holding_run(inj)
        assert max(w.t_delivered for w in hl) >= max(w.t_delivered for w in fl) * 0.9

    @settings(max_examples=20)
    @given(case=multicast_cases(max_n=4, min_dests=2))
    def test_fanout_from_one_source(self, case):
        """Parallel sends on distinct first channels: both models agree
        within the pipeline-fill tolerance on every delivery."""
        from repro.core.addressing import delta

        n, source, dests = case
        # keep only destinations with pairwise distinct first dimensions
        chosen: list[int] = []
        dims: set[int] = set()
        for d in dests:
            dim = delta(source, d)
            if dim not in dims:
                dims.add(dim)
                chosen.append(d)
        inj = [(source, d, 32) for d in chosen]
        fl = flit_run(inj, n=n)
        hl = holding_run(inj, n=n)
        for fw, hw in zip(fl, hl):
            h = hamming(fw.src, fw.dst)
            assert fw.t_delivered >= hw.t_delivered - 1e-9
            assert fw.t_delivered - hw.t_delivered <= h * (T.t_byte + T.t_hop) + 1e-9
