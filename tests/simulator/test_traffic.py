"""Tests for multicast under background load."""

from __future__ import annotations

import pytest

from repro.multicast import UCube, WSort
from repro.simulator import NCUBE2, simulate_multicast
from repro.simulator.traffic import simulate_multicast_under_load

TREE = WSort().build_tree(5, 0, [1, 3, 6, 9, 12, 17, 20, 25, 30])


class TestUnloadedEquivalence:
    def test_zero_rate_matches_plain_simulation(self):
        loaded = simulate_multicast_under_load(TREE, background_rate=0.0)
        plain = simulate_multicast(TREE, 4096, NCUBE2)
        assert loaded.avg_delay == pytest.approx(plain.avg_delay)
        assert loaded.max_delay == pytest.approx(plain.max_delay)
        assert loaded.background_messages == 0
        assert loaded.multicast_blocked_time == 0.0


class TestLoadedBehaviour:
    def test_deterministic_given_seed(self):
        a = simulate_multicast_under_load(TREE, background_rate=0.005, seed=1)
        b = simulate_multicast_under_load(TREE, background_rate=0.005, seed=1)
        assert a.delays == b.delays
        assert a.background_mean_latency == b.background_mean_latency

    def test_seed_matters(self):
        a = simulate_multicast_under_load(TREE, background_rate=0.005, seed=1)
        b = simulate_multicast_under_load(TREE, background_rate=0.005, seed=2)
        assert a.background_messages != b.background_messages or a.delays != b.delays

    def test_all_destinations_still_reached(self):
        r = simulate_multicast_under_load(TREE, background_rate=0.01, seed=5)
        assert set(TREE.destinations) <= set(r.delays)

    def test_load_never_speeds_up_the_multicast(self):
        base = simulate_multicast_under_load(TREE, background_rate=0.0)
        loaded = simulate_multicast_under_load(TREE, background_rate=0.01, seed=3)
        assert loaded.avg_delay >= base.avg_delay - 1e-6

    def test_heavier_load_blocks_more(self):
        light = simulate_multicast_under_load(TREE, background_rate=0.001, seed=3)
        heavy = simulate_multicast_under_load(TREE, background_rate=0.02, seed=3)
        assert heavy.background_messages > light.background_messages
        assert heavy.multicast_blocked_time >= light.multicast_blocked_time

    def test_background_latency_positive(self):
        r = simulate_multicast_under_load(TREE, background_rate=0.005, seed=7)
        assert r.background_mean_latency > 0

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            simulate_multicast_under_load(TREE, background_rate=-1.0)

    def test_contention_free_advantage_persists_under_load(self):
        """W-sort stays at or below U-cube for the same destination set
        under moderate load."""
        dests = sorted(TREE.destinations)
        u_tree = UCube().build_tree(5, 0, dests)
        u = simulate_multicast_under_load(u_tree, background_rate=0.005, seed=11)
        w = simulate_multicast_under_load(TREE, background_rate=0.005, seed=11)
        assert w.avg_delay <= u.avg_delay * 1.05
