"""Unit tests for the host (CPU + injection ports) model."""

from __future__ import annotations

import pytest

from repro.simulator.engine import Simulator
from repro.simulator.message import Worm, WormState
from repro.simulator.network import WormholeNetwork
from repro.simulator.node import HostNode
from repro.simulator.params import Timings


def make_host(port_limit=2, timings=Timings(t_setup=10, t_recv=5, t_byte=1.0, t_hop=0)):
    sim = Simulator()
    received = []

    def on_delivered(worm: Worm) -> None:
        hosts[worm.src].release_port()
        hosts[worm.dst].deliver(worm)

    net = WormholeNetwork(sim, 4, timings=timings, on_delivered=on_delivered)
    hosts = {
        u: HostNode(net, u, port_limit, lambda h, w: received.append((h.address, w.uid)))
        for u in range(16)
    }
    return sim, net, hosts, received


class TestCpuSetupSerialization:
    def test_sends_issued_t_setup_apart(self):
        sim, net, hosts, _ = make_host(port_limit=4)
        hosts[0].submit_sends([(1, 10, None), (2, 10, None), (4, 10, None)], 0.0)
        sim.run()
        inject_times = sorted(w.t_injected for w in net.worms)
        assert inject_times == pytest.approx([10.0, 20.0, 30.0])

    def test_second_batch_waits_for_cpu(self):
        sim, net, hosts, _ = make_host(port_limit=4)
        hosts[0].submit_sends([(1, 10, None)], 0.0)
        hosts[0].submit_sends([(2, 10, None)], 0.0)  # CPU busy until t=10
        sim.run()
        times = sorted(w.t_injected for w in net.worms)
        assert times == pytest.approx([10.0, 20.0])

    def test_ready_time_respected(self):
        sim, net, hosts, _ = make_host()
        hosts[0].submit_sends([(1, 10, None)], ready_time=100.0)
        sim.run()
        assert net.worms[0].t_injected == pytest.approx(110.0)


class TestPortLimits:
    def test_third_send_waits_for_port(self):
        sim, net, hosts, _ = make_host(port_limit=2)
        hosts[0].submit_sends([(1, 100, None), (2, 100, None), (4, 100, None)], 0.0)
        sim.run()
        third = net.worms[2]
        # worm 0 injected at 10, delivered at 110; the third send's setup
        # finished at t=30 but no port was free until t=110
        assert third.t_injected == pytest.approx(110.0)

    def test_release_port_reinjects_fifo(self):
        sim, net, hosts, _ = make_host(port_limit=1)
        hosts[0].submit_sends([(1, 50, None), (2, 50, None), (4, 50, None)], 0.0)
        sim.run()
        order = [(w.t_injected, w.dst) for w in net.worms]
        assert order == sorted(order)
        assert [dst for _, dst in order] == [1, 2, 4]


class TestReceiveSide:
    def test_recv_overhead_applied(self):
        sim, net, hosts, received = make_host()
        hosts[0].submit_sends([(1, 10, None)], 0.0)
        sim.run()
        w = net.worms[0]
        assert w.state is WormState.RECEIVED
        # injected 10, 1 hop t_hop=0, 10 bytes -> delivered 20, +5 recv
        assert w.t_received == pytest.approx(25.0)
        assert received == [(1, w.uid)]

    def test_wrong_destination_rejected(self):
        sim, net, hosts, _ = make_host()
        w = net.make_worm(0, 1, 10)
        with pytest.raises(ValueError):
            hosts[2].deliver(w)

    def test_sent_and_received_lists(self):
        sim, net, hosts, _ = make_host()
        hosts[0].submit_sends([(1, 10, None)], 0.0)
        sim.run()
        assert len(hosts[0].sent) == 1
        assert len(hosts[1].received) == 1
        assert hosts[0].sent[0] is hosts[1].received[0]
