"""Fault-aware repair: coverage, verification, registry integration."""

from __future__ import annotations

import pytest

from repro.faults import (
    DegradedHypercube,
    FaultAware,
    FaultScenario,
    LinkFault,
    NodeFault,
    repair_multicast,
    simulate_degraded_multicast,
    verify_degraded,
)
from repro.multicast.registry import ALGORITHMS, PAPER_ALGORITHMS, get_algorithm, register

DEST_SETS = {
    4: [1, 3, 6, 9, 12, 15],
    6: [5, 13, 21, 27, 31, 38, 42, 57, 63],
}


@pytest.mark.parametrize("n", [4, 6])
@pytest.mark.parametrize("k", [1, 2, 3])
@pytest.mark.parametrize("name", PAPER_ALGORITHMS)
class TestDetourReachability:
    """With 1-3 dead links every reachable destination is covered, the
    repaired schedule verifies, and the simulation delivers everything
    without a single abort."""

    def test_repair_covers_and_delivers(self, n, k, name):
        scenario = FaultScenario.random_links(n, k, seed=100 * n + 10 * k + 1)
        degraded = DegradedHypercube(n, scenario)
        dests = DEST_SETS[n]
        report = repair_multicast(name, degraded, n, 0, dests)
        # <= n-1 dead links cannot disconnect the n-cube
        assert report.unreachable == ()
        check = verify_degraded(report)
        assert check.ok, check.errors
        assert check.contention_free

        res = simulate_degraded_multicast(
            report.tree, scenario, unreachable_hint=report.unreachable
        )
        assert res.delivered == frozenset(dests)
        assert res.aborted_worms == 0
        assert res.retries == 0
        assert res.delivery_ratio == 1.0


class TestRepairReport:
    def test_intact_tree_is_untouched(self):
        base = get_algorithm("wsort").build_tree(4, 0, DEST_SETS[4])
        report = repair_multicast("wsort", DegradedHypercube(4), 4, 0, DEST_SETS[4])
        assert report.repairs == ()
        assert sorted(report.tree.sends, key=lambda s: (s.src, s.dst)) == sorted(
            base.sends, key=lambda s: (s.src, s.dst)
        )

    def test_broken_sends_become_detours(self):
        scenario = FaultScenario(6, links=(LinkFault(0, 5), LinkFault(0, 4)))
        degraded = DegradedHypercube(6, scenario)
        report = repair_multicast("wsort", degraded, 6, 0, DEST_SETS[6])
        assert report.repairs  # those dead links break W-sort's first sends
        for r in report.repairs:
            assert degraded.ecube_route(r.src, r.dst) is None
        verify_degraded(report).raise_if_failed()

    def test_no_duplicate_deliveries(self):
        scenario = FaultScenario(6, links=(LinkFault(0, 5), LinkFault(0, 4)))
        report = repair_multicast(
            "wsort", DegradedHypercube(6, scenario), 6, 0, DEST_SETS[6]
        )
        targets = [s.dst for s in report.tree.sends]
        assert len(targets) == len(set(targets))

    def test_unreachable_destination_reported(self):
        scenario = FaultScenario(6, nodes=(NodeFault(42),))
        degraded = DegradedHypercube(6, scenario)
        report = repair_multicast("wsort", degraded, 6, 0, DEST_SETS[6])
        assert report.unreachable == (42,)
        assert 42 not in report.tree.destinations
        check = verify_degraded(report)
        assert check.ok
        assert check.unreachable == (42,)

    def test_dead_source_rejected(self):
        degraded = DegradedHypercube(4, FaultScenario(4, nodes=(NodeFault(0),)))
        with pytest.raises(ValueError, match="router is dead"):
            repair_multicast("wsort", degraded, 4, 0, [1, 2])

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError, match="-cube"):
            repair_multicast("wsort", DegradedHypercube(5), 4, 0, [1])


class TestFaultAwareWrapper:
    def test_wraps_and_records_report(self):
        scenario = FaultScenario(6, links=(LinkFault(0, 5),))
        alg = FaultAware("wsort", DegradedHypercube(6, scenario))
        assert alg.name == "fault-wsort"
        tree = alg.build_tree(6, 0, DEST_SETS[6])
        assert alg.last_report is not None
        assert alg.last_report.tree is tree

    def test_registry_round_trip(self):
        scenario = FaultScenario(6, links=(LinkFault(0, 5),))
        degraded = DegradedHypercube(6, scenario)
        register("fault-wsort-test", lambda: FaultAware("wsort", degraded))
        try:
            alg = get_algorithm("fault-wsort-test")
            assert isinstance(alg, FaultAware)
            res = simulate_degraded_multicast(
                alg.build_tree(6, 0, DEST_SETS[6]), scenario
            )
            assert res.delivery_ratio == 1.0
        finally:
            ALGORITHMS.pop("fault-wsort-test", None)
