"""Degraded simulation: abort/retry accounting, timed faults, deadlines,
stall classification, and the zero-fault bit-identity regression."""

from __future__ import annotations

import pytest

from repro.faults import (
    FaultScenario,
    LinkFault,
    simulate_degraded_multicast,
)
from repro.multicast.registry import PAPER_ALGORITHMS, get_algorithm
from repro.obs.metrics import MetricsRegistry
from repro.obs.sink import capture
from repro.simulator.run import simulate_multicast

DESTS_6 = [5, 13, 21, 31, 38, 42, 57, 63]
#: kills W-sort's first-step sends out of node 0 (dims 5 and 4)
TWO_LINKS = FaultScenario(6, links=(LinkFault(0, 5), LinkFault(0, 4)))


class TestZeroFaultRegression:
    """With no faults the degraded driver is bit-identical to the plain
    simulator -- the fault machinery must cost nothing unless faults
    exist."""

    @pytest.mark.parametrize("name", PAPER_ALGORITHMS)
    def test_bit_identical_delays_and_events(self, name):
        tree = get_algorithm(name).build_tree(6, 0, DESTS_6)
        plain = simulate_multicast(tree)
        degraded = simulate_degraded_multicast(tree, None)
        assert degraded.delays == plain.delays
        assert degraded.events == plain.events
        assert degraded.total_blocked_time == plain.total_blocked_time
        assert degraded.completion_time == plain.completion_time

    def test_empty_scenario_same_as_none(self):
        tree = get_algorithm("wsort").build_tree(5, 0, [1, 7, 19, 30])
        a = simulate_degraded_multicast(tree, None)
        b = simulate_degraded_multicast(tree, FaultScenario(5))
        assert a.delays == b.delays and a.events == b.events

    def test_zero_fault_counters_stay_zero(self):
        tree = get_algorithm("ucube").build_tree(4, 0, [1, 6, 11, 14])
        res = simulate_degraded_multicast(tree, None)
        assert res.aborted_worms == 0
        assert res.retries == 0
        assert res.gave_up == 0
        assert res.undelivered == ()
        assert res.deadlock["verdict"] == "clear"


class TestAbortRetryAccounting:
    def test_static_faults_abort_and_recover(self):
        tree = get_algorithm("wsort").build_tree(6, 0, DESTS_6)
        res = simulate_degraded_multicast(tree, TWO_LINKS)
        # exactly the two sends crossing the dead links bounce, once each
        assert res.aborted_worms == 2
        assert res.retries == 2
        assert res.gave_up == 0
        assert res.delivered == frozenset(DESTS_6)
        assert res.delivery_ratio == 1.0
        assert res.undelivered == ()

    def test_retried_delivery_is_later_than_fault_free(self):
        tree = get_algorithm("wsort").build_tree(6, 0, DESTS_6)
        plain = simulate_multicast(tree)
        res = simulate_degraded_multicast(tree, TWO_LINKS)
        assert res.completion_time > plain.completion_time

    def test_timed_fault_strikes_before_acquisition(self):
        # single unicast 0 -> 3 in a 2-cube, descending path 0 -> 2 -> 3;
        # the first arc dies at t=10us, well before the ~85us send setup
        # completes, so the header aborts at acquisition and the retry
        # detours through node 1
        tree = get_algorithm("ucube").build_tree(2, 0, [3])
        scenario = FaultScenario(2, links=(LinkFault(0, 1, t_fail=10.0),))
        res = simulate_degraded_multicast(tree, scenario)
        assert res.aborted_worms == 1
        assert res.retries == 1
        assert res.delivered == frozenset([3])
        # timed faults are invisible to the static reachability view
        assert res.unreachable == ()

    def test_gave_up_when_no_surviving_route(self):
        # both of node 0's outgoing links die mid-run: the abort handler
        # finds no detour and abandons the send
        tree = get_algorithm("ucube").build_tree(2, 0, [3])
        scenario = FaultScenario(
            2, links=(LinkFault(0, 0, t_fail=10.0), LinkFault(0, 1, t_fail=10.0))
        )
        res = simulate_degraded_multicast(tree, scenario)
        assert res.aborted_worms == 1
        assert res.retries == 0
        assert res.gave_up == 1
        assert res.undelivered == (3,)
        assert res.delivery_ratio == 0.0

    def test_max_retries_zero_gives_up_immediately(self):
        tree = get_algorithm("ucube").build_tree(2, 0, [3])
        scenario = FaultScenario(2, links=(LinkFault(0, 1),))
        res = simulate_degraded_multicast(tree, scenario, max_retries=0)
        assert res.aborted_worms == 1
        assert res.retries == 0
        assert res.gave_up == 1
        assert res.undelivered == (3,)


class TestDeadline:
    def test_deadline_reports_instead_of_raising(self):
        tree = get_algorithm("wsort").build_tree(6, 0, DESTS_6)
        res = simulate_degraded_multicast(tree, None, deadline_us=100.0)
        assert res.deadline_us == 100.0
        assert res.sim_time_us <= 100.0
        assert set(res.undelivered) == set(DESTS_6)
        assert res.delivery_ratio == 0.0

    def test_generous_deadline_changes_nothing(self):
        tree = get_algorithm("wsort").build_tree(6, 0, DESTS_6)
        plain = simulate_degraded_multicast(tree, TWO_LINKS)
        bounded = simulate_degraded_multicast(tree, TWO_LINKS, deadline_us=1e9)
        assert bounded.delays == plain.delays
        assert bounded.undelivered == ()


class TestFaultObservability:
    def test_metrics_counters(self):
        reg = MetricsRegistry()
        tree = get_algorithm("wsort").build_tree(6, 0, DESTS_6)
        simulate_degraded_multicast(tree, TWO_LINKS, metrics=reg)
        snap = reg.snapshot()
        assert snap["sim.faults.dead_arcs"]["value"] == 4  # 2 links, both arcs
        assert snap["sim.faults.aborted_worms"]["value"] == 2
        assert snap["sim.faults.retries"]["value"] == 2
        assert snap["sim.faults.gave_up"]["value"] == 0
        assert snap["sim.faults.undelivered"]["value"] == 0
        assert snap["sim.runs"]["value"] == 1  # shared namespace still fed

    def test_telemetry_record_carries_fault_fields_and_verdict(self):
        tree = get_algorithm("wsort").build_tree(6, 0, DESTS_6)
        with capture() as mem:
            res = simulate_degraded_multicast(tree, TWO_LINKS, label="test/wsort")
        [record] = mem.records
        assert record.kind == "degraded-multicast"
        assert record.algorithm == "test/wsort"
        assert record.extra["failed_links"] == 2
        assert record.extra["aborted_worms"] == res.aborted_worms == 2
        assert record.extra["retries"] == 2
        assert record.extra["delivery_ratio"] == 1.0
        # the stall classifier's verdict is embedded so JSONL consumers
        # can distinguish fault stalls from contention
        assert record.extra["deadlock"]["verdict"] == "clear"
        assert record.extra["deadlock"] == res.deadlock
        # round-trips through JSON
        assert record.from_json(record.to_json()).extra == record.extra

    def test_scenario_mismatch_rejected(self):
        tree = get_algorithm("wsort").build_tree(4, 0, [1, 2])
        with pytest.raises(ValueError, match="-cube"):
            simulate_degraded_multicast(tree, FaultScenario(5))


class TestStallClassifier:
    """White-box checks of ``stall_report``'s holder-chain taxonomy."""

    @staticmethod
    def _ring_network():
        """Four worms in a circular wait on a 2-cube ring (the classic
        non-E-cube deadlock from examples/deadlock_demo.py)."""
        from repro.simulator import Simulator, Timings, WormholeNetwork

        ring = [0b00, 0b01, 0b11, 0b10]
        routes = {}
        for i in range(4):
            a, b, c = ring[i], ring[(i + 1) % 4], ring[(i + 2) % 4]
            routes[(a, c)] = [
                (a, (a ^ b).bit_length() - 1),
                (b, (b ^ c).bit_length() - 1),
            ]
        sim = Simulator()
        net = WormholeNetwork(
            sim,
            2,
            timings=Timings(t_setup=0, t_recv=0, t_byte=1000.0, t_hop=1.0),
            route=lambda u, v: list(routes[(u, v)]),
        )
        for i in range(4):
            net.inject(net.make_worm(ring[i], ring[(i + 2) % 4], size=10))
        sim.run()
        return net

    def test_deadlock_verdict(self):
        from repro.simulator import stall_report

        net = self._ring_network()
        report = stall_report(net)
        assert report["verdict"] == "deadlock"
        assert len(report["deadlocked_worms"]) == 4
        assert report["waiting_cycle"]

    def test_fault_stall_distinguished_from_deadlock(self):
        from repro.simulator import stall_report

        net = self._ring_network()
        # freeze-frame: mark one blocked worm's next channel dead, as if
        # it had just failed -- every chain now ends at a dead arc
        blocked = [w for w in net.worms if w.t_delivered < 0]
        victim = blocked[0]
        net._dead_arcs.add(victim.arcs[victim.hop])
        report = stall_report(net)
        assert report["verdict"] == "fault-stall"
        assert victim.uid in report["fault_stalled_worms"]
        assert report["deadlocked_worms"] == []

    def test_clear_verdict_after_clean_run(self):
        from repro.simulator import stall_report

        tree = get_algorithm("wsort").build_tree(4, 0, [1, 6, 11])
        res = simulate_degraded_multicast(tree, None)
        assert stall_report(res.network)["verdict"] == "clear"
