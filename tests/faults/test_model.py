"""Fault scenarios: canonicalization, validation, seed determinism."""

from __future__ import annotations

import pytest

from repro.faults import ArcFault, FaultScenario, LinkFault, NodeFault, all_links


class TestAllLinks:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 6])
    def test_count_and_canonical_form(self, n):
        links = all_links(n)
        assert len(links) == n * 2 ** (n - 1)
        assert len(set(links)) == len(links)
        for u, d in links:
            assert not (u >> d) & 1  # bit d clear in the canonical endpoint


class TestLinkFault:
    def test_canonicalized_on_construction(self):
        # 0b0001 has bit 2 clear, 0b0101 has it set -- same link either way
        a = FaultScenario(4, links=(LinkFault(0b0001, 2),))
        b = FaultScenario(4, links=(LinkFault(0b0101, 2),))
        assert a.links == b.links
        assert a.dead_arcs() == b.dead_arcs() == {(0b0001, 2), (0b0101, 2)}

    def test_arc_fault_is_one_direction(self):
        s = FaultScenario(4, arcs=(ArcFault(0b0101, 2),))
        assert s.dead_arcs() == {(0b0101, 2)}

    def test_node_fault_kills_all_incident_arcs(self):
        s = FaultScenario(3, nodes=(NodeFault(0b010),))
        dead = s.dead_arcs()
        assert len(dead) == 6  # 2n arcs, n = 3
        for d in range(3):
            assert (0b010, d) in dead
            assert (0b010 ^ (1 << d), d) in dead
        assert s.dead_nodes() == {0b010}

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultScenario(0)
        with pytest.raises(ValueError):
            FaultScenario(3, links=(LinkFault(8, 0),))  # address out of range
        with pytest.raises(ValueError):
            FaultScenario(3, links=(LinkFault(0, 3),))  # dim out of range
        with pytest.raises(ValueError):
            FaultScenario(3, nodes=(NodeFault(12),))


class TestSeedDeterminism:
    @pytest.mark.parametrize("n,k,seed", [(4, 1, 0), (4, 3, 17), (6, 3, 9301), (6, 8, 42)])
    def test_same_seed_same_scenario(self, n, k, seed):
        a = FaultScenario.random_links(n, k, seed)
        b = FaultScenario.random_links(n, k, seed)
        assert a == b
        assert a.links == b.links
        assert a.dead_arcs() == b.dead_arcs()
        assert len(a.links) == k

    def test_different_seeds_differ(self):
        # not guaranteed in general, but true for these seeds -- and the
        # point is that the draw depends *only* on the seed
        assert (
            FaultScenario.random_links(6, 3, 1).links
            != FaultScenario.random_links(6, 3, 2).links
        )

    def test_seed_recorded_but_not_compared(self):
        explicit = FaultScenario(6, links=FaultScenario.random_links(6, 2, 5).links)
        assert explicit == FaultScenario.random_links(6, 2, 5)
        assert FaultScenario.random_links(6, 2, 5).seed == 5

    def test_random_nodes_spares_the_source(self):
        for seed in range(20):
            s = FaultScenario.random_nodes(4, 3, seed)
            assert 0 not in {f.node for f in s.nodes}

    def test_bounds(self):
        with pytest.raises(ValueError):
            FaultScenario.random_links(3, 13, 0)  # only 12 links in a 3-cube
        assert FaultScenario.random_links(3, 0, 0).is_fault_free


class TestTimedFaults:
    def test_static_view_excludes_future_faults(self):
        s = FaultScenario(4, links=(LinkFault(0, 1), LinkFault(0, 2, t_fail=100.0)))
        assert s.dead_arcs(at=0.0) == {(0, 1), (2, 1)}
        assert s.dead_arcs(at=100.0) == {(0, 1), (2, 1), (0, 2), (4, 2)}
        assert s.dead_arcs() == s.dead_arcs(at=100.0)

    def test_timed_events_sorted(self):
        s = FaultScenario(
            4,
            links=(LinkFault(0, 2, t_fail=200.0), LinkFault(0, 1, t_fail=50.0)),
        )
        events = s.timed_events()
        assert [t for t, _ in events] == [50.0, 50.0, 200.0, 200.0]
        assert events == sorted(events)

    def test_describe(self):
        assert "fault-free" in FaultScenario(5).describe()
        s = FaultScenario.random_links(5, 2, seed=7)
        assert "2 link(s)" in s.describe()
        assert "seed=7" in s.describe()
