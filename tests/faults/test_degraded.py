"""The degraded view: surviving routes, detours, segments, reachability."""

from __future__ import annotations

import pytest

from repro.core.paths import ResolutionOrder, ecube_arcs
from repro.faults import (
    DegradedHypercube,
    FaultScenario,
    LinkFault,
    NodeFault,
    detour_path,
)


def _hamming(u: int, v: int) -> int:
    return bin(u ^ v).count("1")


class TestEcubeRoute:
    def test_intact_path_matches_ecube(self):
        deg = DegradedHypercube(4, FaultScenario(4, links=(LinkFault(0, 0),)))
        # P(1, 14) never uses link {0,1}
        assert deg.ecube_route(1, 14) == ecube_arcs(1, 14, ResolutionOrder.DESCENDING)

    def test_broken_path_is_none(self):
        # descending order: 0 -> 8 first crosses arc (0, 3)
        deg = DegradedHypercube(4, FaultScenario(4, links=(LinkFault(0, 3),)))
        assert deg.ecube_route(0, 8) is None
        assert deg.ecube_route(0, 12) is None  # same first arc
        assert deg.ecube_route(0, 4) is not None

    def test_fault_free_view_never_blocks(self):
        deg = DegradedHypercube(4)
        for v in range(1, 16):
            assert deg.ecube_route(0, v) is not None


class TestDetour:
    def test_detour_equals_ecube_when_intact(self):
        deg = DegradedHypercube(4)
        path = deg.detour(0, 0b1011)
        assert path is not None and len(path) - 1 == _hamming(0, 0b1011)
        assert path[0] == 0 and path[-1] == 0b1011

    def test_detour_avoids_dead_arcs_and_is_shortest(self):
        scenario = FaultScenario(4, links=(LinkFault(0, 3),))
        deg = DegradedHypercube(4, scenario)
        path = deg.detour(0, 8)
        assert path is not None
        # shortest surviving path is distance + 2 (out and back on a spare dim)
        assert len(path) - 1 == _hamming(0, 8) + 2
        dead = deg.dead_arcs
        for a, b in zip(path, path[1:]):
            assert _hamming(a, b) == 1
            assert (a, (a ^ b).bit_length() - 1) not in dead

    def test_deterministic(self):
        scenario = FaultScenario.random_links(6, 4, seed=11)
        a = DegradedHypercube(6, scenario).detour(0, 63)
        b = DegradedHypercube(6, scenario).detour(0, 63)
        assert a == b

    def test_detour_path_trivial(self):
        assert detour_path(4, 5, 5, frozenset()) == [5]

    def test_unreachable_returns_none(self):
        # cut every arc out of node 0
        scenario = FaultScenario(2, links=(LinkFault(0, 0), LinkFault(0, 1)))
        deg = DegradedHypercube(2, scenario)
        assert deg.detour(0, 3) is None
        assert deg.route(0, 3) is None
        assert deg.segments(0, 3) is None


class TestSegments:
    def test_intact_is_single_segment(self):
        deg = DegradedHypercube(4)
        assert deg.segments(0, 9) == [(0, 9)]

    @pytest.mark.parametrize("seed", range(6))
    def test_segments_chain_and_are_ecube_clean(self, seed):
        scenario = FaultScenario.random_links(5, 3, seed=seed)
        deg = DegradedHypercube(5, scenario)
        reachable = deg.reachable_from(0)
        for v in sorted(reachable - {0}):
            segs = deg.segments(0, v)
            assert segs is not None
            assert segs[0][0] == 0 and segs[-1][1] == v
            for (_, b), (a2, _) in zip(segs, segs[1:]):
                assert b == a2  # contiguous chain
            for a, b in segs:
                assert deg.ecube_route(a, b) is not None  # each a legal unicast


class TestReachability:
    def test_fault_free_reaches_everything(self):
        assert DegradedHypercube(4).reachable_from(0) == frozenset(range(16))

    def test_link_faults_rarely_disconnect(self):
        # n-cube is n-connected: n-1 dead links cannot disconnect it
        scenario = FaultScenario.random_links(4, 3, seed=3)
        deg = DegradedHypercube(4, scenario)
        assert deg.reachable_from(0) == frozenset(range(16))

    def test_isolated_node(self):
        scenario = FaultScenario(2, links=(LinkFault(0, 0), LinkFault(0, 1)))
        deg = DegradedHypercube(2, scenario)
        assert deg.reachable_from(0) == {0}
        assert deg.reachable_from(3) == {1, 2, 3}

    def test_dead_router_is_unreachable_and_reaches_nothing(self):
        deg = DegradedHypercube(3, FaultScenario(3, nodes=(NodeFault(5),)))
        assert deg.reachable_from(5) == frozenset()
        assert 5 not in deg.reachable_from(0)
        assert deg.reachable_from(0) == frozenset(range(8)) - {5}

    def test_timed_faults_excluded_at_time_zero(self):
        scenario = FaultScenario(3, links=(LinkFault(0, 0, t_fail=500.0),))
        assert DegradedHypercube(3, scenario, at=0.0).dead_arcs == frozenset()
        assert len(DegradedHypercube(3, scenario).dead_arcs) == 2

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DegradedHypercube(5, FaultScenario(4))


class TestAscendingOrder:
    def test_order_respected(self):
        # ascending order: 0 -> 3 resolves dim 0 first, so killing arc
        # (0, 0) breaks it while descending order's path survives
        scenario = FaultScenario(2, links=(LinkFault(0, 0),))
        asc = DegradedHypercube(2, scenario, order=ResolutionOrder.ASCENDING)
        desc = DegradedHypercube(2, scenario, order=ResolutionOrder.DESCENDING)
        assert asc.ecube_route(0, 3) is None
        assert desc.ecube_route(0, 3) is not None
