"""Tests for the executable lemmas (Section 3.2)."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given

from repro.core.lemmas import lemma1_holds, lemma2_holds
from repro.core.paths import ResolutionOrder
from repro.core.subcube import Subcube


class TestLemma1:
    def test_paper_path(self):
        assert lemma1_holds(0b0101, 0b1110)

    def test_trivial_path(self):
        assert lemma1_holds(5, 5)

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_holds_everywhere_descending(self, x, y):
        assert lemma1_holds(x, y, ResolutionOrder.DESCENDING)

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_holds_everywhere_ascending(self, x, y):
        assert lemma1_holds(x, y, ResolutionOrder.ASCENDING)

    def test_exhaustive_4cube(self):
        for x in range(16):
            for y in range(16):
                assert lemma1_holds(x, y)
                assert lemma1_holds(x, y, ResolutionOrder.ASCENDING)


class TestLemma2:
    @given(st.data())
    def test_holds_for_all_subcubes(self, data):
        n = 6
        dim = data.draw(st.integers(0, n))
        mask = data.draw(st.integers(0, (1 << (n - dim)) - 1))
        assert lemma2_holds(Subcube(n, dim, mask))

    def test_exhaustive_5cube(self):
        for dim in range(6):
            for mask in range(1 << (5 - dim)):
                assert lemma2_holds(Subcube(5, dim, mask))
