"""Tests for repro.core.subcube (Definition 2 and Lemma 2)."""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given

from repro.core.subcube import Subcube


class TestConstruction:
    def test_whole_cube(self):
        s = Subcube.whole_cube(4)
        assert s.size == 16
        assert all(u in s for u in range(16))

    def test_point_subcube(self):
        s = Subcube(4, 0, 0b1010)
        assert s.size == 1
        assert 0b1010 in s
        assert 0b1011 not in s

    def test_definition_membership(self):
        # u in S iff (u >> n_S) == M_S
        s = Subcube(4, 2, 0b10)
        assert s.nodes() == [0b1000, 0b1001, 0b1010, 0b1011]

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            Subcube(4, 5, 0)

    def test_invalid_mask(self):
        with pytest.raises(ValueError):
            Subcube(4, 2, 0b100)  # only 2 fixed bits available

    def test_containing(self):
        s = Subcube.containing(0b1011, 2, 4)
        assert s == Subcube(4, 2, 0b10)
        assert 0b1011 in s

    def test_out_of_cube_not_member(self):
        s = Subcube.whole_cube(3)
        assert 8 not in s
        assert -1 not in s


class TestSmallestContaining:
    def test_single_node(self):
        s = Subcube.smallest_containing([5], 4)
        assert s.dim == 0 and 5 in s

    def test_pair(self):
        # 0b0100 and 0b0111 share the high bits 01
        s = Subcube.smallest_containing([0b0100, 0b0111], 4)
        assert s == Subcube(4, 2, 0b01)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Subcube.smallest_containing([], 4)

    @given(st.sets(st.integers(0, 63), min_size=1))
    def test_contains_all_and_minimal(self, nodes):
        s = Subcube.smallest_containing(nodes, 6)
        assert all(u in s for u in nodes)
        if s.dim > 0:
            lo, hi = s.halves()
            # not all nodes fit in either half, else s would not be smallest
            assert not all(u in lo for u in nodes)
            assert not all(u in hi for u in nodes)


class TestLemma2Contiguity:
    """Lemma 2: node addresses within any subcube are contiguous."""

    @given(st.integers(0, 6), st.data())
    def test_contiguous(self, dim, data):
        n = 6
        mask = data.draw(st.integers(0, (1 << (n - dim)) - 1))
        s = Subcube(n, dim, mask)
        nodes = s.nodes()
        assert nodes == list(range(nodes[0], nodes[0] + len(nodes)))
        assert nodes[0] == s.lo and nodes[-1] == s.hi

    def test_betweenness(self):
        s = Subcube(5, 3, 0b01)
        for x in s:
            for z in s:
                for y in range(x, z + 1):
                    assert y in s


class TestHalves:
    def test_split(self):
        s = Subcube(4, 2, 0b10)
        lo, hi = s.halves()
        assert lo.nodes() == [0b1000, 0b1001]
        assert hi.nodes() == [0b1010, 0b1011]

    def test_partition(self):
        s = Subcube.whole_cube(5)
        lo, hi = s.halves()
        assert sorted(lo.nodes() + hi.nodes()) == s.nodes()

    def test_zero_dim_has_no_halves(self):
        with pytest.raises(ValueError):
            Subcube(3, 0, 5).halves()

    def test_half_of(self):
        s = Subcube.whole_cube(4)
        assert 0b0101 in s.half_of(0b0101)
        assert s.half_of(0b0101).dim == 3
        with pytest.raises(ValueError):
            Subcube(4, 1, 0b000).half_of(0b1111)


class TestContainsSubcube:
    def test_reflexive(self):
        s = Subcube(4, 2, 0b01)
        assert s.contains_subcube(s)

    def test_halves_contained(self):
        s = Subcube(4, 3, 0b1)
        lo, hi = s.halves()
        assert s.contains_subcube(lo)
        assert s.contains_subcube(hi)
        assert not lo.contains_subcube(s)

    def test_disjoint_not_contained(self):
        a = Subcube(4, 2, 0b00)
        b = Subcube(4, 2, 0b01)
        assert not a.contains_subcube(b)

    @given(st.data())
    def test_agrees_with_node_sets(self, data):
        n = 5
        d1 = data.draw(st.integers(0, n))
        m1 = data.draw(st.integers(0, (1 << (n - d1)) - 1))
        d2 = data.draw(st.integers(0, n))
        m2 = data.draw(st.integers(0, (1 << (n - d2)) - 1))
        a, b = Subcube(n, d1, m1), Subcube(n, d2, m2)
        assert a.contains_subcube(b) == set(b.nodes()).issubset(a.nodes())
