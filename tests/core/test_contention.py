"""Tests for repro.core.contention: Definitions 3-4 and Theorem 3."""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given

from repro.core.contention import (
    Unicast,
    check_contention_free,
    pair_contention_free,
    reachable_sets,
)
from repro.core.paths import ResolutionOrder


class TestUnicast:
    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            Unicast(3, 3, 1)

    def test_rejects_nonpositive_step(self):
        with pytest.raises(ValueError):
            Unicast(0, 1, 0)

    def test_arcs(self):
        u = Unicast(0b0000, 0b1010, 1)
        assert u.arcs() == [(0b0000, 3), (0b1000, 1)]
        assert u.arcs(ResolutionOrder.ASCENDING) == [(0b0000, 1), (0b0010, 3)]


class TestReachableSets:
    def test_definition3_base_case(self):
        reach = reachable_sets(0, [])
        assert reach[0] == {0}

    def test_tree(self):
        # 0 -> 1 -> 3, 0 -> 2
        ucs = [Unicast(0, 1, 1), Unicast(0, 2, 1), Unicast(1, 3, 2)]
        reach = reachable_sets(0, ucs)
        assert reach[0] == {0, 1, 2, 3}
        assert reach[1] == {1, 3}
        assert reach[2] == {2}
        assert reach[3] == {3}

    def test_subtree_semantics(self):
        """R_u is the set of nodes in the subtree rooted at u."""
        ucs = [Unicast(0, 4, 1), Unicast(4, 6, 2), Unicast(4, 5, 2), Unicast(6, 7, 3)]
        reach = reachable_sets(0, ucs)
        assert reach[4] == {4, 5, 6, 7}
        assert reach[6] == {6, 7}


class TestPairContentionFree:
    def test_arc_disjoint_pairs_always_free(self):
        a, b = Unicast(0, 1, 1), Unicast(2, 3, 1)
        reach = reachable_sets(0, [a, b])
        ok, witness = pair_contention_free(a, b, reach)
        assert ok and witness is None

    def test_same_step_shared_arc_contends(self):
        # both traverse 0 -> 8 first
        a, b = Unicast(0, 0b1100, 1), Unicast(0, 0b1011, 1)
        ok, witness = pair_contention_free(a, b, {0: {0}})
        assert not ok
        assert witness == (0, 3)

    def test_ancestor_exemption(self):
        """Def. 4 case 2: later sender within earlier sender's subtree."""
        a = Unicast(0, 0b1100, 1)  # path 0 -> 8 -> 12
        b = Unicast(0b1100, 0b1000, 2)  # 12 -> 8: actually disjoint (directed)
        # construct a genuinely shared-arc case: 0->12 at 1, then 0->8 at 2
        c = Unicast(0, 0b1000, 2)
        reach = reachable_sets(0, [a, c])
        ok, _ = pair_contention_free(a, c, reach)
        assert ok  # c's source 0 is in R_0, step 2 > 1
        del b

    def test_order_of_arguments_irrelevant(self):
        a = Unicast(0, 0b1100, 1)
        c = Unicast(0, 0b1000, 2)
        reach = reachable_sets(0, [a, c])
        assert pair_contention_free(a, c, reach)[0] == pair_contention_free(c, a, reach)[0]


class TestCheckContentionFree:
    def test_theorem3_common_source(self):
        """Theorem 3: unicasts from a common source never contend."""
        ucs = [Unicast(0, 0b1100, 1), Unicast(0, 0b1000, 2), Unicast(0, 0b1110, 3)]
        assert check_contention_free(0, ucs).ok

    def test_same_step_conflict_detected(self):
        ucs = [Unicast(0, 0b1100, 1), Unicast(0, 0b1011, 1)]
        rep = check_contention_free(0, ucs)
        assert not rep.ok
        assert rep.violations

    def test_unrelated_senders_conflict(self):
        # 1 -> 13 (path 1,9,13) and 0 -> 9 -> ... no; craft shared arc:
        # 8->14 (path 8,12,14) and 12->15 at same step share arc (12, 1)
        ucs = [
            Unicast(0, 8, 1),
            Unicast(0, 12, 1),
            Unicast(8, 14, 2),
            Unicast(12, 14, 2),
        ]
        rep = check_contention_free(0, ucs)
        assert not rep.ok  # node 14 also receives twice -> causality error too

    def test_causality_send_before_receive(self):
        rep = check_contention_free(0, [Unicast(5, 6, 1)])
        assert not rep.ok
        assert any("without ever receiving" in e for e in rep.causality_errors)

    def test_causality_send_too_early(self):
        rep = check_contention_free(0, [Unicast(0, 1, 2), Unicast(1, 3, 2)])
        assert not rep.ok
        assert any("only receives at step" in e for e in rep.causality_errors)

    def test_duplicate_delivery_detected(self):
        rep = check_contention_free(0, [Unicast(0, 1, 1), Unicast(0, 1, 2)])
        assert not rep.ok

    def test_empty_schedule_ok(self):
        assert check_contention_free(0, []).ok

    def test_summary_is_readable(self):
        rep = check_contention_free(0, [Unicast(0, 0b1100, 1), Unicast(0, 0b1011, 1)])
        assert "violation" in rep.summary()
        ok = check_contention_free(0, [])
        assert ok.summary() == "contention-free"


class TestDefinition4AgainstTiming:
    """The Def. 4 exemption (t < tau and x in R_u) is exactly the case
    where timing makes the shared arc safe: the earlier worm must have
    fully drained through the shared arc before the later sender even
    received the message. Simulate the 'latest possible' drain and the
    'earliest possible' reuse and check they never overlap."""

    @given(st.integers(1, 6))
    def test_pipeline_consistency(self, depth):
        # chain multicast 0 -> 1 -> 3 -> 7 ... along increasing dims
        ucs = []
        node = 0
        for step in range(1, depth + 1):
            nxt = node | (1 << (step - 1))
            ucs.append(Unicast(node, nxt, step))
            node = nxt
        assert check_contention_free(0, ucs).ok
