"""Tests for repro.core.paths: E-cube routes, Lemma 1, Theorems 1-2."""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given

from repro.core.addressing import delta, hamming, reverse_bits
from repro.core.paths import (
    ResolutionOrder,
    arcs_disjoint,
    ecube_arcs,
    ecube_dims,
    ecube_path,
    paths_arc_disjoint,
    theorem1_guarantees_disjoint,
    theorem2_guarantees_disjoint,
)
from repro.core.subcube import Subcube

DESC = ResolutionOrder.DESCENDING
ASC = ResolutionOrder.ASCENDING

nodes10 = st.integers(0, 1023)


class TestEcubePath:
    def test_paper_example(self):
        # Section 3.1: P(0101, 1110) = (0101; 1101; 1111; 1110)
        assert ecube_path(0b0101, 0b1110) == [0b0101, 0b1101, 0b1111, 0b1110]

    def test_trivial(self):
        assert ecube_path(9, 9) == [9]
        assert ecube_arcs(9, 9) == []

    def test_one_hop(self):
        assert ecube_path(0, 4) == [0, 4]
        assert ecube_arcs(0, 4) == [(0, 2)]

    def test_ascending_order(self):
        # low-to-high resolution: 0101 -> 0111 -> 1111 -> 1110? No:
        # dims of 0101^1110=1011 ascending: 0,1,3
        assert ecube_path(0b0101, 0b1110, ASC) == [0b0101, 0b0100, 0b0110, 0b1110]

    @given(nodes10, nodes10)
    def test_length_is_hamming(self, u, v):
        assert len(ecube_path(u, v)) == hamming(u, v) + 1
        assert len(ecube_arcs(u, v)) == hamming(u, v)

    @given(nodes10, nodes10)
    def test_each_hop_is_one_dim(self, u, v):
        p = ecube_path(u, v)
        for a, b in zip(p, p[1:]):
            assert hamming(a, b) == 1

    @given(nodes10, nodes10)
    def test_lemma1_strictly_decreasing_dims(self, u, v):
        """Lemma 1: a unicast travels each dimension at most once, in
        strictly decreasing order (for descending resolution)."""
        dims = ecube_dims(u, v, DESC)
        assert all(d1 > d2 for d1, d2 in zip(dims, dims[1:]))
        assert len(set(dims)) == len(dims)

    @given(nodes10, nodes10)
    def test_lemma1_prefix_suffix_bits(self, u, v):
        """Lemma 1 items 1-2: before traversing dimension d, low bits
        (0..d) match the source; afterwards, high bits (d+1..) match the
        destination."""
        p = ecube_path(u, v, DESC)
        for i in range(len(p) - 1):
            d = delta(p[i], p[i + 1])
            mask_low = (1 << (d + 1)) - 1
            for w in p[: i + 1]:
                assert w & mask_low == u & mask_low
            for w in p[i + 1 :]:
                assert w >> (d + 1) == v >> (d + 1)

    @given(nodes10, nodes10)
    def test_path_stays_in_smallest_subcube(self, u, v):
        """E-cube never leaves the smallest subcube containing u and v
        (the fact Theorem 2 rests on)."""
        s = Subcube.smallest_containing([u, v], 10)
        assert all(w in s for w in ecube_path(u, v, DESC))

    @given(nodes10, nodes10)
    def test_ascending_is_bit_reversed_descending(self, u, v):
        asc = ecube_path(u, v, ASC)
        desc = ecube_path(reverse_bits(u, 10), reverse_bits(v, 10), DESC)
        assert [reverse_bits(w, 10) for w in desc] == asc


class TestArcDisjoint:
    def test_same_path_not_disjoint(self):
        assert not arcs_disjoint(0, 7, 0, 7)

    def test_opposite_directions_are_disjoint(self):
        # channels are directed: u->v and v->u use different channels
        assert arcs_disjoint(0, 1, 1, 0)

    def test_fig3d_conflict(self):
        # Section 2: P(0111, 1100) and P(0111, 1011) share 0111->1111
        assert not arcs_disjoint(0b0111, 0b1100, 0b0111, 0b1011)

    def test_trivial_paths_disjoint(self):
        assert arcs_disjoint(3, 3, 0, 7)

    def test_paths_arc_disjoint_matches(self):
        p1 = ecube_path(0b0111, 0b1100)
        p2 = ecube_path(0b0111, 0b1011)
        assert not paths_arc_disjoint(p1, p2)
        assert paths_arc_disjoint(ecube_path(0, 1), ecube_path(2, 3))


class TestTheorem1:
    """Paths leaving a common source on different channels are arc-disjoint."""

    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
    def test_sound_descending(self, x, y, v):
        if theorem1_guarantees_disjoint(x, y, v, DESC):
            assert arcs_disjoint(x, y, x, v, DESC)

    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
    def test_sound_ascending(self, x, y, v):
        if theorem1_guarantees_disjoint(x, y, v, ASC):
            assert arcs_disjoint(x, y, x, v, ASC)

    def test_hypothesis_requires_distinct_endpoints(self):
        assert not theorem1_guarantees_disjoint(5, 5, 9)
        assert not theorem1_guarantees_disjoint(5, 9, 5)

    def test_same_channel_not_guaranteed(self):
        # both 1100 and 1011 leave 0000 in dimension 3
        assert not theorem1_guarantees_disjoint(0b0000, 0b1100, 0b1011)


class TestTheorem2:
    """Inside-subcube paths are disjoint from outside-subcube paths."""

    @given(st.data())
    def test_sound(self, data):
        n = 6
        dim = data.draw(st.integers(0, n))
        mask = data.draw(st.integers(0, (1 << (n - dim)) - 1))
        s = Subcube(n, dim, mask)
        u = data.draw(st.integers(0, 63))
        v = data.draw(st.integers(0, 63))
        x = data.draw(st.integers(0, 63))
        y = data.draw(st.integers(0, 63))
        if theorem2_guarantees_disjoint(u, v, x, y, s):
            assert arcs_disjoint(u, v, x, y, DESC)

    def test_hypothesis_check(self):
        s = Subcube(4, 2, 0b10)  # nodes 8..11
        assert theorem2_guarantees_disjoint(8, 11, 0, 7, s)
        assert not theorem2_guarantees_disjoint(8, 11, 0, 9, s)  # y inside

    def test_counterexample_without_hypothesis(self):
        # paths crossing a subcube boundary can share arcs
        assert not arcs_disjoint(0b0000, 0b1100, 0b0000, 0b1011)


class TestExhaustiveTheorems4Cube:
    """Brute-force soundness of Theorems 1-2 over a whole 4-cube."""

    def test_theorem1_exhaustive(self):
        for x in range(16):
            for y in range(16):
                for v in range(16):
                    if theorem1_guarantees_disjoint(x, y, v):
                        assert arcs_disjoint(x, y, x, v)

    def test_theorem2_exhaustive_dim2(self):
        for mask in range(4):
            s = Subcube(4, 2, mask)
            inside = s.nodes()
            outside = [u for u in range(16) if u not in s]
            for u in inside:
                for v in inside:
                    for x in outside:
                        for y in outside:
                            assert arcs_disjoint(u, v, x, y)
