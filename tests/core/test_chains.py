"""Tests for repro.core.chains: dimension order, cube order, Theorem 4."""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given

from repro.core.chains import (
    dimension_compare,
    dimension_sorted,
    is_cube_ordered_chain,
    is_cube_ordered_chain_bruteforce,
    is_dimension_ordered_chain,
    relative_chain,
    unrelative_chain,
)


def formal_dimension_lt(a: int, b: int, n: int) -> bool:
    """Literal transcription of the Section 4.1 definition of a <_d b."""
    if a == b:
        return True
    for j in range(n):
        if (a & (1 << j)) < (b & (1 << j)) and all(
            (a & (1 << i)) == (b & (1 << i)) for i in range(j + 1, n)
        ):
            return True
    return False


class TestDimensionOrder:
    def test_paper_example_high_to_low(self):
        # Section 4.1: dimension ordering of 10100, 00110, 10010
        chain = dimension_sorted([0b10100, 0b00110, 0b10010])
        assert chain == [0b00110, 0b10010, 0b10100]

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_matches_formal_definition(self, a, b):
        """With high-to-low resolution, <_d is plain integer order."""
        assert formal_dimension_lt(a, b, 8) == (a <= b)

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_compare_consistent(self, a, b):
        c = dimension_compare(a, b)
        assert (c < 0) == (a < b)
        assert (c == 0) == (a == b)


class TestRelativeChain:
    def test_fig5_example(self):
        """Section 4.1: source 0100, eight destinations; the d0-relative
        chain is the Fig. 3 destination set."""
        source = 0b0100
        dests = [0b0001, 0b0011, 0b0101, 0b0111, 0b1000, 0b1010, 0b1011, 0b1111]
        chain = relative_chain(source, dests)
        assert chain == [
            0b0000,
            0b0001,
            0b0011,
            0b0101,
            0b0111,
            0b1011,
            0b1100,
            0b1110,
            0b1111,
        ]

    def test_source_first(self):
        chain = relative_chain(5, [1, 2, 3])
        assert chain[0] == 0

    def test_source_among_dests_rejected(self):
        with pytest.raises(ValueError):
            relative_chain(5, [5, 1])

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            relative_chain(5, [1, 1])

    @given(st.integers(0, 63), st.sets(st.integers(0, 63), min_size=1))
    def test_roundtrip(self, source, dests):
        dests -= {source}
        if not dests:
            return
        chain = relative_chain(source, sorted(dests))
        back = unrelative_chain(source, chain)
        assert back[0] == source
        assert set(back[1:]) == dests

    @given(st.integers(0, 63), st.sets(st.integers(0, 63), min_size=1))
    def test_is_dimension_ordered(self, source, dests):
        dests -= {source}
        if not dests:
            return
        assert is_dimension_ordered_chain(relative_chain(source, sorted(dests)))


class TestCubeOrderedChain:
    def test_ascending_is_cube_ordered(self):
        """Theorem 4: every dimension-ordered chain is cube-ordered."""
        assert is_cube_ordered_chain([0, 1, 3, 5, 7, 11, 12, 14, 15], 4)

    def test_paper_weighted_chain(self):
        """The weighted_sort output of Fig. 8 is cube-ordered but not
        dimension-ordered."""
        chain = [0, 1, 3, 5, 7, 14, 15, 12, 11]
        assert is_cube_ordered_chain(chain, 4)
        assert not is_dimension_ordered_chain(chain)

    def test_non_cube_ordered(self):
        # 0 and 1 are in subcube (1, 000) but are separated by 4
        assert not is_cube_ordered_chain([0, 4, 1], 4)

    def test_duplicates_rejected(self):
        assert not is_cube_ordered_chain([1, 1], 4)

    def test_out_of_range_rejected(self):
        assert not is_cube_ordered_chain([0, 16], 4)
        assert not is_cube_ordered_chain([-1], 4)

    def test_trivial_chains(self):
        assert is_cube_ordered_chain([], 4)
        assert is_cube_ordered_chain([9], 4)
        assert is_cube_ordered_chain([9, 2], 4)

    @given(st.lists(st.integers(0, 31), max_size=12))
    def test_matches_bruteforce(self, chain):
        assert is_cube_ordered_chain(chain, 5) == is_cube_ordered_chain_bruteforce(chain, 5)

    @given(st.sets(st.integers(0, 63), min_size=1, max_size=20))
    def test_theorem4(self, values):
        """Theorem 4, property form: sorted chains are cube-ordered."""
        chain = sorted(values)
        assert is_cube_ordered_chain(chain, 6)
        assert is_cube_ordered_chain_bruteforce(chain, 6)

    @given(st.data())
    def test_swapping_halves_preserves_cube_order(self, data):
        """The operation weighted_sort performs -- exchanging the two
        halves of a subcube block -- preserves cube order."""
        values = data.draw(st.sets(st.integers(0, 31), min_size=3, max_size=20))
        chain = sorted(values)
        # split the top-level block by bit 4
        split = next((i for i, v in enumerate(chain) if v >= 16), len(chain))
        if split in (0, len(chain)):
            return
        swapped = chain[split:] + chain[:split]
        assert is_cube_ordered_chain(swapped, 5)
