"""Tests for repro.core.addressing (Definition 1 and bit utilities)."""

from __future__ import annotations

import math

import hypothesis.strategies as st
import pytest
from hypothesis import given

from repro.core.addressing import (
    bit,
    delta,
    first_dim,
    hamming,
    lowest_diff,
    neighbor,
    popcount,
    require_address,
    reverse_bits,
)


class TestPopcount:
    def test_zero(self):
        assert popcount(0) == 0

    def test_all_ones(self):
        assert popcount(0b1111) == 4

    def test_single_bits(self):
        for k in range(20):
            assert popcount(1 << k) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            popcount(-1)

    @given(st.integers(0, 2**32))
    def test_matches_bin_count(self, x):
        assert popcount(x) == bin(x).count("1")


class TestHamming:
    def test_self_distance_zero(self):
        assert hamming(0b1010, 0b1010) == 0

    def test_paper_example(self):
        # P(0101, 1110) has 3 hops (Section 3.1)
        assert hamming(0b0101, 0b1110) == 3

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_symmetric(self, u, v):
        assert hamming(u, v) == hamming(v, u)

    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
    def test_triangle_inequality(self, u, v, w):
        assert hamming(u, w) <= hamming(u, v) + hamming(v, w)


class TestDelta:
    def test_definition_1_formula(self):
        # delta(u, v) == floor(log2(u XOR v))
        for u in range(32):
            for v in range(32):
                if u != v:
                    assert delta(u, v) == int(math.floor(math.log2(u ^ v)))

    def test_undefined_for_equal(self):
        with pytest.raises(ValueError):
            delta(7, 7)

    def test_examples(self):
        assert delta(0b0000, 0b1000) == 3
        assert delta(0b0101, 0b0100) == 0
        assert delta(0b0101, 0b1110) == 3

    @given(st.integers(0, 1023), st.integers(0, 1023))
    def test_symmetric(self, u, v):
        if u != v:
            assert delta(u, v) == delta(v, u)

    @given(st.integers(0, 1023), st.integers(0, 1023))
    def test_bits_above_delta_agree(self, u, v):
        if u != v:
            d = delta(u, v)
            assert (u >> (d + 1)) == (v >> (d + 1))
            assert bit(u, d) != bit(v, d)


class TestLowestDiff:
    def test_examples(self):
        assert lowest_diff(0b0100, 0b0101) == 0
        assert lowest_diff(0b1000, 0b0000) == 3

    def test_undefined_for_equal(self):
        with pytest.raises(ValueError):
            lowest_diff(0, 0)

    @given(st.integers(0, 1023), st.integers(0, 1023))
    def test_le_delta(self, u, v):
        if u != v:
            assert lowest_diff(u, v) <= delta(u, v)

    @given(st.integers(0, 1023), st.integers(0, 1023))
    def test_single_bit_difference(self, u, v):
        if hamming(u, v) == 1:
            assert lowest_diff(u, v) == delta(u, v)


class TestFirstDim:
    def test_descending_is_delta(self):
        assert first_dim(0b0011, 0b1100, descending=True) == 3

    def test_ascending_is_lowest(self):
        assert first_dim(0b0011, 0b1100, descending=False) == 0


class TestNeighbor:
    def test_flips_one_bit(self):
        assert neighbor(0b0000, 3) == 0b1000
        assert neighbor(0b1000, 3) == 0b0000

    def test_involution(self):
        for u in range(16):
            for d in range(4):
                assert neighbor(neighbor(u, d), d) == u

    def test_negative_dim_rejected(self):
        with pytest.raises(ValueError):
            neighbor(0, -1)

    @given(st.integers(0, 255), st.integers(0, 7))
    def test_distance_one(self, u, d):
        assert hamming(u, neighbor(u, d)) == 1


class TestReverseBits:
    def test_basic(self):
        assert reverse_bits(0b001, 3) == 0b100
        assert reverse_bits(0b101, 3) == 0b101
        assert reverse_bits(0b0001, 4) == 0b1000

    def test_zero_width(self):
        assert reverse_bits(0, 0) == 0

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            reverse_bits(0b1000, 3)

    @given(st.integers(0, 1023))
    def test_involution(self, x):
        assert reverse_bits(reverse_bits(x, 10), 10) == x

    @given(st.integers(0, 1023), st.integers(0, 1023))
    def test_preserves_hamming(self, u, v):
        assert hamming(reverse_bits(u, 10), reverse_bits(v, 10)) == hamming(u, v)

    @given(st.integers(0, 1023), st.integers(0, 1023))
    def test_conjugates_delta_and_lowest(self, u, v):
        """Bit-reversal swaps the roles of delta and lowest_diff."""
        if u != v:
            ru, rv = reverse_bits(u, 10), reverse_bits(v, 10)
            assert delta(ru, rv) == 9 - lowest_diff(u, v)
            assert lowest_diff(ru, rv) == 9 - delta(u, v)


class TestRequireAddress:
    def test_accepts_valid(self):
        assert require_address(7, 3) == 7

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            require_address(8, 3)
        with pytest.raises(ValueError):
            require_address(-1, 3)

    def test_rejects_bool_and_non_int(self):
        with pytest.raises(TypeError):
            require_address(True, 3)
        with pytest.raises(TypeError):
            require_address("3", 3)
