"""Tests for Gray-code embeddings."""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given

from repro.core.addressing import hamming
from repro.core.embedding import (
    gray_code,
    gray_rank,
    is_unit_distance_path,
    mesh_embedding,
    ring_embedding,
    ring_neighbors,
)


class TestGrayCode:
    def test_first_values(self):
        assert [gray_code(i) for i in range(8)] == [0, 1, 3, 2, 6, 7, 5, 4]

    @given(st.integers(0, 100_000))
    def test_rank_inverts_code(self, i):
        assert gray_rank(gray_code(i)) == i

    @given(st.integers(0, 100_000))
    def test_adjacent_codes_differ_by_one_bit(self, i):
        assert hamming(gray_code(i), gray_code(i + 1)) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gray_code(-1)
        with pytest.raises(ValueError):
            gray_rank(-1)


class TestRingEmbedding:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 6])
    def test_hamiltonian_cycle(self, n):
        ring = ring_embedding(n)
        assert sorted(ring) == list(range(1 << n))
        assert is_unit_distance_path(ring)
        assert hamming(ring[-1], ring[0]) == 1  # closes the cycle

    def test_neighbors(self):
        pred, succ = ring_neighbors(0, 3)
        ring = ring_embedding(3)
        assert pred == ring[-1]
        assert succ == ring[1]

    def test_neighbors_out_of_range(self):
        with pytest.raises(ValueError):
            ring_neighbors(8, 3)

    def test_zero_dim_rejected(self):
        with pytest.raises(ValueError):
            ring_embedding(0)


class TestMeshEmbedding:
    def test_shape(self):
        mesh = mesh_embedding(2, 3)
        assert len(mesh) == 4
        assert all(len(row) == 8 for row in mesh)

    def test_all_nodes_used_once(self):
        mesh = mesh_embedding(2, 2)
        flat = [u for row in mesh for u in row]
        assert sorted(flat) == list(range(16))

    @pytest.mark.parametrize("a,b", [(1, 1), (2, 2), (2, 3), (3, 1)])
    def test_mesh_adjacency(self, a, b):
        mesh = mesh_embedding(a, b)
        for r in range(len(mesh)):
            for c in range(len(mesh[0])):
                if c + 1 < len(mesh[0]):
                    assert hamming(mesh[r][c], mesh[r][c + 1]) == 1
                if r + 1 < len(mesh):
                    assert hamming(mesh[r][c], mesh[r + 1][c]) == 1

    def test_degenerate(self):
        assert mesh_embedding(0, 0) == [[0]]
        with pytest.raises(ValueError):
            mesh_embedding(-1, 2)
