"""Smoke tests: every example script runs and prints its conclusions."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES / name
    assert path.exists(), f"missing example {name}"
    saved = sys.argv
    try:
        sys.argv = [str(path)]
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = saved
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "wsort" in out and "ucube" in out
    assert "contention-free" in out
    assert "2 steps" in out or "steps: 2" in out


@pytest.mark.slow
def test_broadcast_scaling(capsys):
    out = run_example("broadcast_scaling.py", capsys)
    assert "1024" in out  # reaches the 10-cube row
    assert "average delay" in out


def test_data_redistribution(capsys):
    out = run_example("data_redistribution.py", capsys)
    assert "scatter rows" in out
    assert "TOTAL" in out


def test_custom_algorithm(capsys):
    out = run_example("custom_algorithm.py", capsys)
    assert "greedy-chain" in out
    assert "wsort" in out


def test_collective_survey(capsys):
    out = run_example("collective_survey.py", capsys)
    assert "alltoall" in out and "barrier" in out
    assert "256" in out  # reaches the 8-cube row


def test_optimal_broadcast(capsys):
    out = run_example("optimal_broadcast.py", capsys)
    assert "nESBT" in out


@pytest.mark.slow
def test_parallel_sweep(capsys):
    out = run_example("parallel_sweep.py", capsys)
    assert "bit-identity: serial == parallel cold == parallel warm  OK" in out
    assert "cache hits" in out
    assert "wsort" in out  # the rendered fig11 table


def test_resilient_sweep(capsys):
    out = run_example("resilient_sweep.py", capsys)
    assert "points checkpointed" in out
    assert "served from the journal, the torn record recomputed -- table identical  OK" in out
    assert "quarantined and recomputed -- table identical  OK" in out
    assert "audit clean: True" in out
    assert "gc dropped 1 quarantined file(s)" in out
    assert "watchdog:" in out


def test_mesh_multicast(capsys):
    out = run_example("mesh_multicast.py", capsys)
    assert "free" in out
    assert "VIOLATED" not in out


def test_deadlock_demo(capsys):
    out = run_example("deadlock_demo.py", capsys)
    assert "deadlock-free: True" in out
    assert "circular wait" in out


def test_telemetry_export(capsys):
    out = run_example("telemetry_export.py", capsys)
    assert "aggregated metrics" in out
    assert "telemetry records" in out
    assert "experiment" not in out  # records come from drivers, not figures
    assert "hotspot arcs" in out
    assert "none (contention-free)" in out


def test_trace_export(capsys):
    out = run_example("trace_export.py", capsys)
    assert "trace id:" in out
    assert "span phases" in out
    assert "schedule.build" in out and "simulate" in out
    assert "event(s) written to" in out
    assert "perfetto" in out.lower()
    assert "# TYPE repro_" in out
    # tracing must not leak past the example
    from repro.obs.trace_spans import get_tracer

    assert get_tracer() is None


def test_fault_injection(capsys):
    out = run_example("fault_injection.py", capsys)
    assert "aborted worms: 2" in out
    assert "fault-aware" in out
    assert "delivery ratio 1.000" in out
    assert "delivery ratio 0.875" in out  # the dead-router case
    assert "verification ok: True" in out
    assert "bit-identical to simulate_multicast: True" in out
    # the example must leave the global registry as it found it
    from repro.multicast.registry import ALGORITHMS

    assert "fault-wsort" not in ALGORITHMS


def test_stencil_exchange(capsys):
    out = run_example("stencil_exchange.py", capsys)
    assert "Gray-code embedding" in out
    assert "row-major placement" in out
    # the embedding run must show zero blocking
    gray_line = next(ln for ln in out.splitlines() if "Gray-code" in ln)
    assert "blocking        0 us" in gray_line


def test_service_load(capsys):
    out = run_example("service_load.py", capsys)
    assert "service up at http://" in out
    assert "max step" in out
    assert "req/s" in out and "p99" in out
    assert "hit ratio" in out
    assert "per-client usage (/v1/usage)" in out
    assert "example-load" in out
    assert "service drained cleanly" in out
