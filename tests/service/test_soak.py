"""Tests for the in-process soak harness."""

from __future__ import annotations

from repro.service import LoadConfig, ServiceConfig, SoakConfig, run_soak


class TestRunSoak:
    def test_warm_soak_measures_the_hit_path(self):
        report = run_soak(
            SoakConfig(
                service=ServiceConfig(port=0),
                load=LoadConfig(requests=80, concurrency=4, keys=4, n=5, m=5),
            )
        )
        assert report.summary.ok == 80
        # the warm-up pass built every key, so the measured run is hits
        assert report.summary.hit_ratio > 0.9
        assert report.server["counters"]["sim.service.builds"] == 4.0
        assert report.server["cache"]["hit_ratio"] > 0.9
        doc = report.as_dict()
        assert doc["client"]["requests"] == 80
        assert "counters" in doc["server"]

    def test_warmup_disabled(self):
        report = run_soak(
            SoakConfig(
                service=ServiceConfig(port=0),
                load=LoadConfig(requests=30, concurrency=2, keys=3, n=5, m=4),
                warmup_requests=0,
            )
        )
        assert report.summary.ok == 30
        assert report.summary.builds >= 1  # cold start visible to the client
