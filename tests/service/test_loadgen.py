"""Tests for the load generator: config, skew, gates, telemetry."""

from __future__ import annotations

import json
import random

import pytest

from repro.obs.sink import RotatingJsonlSink, read_jsonl
from repro.service import AdmissionConfig, LoadConfig, ServiceConfig, ServiceThread
from repro.service.loadgen import _ZipfPicker, main, run_load_sync


@pytest.fixture(scope="module")
def service():
    with ServiceThread(ServiceConfig(port=0)) as svc:
        yield svc


class TestLoadConfig:
    @pytest.mark.parametrize(
        "over",
        [
            {"endpoint": "teleport"},
            {"arrival": "bursty"},
            {"requests": 0},
            {"concurrency": 0},
            {"m": 64, "n": 6},  # m >= 2^n
            {"keys": 0},
            {"skew": -1.0},
            {"rate": 0.0},
        ],
    )
    def test_validation(self, over):
        with pytest.raises(ValueError):
            LoadConfig(**over)


class TestZipfPicker:
    def test_zero_skew_is_roughly_uniform(self):
        picker = _ZipfPicker(4, 0.0, random.Random(7))
        counts = [0] * 4
        for _ in range(4000):
            counts[picker.pick()] += 1
        assert min(counts) > 800  # ~1000 each

    def test_positive_skew_concentrates_on_rank_zero(self):
        picker = _ZipfPicker(16, 1.5, random.Random(7))
        counts = [0] * 16
        for _ in range(4000):
            counts[picker.pick()] += 1
        assert counts[0] == max(counts)
        assert counts[0] > 4000 / 4  # far above the uniform share


class TestRunLoad:
    def test_closed_loop_against_live_service(self, service):
        summary = run_load_sync(
            LoadConfig(
                host=service.host, port=service.port,
                requests=60, concurrency=4, keys=4, n=5, m=6,
            )
        )
        assert summary.requests == 60
        assert summary.ok == 60
        assert summary.statuses == {200: 60}
        assert summary.builds >= 1
        assert summary.cache_hits + summary.builds == 60
        assert summary.rps > 0
        assert summary.p99_ms >= summary.p50_ms > 0

    def test_poisson_arrival(self, service):
        summary = run_load_sync(
            LoadConfig(
                host=service.host, port=service.port,
                requests=20, concurrency=4, keys=2, n=5, m=4,
                arrival="poisson", rate=2000.0,
            )
        )
        assert summary.ok == 20

    def test_repeated_key_workload_hits_cache(self, service):
        config = LoadConfig(
            host=service.host, port=service.port,
            requests=100, concurrency=4, keys=3, n=5, m=5, skew=1.1,
            seed=99,
        )
        run_load_sync(config)  # warm
        summary = run_load_sync(config)
        assert summary.hit_ratio > 0.9

    def test_telemetry_records_and_rotation(self, service, tmp_path):
        path = tmp_path / "load.jsonl"
        sink = RotatingJsonlSink(str(path), max_bytes=2048)
        run_load_sync(
            LoadConfig(
                host=service.host, port=service.port,
                requests=40, concurrency=2, keys=2, n=5, m=4,
            ),
            telemetry=sink,
        )
        assert sink.written == 40
        assert sink.rotations >= 1
        total = sum(len(read_jsonl(seg)) for seg in sink.segments())
        assert total == 40
        rec = read_jsonl(sink.segments()[0])[0]
        assert rec.kind == "service-request"
        assert rec.extra["status"] == 200
        assert rec.extra["source"] in ("cache", "build")


class TestRetries:
    def test_429_honors_retry_after_and_reoffers(self):
        """Throttled requests wait out the server's Retry-After and
        succeed on a later attempt instead of surfacing as failures."""
        config = ServiceConfig(
            port=0,
            admission=AdmissionConfig(rate_per_client=50.0, burst=2.0, retry_after_s=0.05),
        )
        with ServiceThread(config) as svc:
            summary = run_load_sync(
                LoadConfig(
                    host=svc.host, port=svc.port,
                    requests=40, concurrency=4, keys=4, n=5, m=4,
                    retries=4, backoff_s=0.01,
                )
            )
        assert summary.throttled > 0
        assert summary.statuses.get(429, 0) > 0
        assert summary.ok > 0
        assert summary.errors == 0  # 429s are throttles, not failures

    def test_connection_refused_retries_then_counts_error(self):
        summary = run_load_sync(
            LoadConfig(
                host="127.0.0.1", port=1,
                requests=3, concurrency=1, retries=2, backoff_s=0.005,
            )
        )
        assert summary.errors == 3
        assert summary.retried == 6  # two jittered-backoff retries each
        assert summary.requests == 0  # nothing ever got a response

    def test_retries_zero_fails_immediately(self):
        summary = run_load_sync(
            LoadConfig(host="127.0.0.1", port=1, requests=2, concurrency=1, retries=0)
        )
        assert summary.errors == 2
        assert summary.retried == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadConfig(retries=-1)
        with pytest.raises(ValueError):
            LoadConfig(backoff_s=0.0)
        with pytest.raises(ValueError):
            LoadConfig(backoff_s=1.0, max_backoff_s=0.5)

    def test_summary_reports_retry_counters(self, service):
        summary = run_load_sync(
            LoadConfig(host=service.host, port=service.port,
                       requests=10, concurrency=2, keys=2, n=5, m=4)
        )
        doc = summary.as_dict()
        assert doc["retried"] == 0 and doc["throttled"] == 0


class TestMain:
    def test_summary_and_gates_pass(self, service, capsys):
        rc = main(
            [
                "--port", str(service.port), "--host", service.host,
                "--requests", "60", "--concurrency", "4",
                "--keys", "3", "--n", "5", "--m", "4",
                "--min-hit-ratio", "0.5", "--max-p99-ms", "5000",
                "--json",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        doc = json.loads(out)
        assert doc["requests"] == 60
        assert doc["hit_ratio"] >= 0.5

    def test_gate_failure_exits_one(self, service, capsys):
        rc = main(
            [
                "--port", str(service.port), "--host", service.host,
                "--requests", "10", "--keys", "2", "--n", "5", "--m", "4",
                "--min-hit-ratio", "1.01",  # unattainable
            ]
        )
        assert rc == 1
        assert "gate failed" in capsys.readouterr().err

    def test_bad_args_exit_two(self, service):
        with pytest.raises(SystemExit) as exc_info:
            main(["--port", str(service.port), "--requests", "0"])
        assert exc_info.value.code == 2

    def test_unreachable_service_exits_one(self, capsys):
        # connection refusals surface as transport errors; with zero
        # successful responses the implicit gate fails the run
        rc = main(["--port", "1", "--requests", "5", "--concurrency", "1"])
        assert rc == 1
        assert "no successful responses" in capsys.readouterr().err
