"""Tests for the single-flight planner: coalescing, caching, errors."""

from __future__ import annotations

import asyncio

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.parallel.cache import ScheduleCache, schedule_table_key
from repro.service.planner import PlannerService
from repro.service.protocol import encode_json, parse_plan_request

DOC = {"algorithm": "wsort", "n": 6, "source": 0, "destinations": [1, 3, 5, 9, 17, 33]}


def _planner(**over) -> tuple[PlannerService, MetricsRegistry]:
    registry = MetricsRegistry()
    svc = PlannerService(cache=ScheduleCache(), metrics=registry, **over)
    return svc, registry


class TestCoalescing:
    def test_64_concurrent_identical_requests_build_once(self):
        """The headline property: N identical in-flight requests perform
        exactly one build, and every caller serializes byte-identically."""

        async def scenario():
            svc, registry = _planner(build_delay_s=0.05, max_workers=2)
            req = parse_plan_request(DOC, "schedule")
            try:
                results = await asyncio.gather(*(svc.schedule(req) for _ in range(64)))
            finally:
                svc.close()
            return results, registry

        results, registry = asyncio.run(scenario())
        assert registry.counter("sim.service.builds").value == 1.0
        assert registry.counter("sim.service.coalesced").value == 63.0
        bodies = {encode_json(r.value) for r in results}
        assert len(bodies) == 1
        assert all(r.source == "build" for r in results)
        keys = {r.key for r in results}
        assert len(keys) == 1

    def test_distinct_keys_do_not_coalesce(self):
        async def scenario():
            svc, registry = _planner(build_delay_s=0.02)
            req_a = parse_plan_request(DOC, "schedule")
            req_b = parse_plan_request(dict(DOC, destinations=[2, 4, 6]), "schedule")
            try:
                await asyncio.gather(svc.schedule(req_a), svc.schedule(req_b))
            finally:
                svc.close()
            return registry

        registry = asyncio.run(scenario())
        assert registry.counter("sim.service.builds").value == 2.0
        assert registry.counter("sim.service.coalesced").value == 0.0

    def test_waiter_cancellation_does_not_kill_the_build(self):
        async def scenario():
            svc, registry = _planner(build_delay_s=0.05)
            req = parse_plan_request(DOC, "schedule")
            try:
                follower = asyncio.ensure_future(svc.schedule(req))
                victim = asyncio.ensure_future(svc.schedule(req))
                await asyncio.sleep(0.01)
                victim.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await victim
                result = await follower
            finally:
                svc.close()
            return result, registry

        result, registry = asyncio.run(scenario())
        assert result.value  # the surviving waiter got the built value
        assert registry.counter("sim.service.builds").value == 1.0
        assert registry.counter("sim.service.build_errors").value == 0.0

    def test_inflight_empties_after_builds(self):
        async def scenario():
            svc, _ = _planner(build_delay_s=0.01)
            req = parse_plan_request(DOC, "schedule")
            try:
                await asyncio.gather(*(svc.schedule(req) for _ in range(4)))
                await asyncio.sleep(0)  # let done callbacks run
                return svc.inflight_builds()
            finally:
                svc.close()

        assert asyncio.run(scenario()) == 0


class TestCacheIntegration:
    def test_second_round_is_cache_sourced(self):
        async def scenario():
            svc, registry = _planner()
            req = parse_plan_request(DOC, "schedule")
            try:
                first = await svc.schedule(req)
                second = await svc.schedule(req)
            finally:
                svc.close()
            return first, second, registry

        first, second, registry = asyncio.run(scenario())
        assert first.source == "build"
        assert second.source == "cache"
        assert encode_json(first.value) == encode_json(second.value)
        assert registry.counter("sim.service.builds").value == 1.0

    def test_service_addresses_the_sweep_cache_entries(self):
        """A warm sweep cache serves the service without a rebuild."""
        from repro.core.paths import ResolutionOrder
        from repro.multicast.ports import ALL_PORT
        from repro.parallel.cache import activate_cache, cached_schedule_table

        cache = ScheduleCache()
        previous = activate_cache(cache)
        try:
            dests = sorted(DOC["destinations"])
            cached_schedule_table(
                "wsort", 6, 0, dests, ALL_PORT, ResolutionOrder.DESCENDING
            )
        finally:
            activate_cache(previous)

        async def scenario():
            registry = MetricsRegistry()
            svc = PlannerService(cache=cache, metrics=registry)
            req = parse_plan_request(DOC, "schedule")
            try:
                return await svc.schedule(req), registry
            finally:
                svc.close()

        result, registry = asyncio.run(scenario())
        assert result.source == "cache"
        assert registry.counter("sim.service.builds").value == 0.0
        assert result.key == schedule_table_key(
            "wsort", 6, 0, tuple(sorted(DOC["destinations"])),
            ALL_PORT, ResolutionOrder.DESCENDING,
        )


class TestVerifyAndSimulate:
    def test_verify_reports_ok(self):
        async def scenario():
            svc, _ = _planner()
            req = parse_plan_request(DOC, "verify")
            try:
                return await svc.verify(req)
            finally:
                svc.close()

        result = asyncio.run(scenario())
        assert result.value["ok"] is True
        assert result.value["errors"] == []
        assert result.value["max_step"] >= 1

    def test_simulate_returns_delay_stats(self):
        async def scenario():
            svc, _ = _planner()
            req = parse_plan_request(dict(DOC, size=4096), "simulate")
            try:
                return await svc.simulate(req)
            finally:
                svc.close()

        result = asyncio.run(scenario())
        assert set(result.value) >= {"avg_delay_us", "max_delay_us"}


class TestBuildErrors:
    def test_build_error_propagates_and_counts(self):
        async def scenario():
            svc, registry = _planner()

            def boom():
                raise RuntimeError("kaput")

            try:
                with pytest.raises(RuntimeError, match="kaput"):
                    await svc._resolve("deadbeef", boom)
                await asyncio.sleep(0)
            finally:
                svc.close()
            return registry, svc

        registry, svc = asyncio.run(scenario())
        assert registry.counter("sim.service.build_errors").value == 1.0
        assert svc.inflight_builds() == 0
        assert svc.cache.get("deadbeef") is None  # failures are not cached
