"""Tests for admission control: caps, queueing, rate limits."""

from __future__ import annotations

import asyncio

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service.admission import (
    AdmissionConfig,
    AdmissionController,
    Rejected,
    TokenBucket,
)


class TestTokenBucket:
    def test_burst_then_refusal(self):
        bucket = TokenBucket(rate=1.0, burst=3.0, now=0.0)
        assert bucket.try_take(0.0) == 0.0
        assert bucket.try_take(0.0) == 0.0
        assert bucket.try_take(0.0) == 0.0
        wait = bucket.try_take(0.0)
        assert wait == pytest.approx(1.0)

    def test_tokens_accrue_with_time(self):
        bucket = TokenBucket(rate=2.0, burst=1.0, now=0.0)
        assert bucket.try_take(0.0) == 0.0
        assert bucket.try_take(0.0) > 0.0
        assert bucket.try_take(1.0) == 0.0  # 2 tokens accrued, capped at 1

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)


class TestAdmissionConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionConfig(max_inflight=0)
        with pytest.raises(ValueError):
            AdmissionConfig(max_queue=-1)


def _controller(**over) -> AdmissionController:
    return AdmissionController(AdmissionConfig(**over), MetricsRegistry())


class TestAdmissionController:
    def test_admits_under_cap(self):
        async def scenario():
            ctl = _controller(max_inflight=2)
            async with ctl.slot("a"):
                async with ctl.slot("b"):
                    assert ctl.inflight == 2
            assert ctl.inflight == 0

        asyncio.run(scenario())

    def test_queues_then_hands_slot_over(self):
        async def scenario():
            ctl = _controller(max_inflight=1, max_queue=4)
            order: list[str] = []

            async def holder(name: str, gate: asyncio.Event):
                async with ctl.slot(name):
                    order.append(name)
                    await gate.wait()

            gate_a = asyncio.Event()
            gate_b = asyncio.Event()
            task_a = asyncio.ensure_future(holder("a", gate_a))
            await asyncio.sleep(0.01)
            task_b = asyncio.ensure_future(holder("b", gate_b))
            await asyncio.sleep(0.01)
            assert order == ["a"]
            assert ctl.queued == 1
            gate_a.set()
            gate_b.set()
            await asyncio.gather(task_a, task_b)
            assert order == ["a", "b"]
            assert ctl.inflight == 0
            assert ctl.queued == 0

        asyncio.run(scenario())

    def test_full_queue_rejects_503(self):
        async def scenario():
            ctl = _controller(max_inflight=1, max_queue=0, retry_after_s=2.0)
            gate = asyncio.Event()

            async def holder():
                async with ctl.slot("a"):
                    await gate.wait()

            task = asyncio.ensure_future(holder())
            await asyncio.sleep(0.01)
            with pytest.raises(Rejected) as exc_info:
                async with ctl.slot("b"):
                    pass
            assert exc_info.value.status == 503
            assert exc_info.value.retry_after_s == 2.0
            gate.set()
            await task

        asyncio.run(scenario())

    def test_rate_limit_rejects_429_per_client(self):
        async def scenario():
            ctl = _controller(rate_per_client=1.0, burst=2.0)
            for _ in range(2):
                async with ctl.slot("hot"):
                    pass
            with pytest.raises(Rejected) as exc_info:
                async with ctl.slot("hot"):
                    pass
            assert exc_info.value.status == 429
            assert exc_info.value.retry_after_s > 0.0
            # a different client has its own bucket
            async with ctl.slot("cold"):
                pass

        asyncio.run(scenario())

    def test_cancelled_waiter_does_not_leak_slot(self):
        async def scenario():
            ctl = _controller(max_inflight=1, max_queue=4)
            gate = asyncio.Event()

            async def holder():
                async with ctl.slot("a"):
                    await gate.wait()

            async def waiter():
                async with ctl.slot("b"):
                    pass

            hold_task = asyncio.ensure_future(holder())
            await asyncio.sleep(0.01)
            wait_task = asyncio.ensure_future(waiter())
            await asyncio.sleep(0.01)
            wait_task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await wait_task
            gate.set()
            await hold_task
            assert ctl.inflight == 0
            # capacity fully restored: a fresh request admits instantly
            async with ctl.slot("c"):
                assert ctl.inflight == 1

        asyncio.run(scenario())

    def test_metrics_track_rejections(self):
        async def scenario():
            registry = MetricsRegistry()
            ctl = AdmissionController(
                AdmissionConfig(rate_per_client=1.0, burst=1.0), registry
            )
            async with ctl.slot("x"):
                pass
            with pytest.raises(Rejected):
                async with ctl.slot("x"):
                    pass
            assert registry.counter("sim.service.rejected_rate").value == 1.0

        asyncio.run(scenario())
