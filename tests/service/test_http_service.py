"""End-to-end service tests over real loopback sockets.

Covers the full layering (HTTP parse -> routing -> admission ->
planner -> cache), the golden parity of service responses against
direct library calls for fig-9/fig-11-style points, HTTP-level
coalescing, deadlines, and graceful drain.
"""

from __future__ import annotations

import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro.analysis.workloads import random_destination_sets
from repro.parallel.cache import compute_delay_stats, compute_schedule_table
from repro.core.paths import ResolutionOrder
from repro.multicast.ports import ALL_PORT
from repro.service import AdmissionConfig, ServiceConfig, ServiceThread
from repro.simulator.params import NCUBE2


@pytest.fixture(scope="module")
def service():
    with ServiceThread(ServiceConfig(port=0)) as svc:
        yield svc


def _post(svc, path, doc, headers=None, timeout=30):
    req = urllib.request.Request(
        f"http://{svc.host}:{svc.port}{path}",
        data=json.dumps(doc).encode(),
        method="POST",
        headers=headers or {},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


def _get(svc, path):
    try:
        with urllib.request.urlopen(f"http://{svc.host}:{svc.port}{path}", timeout=30) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


DOC = {"algorithm": "wsort", "n": 5, "source": 0, "destinations": [1, 2, 3, 9, 17]}


class TestEndpoints:
    def test_schedule_round_trip(self, service):
        status, body, _ = _post(service, "/v1/schedule", DOC)
        assert status == 200
        assert body["source"] in ("build", "cache")
        assert body["request"]["m"] == 5
        status2, body2, _ = _post(service, "/v1/schedule", DOC)
        assert status2 == 200
        assert body2["source"] == "cache"
        assert body2["result"] == body["result"]

    def test_verify_round_trip(self, service):
        status, body, _ = _post(service, "/v1/verify", DOC)
        assert status == 200
        assert body["result"]["ok"] is True

    def test_simulate_round_trip(self, service):
        status, body, _ = _post(service, "/v1/simulate", dict(DOC, size=4096))
        assert status == 200
        assert body["result"]["avg_delay_us"] > 0

    def test_health(self, service):
        status, raw = _get(service, "/health")
        doc = json.loads(raw)
        assert status == 200
        assert doc["status"] == "ok"
        assert doc["cache_entries"] >= 1

    def test_metrics_prometheus_text_parses(self, service):
        _post(service, "/v1/schedule", DOC)  # ensure some traffic exists
        status, raw = _get(service, "/metrics")
        assert status == 200
        text = raw.decode()
        samples = {}
        for line in text.splitlines():
            assert line, "no blank lines in exposition"
            if line.startswith("#"):
                assert line.startswith(("# HELP", "# TYPE"))
                continue
            name, value = line.rsplit(" ", 1)
            samples[name] = float(value)  # every sample line parses
        assert samples["repro_sim_service_requests"] >= 1
        assert 0.0 <= samples["repro_sim_service_cache_hit_ratio"] <= 1.0

    def test_usage_accounting(self, service):
        _post(service, "/v1/schedule", DOC, headers={"X-Client-Id": "usage-test"})
        _post(service, "/v1/schedule", DOC, headers={"X-Client-Id": "usage-test"})
        status, raw = _get(service, "/v1/usage")
        doc = json.loads(raw)
        assert status == 200
        usage = doc["clients"]["usage-test"]
        assert usage["requests"] >= 2
        assert usage["cache_hits"] >= 1
        assert usage["bytes_in"] > 0
        assert usage["bytes_out"] > 0


class TestErrors:
    def test_unknown_path_404(self, service):
        status, _ = _get(service, "/nope")
        assert status == 404

    def test_wrong_method_405(self, service):
        status, _ = _get(service, "/v1/schedule")
        assert status == 405

    def test_bad_body_400(self, service):
        status, body, _ = _post(service, "/v1/schedule", {"n": 99, "destinations": [1]})
        assert status == 400
        assert "must be in" in body["error"]

    def test_invalid_json_400(self, service):
        req = urllib.request.Request(
            f"http://{service.host}:{service.port}/v1/schedule",
            data=b"{torn", method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(req, timeout=30)
        assert exc_info.value.code == 400

    def test_oversized_body_413(self, service):
        big = json.dumps(dict(DOC, padding="x" * ((1 << 20) + 1024))).encode()
        req = urllib.request.Request(
            f"http://{service.host}:{service.port}/v1/schedule",
            data=big, method="POST",
        )
        # the server answers 413 from the headers alone and closes; the
        # client may observe either the response or the early close
        try:
            urllib.request.urlopen(req, timeout=30)
            outcome = 200
        except urllib.error.HTTPError as exc:
            outcome = exc.code
        except (urllib.error.URLError, ConnectionError):
            outcome = "closed"
        assert outcome in (413, "closed")

    def test_bad_deadline_header_400(self, service):
        status, body, _ = _post(
            service, "/v1/schedule", DOC, headers={"X-Deadline-Ms": "soon"}
        )
        assert status == 400
        assert "X-Deadline-Ms" in body["error"]


class TestGoldenParity:
    """Service responses are byte-for-byte the library's own answers."""

    def test_fig9_style_schedule_points(self, service):
        n = 6
        for dests in random_destination_sets(n, 12, 3, seed=42):
            doc = {"algorithm": "wsort", "n": n, "source": 0, "destinations": dests}
            status, body, _ = _post(service, "/v1/schedule", doc)
            assert status == 200
            expected = compute_schedule_table(
                "wsort", n, 0, tuple(sorted(dests)), ALL_PORT, ResolutionOrder.DESCENDING
            )
            assert json.loads(json.dumps(expected)) == body["result"]

    def test_fig11_style_simulate_points(self, service):
        n = 5
        for dests in random_destination_sets(n, 8, 3, seed=43):
            doc = {
                "algorithm": "wsort", "n": n, "source": 0,
                "destinations": dests, "size": 4096,
            }
            status, body, _ = _post(service, "/v1/simulate", doc)
            assert status == 200
            expected = compute_delay_stats(
                "wsort", n, 0, tuple(sorted(dests)), 4096, NCUBE2,
                ALL_PORT, ResolutionOrder.DESCENDING,
            )
            assert json.loads(json.dumps(expected)) == body["result"]


class TestHttpCoalescing:
    def test_concurrent_identical_requests_one_build_identical_bytes(self):
        """64 concurrent identical requests over real sockets: at most one
        build, byte-identical response bodies."""
        config = ServiceConfig(port=0, build_delay_s=0.1, workers=2)
        with ServiceThread(config) as svc:
            doc = {"algorithm": "wsort", "n": 6, "destinations": [1, 2, 4, 8, 16, 32, 63]}
            payload = json.dumps(doc).encode()
            bodies: list[bytes] = []
            errors: list[Exception] = []
            lock = threading.Lock()

            def fire():
                req = urllib.request.Request(
                    f"http://{svc.host}:{svc.port}/v1/schedule",
                    data=payload, method="POST",
                )
                try:
                    with urllib.request.urlopen(req, timeout=60) as resp:
                        raw = resp.read()
                    with lock:
                        bodies.append(raw)
                except Exception as exc:  # pragma: no cover - diagnostic
                    with lock:
                        errors.append(exc)

            threads = [threading.Thread(target=fire) for _ in range(64)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            registry = svc.app.metrics
            builds = registry.counter("sim.service.builds").value
            served = registry.counter("sim.service.requests").value
        assert not errors
        assert len(bodies) == 64
        assert len(set(bodies)) == 1  # byte-identical for the whole group
        assert builds == 1.0  # exactly one build per unique key
        assert served >= 64


class TestDeadlines:
    def test_slow_build_times_out_504(self):
        config = ServiceConfig(port=0, build_delay_s=0.5)
        with ServiceThread(config) as svc:
            status, body, _ = _post(
                svc, "/v1/schedule", DOC, headers={"X-Deadline-Ms": "50"}
            )
            assert status == 504
            assert "deadline" in body["error"]


class TestRateLimiting:
    def test_429_with_retry_after(self):
        config = ServiceConfig(
            port=0, admission=AdmissionConfig(rate_per_client=1.0, burst=2.0)
        )
        with ServiceThread(config) as svc:
            statuses = []
            headers = {}
            for _ in range(4):
                status, _, hdrs = _post(
                    svc, "/v1/schedule", DOC, headers={"X-Client-Id": "storm"}
                )
                statuses.append(status)
                if status == 429:
                    headers = hdrs
            assert 429 in statuses
            assert int(headers["Retry-After"]) >= 1


class TestDrain:
    def test_drain_finishes_inflight_then_closes(self):
        svc = ServiceThread(ServiceConfig(port=0)).start()
        host, port = svc.host, svc.port
        status, body, _ = _post(svc, "/v1/schedule", DOC)
        assert status == 200
        svc.stop()
        # after drain the socket no longer accepts connections
        with pytest.raises(OSError):
            with socket.create_connection((host, port), timeout=2):
                pass
