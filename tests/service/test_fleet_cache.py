"""The fleet cache routes and degraded-health surface of the service.

Server side of :mod:`repro.parallel.fabric_cache`: ``GET/PUT
/v1/cache/<key>`` must speak the same self-verifying envelope the disk
cache uses (rejecting anything that fails key/checksum validation),
and ``/health`` must distinguish a draining instance from an
overloaded one so fleet workers and probes react correctly.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.parallel.cache import _value_checksum, cache_key
from repro.parallel.fabric_cache import RemoteCacheClient, TieredCache
from repro.service import ServiceConfig, ServiceThread


@pytest.fixture()
def service():
    with ServiceThread(ServiceConfig(port=0)) as svc:
        yield svc


def _url(svc, path: str) -> str:
    return f"http://{svc.host}:{svc.port}{path}"


def _get(svc, path: str):
    try:
        with urllib.request.urlopen(_url(svc, path), timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _put(svc, path: str, doc: dict):
    req = urllib.request.Request(
        _url(svc, path), data=json.dumps(doc).encode(), method="PUT"
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _envelope(key: str, value: object) -> dict:
    return {"key": key, "checksum": _value_checksum(value), "value": value}


KEY = cache_key("fleet-test", x=1)
VALUE = {"steps": [[0, 1], [1, 3]], "depth": 2}


class TestCacheRoutes:
    def test_miss_is_404(self, service):
        status, body = _get(service, f"/v1/cache/{KEY}")
        assert status == 404
        assert "no cache entry" in body["error"]

    def test_put_get_roundtrip_envelope(self, service):
        status, body = _put(service, f"/v1/cache/{KEY}", _envelope(KEY, VALUE))
        assert status == 201
        assert body == {"key": KEY, "stored": True}
        status, doc = _get(service, f"/v1/cache/{KEY}")
        assert status == 200
        assert doc["key"] == KEY
        assert doc["value"] == VALUE
        assert doc["checksum"] == _value_checksum(VALUE)

    def test_malformed_key_is_400(self, service):
        for bad in ("zz", "A" * 64, KEY[:-1], KEY + "0"):
            status, body = _get(service, f"/v1/cache/{bad}")
            assert status == 400, bad
            assert "64 hex chars" in body["error"]

    def test_forged_checksum_rejected(self, service):
        doc = _envelope(KEY, VALUE)
        doc["checksum"] = "0" * 16
        status, body = _put(service, f"/v1/cache/{KEY}", doc)
        assert status == 400
        assert "validation" in body["error"]
        assert _get(service, f"/v1/cache/{KEY}")[0] == 404  # nothing stored
        rejected = service.app.metrics.counter("sim.service.cache_put_rejected").value
        assert rejected == 1

    def test_key_mismatch_rejected(self, service):
        other = cache_key("fleet-test", x=2)
        status, _ = _put(service, f"/v1/cache/{other}", _envelope(KEY, VALUE))
        assert status == 400

    def test_unsupported_method_405(self, service):
        req = urllib.request.Request(_url(service, f"/v1/cache/{KEY}"), method="DELETE")
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(req, timeout=30)
        assert exc_info.value.code == 405

    def test_planner_entries_visible_to_fleet(self, service):
        """Cross-layer coherence: an entry the planner builds for a
        ``/v1/schedule`` request is immediately fetchable (and
        checksum-intact) through the cache route under the same key."""
        doc = {"algorithm": "wsort", "n": 5, "source": 0, "destinations": [1, 2, 3]}
        req = urllib.request.Request(
            _url(service, "/v1/schedule"), data=json.dumps(doc).encode(), method="POST"
        )
        with urllib.request.urlopen(req, timeout=30) as resp:
            plan = json.loads(resp.read())
        status, entry = _get(service, f"/v1/cache/{plan['key']}")
        assert status == 200
        assert entry["value"] == plan["result"]

    def test_remote_client_and_tiered_cache_integration(self, service):
        publisher = TieredCache(remote=RemoteCacheClient(f"{service.host}:{service.port}"))
        publisher.put(KEY, VALUE)  # local layers + best-effort push
        subscriber = TieredCache(remote=RemoteCacheClient(f"{service.host}:{service.port}"))
        assert subscriber.get(KEY) == VALUE  # served by the fleet
        assert subscriber.remote_hits == 1
        assert subscriber.get(KEY) == VALUE  # adopted locally
        assert subscriber.remote_hits == 1


class TestDegradedHealth:
    def test_healthy_instance_not_degraded(self, service):
        status, doc = _get(service, "/health")
        assert status == 200
        assert doc["degraded"] is False
        assert "degraded_reason" not in doc

    def test_drain_reports_degraded_with_reason(self, service):
        service.app.server._draining = True
        try:
            status, doc = _get(service, "/health")
        finally:
            service.app.server._draining = False
        assert status == 200
        assert doc["status"] == "draining"
        assert doc["degraded"] is True
        assert doc["degraded_reason"] == "drain"

    def test_overload_reports_degraded_with_reason(self, service):
        admission = service.app.admission
        admission.inflight = service.app.config.admission.max_inflight
        try:
            _, doc = _get(service, "/health")
        finally:
            admission.inflight = 0
        assert doc["status"] == "ok"  # alive, just saturated -- not draining
        assert doc["degraded"] is True
        assert doc["degraded_reason"] == "overload"
