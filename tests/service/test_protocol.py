"""Tests for the service wire protocol (request validation, encoding)."""

from __future__ import annotations

import json

import pytest

from repro.core.paths import ResolutionOrder
from repro.service.protocol import (
    MAX_DESTINATIONS,
    MAX_N,
    ProtocolError,
    encode_json,
    parse_plan_request,
)


def _doc(**over):
    doc = {"algorithm": "wsort", "n": 4, "source": 0, "destinations": [3, 1, 5]}
    doc.update(over)
    return doc


class TestParse:
    def test_valid_request(self):
        req = parse_plan_request(_doc(), "schedule")
        assert req.kind == "schedule"
        assert req.algorithm == "wsort"
        assert req.n == 4
        assert req.destinations == (1, 3, 5)  # sorted
        assert req.ports.name == "all-port"
        assert req.order is ResolutionOrder.DESCENDING
        assert req.m == 3

    def test_destinations_deduplicated_and_sorted(self):
        a = parse_plan_request(_doc(destinations=[5, 1, 3, 1, 5]), "schedule")
        b = parse_plan_request(_doc(destinations=[1, 3, 5]), "schedule")
        assert a.destinations == b.destinations == (1, 3, 5)

    def test_defaults(self):
        req = parse_plan_request({"n": 3, "destinations": [1]}, "simulate")
        assert req.algorithm == "wsort"
        assert req.source == 0
        assert req.size == 4096

    def test_port_spellings(self):
        assert parse_plan_request(_doc(ports="all"), "schedule").ports.name == "all-port"
        assert parse_plan_request(_doc(ports="one"), "schedule").ports.name == "one-port"
        assert parse_plan_request(_doc(ports=1), "schedule").ports.name == "one-port"
        assert parse_plan_request(_doc(ports=2), "schedule").ports.ports == 2

    def test_order_spellings(self):
        req = parse_plan_request(_doc(order="ascending"), "schedule")
        assert req.order is ResolutionOrder.ASCENDING

    @pytest.mark.parametrize(
        "mutation",
        [
            {"n": None},
            {"n": "4"},
            {"n": True},
            {"n": 0},
            {"n": MAX_N + 1},
            {"algorithm": "nope"},
            {"destinations": []},
            {"destinations": None},
            {"destinations": "1,2"},
            {"destinations": [99]},  # out of range for n=4
            {"destinations": [0]},  # equals the source
            {"destinations": [1.5]},
            {"destinations": [True]},
            {"source": 16},
            {"ports": "two"},
            {"ports": 9},  # > n
            {"ports": True},
            {"order": "sideways"},
            {"size": 0},
            {"size": 1 << 21},
        ],
    )
    def test_rejects_bad_fields(self, mutation):
        with pytest.raises(ProtocolError):
            parse_plan_request(_doc(**mutation), "schedule")

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            parse_plan_request([1, 2], "schedule")

    def test_rejects_too_many_destinations(self):
        doc = {"n": MAX_N, "destinations": list(range(1, MAX_DESTINATIONS + 2))}
        with pytest.raises(ProtocolError, match="too many destinations"):
            parse_plan_request(doc, "schedule")

    def test_describe_is_json_safe(self):
        req = parse_plan_request(_doc(), "simulate")
        doc = json.loads(json.dumps(req.describe()))
        assert doc["kind"] == "simulate"
        assert doc["size"] == 4096
        assert doc["m"] == 3

    def test_protocol_error_is_value_error(self):
        assert issubclass(ProtocolError, ValueError)


class TestEncodeJson:
    def test_canonical_and_newline_terminated(self):
        body = encode_json({"b": 1, "a": [2, 3]})
        assert body == b'{"a":[2,3],"b":1}\n'

    def test_key_order_independent(self):
        assert encode_json({"x": 1, "y": 2}) == encode_json({"y": 2, "x": 1})
