"""Tests for combining (reduction/gather) over reversed multicast trees,
including the asymmetry finding documented in the module."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.collectives.combine_tree import combining_graph, gather_subset, reduce_subset
from repro.collectives.graph import simulate_comm
from repro.multicast import Maxport, UCube, WSort
from repro.simulator.params import NCUBE2
from tests.conftest import multicast_cases


class TestCombiningGraph:
    def test_structure(self):
        tree = UCube().build_tree(4, 0, [1, 3, 5, 7])
        g = combining_graph(tree, size=64)
        # every non-root tree node sends exactly once
        assert len(g.sends) == 4
        assert all(s.size == 64 for s in g.sends)

    def test_grow_payload_sizes(self):
        tree = UCube().build_tree(4, 0, [1, 3, 5, 7])
        g = combining_graph(tree, grow_payload=True, block_size=10)
        # the sends into the root together carry all four blocks
        into_root = [s for s in g.sends if s.dst == 0]
        assert sum(len(s.blocks) for s in into_root) == 4
        for s in g.sends:
            assert s.size == 10 * len(s.blocks)

    def test_root_collects_all_blocks(self):
        tree = UCube().build_tree(4, 2, [0, 5, 9, 14, 15])
        res = simulate_comm(combining_graph(tree, grow_payload=True, block_size=8))
        assert res.final_blocks[2] >= {0, 5, 9, 14, 15}

    @given(case=multicast_cases(max_n=5))
    def test_dependencies_respected(self, case):
        n, source, dests = case
        tree = UCube().build_tree(n, source, dests)
        g = combining_graph(tree, size=128)
        res = simulate_comm(g)
        for s in g.sends:
            for d in s.deps:
                assert res.send_received_at[s.sid] > res.send_received_at[d]


class TestReversalAsymmetry:
    """The module's headline finding."""

    @settings(max_examples=60)
    @given(case=multicast_cases(max_n=6))
    def test_reversed_ucube_contention_free(self, case):
        n, source, dests = case
        tree = UCube().build_tree(n, source, dests)
        res = simulate_comm(combining_graph(tree, size=2048), NCUBE2)
        assert res.total_blocked_time == 0.0

    def test_reversed_wsort_can_block(self):
        """Regression witness: a reversed W-sort tree with real channel
        blocking (found by random search; see module docstring)."""
        blocked = 0
        for seed_dests in ([1, 2, 6, 9, 12, 14], [3, 5, 6, 10, 12], [1, 4, 6, 7, 11, 13, 14]):
            tree = WSort().build_tree(4, 0, seed_dests)
            res = simulate_comm(combining_graph(tree, size=2048), NCUBE2)
            blocked += res.total_blocked_time > 0
        tree5 = WSort().build_tree(5, 0, [1, 3, 6, 9, 13, 17, 22, 25, 28, 30])
        blocked += simulate_comm(combining_graph(tree5, 2048), NCUBE2).total_blocked_time > 0
        assert blocked > 0, "expected at least one blocking reversed W-sort instance"

    def test_reversed_maxport_can_block(self):
        found = False
        for dests in ([1, 3, 6, 9, 13, 17, 22, 25, 28, 30], [5, 9, 11, 14, 21, 26, 29]):
            tree = Maxport().build_tree(5, 0, dests)
            res = simulate_comm(combining_graph(tree, size=2048), NCUBE2)
            found = found or res.total_blocked_time > 0
        assert found


class TestSubsetOperations:
    def test_reduce_subset(self):
        res = reduce_subset(5, 3, [1, 7, 9, 20, 31], size=512)
        assert res.total_blocked_time == 0.0
        assert 3 in res.node_done_at

    def test_gather_subset(self):
        contributors = [1, 7, 9, 20, 31]
        res = gather_subset(5, 3, contributors, block_size=64)
        assert res.final_blocks[3] == frozenset(contributors)

    @given(case=multicast_cases(max_n=5))
    def test_gather_subset_complete(self, case):
        n, root, contributors = case
        res = gather_subset(n, root, contributors, block_size=16)
        assert res.final_blocks[root] >= set(contributors)
