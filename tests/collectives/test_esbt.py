"""Tests for the nESBT optimal all-port broadcast (Johnsson & Ho [5])."""

from __future__ import annotations

import pytest

from repro.collectives import simulate_comm
from repro.collectives.broadcast import sbt_broadcast_graph
from repro.collectives.esbt import esbt_broadcast_graph, esbt_trees
from repro.core.addressing import delta, hamming
from repro.multicast.ports import ALL_PORT, ONE_PORT
from repro.simulator.params import NCUBE2


def tree_arcs(parent_map):
    return {(p, delta(p, c)) for c, p in parent_map.items()}


class TestTrees:
    @pytest.mark.parametrize("n", range(1, 9))
    def test_pairwise_arc_disjoint(self, n):
        trees = esbt_trees(n)
        arcsets = [tree_arcs(t) for t in trees]
        for i in range(n):
            for j in range(i + 1, n):
                assert not arcsets[i] & arcsets[j], f"trees {i},{j} share a channel"

    @pytest.mark.parametrize("n", range(1, 7))
    def test_each_tree_spans_all_nonroot_nodes(self, n):
        for t in esbt_trees(n):
            assert set(t.keys()) == set(range(1, 1 << n))

    @pytest.mark.parametrize("n", range(1, 7))
    def test_edges_are_cube_edges_reaching_root(self, n):
        for t in esbt_trees(n):
            for c, p in t.items():
                assert hamming(c, p) == 1
            # every node walks up to 0 without cycles
            for v in range(1, 1 << n):
                cur, hops = v, 0
                while cur != 0:
                    cur = t[cur]
                    hops += 1
                    assert hops <= (1 << n)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            esbt_trees(0)


class TestBroadcast:
    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_everyone_gets_all_parts(self, n):
        res = simulate_comm(esbt_broadcast_graph(n, 0, 4096))
        for u in range(1, 1 << n):
            assert res.final_blocks[u] == frozenset(range(n))

    def test_nonzero_root(self):
        res = simulate_comm(esbt_broadcast_graph(4, 9, 4096))
        for u in range(16):
            if u != 9:
                assert res.final_blocks[u] == frozenset(range(4))

    def test_zero_contention(self):
        """Arc-disjoint trees: no worm ever blocks, even all at once."""
        res = simulate_comm(esbt_broadcast_graph(5, 0, 8192), NCUBE2, ALL_PORT)
        assert res.total_blocked_time == 0.0

    def test_bandwidth_speedup_over_sbt(self):
        """For bandwidth-dominated messages nESBT approaches n times the
        single-tree broadcast rate (paper [5]'s headline result)."""
        n, size = 5, 65536
        sbt = simulate_comm(sbt_broadcast_graph(n, 0, size), NCUBE2, ALL_PORT)
        esbt = simulate_comm(esbt_broadcast_graph(n, 0, size), NCUBE2, ALL_PORT)
        speedup = sbt.completion_time / esbt.completion_time
        assert speedup > n / 2  # comfortably past half the ideal factor

    def test_no_advantage_for_tiny_messages(self):
        """Startup-dominated regime: splitting only multiplies the
        per-message overhead."""
        n = 4
        sbt = simulate_comm(sbt_broadcast_graph(n, 0, 8), NCUBE2, ALL_PORT)
        esbt = simulate_comm(esbt_broadcast_graph(n, 0, 8), NCUBE2, ALL_PORT)
        assert esbt.completion_time >= sbt.completion_time * 0.9

    def test_one_port_loses_the_advantage(self):
        """The nESBT gain *requires* all ports; on one-port hardware the
        n trees serialize at the root."""
        n, size = 4, 32768
        allp = simulate_comm(esbt_broadcast_graph(n, 0, size), NCUBE2, ALL_PORT)
        onep = simulate_comm(esbt_broadcast_graph(n, 0, size), NCUBE2, ONE_PORT)
        assert onep.completion_time > allp.completion_time * 1.5

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            esbt_broadcast_graph(3, 8, 64)
        with pytest.raises(ValueError):
            esbt_broadcast_graph(3, 0, 0)
