"""Tests for pipelined (segmented) multicast."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.collectives.graph import simulate_comm
from repro.collectives.pipelined import optimal_segments, pipelined_multicast_graph
from repro.multicast import UCube, WSort
from repro.simulator import NCUBE2, simulate_multicast
from tests.conftest import multicast_cases


def deep_tree():
    """A deliberately deep tree: U-cube chain in a 5-cube."""
    return UCube().build_tree(5, 0, [1, 3, 7, 15, 31])


class TestGraphConstruction:
    def test_send_count(self):
        tree = WSort().build_tree(4, 0, [1, 3, 5, 9])
        g = pipelined_multicast_graph(tree, size=4096, segments=4)
        assert len(g.sends) == 4 * 4

    def test_single_segment_is_plain_multicast(self):
        tree = WSort().build_tree(4, 0, [1, 3, 5, 9])
        g = pipelined_multicast_graph(tree, size=4096, segments=1)
        res = simulate_comm(g, NCUBE2)
        plain = simulate_multicast(tree, 4096, NCUBE2)
        for d in tree.destinations:
            assert res.node_done_at[d] == pytest.approx(plain.delays[d])

    def test_validation(self):
        tree = deep_tree()
        with pytest.raises(ValueError):
            pipelined_multicast_graph(tree, 0, 1)
        with pytest.raises(ValueError):
            pipelined_multicast_graph(tree, 4096, 0)
        with pytest.raises(ValueError):
            pipelined_multicast_graph(tree, 4, 8)

    @given(case=multicast_cases(max_n=4))
    def test_all_segments_delivered_everywhere(self, case):
        n, source, dests = case
        tree = WSort().build_tree(n, source, dests)
        g = pipelined_multicast_graph(tree, size=256, segments=4)
        res = simulate_comm(g, NCUBE2)
        for d in dests:
            assert res.final_blocks[d] == frozenset(range(4))


class TestPipeliningEffect:
    def test_speedup_on_deep_tree(self):
        """Segmenting a bandwidth-dominated deep-chain multicast must
        bring a solid speedup."""
        tree = deep_tree()
        size = 32768
        plain = simulate_comm(pipelined_multicast_graph(tree, size, 1), NCUBE2)
        piped = simulate_comm(pipelined_multicast_graph(tree, size, 8), NCUBE2)
        assert piped.completion_time < plain.completion_time * 0.5

    def test_no_benefit_for_tiny_messages(self):
        tree = deep_tree()
        plain = simulate_comm(pipelined_multicast_graph(tree, 64, 1), NCUBE2)
        piped = simulate_comm(pipelined_multicast_graph(tree, 64, 8), NCUBE2)
        assert piped.completion_time >= plain.completion_time

    def test_diminishing_returns(self):
        """Past the optimum, more segments start costing startups."""
        tree = deep_tree()
        size = 32768
        times = {
            k: simulate_comm(pipelined_multicast_graph(tree, size, k), NCUBE2).completion_time
            for k in (1, 4, 16, 256)
        }
        assert times[4] < times[1]
        assert times[256] > times[16] * 0.9  # flattening / turning back up

    @settings(max_examples=20)
    @given(case=multicast_cases(max_n=4))
    def test_wsort_stays_contention_free_segmented(self, case):
        n, source, dests = case
        tree = WSort().build_tree(n, source, dests)
        g = pipelined_multicast_graph(tree, size=512, segments=4)
        res = simulate_comm(g, NCUBE2)
        assert res.total_blocked_time == 0.0


class TestOptimalSegments:
    def test_bounds(self):
        assert optimal_segments(1, 5, NCUBE2) == 1
        assert 1 <= optimal_segments(65536, 8, NCUBE2) <= 65536

    def test_grows_with_size_and_depth(self):
        small = optimal_segments(1024, 4, NCUBE2)
        large = optimal_segments(262144, 4, NCUBE2)
        assert large >= small
        shallow = optimal_segments(65536, 2, NCUBE2)
        deep = optimal_segments(65536, 10, NCUBE2)
        assert deep >= shallow

    def test_near_optimal_in_simulation(self):
        """The closed form lands within 25% of the best simulated k."""
        tree = deep_tree()
        size = 32768
        k_star = optimal_segments(size, 5, NCUBE2)
        t_star = simulate_comm(
            pipelined_multicast_graph(tree, size, k_star), NCUBE2
        ).completion_time
        best = min(
            simulate_comm(pipelined_multicast_graph(tree, size, k), NCUBE2).completion_time
            for k in (1, 2, 4, 8, 16, 32, 64)
        )
        assert t_star <= best * 1.25

    def test_invalid(self):
        with pytest.raises(ValueError):
            optimal_segments(0, 3, NCUBE2)
