"""Tests for the SBT broadcast reference and its equivalence with
U-cube's full broadcast."""

from __future__ import annotations

import pytest

from repro.collectives import simulate_comm
from repro.collectives.broadcast import sbt_broadcast_graph
from repro.multicast import ALL_PORT, ONE_PORT, UCube
from repro.simulator import NCUBE2, STEP, simulate_multicast


class TestSBTStructure:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
    def test_reaches_everyone(self, n):
        res = simulate_comm(sbt_broadcast_graph(n, 0, 64))
        assert set(res.node_done_at) == set(range(1 << n)) - {0}

    def test_send_count(self):
        g = sbt_broadcast_graph(4, 0, 64)
        assert len(g.sends) == 15

    def test_all_single_hop(self):
        from repro.core.addressing import hamming

        g = sbt_broadcast_graph(4, 9, 64)
        assert all(hamming(s.src, s.dst) == 1 for s in g.sends)

    def test_nonzero_root(self):
        res = simulate_comm(sbt_broadcast_graph(3, 5, 64))
        assert set(res.node_done_at) == set(range(8)) - {5}

    def test_rounds_unit_cost(self):
        res = simulate_comm(sbt_broadcast_graph(4, 0, 1), timings=STEP)
        assert res.completion_time == pytest.approx(4.0)

    def test_contention_free(self):
        res = simulate_comm(sbt_broadcast_graph(5, 0, 4096), timings=NCUBE2)
        assert res.total_blocked_time == 0.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            sbt_broadcast_graph(3, 8, 64)
        with pytest.raises(ValueError):
            sbt_broadcast_graph(3, 0, 0)


class TestEquivalenceWithUCube:
    """On a full broadcast U-cube *is* the binomial tree."""

    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_same_completion_time_one_port_structure(self, n):
        dests = [u for u in range(1 << n) if u != 0]
        tree = UCube().build_tree(n, 0, dests)
        mc = simulate_multicast(tree, 4096, NCUBE2, ALL_PORT)
        sbt = simulate_comm(sbt_broadcast_graph(n, 0, 4096), NCUBE2, ALL_PORT)
        assert mc.completion_time == pytest.approx(sbt.completion_time)

    def test_same_tree_edges(self):
        n = 4
        dests = [u for u in range(1 << n) if u != 0]
        tree = UCube().build_tree(n, 0, dests)
        g = sbt_broadcast_graph(n, 0, 64)
        assert sorted((s.src, s.dst) for s in tree.sends) == sorted(
            (s.src, s.dst) for s in g.sends
        )

    def test_one_port_broadcast_steps(self):
        n = 4
        dests = [u for u in range(1 << n) if u != 0]
        steps = UCube().schedule(n, 0, dests, ONE_PORT).max_step
        assert steps == n
