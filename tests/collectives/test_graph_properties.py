"""Property-based tests for the CommGraph execution engine.

Random dependency forests of sized unicasts must always drain: every
send delivered, causality respected, results deterministic.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.collectives.graph import CommGraph, simulate_comm
from repro.multicast.ports import ALL_PORT, ONE_PORT, k_port
from repro.simulator.params import NCUBE2, STEP


@st.composite
def random_comm_graphs(draw):
    """A random valid CommGraph on a small cube.

    Each new send's source is either a fresh initiator or the receiver
    of an earlier send (in which case it depends on that delivery) --
    by construction the dependency relation is a forest and every send
    is eventually enabled.
    """
    n = draw(st.integers(1, 4))
    size = 1 << n
    g = CommGraph(n)
    count = draw(st.integers(1, 16))
    for _ in range(count):
        if g.sends and draw(st.booleans()):
            dep = draw(st.integers(0, len(g.sends) - 1))
            src = g.sends[dep].dst
            deps = [dep]
        else:
            src = draw(st.integers(0, size - 1))
            deps = []
        dst = draw(st.integers(0, size - 1).filter(lambda x: x != src))
        msize = draw(st.integers(1, 4096))
        g.add(src, dst, msize, deps=deps)
    return g


class TestRandomGraphs:
    @given(g=random_comm_graphs())
    def test_all_sends_delivered(self, g):
        res = simulate_comm(g, NCUBE2, ALL_PORT)
        assert set(res.send_received_at) == {s.sid for s in g.sends}

    @given(g=random_comm_graphs())
    def test_causality(self, g):
        """A send is never received before all its dependencies."""
        res = simulate_comm(g, NCUBE2, ALL_PORT)
        for s in g.sends:
            for d in s.deps:
                assert res.send_received_at[s.sid] > res.send_received_at[d]

    @given(g=random_comm_graphs())
    def test_deterministic(self, g):
        a = simulate_comm(g, NCUBE2, ALL_PORT)
        b = simulate_comm(g, NCUBE2, ALL_PORT)
        assert a.send_received_at == b.send_received_at

    @settings(max_examples=30)
    @given(g=random_comm_graphs())
    def test_port_models_bounded_by_serial(self, g):
        """Sound bound: no port model is slower than issuing every send
        of the whole graph back to back (full serialization)."""
        serial = sum(
            NCUBE2.unicast_latency(s.size, max(1, bin(s.src ^ s.dst).count("1")))
            for s in g.sends
        )
        for ports in (ALL_PORT, k_port(2), ONE_PORT):
            assert simulate_comm(g, NCUBE2, ports).completion_time <= serial + 1e-6

    def test_port_scheduling_anomaly_exists(self):
        """More ports are NOT always faster (a Graham-style scheduling
        anomaly): with extra ports, all sends enter the channel FIFOs at
        once and a worse acquisition order can emerge.  Found by the
        property test above in an earlier form; kept as a regression
        documenting that monotonicity in the port count must not be
        assumed (and is not asserted anywhere in the library).

        Instance: a 2-cube, unit messages; node 3's sends share their
        first channel, node 1 competes for (1, 0)."""
        g = CommGraph(2)
        for src, dst in [(1, 0), (3, 0), (1, 0), (3, 1), (3, 0)]:
            g.add(src, dst, 1)
        one = simulate_comm(g, STEP, ONE_PORT).completion_time
        allp = simulate_comm(g, STEP, ALL_PORT).completion_time
        assert allp > one  # 5.0 vs 4.0: the anomaly

    @given(g=random_comm_graphs())
    def test_delivery_lower_bound(self, g):
        """No send is received faster than its contention-free latency."""
        from repro.core.addressing import hamming

        res = simulate_comm(g, NCUBE2, ALL_PORT)
        for s in g.sends:
            bound = NCUBE2.unicast_latency(s.size, hamming(s.src, s.dst))
            assert res.send_received_at[s.sid] >= bound - 1e-6
