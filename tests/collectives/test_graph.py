"""Tests for CommGraph construction and timed execution."""

from __future__ import annotations

import pytest

from repro.collectives.graph import CommGraph, simulate_comm
from repro.multicast.ports import ALL_PORT, ONE_PORT
from repro.simulator.params import NCUBE2, STEP, Timings


class TestGraphConstruction:
    def test_add_returns_sequential_ids(self):
        g = CommGraph(3)
        assert g.add(0, 1, 10) == 0
        assert g.add(1, 3, 10, deps=[0]) == 1

    def test_dependency_must_exist(self):
        g = CommGraph(3)
        with pytest.raises(ValueError):
            g.add(0, 1, 10, deps=[5])

    def test_dependency_must_deliver_to_sender(self):
        g = CommGraph(3)
        g.add(0, 1, 10)
        with pytest.raises(ValueError):
            g.add(2, 3, 10, deps=[0])  # send 0 delivers to 1, not 2

    def test_total_bytes(self):
        g = CommGraph(3)
        g.add(0, 1, 10)
        g.add(0, 2, 32)
        assert g.total_bytes == 42

    def test_validate_block_causality(self):
        g = CommGraph(3)
        g.seed(0, [7])
        g.add(0, 1, 10, blocks=[7])
        g.validate()
        bad = CommGraph(3)
        bad.add(0, 1, 10, blocks=[7])  # 0 never held block 7
        with pytest.raises(ValueError):
            bad.validate()

    def test_validate_blocks_through_deps(self):
        g = CommGraph(3)
        g.seed(0, [1, 2])
        s0 = g.add(0, 1, 10, blocks=[1, 2])
        g.add(1, 3, 10, deps=[s0], blocks=[2])
        g.validate()


class TestExecution:
    def test_chain_timing(self):
        """0 -> 1 -> 3 with unit costs: second send delivers at 2."""
        g = CommGraph(3)
        s0 = g.add(0, 1, 1)
        s1 = g.add(1, 3, 1, deps=[s0])
        res = simulate_comm(g, timings=STEP, ports=ALL_PORT)
        assert res.send_received_at[s0] == pytest.approx(1.0)
        assert res.send_received_at[s1] == pytest.approx(2.0)
        assert res.completion_time == pytest.approx(2.0)

    def test_multi_dependency_waits_for_all(self):
        """A send with two deps fires only after the slower one."""
        g = CommGraph(3)
        a = g.add(0, 3, 1)  # 2 hops, still 1 time unit
        b = g.add(1, 3, 1)
        c = g.add(3, 7, 1, deps=[a, b])
        res = simulate_comm(g, timings=STEP)
        assert res.send_received_at[c] >= max(
            res.send_received_at[a], res.send_received_at[b]
        ) + 1.0 - 1e-9

    def test_independent_sends_parallel(self):
        g = CommGraph(3)
        for d in range(3):
            g.add(0, 1 << d, 1)
        res = simulate_comm(g, timings=STEP, ports=ALL_PORT)
        assert res.completion_time == pytest.approx(1.0)

    def test_one_port_serializes(self):
        g = CommGraph(3)
        for d in range(3):
            g.add(0, 1 << d, 1)
        res = simulate_comm(g, timings=STEP, ports=ONE_PORT)
        assert res.completion_time == pytest.approx(3.0)

    def test_block_tracking(self):
        g = CommGraph(3)
        g.seed(0, [10, 11])
        s0 = g.add(0, 1, 8, blocks=[10, 11])
        g.add(1, 3, 4, deps=[s0], blocks=[11])
        res = simulate_comm(g)
        assert res.final_blocks[1] == frozenset({10, 11})
        assert res.final_blocks[3] == frozenset({11})

    def test_sizes_affect_timing(self):
        t = Timings(t_setup=0, t_recv=0, t_byte=1.0, t_hop=0)
        g = CommGraph(3)
        g.add(0, 1, 100)
        res = simulate_comm(g, timings=t)
        assert res.completion_time == pytest.approx(100.0)

    def test_deterministic(self):
        g = CommGraph(4)
        prev = []
        for d in range(4):
            prev.append(g.add(0, 1 << d, 64))
        for d in range(3):
            g.add(1 << d, (1 << d) | 8, 64, deps=[prev[d]])
        r1 = simulate_comm(g, NCUBE2)
        r2 = simulate_comm(g, NCUBE2)
        assert r1.send_received_at == r2.send_received_at

    def test_empty_graph(self):
        res = simulate_comm(CommGraph(3))
        assert res.completion_time == 0.0
        assert res.events == 0
