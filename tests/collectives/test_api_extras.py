"""Tests for the facade's extended broadcast/pipelining methods and the
Table JSON round-trip / CLI --json path."""

from __future__ import annotations

import json

import pytest

from repro.analysis.tables import Table
from repro.cli import main
from repro.collectives import HypercubeCollectives


class TestFacadeExtras:
    def test_esbt_broadcast(self):
        comm = HypercubeCollectives(5)
        big = 65536
        plain = comm.broadcast(0, big)
        esbt = comm.broadcast_esbt(0, big)
        assert esbt.completion_time < plain.completion_time
        assert esbt.total_blocked_time == 0.0

    def test_pipelined_multicast_auto_segments(self):
        comm = HypercubeCollectives(5, algorithm="ucube")
        dests = [1, 3, 7, 15, 31]
        plain = comm.multicast(0, dests, 32768)
        piped = comm.multicast_pipelined(0, dests, 32768)
        assert piped.completion_time < plain.completion_time

    def test_pipelined_multicast_explicit_segments(self):
        comm = HypercubeCollectives(4)
        res = comm.multicast_pipelined(0, [1, 3, 5], 1024, segments=2)
        for d in (1, 3, 5):
            assert res.final_blocks[d] == frozenset({0, 1})


class TestTableJson:
    def test_roundtrip(self):
        t = Table("T", "m", [1, 2], {"a": [1.5, 2.5]}, notes=["n"])
        back = Table.from_json(t.to_json())
        assert back.title == "T"
        assert back.x_values == [1, 2]
        assert back.columns == {"a": [1.5, 2.5]}
        assert back.notes == ["n"]

    def test_valid_json(self):
        t = Table("T", "m", [1], {"a": [1.0]})
        data = json.loads(t.to_json())
        assert data["x_label"] == "m"

    def test_cli_json_output(self, capsys):
        rc = main(["experiment", "ablation-wsort", "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert "wsort" in data["columns"]
