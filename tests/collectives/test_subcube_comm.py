"""Tests for subcube communicators and graph relabel/merge.

The headline property is Theorem 2 made operational: collectives on
disjoint subcubes use disjoint channels, so running them concurrently
costs nothing.
"""

from __future__ import annotations

import pytest

from repro.collectives import HypercubeCollectives, simulate_comm
from repro.collectives.graph import CommGraph
from repro.core.subcube import Subcube
from repro.simulator.params import NCUBE2


@pytest.fixture
def comm6():
    return HypercubeCollectives(6)


class TestRelabelMerge:
    def test_relabel_preserves_structure(self):
        g = CommGraph(2)
        g.seed(0, [1])
        s0 = g.add(0, 1, 10, blocks=[1])
        g.add(1, 3, 10, deps=[s0], blocks=[1])
        out = g.relabel(lambda u: u + 4, n=3)
        assert [(s.src, s.dst) for s in out.sends] == [(4, 5), (5, 7)]
        assert out.sends[1].deps == (0,)
        out.validate()

    def test_merge_rebases_deps_and_blocks(self):
        g1 = CommGraph(3)
        a = g1.add(0, 1, 8)
        g1.add(1, 3, 8, deps=[a])
        g2 = CommGraph(3)
        b = g2.add(4, 5, 8)
        g2.add(5, 7, 8, deps=[b])
        merged = CommGraph.merge([g1, g2])
        assert len(merged.sends) == 4
        assert merged.sends[3].deps == (2,)

    def test_merge_rejects_mismatched(self):
        with pytest.raises(ValueError):
            CommGraph.merge([CommGraph(3), CommGraph(4)])
        with pytest.raises(ValueError):
            CommGraph.merge([])

    def test_merge_namespaces_blocks(self):
        g1 = CommGraph(3)
        g1.seed(0, [5])
        g1.add(0, 1, 8, blocks=[5])
        g2 = CommGraph(3)
        g2.seed(2, [5])
        g2.add(2, 3, 8, blocks=[5])
        merged = CommGraph.merge([g1, g2])
        res = simulate_comm(merged)
        assert res.final_blocks[1] != res.final_blocks[3]


class TestSubcubeCommunicator:
    def test_translate(self, comm6):
        sc = comm6.subcube(Subcube(6, 3, 0b101))
        assert sc.size == 8
        assert sc.translate(0) == 0b101000
        assert sc.translate(7) == 0b101111
        with pytest.raises(ValueError):
            sc.translate(8)

    def test_dimension_mismatch_rejected(self, comm6):
        with pytest.raises(ValueError):
            comm6.subcube(Subcube(5, 3, 0b01))

    def test_zero_dim_rejected(self, comm6):
        with pytest.raises(ValueError):
            comm6.subcube(Subcube(6, 0, 0b000111))

    def test_scatter_within_subcube(self, comm6):
        sc = comm6.subcube(Subcube(6, 3, 0b011))
        res = sc.scatter(root_rank=0, block_size=128)
        # every member node receives its rank's block
        for rank in range(1, 8):
            addr = sc.translate(rank)
            assert rank in res.final_blocks[addr]

    def test_traffic_confined_to_subcube(self, comm6):
        """All channels used by a subcube collective have their tail in
        the subcube and cross only its free dimensions (Theorem 2)."""
        sub = Subcube(6, 3, 0b110)
        sc = comm6.subcube(sub)
        g = sc.allgather_graph(block_size=64)
        res = simulate_comm(g, NCUBE2, trace=True)
        del res
        # structural check on the graph itself
        for s in g.sends:
            assert s.src in sub and s.dst in sub
        # path check: E-cube paths between subcube nodes stay inside
        from repro.core.paths import ecube_path

        for s in g.sends:
            assert all(w in sub for w in ecube_path(s.src, s.dst))

    def test_disjoint_subcubes_do_not_interfere(self, comm6):
        """Concurrent barriers on the two halves of the machine complete
        exactly as fast as either would alone, with zero blocking."""
        lo = comm6.subcube(Subcube(6, 5, 0))
        hi = comm6.subcube(Subcube(6, 5, 1))
        alone = simulate_comm(lo.barrier_graph(), NCUBE2)
        merged = CommGraph.merge([lo.barrier_graph(), hi.barrier_graph()])
        both = simulate_comm(merged, NCUBE2)
        assert both.total_blocked_time == 0.0
        assert both.completion_time == pytest.approx(alone.completion_time)

    def test_multicast_within_subcube(self, comm6):
        sc = comm6.subcube(Subcube(6, 4, 0b10))
        res = sc.multicast(0, [1, 5, 9, 15], size=1024)
        assert res.total_blocked_time == 0.0
        assert set(res.delays) == {sc.translate(r) for r in (1, 5, 9, 15)}

    def test_allreduce_and_gather_complete(self, comm6):
        sc = comm6.subcube(Subcube(6, 2, 0b1011))
        assert sc.allreduce(64).completion_time > 0
        g = sc.gather(root_rank=2, block_size=32)
        root_addr = sc.translate(2)
        assert len(g.final_blocks[root_addr]) == 4
