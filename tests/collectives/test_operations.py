"""Tests for the collective operations: correctness of data movement
and of the timing structure."""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given

from repro.collectives import (
    HypercubeCollectives,
    allgather_graph,
    allreduce_graph,
    barrier_graph,
    gather_graph,
    reduce_graph,
    scatter_graph,
    simulate_comm,
)
from repro.multicast.ports import ALL_PORT, ONE_PORT
from repro.simulator.params import NCUBE2, STEP, Timings

dims = st.integers(1, 5)


class TestScatter:
    @given(n=dims, data=st.data())
    def test_every_node_gets_its_block(self, n, data):
        root = data.draw(st.integers(0, (1 << n) - 1))
        g = scatter_graph(n, root, block_size=16)
        res = simulate_comm(g)
        for u in range(1 << n):
            assert u in res.final_blocks.get(u, frozenset()) or u == root

    def test_total_traffic(self):
        """Recursive halving moves exactly (N - 1) * block bytes...
        counted per block-distance: each block travels along the
        binomial tree, so total bytes = block * sum over subtrees."""
        n, block = 4, 8
        g = scatter_graph(n, 0, block)
        # every node except the root receives exactly one message
        assert len(g.sends) == (1 << n) - 1
        # each send carries subcube-size blocks
        sizes = sorted(s.size for s in g.sends)
        assert sizes[-1] == block * (1 << (n - 1))
        assert sizes[0] == block

    def test_blocks_match_subcubes(self):
        g = scatter_graph(3, 0, 4)
        for s in g.sends:
            assert s.dst in s.blocks
            assert s.size == 4 * len(s.blocks)

    def test_critical_path_halving(self):
        """With pure bandwidth costs, scatter time ~ block * (N - 1) *
        t_byte (the halving series), far less than N sends of the whole
        payload."""
        t = Timings(t_setup=0, t_recv=0, t_byte=1.0, t_hop=0)
        n, block = 4, 100
        res = simulate_comm(scatter_graph(n, 0, block), timings=t, ports=ALL_PORT)
        expected = block * ((1 << n) - 1)  # 800+400+200+100 on the root's path
        assert res.completion_time == pytest.approx(expected)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            scatter_graph(3, 9, 16)
        with pytest.raises(ValueError):
            scatter_graph(3, 0, 0)


class TestGather:
    @given(n=dims, data=st.data())
    def test_root_collects_everything(self, n, data):
        root = data.draw(st.integers(0, (1 << n) - 1))
        res = simulate_comm(gather_graph(n, root, 16))
        assert res.final_blocks[root] == frozenset(range(1 << n))

    def test_mirror_of_scatter(self):
        """Gather is scatter reversed: same completion time under the
        symmetric cost model."""
        s = simulate_comm(scatter_graph(4, 0, 64))
        gth = simulate_comm(gather_graph(4, 0, 64))
        assert gth.completion_time == pytest.approx(s.completion_time)

    def test_send_count(self):
        assert len(gather_graph(4, 5, 8).sends) == 15


class TestAllgather:
    @given(n=st.integers(1, 4))
    def test_everyone_has_everything(self, n):
        res = simulate_comm(allgather_graph(n, 8))
        for u in range(1 << n):
            assert res.final_blocks[u] == frozenset(range(1 << n))

    def test_send_count_and_sizes(self):
        n, block = 3, 10
        g = allgather_graph(n, block)
        assert len(g.sends) == n * (1 << n)
        # round d carries 2^d blocks
        sizes = sorted({s.size for s in g.sends})
        assert sizes == [10, 20, 40]

    def test_no_contention(self):
        """Dimension exchanges use opposite-direction channel pairs:
        zero blocking."""
        res = simulate_comm(allgather_graph(4, 32), timings=NCUBE2, ports=ALL_PORT)
        assert res.total_blocked_time == 0.0


class TestReduceAllreduceBarrier:
    @given(n=dims, data=st.data())
    def test_reduce_structure(self, n, data):
        root = data.draw(st.integers(0, (1 << n) - 1))
        g = reduce_graph(n, root, 128)
        assert len(g.sends) == (1 << n) - 1
        # every node except the root sends exactly once
        senders = [s.src for s in g.sends]
        assert sorted(senders) == sorted(set(range(1 << n)) - {root})
        res = simulate_comm(g)
        assert root in res.node_done_at

    def test_reduce_constant_size(self):
        g = reduce_graph(4, 0, 77)
        assert {s.size for s in g.sends} == {77}

    def test_allreduce_rounds(self):
        n = 3
        g = allreduce_graph(n, 1)
        assert len(g.sends) == n * (1 << n)
        res = simulate_comm(g, timings=STEP)
        # unit-cost recursive doubling: n rounds
        assert res.completion_time == pytest.approx(n)

    def test_allreduce_all_finish_together(self):
        res = simulate_comm(allreduce_graph(3, 64), timings=STEP)
        times = {res.node_done_at[u] for u in range(8)}
        assert len(times) == 1

    def test_barrier_is_tiny_allreduce(self):
        g = barrier_graph(4)
        assert {s.size for s in g.sends} == {1}

    def test_reduce_faster_than_allreduce_plus_nothing(self):
        """reduce <= allreduce in completion time (half the rounds'
        participants)."""
        r = simulate_comm(reduce_graph(4, 0, 4096)).completion_time
        ar = simulate_comm(allreduce_graph(4, 4096)).completion_time
        assert r <= ar + 1e-9


class TestFacade:
    def test_size(self):
        assert HypercubeCollectives(5).size == 32

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            HypercubeCollectives(0)

    def test_multicast_uses_configured_algorithm(self):
        comm = HypercubeCollectives(4, algorithm="wsort")
        r = comm.multicast(0, [1, 3, 5, 7, 11, 12, 14, 15], 4096)
        assert r.total_blocked_time == 0.0

    def test_broadcast_reaches_all(self):
        comm = HypercubeCollectives(3)
        r = comm.broadcast(2, 256)
        assert set(r.delays) == set(range(8)) - {2}

    def test_one_port_slower(self):
        fast = HypercubeCollectives(4, ports=ALL_PORT).broadcast(0, 4096)
        slow = HypercubeCollectives(4, ports=ONE_PORT).broadcast(0, 4096)
        assert fast.avg_delay < slow.avg_delay

    def test_barrier_completion(self):
        assert HypercubeCollectives(3).barrier().completion_time > 0

    def test_unknown_algorithm(self):
        with pytest.raises(KeyError):
            HypercubeCollectives(3, algorithm="nope")
