"""Tests for the complete exchange (all-to-all personalized)."""

from __future__ import annotations

import pytest

from repro.collectives import HypercubeCollectives, simulate_comm
from repro.collectives.alltoall import (
    _block_id,
    alltoall_direct_graph,
    alltoall_graph,
)
from repro.simulator.params import NCUBE2


def expected_blocks(u: int, n: int) -> frozenset[int]:
    """After a complete exchange node u holds every block destined to it
    plus its own originals that stayed (dst == u entry)."""
    return frozenset(_block_id(src, u, n) for src in range(1 << n))


class TestDimensionExchange:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_every_block_arrives(self, n):
        res = simulate_comm(alltoall_graph(n, 16))
        for u in range(1 << n):
            assert expected_blocks(u, n) <= res.final_blocks[u]

    def test_send_count(self):
        n = 3
        g = alltoall_graph(n, 8)
        assert len(g.sends) == n * (1 << n)

    def test_round_payloads_constant(self):
        """Each dimension-exchange round moves exactly N/2 blocks/node."""
        n, block = 3, 8
        g = alltoall_graph(n, block)
        assert {s.size for s in g.sends} == {block * (1 << (n - 1))}

    def test_no_channel_blocking(self):
        res = simulate_comm(alltoall_graph(3, 64), timings=NCUBE2)
        assert res.total_blocked_time == 0.0

    def test_bad_block_size(self):
        with pytest.raises(ValueError):
            alltoall_graph(3, 0)


class TestDirectExchange:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_every_block_arrives(self, n):
        res = simulate_comm(alltoall_direct_graph(n, 16))
        for u in range(1 << n):
            assert expected_blocks(u, n) <= res.final_blocks[u]

    def test_send_count_and_sizes(self):
        n, block = 3, 8
        g = alltoall_direct_graph(n, block)
        assert len(g.sends) == ((1 << n) - 1) * (1 << n)
        assert {s.size for s in g.sends} == {block}

    def test_rounds_are_matchings(self):
        """Within each round the (src, dst) pairs form a perfect
        matching under XOR."""
        n = 3
        g = alltoall_direct_graph(n, 8)
        per_round = 1 << n
        for r in range((1 << n) - 1):
            round_sends = g.sends[r * per_round : (r + 1) * per_round]
            assert {s.src for s in round_sends} == set(range(1 << n))
            assert {s.dst for s in round_sends} == set(range(1 << n))
            assert all(s.dst == s.src ^ (r + 1) for s in round_sends)


class TestTradeoff:
    def test_traffic_vs_rounds(self):
        """Dimension exchange sends fewer, bigger messages; direct sends
        minimal bytes.  For large blocks the direct schedule moves
        strictly fewer bytes."""
        n, block = 4, 1024
        dim = alltoall_graph(n, block)
        direct = alltoall_direct_graph(n, block)
        assert direct.total_bytes < dim.total_bytes
        # dim exchange: n rounds * N nodes * (N/2 blocks); direct: N(N-1)
        assert dim.total_bytes == n * (1 << n) * (1 << (n - 1)) * block
        assert direct.total_bytes == (1 << n) * ((1 << n) - 1) * block

    def test_facade(self):
        comm = HypercubeCollectives(3)
        a = comm.alltoall(block_size=64)
        b = comm.alltoall(block_size=64, direct=True)
        assert a.completion_time > 0 and b.completion_time > 0
