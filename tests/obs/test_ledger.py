"""Tests for the benchmark ledger: entries, trajectory, regression gate."""

from __future__ import annotations

import json

import pytest

from repro.obs import ledger as bench_ledger
from repro.obs.ledger import (
    BENCHMARK_NAMES,
    LEDGER_SCHEMA,
    Regression,
    compare_entries,
    env_fingerprint,
    host_class,
    latest_entry,
    ledger_path,
    load_ledger,
    run_benchmark_suite,
    save_ledger,
)


def _entry(quick: bool = True, **walls: float) -> dict:
    benchmarks = {
        name: {"wall_seconds": wall, "repeat": 1, "params": {}, "phases": {}}
        for name, wall in walls.items()
    }
    return {"recorded_at": "2026-01-01T00:00:00Z", "quick": quick, "benchmarks": benchmarks}


class TestHostClass:
    def test_shape(self):
        parts = host_class().split("-")
        assert len(parts) >= 4
        assert parts[-1].replace(".", "").isdigit()

    def test_ledger_path_embeds_host(self, tmp_path):
        p = ledger_path(tmp_path)
        assert p.name == f"BENCH_{host_class()}.json"
        assert ledger_path(tmp_path, host="other").name == "BENCH_other.json"

    def test_env_fingerprint_json_safe(self):
        json.dumps(env_fingerprint())


class TestSuite:
    @pytest.fixture(scope="class")
    def entry(self):
        return run_benchmark_suite(quick=True, repeat=1)

    def test_entry_shape(self, entry):
        assert entry["quick"] is True
        assert set(entry["benchmarks"]) == set(BENCHMARK_NAMES)
        assert entry["env"]["python"]
        for res in entry["benchmarks"].values():
            assert res["wall_seconds"] > 0.0
            assert res["repeat"] == 1
            assert res["params"]["iters"] >= 1

    def test_phase_breakdowns_present(self, entry):
        """Every benchmark's traced run decomposes into named phases
        (the per-phase cost decomposition the ledger exists to track)."""
        assert "schedule.build" in entry["benchmarks"]["build-tree/wsort"]["phases"]
        assert "verify.contention" in entry["benchmarks"]["verify/contention"]["phases"]
        assert "simulate" in entry["benchmarks"]["simulate/wsort"]["phases"]
        sweep = entry["benchmarks"]["sweep/fig11-point"]
        assert "cache.disk_read" not in sweep["phases"]  # in-memory cache
        assert 0.0 < sweep["cache"]["hit_ratio"] <= 1.0

    def test_entry_is_json_safe(self, entry):
        json.dumps(entry)


class TestLedgerFile:
    def test_missing_file_is_fresh_ledger(self, tmp_path):
        book = load_ledger(tmp_path / "absent.json")
        assert book == {
            "schema": LEDGER_SCHEMA,
            "host_class": host_class(),
            "entries": [],
        }

    def test_save_load_round_trip(self, tmp_path):
        path = ledger_path(tmp_path)
        book = load_ledger(path)
        book["entries"].append(_entry(**{"weighted-sort": 0.01}))
        save_ledger(path, book)
        assert load_ledger(path) == book
        assert path.read_text().endswith("\n")

    def test_corrupt_file_raises_value_error(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text("{torn", encoding="utf-8")
        with pytest.raises(ValueError, match="corrupt"):
            load_ledger(path)
        path.write_text('["not", "a", "ledger"]', encoding="utf-8")
        with pytest.raises(ValueError, match="corrupt"):
            load_ledger(path)

    def test_future_schema_rejected(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"schema": 999, "entries": []}))
        with pytest.raises(ValueError, match="schema"):
            load_ledger(path)

    def test_latest_entry_filters_by_mode(self):
        book = {
            "entries": [
                _entry(quick=True, a=1.0),
                _entry(quick=False, a=2.0),
                _entry(quick=True, a=3.0),
            ]
        }
        assert latest_entry(book)["benchmarks"]["a"]["wall_seconds"] == 3.0
        assert latest_entry(book, quick=False)["benchmarks"]["a"]["wall_seconds"] == 2.0
        assert latest_entry(book, quick=True)["benchmarks"]["a"]["wall_seconds"] == 3.0
        assert latest_entry({"entries": []}) is None


class TestCompare:
    def test_no_baseline_no_regressions(self):
        assert compare_entries(None, _entry(a=1.0)) == []

    def test_regression_beyond_threshold(self):
        regs = compare_entries(
            _entry(a=0.010, b=0.010), _entry(a=0.020, b=0.011), threshold=1.5
        )
        assert [r.name for r in regs] == ["a"]
        assert regs[0].ratio == pytest.approx(2.0)
        assert "a:" in str(regs[0]) and "2.00x" in str(regs[0])

    def test_min_delta_filters_micro_jitter(self):
        # 10x slower but only 90 microseconds: below the jitter floor
        assert compare_entries(_entry(a=0.00001), _entry(a=0.0001), threshold=1.5) == []
        # same ratio at batch scale: real regression
        assert compare_entries(_entry(a=0.01), _entry(a=0.1), threshold=1.5) != []

    def test_new_benchmarks_skipped(self):
        assert compare_entries(_entry(a=1.0), _entry(b=99.0)) == []

    def test_improvements_never_flag(self):
        assert compare_entries(_entry(a=1.0), _entry(a=0.1)) == []

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError, match="threshold"):
            compare_entries(_entry(a=1.0), _entry(a=1.0), threshold=0.0)

    def test_zero_baseline_ratio_is_inf(self):
        reg = Regression("x", 0.0, 1.0)
        assert reg.ratio == float("inf")


class TestDefaults:
    def test_repeat_defaults(self, monkeypatch):
        calls = []
        monkeypatch.setattr(
            bench_ledger,
            "_run_one",
            lambda name, quick, repeat: calls.append(repeat) or {"wall_seconds": 1.0},
        )
        run_benchmark_suite(quick=True)
        assert set(calls) == {3}
        calls.clear()
        run_benchmark_suite(quick=False)
        assert set(calls) == {5}
