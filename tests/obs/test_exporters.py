"""Tests for the Chrome trace-event and Prometheus exporters."""

from __future__ import annotations

import json

import pytest

from repro.obs.exporters import (
    to_chrome_trace,
    to_prometheus,
    write_chrome_trace,
    write_prometheus,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace_spans import Span, Tracer


def _sample_tracer() -> Tracer:
    t = Tracer(trace_id="feedbeefcafe0123")
    with t.span("schedule.build", algorithm="wsort", n=6):
        with t.span("schedule.greedy", sends=12):
            pass
    t.instant("resilience.sweep-resumed", skipped=4)
    t.start_span("parallel.chunk")  # left open: a dead worker's span
    return t


class TestChromeTrace:
    def test_complete_events_have_ts_and_dur(self):
        doc = to_chrome_trace(_sample_tracer())
        events = {e["name"]: e for e in doc["traceEvents"]}
        build = events["schedule.build"]
        assert build["ph"] == "X"
        assert build["dur"] >= events["schedule.greedy"]["dur"] >= 0.0
        assert build["cat"] == "schedule"
        assert build["args"]["algorithm"] == "wsort"
        assert "span_id" in build["args"]
        greedy = events["schedule.greedy"]
        assert greedy["args"]["parent_id"] == build["args"]["span_id"]

    def test_instants_and_partials_are_instant_events(self):
        doc = to_chrome_trace(_sample_tracer())
        events = {e["name"]: e for e in doc["traceEvents"]}
        assert events["resilience.sweep-resumed"]["ph"] == "i"
        assert events["resilience.sweep-resumed"]["s"] == "t"
        chunk = events["parallel.chunk"]
        assert chunk["ph"] == "i"
        assert chunk["args"]["partial"] is True

    def test_object_format_with_trace_id(self):
        doc = to_chrome_trace(_sample_tracer())
        assert doc["otherData"] == {"trace_id": "feedbeefcafe0123"}
        assert doc["displayTimeUnit"] == "ms"

    def test_accepts_span_lists_and_dicts(self):
        spans = [Span("t", "s1", None, "a", 0.0, 5.0)]
        from_spans = to_chrome_trace(spans)
        from_dicts = to_chrome_trace([s.to_dict() for s in spans], trace_id="t")
        assert from_spans["traceEvents"] == from_dicts["traceEvents"]
        assert from_dicts["otherData"] == {"trace_id": "t"}

    def test_write_round_trips_as_json(self, tmp_path):
        path = tmp_path / "trace.json"
        count = write_chrome_trace(path, _sample_tracer())
        doc = json.loads(path.read_text())
        assert count == len(doc["traceEvents"]) == 4
        # every event is Perfetto-loadable: required keys present
        for event in doc["traceEvents"]:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(event)


class TestPrometheus:
    def _registry(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("sim.events").inc(42)
        reg.gauge("sim.parallel.jobs").set(4)
        with reg.timer("sim.wall").time():
            pass
        hist = reg.histogram("sim.delay_us", bounds=(10.0, 100.0))
        for v in (5.0, 50.0, 500.0):
            hist.observe(v)
        return reg

    def test_counter_and_gauge_lines(self):
        text = to_prometheus(self._registry())
        assert "# TYPE repro_sim_events counter" in text
        assert "repro_sim_events 42" in text
        assert "# TYPE repro_sim_parallel_jobs gauge" in text
        assert "repro_sim_parallel_jobs 4" in text
        assert "repro_sim_parallel_jobs_min" in text
        assert "repro_sim_parallel_jobs_max" in text

    def test_timer_becomes_summary(self):
        text = to_prometheus(self._registry())
        assert "# TYPE repro_sim_wall_seconds summary" in text
        assert "repro_sim_wall_seconds_count 1" in text
        assert "repro_sim_wall_seconds_sum" in text

    def test_histogram_buckets_cumulative_with_inf(self):
        text = to_prometheus(self._registry())
        assert 'repro_sim_delay_us_bucket{le="10"} 1' in text
        assert 'repro_sim_delay_us_bucket{le="100"} 2' in text
        assert 'repro_sim_delay_us_bucket{le="+Inf"} 3' in text
        assert "repro_sim_delay_us_count 3" in text
        assert "repro_sim_delay_us_sum 555" in text

    def test_names_sanitized(self):
        reg = MetricsRegistry()
        reg.counter("weird-name.with/slashes").inc()
        text = to_prometheus(reg, prefix="p")
        assert "p_weird_name_with_slashes 1" in text

    def test_plain_snapshot_accepted(self):
        snap = {"c": {"type": "counter", "value": 7.0}}
        assert "repro_c 7" in to_prometheus(snap)

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown instrument"):
            to_prometheus({"x": {"type": "mystery"}})

    def test_empty_snapshot_is_empty_text(self):
        assert to_prometheus({}) == ""

    def test_write_returns_line_count(self, tmp_path):
        path = tmp_path / "m.prom"
        lines = write_prometheus(path, self._registry())
        assert lines == len(path.read_text().splitlines())
