"""Tests for the simulator profiling probes and kernel hooks."""

from __future__ import annotations

from repro.multicast.registry import get_algorithm
from repro.obs.probes import (
    CallbackTimeProbe,
    CancellationProbe,
    HeapDepthProbe,
    default_probes,
    probe_summaries,
)
from repro.simulator.engine import Simulator
from repro.simulator.run import simulate_multicast


def noop() -> None:
    pass


class TestKernelHooks:
    def test_no_probes_by_default(self):
        assert Simulator().probes == ()

    def test_add_probe(self):
        sim = Simulator()
        probe = HeapDepthProbe()
        sim.add_probe(probe)
        assert sim.probes == (probe,)

    def test_on_schedule_and_on_fire_called(self):
        calls: list[tuple[str, float]] = []

        class Recorder:
            name = "recorder"

            def on_schedule(self, sim, event):
                calls.append(("schedule", sim.now))

            def on_fire(self, sim, event, wall_seconds):
                calls.append(("fire", wall_seconds))
                assert wall_seconds >= 0.0

            def summary(self):
                return {}

        sim = Simulator(probes=[Recorder()])
        sim.schedule(1.0, noop)
        sim.schedule(2.0, noop)
        sim.run()
        kinds = [k for k, _ in calls]
        assert kinds == ["schedule", "schedule", "fire", "fire"]


class TestCallbackTimeProbe:
    def test_groups_by_callback(self):
        probe = CallbackTimeProbe()
        sim = Simulator(probes=[probe])
        for i in range(3):
            sim.schedule(float(i), noop)
        sim.schedule(5.0, sum, range(10))
        sim.run()
        summary = probe.summary()
        by_cb = summary["by_callback"]
        assert by_cb["noop"]["fires"] == 3
        assert len(by_cb) == 2
        assert summary["total_wall_seconds"] >= 0.0


class TestHeapDepthProbe:
    def test_peak_depth(self):
        probe = HeapDepthProbe()
        sim = Simulator(probes=[probe])
        for i in range(5):
            sim.schedule(float(i), noop)
        sim.run()
        assert probe.summary() == {"peak": 5, "scheduled": 5}


class TestCancellationProbe:
    def test_cancellation_rate(self):
        probe = CancellationProbe()
        sim = Simulator(probes=[probe])
        sim.schedule(1.0, noop)
        doomed = sim.schedule(2.0, noop)
        doomed.cancel()
        sim.schedule(3.0, noop)
        sim.run()
        summary = probe.summary()
        assert summary["scheduled"] == 3
        assert summary["fired"] == 2
        assert summary["cancelled"] == 1
        assert summary["cancellation_rate"] == 1 / 3

    def test_zero_rate_without_events(self):
        assert CancellationProbe().summary()["cancellation_rate"] == 0.0


class TestIntegration:
    def test_probed_run_matches_unprobed(self):
        """Probes must observe, never perturb, the simulation."""
        tree = get_algorithm("wsort").build_tree(5, 0, [1, 3, 7, 15, 31, 21])
        plain = simulate_multicast(tree, size=1024)
        probes = default_probes()
        probed = simulate_multicast(tree, size=1024, probes=probes)
        assert probed.delays == plain.delays
        assert probed.events == plain.events

        summaries = probe_summaries(probes)
        assert set(summaries) == {"callback_time", "heap_depth", "cancellation"}
        assert summaries["heap_depth"]["scheduled"] == probed.events
        assert summaries["cancellation"]["cancelled"] == 0
