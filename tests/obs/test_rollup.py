"""Tests for channel-level rollups (hotspots, utilization, per-dim)."""

from __future__ import annotations

import json

import pytest

from repro.multicast.registry import get_algorithm
from repro.obs.rollup import (
    channel_rollup,
    hotspot_arcs,
    per_dimension_blocked_time,
    per_dimension_busy_time,
    utilization_histogram,
)
from repro.simulator.engine import Simulator
from repro.simulator.network import WormholeNetwork
from repro.simulator.run import simulate_multicast
from repro.simulator.trace import ChannelTrace, Occupancy


def _trace_with(*records: Occupancy) -> ChannelTrace:
    trace = ChannelTrace(enabled=True)
    trace.records.extend(records)
    return trace


class TestHotspots:
    def test_ranked_by_busy_time(self):
        trace = _trace_with(
            Occupancy((0, 1), 0, 0.0, 10.0),
            Occupancy((0, 0), 1, 0.0, 5.0),
            Occupancy((0, 1), 2, 20.0, 25.0),  # (0,1) totals 15
        )
        ranked = hotspot_arcs(trace, top=2)
        assert ranked == [((0, 1), 15.0), ((0, 0), 5.0)]

    def test_top_must_be_positive(self):
        with pytest.raises(ValueError):
            hotspot_arcs(_trace_with(), top=0)


class TestUtilizationHistogram:
    def test_busy_fractions(self):
        trace = _trace_with(
            Occupancy((0, 0), 0, 0.0, 50.0),  # 0.5 of horizon
            Occupancy((1, 0), 1, 0.0, 100.0),  # 1.0 of horizon
        )
        hist = utilization_histogram(trace, horizon=100.0)
        assert hist.count == 2
        assert hist.overflow == 0
        assert hist.max == 1.0

    def test_zero_horizon_rejected(self):
        with pytest.raises(ValueError):
            utilization_histogram(_trace_with(), horizon=0.0)


class TestPerDimension:
    def test_busy_time_by_dimension(self):
        trace = _trace_with(
            Occupancy((0, 0), 0, 0.0, 4.0),
            Occupancy((1, 0), 1, 0.0, 6.0),
            Occupancy((0, 2), 2, 0.0, 1.0),
        )
        assert per_dimension_busy_time(trace) == {0: 10.0, 2: 1.0}

    def test_blocked_time_from_contended_worms(self):
        """Two worms on the same path: the second records blocked time
        against the dimension it waited on."""
        sim = Simulator()
        network = WormholeNetwork(sim, 2, trace=True)
        a = network.make_worm(0, 3, size=10)
        b = network.make_worm(0, 3, size=10)
        network.inject(a)
        network.inject(b)
        sim.run()
        blocked = per_dimension_blocked_time(network.worms)
        assert blocked, "second worm should have blocked"
        assert all(t > 0 for t in blocked.values())
        # E-cube descending from 0 to 3 enters on dimension 1 first
        assert set(blocked) == {1}

    def test_contention_free_run_has_no_blocked_time(self):
        tree = get_algorithm("wsort").build_tree(4, 0, [1, 3, 5, 7, 9])
        res = simulate_multicast(tree, size=256, trace=True)
        assert per_dimension_blocked_time(res.network.worms) == {}


class TestChannelRollup:
    def test_rollup_is_json_safe_and_consistent(self):
        tree = get_algorithm("wsort").build_tree(4, 0, [1, 3, 5, 7, 11, 12])
        res = simulate_multicast(tree, size=512, trace=True)
        rollup = channel_rollup(res.network, horizon=res.completion_time)
        json.dumps(rollup)  # must be serializable as-is
        assert rollup["channels_used"] > 0
        assert rollup["occupancies"] == len(res.network.trace.records)
        assert len(rollup["hotspot_arcs"]) <= 10
        assert rollup["per_dimension_blocked_us"] == {}
        util = rollup["utilization"]
        assert util["count"] == rollup["channels_used"]

    def test_rollup_without_trace_is_empty_but_valid(self):
        tree = get_algorithm("ucube").build_tree(3, 0, [1, 2])
        res = simulate_multicast(tree, size=64, trace=False)
        rollup = channel_rollup(res.network)
        assert rollup["channels_used"] == 0
        assert rollup["hotspot_arcs"] == []
        assert "utilization" not in rollup
