"""Tests for the metrics registry and its instruments."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    UTILIZATION_BUCKETS,
    merge_snapshot,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("x")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_cannot_decrease(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_snapshot(self):
        c = Counter("x")
        c.inc(4)
        assert c.snapshot() == {"type": "counter", "value": 4.0}


class TestGauge:
    def test_tracks_extrema(self):
        g = Gauge("depth")
        g.set(5.0)
        g.set(2.0)
        g.set(9.0)
        snap = g.snapshot()
        assert snap["value"] == 9.0
        assert snap["min"] == 2.0
        assert snap["max"] == 9.0

    def test_add(self):
        g = Gauge("x")
        g.set(1.0)
        g.add(2.0)
        assert g.value == 3.0

    def test_first_set_initializes_extrema(self):
        g = Gauge("x")
        g.set(-4.0)
        assert g.min == g.max == -4.0


class TestTimer:
    def test_records_and_averages(self):
        t = Timer("wall")
        t.record(0.25)
        t.record(0.75)
        snap = t.snapshot()
        assert snap["total_seconds"] == 1.0
        assert snap["count"] == 2
        assert snap["mean_seconds"] == 0.5

    def test_context_manager_measures_positive_time(self):
        t = Timer("wall")
        with t.time():
            sum(range(1000))
        assert t.count == 1
        assert t.total_seconds >= 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Timer("wall").record(-0.1)


class TestHistogram:
    def test_bucket_assignment_inclusive_upper_edge(self):
        h = Histogram("h", bounds=(10.0, 20.0))
        for v in (5.0, 10.0, 10.5, 20.0, 25.0):
            h.observe(v)
        assert h.counts == [2, 2]  # 5 and 10 in <=10; 10.5 and 20 in <=20
        assert h.overflow == 1
        assert h.count == 5
        assert h.min == 5.0 and h.max == 25.0

    def test_mean(self):
        h = Histogram("h", bounds=(100.0,))
        h.observe(10.0)
        h.observe(20.0)
        assert h.mean == 15.0

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=())
        with pytest.raises(ValueError):
            Histogram("h", bounds=(2.0, 1.0))

    def test_utilization_buckets_cover_unit_interval(self):
        h = Histogram("u", bounds=UTILIZATION_BUCKETS)
        h.observe(0.05)
        h.observe(1.0)
        assert h.overflow == 0
        assert sum(h.counts) == 2

    def test_quantile_nearest_rank_upper_bound(self):
        h = Histogram("q", bounds=(1.0, 5.0, 50.0))
        for _ in range(98):
            h.observe(0.5)  # <= 1.0
        h.observe(30.0)  # <= 50.0
        h.observe(70.0)  # overflow
        assert h.quantile(0.5) == 1.0
        assert h.quantile(0.98) == 1.0
        assert h.quantile(0.99) == 50.0
        assert h.quantile(1.0) == 70.0  # past the last bound: observed max

    def test_quantile_empty_and_bounds_checks(self):
        h = Histogram("q", bounds=(1.0,))
        assert h.quantile(0.5) == 0.0
        h.observe(0.5)
        with pytest.raises(ValueError):
            h.quantile(-0.1)
        with pytest.raises(ValueError):
            h.quantile(1.1)

    def test_service_latency_buckets_are_increasing(self):
        from repro.obs.metrics import SERVICE_LATENCY_BUCKETS_MS

        bounds = SERVICE_LATENCY_BUCKETS_MS
        assert all(a < b for a, b in zip(bounds, bounds[1:]))
        Histogram("lat", bounds=bounds)  # accepted as histogram bounds


class TestMetricsRegistry:
    def test_instruments_are_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_type_conflicts_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")
        with pytest.raises(TypeError):
            reg.histogram("a")

    def test_snapshot_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.counter("events").inc(10)
        reg.gauge("depth").set(3)
        reg.timer("wall").record(0.5)
        reg.histogram("delay").observe(123.0)
        snap = reg.snapshot()
        parsed = json.loads(json.dumps(snap))
        assert parsed["events"]["value"] == 10
        assert parsed["delay"]["count"] == 1

    def test_names_and_len(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.counter("a")
        assert reg.names() == ["a", "b"]
        assert len(reg) == 2
        assert "a" in reg and "zzz" not in reg


class TestMergeSnapshot:
    """Edge cases of folding worker snapshots into a parent registry."""

    def test_empty_snapshot_is_a_noop(self):
        reg = MetricsRegistry()
        merge_snapshot(reg, {})
        assert len(reg) == 0
        reg.counter("kept").inc(3)
        before = reg.snapshot()
        merge_snapshot(reg, {})
        assert reg.snapshot() == before

    def test_disjoint_metric_families_all_land(self):
        """A snapshot whose names share nothing with the registry
        creates every instrument without disturbing existing ones."""
        reg = MetricsRegistry()
        reg.counter("parent.only").inc(7)
        donor = MetricsRegistry()
        donor.counter("w.count").inc(2)
        donor.gauge("w.depth").set(4.0)
        donor.timer("w.wall").record(0.25)
        donor.histogram("w.delay", bounds=(10.0, 20.0)).observe(15.0)
        merge_snapshot(reg, donor.snapshot())
        snap = reg.snapshot()
        assert snap["parent.only"]["value"] == 7
        assert snap["w.count"]["value"] == 2
        assert snap["w.depth"] == donor.snapshot()["w.depth"]
        assert snap["w.wall"]["count"] == 1
        assert snap["w.delay"]["counts"] == [0, 1]

    def test_timer_histogram_merge_is_order_independent(self):
        """Two worker snapshots fold to the same aggregate whichever
        arrives first (the engine absorbs chunks in completion order)."""

        def worker(times: list[float], delays: list[float]) -> dict:
            reg = MetricsRegistry()
            for t in times:
                reg.timer("wall").record(t)
            for d in delays:
                reg.histogram("delay", bounds=(100.0, 500.0)).observe(d)
            return reg.snapshot()

        s1 = worker([0.5, 0.25], [50.0, 600.0])
        s2 = worker([1.0], [120.0, 120.0, 450.0])
        forward, backward = MetricsRegistry(), MetricsRegistry()
        merge_snapshot(forward, s1)
        merge_snapshot(forward, s2)
        merge_snapshot(backward, s2)
        merge_snapshot(backward, s1)
        assert forward.snapshot() == backward.snapshot()
        agg = forward.snapshot()
        assert agg["wall"]["count"] == 3
        assert agg["wall"]["total_seconds"] == pytest.approx(1.75)
        assert agg["delay"]["counts"] == [1, 3]  # <=100: {50}; <=500: {120, 120, 450}
        assert agg["delay"]["overflow"] == 1  # 600.0
        assert agg["delay"]["min"] == 50.0
        assert agg["delay"]["max"] == 600.0

    def test_histogram_bounds_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h", bounds=(1.0, 2.0)).observe(1.5)
        donor = MetricsRegistry()
        donor.histogram("h", bounds=(1.0, 3.0)).observe(2.5)
        with pytest.raises(ValueError, match="bounds mismatch"):
            merge_snapshot(reg, donor.snapshot())

    def test_unknown_instrument_type_rejected(self):
        with pytest.raises(ValueError, match="unknown instrument type"):
            merge_snapshot(MetricsRegistry(), {"x": {"type": "summary", "value": 1}})

    def test_cross_type_name_collision_rejected(self):
        reg = MetricsRegistry()
        reg.timer("x").record(0.1)
        donor = MetricsRegistry()
        donor.counter("x").inc()
        with pytest.raises(TypeError):
            merge_snapshot(reg, donor.snapshot())
