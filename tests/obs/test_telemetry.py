"""Tests for RunRecord round-trips, sinks, and the env/CLI toggle."""

from __future__ import annotations

import json

import pytest

from repro.multicast.registry import get_algorithm
from repro.obs.sink import (
    ENV_VAR,
    JsonlSink,
    MemorySink,
    capture,
    configure,
    get_sink,
    read_jsonl,
)
from repro.obs.telemetry import RunRecord, new_run_id, summarize_delays
from repro.simulator.run import simulate_multicast


def _make_record(**overrides) -> RunRecord:
    base = dict(
        run_id=new_run_id(),
        kind="multicast",
        n=4,
        algorithm="wsort",
        ports="all-port",
        size=4096,
        timings={"t_setup": 85.0, "t_recv": 75.0, "t_byte": 0.45, "t_hop": 2.0},
        wall_seconds=0.01,
        sim_time_us=2000.0,
        events=42,
        metrics={"sim.events": {"type": "counter", "value": 42.0}},
        extra={"avg_delay_us": 1234.5},
    )
    base.update(overrides)
    return RunRecord(**base)


class TestRunRecord:
    def test_json_round_trip_lossless(self):
        rec = _make_record()
        back = RunRecord.from_json(rec.to_json())
        assert back.to_dict() == rec.to_dict()

    def test_json_is_single_line(self):
        assert "\n" not in _make_record().to_json()

    def test_missing_required_field_rejected(self):
        data = json.loads(_make_record().to_json())
        del data["kind"]
        with pytest.raises(ValueError, match="kind"):
            RunRecord.from_dict(data)

    def test_unknown_schema_rejected(self):
        data = json.loads(_make_record().to_json())
        data["schema"] = 999
        with pytest.raises(ValueError, match="schema"):
            RunRecord.from_dict(data)

    def test_run_ids_unique(self):
        assert len({new_run_id() for _ in range(100)}) == 100

    def test_v1_record_without_trace_id_still_loads(self):
        """Telemetry written before the schema-2 bump (no ``trace_id``
        field) must keep loading: the loader accepts both versions."""
        data = json.loads(_make_record().to_json())
        data["schema"] = 1
        del data["trace_id"]
        back = RunRecord.from_dict(data)
        assert back.trace_id is None
        assert back.kind == "multicast"

    def test_v2_trace_id_round_trips(self):
        rec = _make_record(trace_id="feedbeefcafe0123")
        data = json.loads(rec.to_json())
        assert data["schema"] == 2
        assert data["trace_id"] == "feedbeefcafe0123"
        assert RunRecord.from_json(rec.to_json()).trace_id == "feedbeefcafe0123"


class TestSummarizeDelays:
    def test_empty(self):
        assert summarize_delays({})["count"] == 0

    def test_stats(self):
        s = summarize_delays({1: 10.0, 2: 20.0, 3: 30.0})
        assert s == {"count": 3, "min_us": 10.0, "mean_us": 20.0, "max_us": 30.0}


class TestSinks:
    def test_jsonl_sink_round_trip(self, tmp_path):
        path = str(tmp_path / "runs.jsonl")
        sink = JsonlSink(path)
        records = [_make_record(), _make_record(kind="comm")]
        for rec in records:
            sink.write(rec)
        assert sink.written == 2
        back = read_jsonl(path)
        assert [r.to_dict() for r in back] == [r.to_dict() for r in records]

    def test_memory_sink(self):
        sink = MemorySink()
        rec = _make_record()
        sink.write(rec)
        assert sink.records == [rec]


class TestRotatingSink:
    def test_rotates_to_gz_segments_and_loses_nothing(self, tmp_path):
        from repro.obs.sink import RotatingJsonlSink

        path = str(tmp_path / "bulk.jsonl")
        sink = RotatingJsonlSink(path, max_bytes=600)
        records = [_make_record() for _ in range(10)]
        for rec in records:
            sink.write(rec)
        assert sink.written == 10
        assert sink.rotations >= 1
        segments = sink.segments()
        assert all(str(s).endswith(".gz") for s in segments[:-1])
        recovered = [r for seg in segments for r in read_jsonl(seg)]
        assert [r.run_id for r in recovered] == [r.run_id for r in records]

    def test_gzip_segment_reads_back(self, tmp_path):
        import gzip

        rec = _make_record()
        gz = tmp_path / "seg.1.gz"
        with gzip.open(gz, "wt", encoding="utf-8") as f:
            f.write(rec.to_json() + "\n")
        back = read_jsonl(gz)
        assert back[0].to_dict() == rec.to_dict()

    def test_truncated_gzip_raises_value_error(self, tmp_path):
        import gzip

        gz = tmp_path / "torn.jsonl.gz"
        with gzip.open(gz, "wt", encoding="utf-8") as f:
            for _ in range(50):
                f.write(_make_record().to_json() + "\n")
        data = gz.read_bytes()
        gz.write_bytes(data[: len(data) // 2])  # chop the stream mid-member
        with pytest.raises(ValueError, match="gzip"):
            read_jsonl(gz)

    def test_garbage_with_gzip_magic_raises_value_error(self, tmp_path):
        bad = tmp_path / "fake.gz"
        bad.write_bytes(b"\x1f\x8b" + b"not actually gzip at all")
        with pytest.raises(ValueError):
            read_jsonl(bad)

    def test_max_bytes_validation(self, tmp_path):
        from repro.obs.sink import RotatingJsonlSink

        with pytest.raises(ValueError):
            RotatingJsonlSink(str(tmp_path / "x.jsonl"), max_bytes=0)


class TestToggle:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert get_sink() is None

    def test_env_var_creates_jsonl_sink(self, tmp_path, monkeypatch):
        path = str(tmp_path / "env.jsonl")
        monkeypatch.setenv(ENV_VAR, path)
        sink = get_sink()
        assert isinstance(sink, JsonlSink) and sink.path == path
        # same path keeps the same sink instance
        assert get_sink() is sink
        monkeypatch.setenv(ENV_VAR, str(tmp_path / "other.jsonl"))
        assert get_sink() is not sink

    def test_configure_overrides_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_VAR, str(tmp_path / "env.jsonl"))
        mem = MemorySink()
        prev = configure(mem)
        try:
            assert get_sink() is mem
        finally:
            configure(prev)

    def test_capture_restores_previous(self):
        with capture() as outer:
            with capture() as inner:
                assert get_sink() is inner
            assert get_sink() is outer


class TestDriverEmission:
    def test_simulate_multicast_emits_record(self):
        tree = get_algorithm("wsort").build_tree(4, 0, [1, 3, 5, 7])
        with capture() as sink:
            res = simulate_multicast(tree, size=512, label="wsort")
        assert len(sink.records) == 1
        rec = sink.records[0]
        assert rec.kind == "multicast"
        assert rec.n == 4
        assert rec.algorithm == "wsort"
        assert rec.events == res.events
        assert rec.extra["max_delay_us"] == res.max_delay
        # and it survives the JSONL round trip
        back = RunRecord.from_json(rec.to_json())
        assert back.extra["avg_delay_us"] == res.avg_delay

    def test_env_toggle_writes_file(self, tmp_path, monkeypatch):
        path = str(tmp_path / "t.jsonl")
        monkeypatch.setenv(ENV_VAR, path)
        tree = get_algorithm("ucube").build_tree(3, 0, [1, 2, 3])
        simulate_multicast(tree, size=64)
        records = read_jsonl(path)
        assert len(records) == 1 and records[0].kind == "multicast"
