"""Tests for the hierarchical span tracer and its snapshot/replay."""

from __future__ import annotations

import threading

import pytest

from repro.obs.trace_spans import (
    Span,
    Tracer,
    configure_tracing,
    current_span,
    current_trace_id,
    derive_trace_id,
    get_tracer,
    instant,
    phase_rollup,
    span,
    trace_capture,
)


class TestDeriveTraceId:
    def test_deterministic(self):
        assert derive_trace_id("a", 1, 2.5) == derive_trace_id("a", 1, 2.5)

    def test_component_sensitivity(self):
        assert derive_trace_id("a", 1) != derive_trace_id("a", 2)
        assert derive_trace_id("a", None) != derive_trace_id("a", "")
        # type-tagged encoding: 1 and "1" and True are distinct
        assert derive_trace_id(1) != derive_trace_id("1")
        assert derive_trace_id(True) != derive_trace_id(1)

    def test_sixteen_hex_chars(self):
        tid = derive_trace_id("x")
        assert len(tid) == 16
        int(tid, 16)  # hex

    def test_rejects_unencodable(self):
        with pytest.raises(TypeError):
            derive_trace_id(object())


class TestTracerNesting:
    def test_parent_child_ids(self):
        t = Tracer(trace_id="feedbeefcafe0123")
        with t.span("outer") as outer:
            with t.span("inner") as inner:
                assert inner.parent_id == outer.span_id
            with t.span("sibling") as sib:
                assert sib.parent_id == outer.span_id
        assert outer.parent_id is None
        assert all(s.finished for s in t.spans)
        assert [s.name for s in t.spans] == ["outer", "inner", "sibling"]

    def test_span_ids_unique_and_trace_scoped(self):
        t = Tracer()
        for _ in range(5):
            with t.span("same-name"):
                pass
        ids = [s.span_id for s in t.spans]
        assert len(set(ids)) == 5
        assert all(s.trace_id == t.trace_id for s in t.spans)

    def test_timing_monotonic_and_nested(self):
        t = Tracer()
        with t.span("outer") as outer:
            with t.span("inner") as inner:
                pass
        assert outer.start_us <= inner.start_us
        assert inner.end_us <= outer.end_us
        assert outer.duration_us >= inner.duration_us >= 0.0

    def test_attrs_recorded_and_set(self):
        t = Tracer()
        with t.span("s", n=6, algorithm="wsort") as s:
            s.set(ok=True)
        assert t.spans[0].attrs == {"n": 6, "algorithm": "wsort", "ok": True}

    def test_exception_recorded_and_span_closed(self):
        t = Tracer()
        with pytest.raises(ValueError):
            with t.span("boom"):
                raise ValueError("payload")
        s = t.spans[0]
        assert s.finished
        assert s.attrs["error"] == "ValueError: payload"
        assert t.current() is None

    def test_instant_is_zero_duration_child(self):
        t = Tracer()
        with t.span("parent") as parent:
            ev = t.instant("event", detail=3)
        assert ev.parent_id == parent.span_id
        assert ev.start_us == ev.end_us
        assert ev.attrs == {"detail": 3}

    def test_threads_nest_independently(self):
        t = Tracer()
        errors: list[str] = []

        def work(i: int) -> None:
            with t.span(f"thread-{i}") as outer:
                with t.span("leaf") as leaf:
                    if leaf.parent_id != outer.span_id:
                        errors.append(f"bad parent in thread {i}")
                if outer.parent_id is not None:
                    errors.append(f"thread {i} root not a root")

        threads = [threading.Thread(target=work, args=(i,)) for i in range(8)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert not errors
        assert len(t.spans) == 16
        assert len({s.span_id for s in t.spans}) == 16


class TestSnapshotReplay:
    def test_round_trip_reanchors_and_reparents(self):
        worker = Tracer(trace_id="aaaaaaaaaaaaaaaa")
        with worker.span("chunk", points=2):
            with worker.span("point"):
                pass
        snap = worker.snapshot()

        parent = Tracer(trace_id="bbbbbbbbbbbbbbbb")
        with parent.span("dispatch") as dispatch:
            pass
        count = parent.replay(snap, parent_id=dispatch.span_id)
        assert count == 2
        replayed = {s.name: s for s in parent.spans if s.name != "dispatch"}
        assert replayed["chunk"].parent_id == dispatch.span_id
        assert replayed["point"].parent_id == replayed["chunk"].span_id
        assert all(s.trace_id == parent.trace_id for s in parent.spans)

    def test_open_spans_marked_partial(self):
        worker = Tracer()
        worker.start_span("never-closed")
        snap = worker.snapshot()
        assert snap["spans"][0]["partial"] is True
        parent = Tracer()
        assert parent.replay(snap) == 1
        s = parent.spans[0]
        assert s.end_us is None and s.attrs["partial"] is True
        assert s.duration_us == 0.0

    def test_malformed_entries_dropped_not_raised(self):
        parent = Tracer()
        snap = {
            "schema": 1,
            "trace_id": "cccccccccccccccc",
            "epoch_unix": parent.epoch_unix,
            "spans": [
                "not-a-dict",
                {"span_id": 7, "name": "bad-id-type", "start_us": 0.0},
                {"span_id": "ok1", "name": "missing-start"},
                {"span_id": "ok2", "name": "good", "start_us": 1.0, "end_us": "junk"},
                {"span_id": "ok3", "name": "fine", "start_us": 2.0, "end_us": 3.0},
            ],
        }
        assert parent.replay(snap) == 2
        names = {s.name for s in parent.spans}
        assert names == {"good", "fine"}

    def test_garbage_snapshot_is_zero(self):
        parent = Tracer()
        assert parent.replay({}) == 0
        assert parent.replay({"epoch_unix": "NaN?", "spans": None}) == 0
        assert parent.spans == []

    def test_epoch_offset_applied(self):
        worker = Tracer()
        with worker.span("w"):
            pass
        snap = worker.snapshot()
        snap["epoch_unix"] = worker.epoch_unix + 1.0  # pretend 1s later
        parent = Tracer()
        parent.epoch_unix = worker.epoch_unix
        parent.replay(snap)
        assert parent.spans[0].start_us >= 1e6


class TestModuleLevelHooks:
    def test_noop_when_off(self):
        assert get_tracer() is None or configure_tracing(None)  # ensure clean
        with span("anything", n=1) as s:
            assert s is None
        assert instant("event") is None
        assert current_trace_id() is None
        assert current_span() is None

    def test_trace_capture_installs_and_restores(self):
        before = get_tracer()
        with trace_capture(label="test") as tracer:
            assert get_tracer() is tracer
            assert current_trace_id() == tracer.trace_id
            with span("s", k=1) as s:
                assert s is not None
                assert current_span() is s
        assert get_tracer() is before
        assert tracer.spans[0].attrs == {"k": 1}

    def test_nested_capture_restores_outer(self):
        with trace_capture() as outer:
            with trace_capture() as inner:
                assert get_tracer() is inner
            assert get_tracer() is outer

    def test_explicit_tracer_accepted(self):
        mine = Tracer(trace_id="dddddddddddddddd")
        with trace_capture(mine) as got:
            assert got is mine


class TestPhaseRollup:
    def test_aggregates_by_name(self):
        spans = [
            Span("t", "1", None, "a", 0.0, 10.0),
            Span("t", "2", None, "a", 0.0, 5.0),
            Span("t", "3", None, "b", 0.0, 2.0),
            Span("t", "4", None, "open", 0.0, None),
        ]
        roll = phase_rollup(spans)
        assert roll["a"] == {"count": 2, "total_us": 15.0}
        assert roll["b"] == {"count": 1, "total_us": 2.0}
        assert roll["open"] == {"count": 1, "total_us": 0.0}
