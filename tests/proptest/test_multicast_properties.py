"""Seeded property-based correctness suite for the paper algorithms.

Random destination sets on 3--6 cubes, swept across U-cube / Maxport /
Combine / W-sort.  Every sample asserts the paper's correctness
contract end to end:

- **coverage** -- every destination receives the message exactly once
  and no other CPU handles it (:func:`verify_multicast` structural
  checks);
- **contention-freedom** -- the greedy all-port schedule satisfies
  Definition 4 (the independent verifier, not the scheduler's own
  bookkeeping);
- **step bounds** -- per-sample step counts sit inside the proven
  envelope: at least the all-port information-theoretic floor
  ``(n+1)^steps >= m+1``, at most ``n`` (broadcast height), never worse
  than the same algorithm's one-port schedule, with the one-port U-cube
  count exactly the tight ``ceil(log2(m+1))`` staircase of Section 2
  (which also bounds U-cube/Combine/W-sort all-port schedules; Maxport
  may exceed it on adversarial sets, so it is held to the sound bounds
  only).

The sampling is *seeded*, not timestamp-driven: every sample's seed
derives from :func:`repro.parallel.derive_seed` over (cube size, trial
index), so a failure reproduces from the printed parameters alone.  A
hypothesis layer on top explores shrunk/adversarial corners with the
same assertions.
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given

from repro.multicast.ports import ALL_PORT, ONE_PORT
from repro.multicast.registry import PAPER_ALGORITHMS, get_algorithm
from repro.multicast.ucube import ucube_optimal_steps
from repro.multicast.verify import verify_multicast
from repro.parallel import derive_seed
from repro.analysis.workloads import random_destination_sets
from tests.conftest import multicast_cases

#: Algorithms whose all-port schedules are bounded by the one-port
#: optimum ceil(log2(m+1)) (U-cube by Section 2; Combine and W-sort by
#: chain halving).  Maxport is excluded: its greedy dimension choice
#: can exceed the staircase on individual sets.
LOG_BOUNDED = ("ucube", "combine", "wsort")

CUBES = (3, 4, 5, 6)
TRIALS_PER_CUBE = 12
BASE_SEED = 1993


def _sample(n: int, trial: int) -> tuple[int, list[int]]:
    """Deterministic (source, destinations) for one property sample."""
    seed = derive_seed(BASE_SEED, "proptest", n, trial)
    rnd = random.Random(seed)
    m = rnd.randint(1, (1 << n) - 1)
    source = rnd.randrange(1 << n)
    dests = random_destination_sets(n, m, 1, seed=seed, source=source)[0]
    return source, dests


def _assert_sample_properties(n: int, source: int, dests: list[int]) -> None:
    """The full correctness contract for one (n, source, dests) sample."""
    m = len(dests)
    staircase = ucube_optimal_steps(m)
    assert staircase == math.ceil(math.log2(m + 1))
    for name in PAPER_ALGORITHMS:
        alg = get_algorithm(name)
        result = verify_multicast(alg, n, source, dests, ALL_PORT)
        result.raise_if_failed()  # coverage + Definition 4 contention
        steps = result.schedule.max_step
        one_port = alg.schedule(n, source, dests, ONE_PORT).max_step
        context = f"{name} n={n} source={source} m={m}"
        # all-port floor: informed nodes grow at most (n+1)-fold per step
        assert (n + 1) ** steps >= m + 1, context
        # broadcast height is the ceiling for any destination set
        assert 1 <= steps <= n, context
        # extra ports never hurt the greedy schedule
        assert steps <= one_port, context
        if name == "ucube":
            assert one_port == staircase, context
        if name in LOG_BOUNDED:
            assert steps <= staircase, context


@pytest.mark.parametrize("n", CUBES)
@pytest.mark.parametrize("trial", range(TRIALS_PER_CUBE))
def test_seeded_random_sets_satisfy_paper_contract(n: int, trial: int) -> None:
    source, dests = _sample(n, trial)
    _assert_sample_properties(n, source, dests)


@given(case=multicast_cases(min_n=3, max_n=6))
def test_hypothesis_cases_satisfy_paper_contract(case) -> None:
    n, source, dests = case
    if not dests:
        pytest.skip("empty destination set")
    _assert_sample_properties(n, source, dests)


def test_samples_are_reproducible() -> None:
    """The derived-seed scheme regenerates identical samples."""
    for n in CUBES:
        for trial in range(3):
            assert _sample(n, trial) == _sample(n, trial)


def test_broadcast_extremes() -> None:
    """m = 2^n - 1 (full broadcast) sits exactly on the proven bounds."""
    for n in CUBES:
        dests = [u for u in range(1 << n) if u != 0]
        for name in PAPER_ALGORITHMS:
            alg = get_algorithm(name)
            verify_multicast(alg, n, 0, dests, ALL_PORT).raise_if_failed()
            assert alg.schedule(n, 0, dests, ALL_PORT).max_step <= n
        assert get_algorithm("ucube").schedule(n, 0, dests, ONE_PORT).max_step == n


def test_singleton_sets_take_one_step() -> None:
    """m = 1: a single unicast, one step, for every algorithm."""
    for n in CUBES:
        for name in PAPER_ALGORITHMS:
            sched = get_algorithm(name).schedule(n, 0, [(1 << n) - 1], ALL_PORT)
            assert sched.max_step == 1
