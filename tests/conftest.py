"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, settings

# A moderately sized default profile: the property tests do real work
# (brute-force cross-checks), so cap examples rather than time out.
settings.register_profile(
    "repro",
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "thorough",
    max_examples=400,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

import os  # noqa: E402

settings.load_profile(
    "thorough" if os.environ.get("REPRO_THOROUGH") else "repro"
)


@st.composite
def multicast_cases(draw, min_n: int = 1, max_n: int = 6, min_dests: int = 1):
    """Draw ``(n, source, destinations)`` for a random multicast.

    ``destinations`` is a sorted list of distinct addresses excluding
    the source; sizes range from ``min_dests`` up to the full cube.
    """
    n = draw(st.integers(min_n, max_n))
    size = 1 << n
    source = draw(st.integers(0, size - 1))
    dests = draw(
        st.sets(
            st.integers(0, size - 1).filter(lambda x: x != source),
            min_size=min(min_dests, size - 1),
            max_size=size - 1,
        )
    )
    return n, source, sorted(dests)


@pytest.fixture
def fig3_case():
    """The running example of Section 2 (Figures 3 and 5)."""
    return 4, 0b0000, [0b0001, 0b0011, 0b0101, 0b0111, 0b1011, 0b1100, 0b1110, 0b1111]


@pytest.fixture
def fig8_case():
    """The Section 4.2 example (Figure 8)."""
    return 4, 0, [1, 3, 5, 7, 11, 12, 14, 15]
