"""Tests for the exact step-optimal multicast search."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.multicast import ALL_PORT, WSort, verify_multicast
from repro.multicast.optimal import allport_lower_bound, optimal_steps, optimal_tree
from repro.multicast.registry import get_algorithm
from tests.conftest import multicast_cases

FIG3_DESTS = [0b0001, 0b0011, 0b0101, 0b0111, 0b1011, 0b1100, 0b1110, 0b1111]


class TestLowerBound:
    def test_zero_dests(self):
        assert allport_lower_bound(0, 4) == 0

    def test_one_dest(self):
        assert allport_lower_bound(1, 4) == 1

    def test_growth_rate(self):
        # one step informs at most n+1 nodes total
        assert allport_lower_bound(4, 4) == 1
        assert allport_lower_bound(5, 4) == 2
        assert allport_lower_bound(24, 4) == 2
        assert allport_lower_bound(25, 4) == 3

    def test_one_port_case(self):
        assert allport_lower_bound(3, 1) == 2
        assert allport_lower_bound(7, 1) == 3


class TestPaperOptimality:
    def test_fig3e_two_steps_is_optimal(self):
        """Figure 3(e): the 2-step tree is optimal for the running
        example -- and the search proves no 1-step schedule exists."""
        assert optimal_steps(4, 0, FIG3_DESTS) == 2

    def test_wsort_achieves_optimum_on_fig3(self):
        assert WSort().schedule(4, 0, FIG3_DESTS, ALL_PORT).max_step == 2

    def test_fig6_two_steps_optimal(self):
        """Figure 6: {1001, 1010, 1011} needs 2 steps (Maxport's 3 is
        suboptimal; U-cube's 2 is optimal)."""
        assert optimal_steps(4, 0, [0b1001, 0b1010, 0b1011]) == 2

    def test_fig8_two_steps_optimal(self):
        assert optimal_steps(4, 0, [1, 3, 5, 7, 11, 12, 14, 15]) == 2


class TestOptimalTree:
    def test_tree_is_valid_and_achieves_optimum(self):
        tree = optimal_tree(4, 0, FIG3_DESTS)
        assert tree.destinations == set(FIG3_DESTS)
        assert {s.dst for s in tree.sends} == set(FIG3_DESTS)
        sched = tree.schedule(ALL_PORT)
        assert sched.max_step == 2
        assert sched.check_contention().ok

    def test_empty(self):
        assert optimal_steps(3, 0, []) == 0
        assert optimal_tree(3, 0, []).sends == []

    def test_single_dest(self):
        assert optimal_steps(3, 5, [2]) == 1


class TestHeuristicsVsOptimum:
    @settings(max_examples=25)
    @given(case=multicast_cases(max_n=4))
    def test_no_heuristic_beats_the_optimum(self, case):
        n, source, dests = case
        if len(dests) > 7:
            dests = dests[:7]
        opt = optimal_steps(n, source, dests)
        for name in ("ucube", "maxport", "combine", "wsort"):
            steps = get_algorithm(name).schedule(n, source, dests, ALL_PORT).max_step
            assert steps >= opt

    @settings(max_examples=25)
    @given(case=multicast_cases(max_n=4))
    def test_wsort_close_to_optimum(self, case):
        """W-sort stays within 2x of the true optimum on small cases
        (empirically it is usually optimal or +1)."""
        n, source, dests = case
        if len(dests) > 7:
            dests = dests[:7]
        opt = optimal_steps(n, source, dests)
        steps = WSort().schedule(n, source, dests, ALL_PORT).max_step
        assert steps <= 2 * opt

    @settings(max_examples=15)
    @given(case=multicast_cases(max_n=4))
    def test_optimal_tree_verifies(self, case):
        n, source, dests = case
        if len(dests) > 6:
            dests = dests[:6]
        tree = optimal_tree(n, source, dests)
        sched = tree.schedule(ALL_PORT)
        assert sched.check_contention().ok
        assert sched.max_step == optimal_steps(n, source, dests)
