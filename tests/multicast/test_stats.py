"""Tests for tree statistics."""

from __future__ import annotations

from hypothesis import given

from repro.multicast import ALL_PORT, DimensionalSAF, Maxport, UCube, WSort
from repro.multicast.stats import schedule_concurrency, tree_stats
from tests.conftest import multicast_cases

FIG3_DESTS = [0b0001, 0b0011, 0b0101, 0b0111, 0b1011, 0b1100, 0b1110, 0b1111]


class TestTreeStats:
    def test_empty_tree(self):
        tree = UCube().build_tree(3, 0, [])
        s = tree_stats(tree)
        assert s.sends == 0 and s.depth == 0 and s.max_fanout == 0

    def test_fig3_ucube(self):
        s = tree_stats(UCube().build_tree(4, 0, FIG3_DESTS))
        assert s.sends == 8
        assert s.depth == 4  # one-port optimal chain depth ceil(log2(9))? no: 4
        assert s.relay_cpus == 0

    def test_maxport_all_senders_distinct_ports(self):
        """Every Maxport sender uses pairwise distinct outgoing channels."""
        tree = Maxport().build_tree(4, 0, FIG3_DESTS)
        s = tree_stats(tree)
        senders = {x.src for x in tree.sends}
        assert s.distinct_port_senders == len(senders)

    def test_saf_relays_counted(self):
        s = tree_stats(DimensionalSAF().build_tree(4, 0, FIG3_DESTS))
        assert s.relay_cpus == 5
        assert s.mean_hops == 1.0  # all SAF unicasts are single hops

    @given(case=multicast_cases(max_n=5))
    def test_invariants(self, case):
        n, source, dests = case
        for alg in (UCube(), Maxport(), WSort()):
            s = tree_stats(alg.build_tree(n, source, dests))
            assert s.sends == len(dests)
            assert 1 <= s.depth <= s.sends
            assert s.total_hops >= s.sends  # every unicast is >= 1 hop
            assert s.max_fanout >= s.mean_fanout > 0
            assert s.relay_cpus == 0

    def test_as_dict_roundtrip(self):
        s = tree_stats(WSort().build_tree(4, 0, FIG3_DESTS))
        d = s.as_dict()
        assert d["sends"] == 8
        assert set(d) == {
            "sends",
            "depth",
            "total_hops",
            "mean_hops",
            "max_fanout",
            "mean_fanout",
            "distinct_port_senders",
            "relay_cpus",
        }


class TestScheduleConcurrency:
    def test_counts_sum_to_sends(self):
        sched = WSort().schedule(4, 0, FIG3_DESTS, ALL_PORT)
        conc = schedule_concurrency(sched)
        assert sum(conc.values()) == 8
        assert set(conc) == {1, 2}

    def test_one_port_concurrency_bounded_by_senders(self):
        from repro.multicast import ONE_PORT

        sched = UCube().schedule(4, 0, FIG3_DESTS, ONE_PORT)
        conc = schedule_concurrency(sched)
        # step k has at most 2^(k-1) concurrent sends (doubling senders)
        for step, count in conc.items():
            assert count <= 1 << (step - 1)
