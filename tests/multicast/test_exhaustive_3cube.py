"""Exhaustive verification over the entire 3-cube instance space.

For every source and every non-empty destination subset of a 3-cube
(8 x 127 = 1016 instances), every paper algorithm must produce a
structurally valid, contention-free multicast under both port models.
Property tests sample; this nails the whole small space.
"""

from __future__ import annotations

from itertools import combinations

import pytest

from repro.multicast import ALL_PORT, ONE_PORT, verify_multicast
from repro.multicast.registry import PAPER_ALGORITHMS, get_algorithm
from repro.multicast.ucube import ucube_optimal_steps

N = 3
NODES = list(range(1 << N))


def all_instances():
    for source in NODES:
        others = [u for u in NODES if u != source]
        for m in range(1, len(others) + 1):
            for dests in combinations(others, m):
                yield source, list(dests)


@pytest.mark.parametrize("name", PAPER_ALGORITHMS)
def test_every_instance_all_port(name):
    alg = get_algorithm(name)
    for source, dests in all_instances():
        result = verify_multicast(alg, N, source, dests, ALL_PORT)
        assert result, f"{name} src={source} dests={dests}: {result.errors}"


@pytest.mark.parametrize("name", PAPER_ALGORITHMS)
def test_every_instance_one_port(name):
    alg = get_algorithm(name)
    for source, dests in all_instances():
        result = verify_multicast(alg, N, source, dests, ONE_PORT)
        assert result, f"{name} src={source} dests={dests}: {result.errors}"


def test_ucube_optimal_everywhere():
    """U-cube achieves ceil(log2(m+1)) one-port steps on every instance."""
    alg = get_algorithm("ucube")
    for source, dests in all_instances():
        steps = alg.schedule(N, source, dests, ONE_PORT).max_step
        assert steps == ucube_optimal_steps(len(dests))


def test_wsort_never_worse_than_maxport_anywhere():
    w = get_algorithm("wsort")
    m = get_algorithm("maxport")
    for source, dests in all_instances():
        ws = w.schedule(N, source, dests, ALL_PORT).max_step
        ms = m.schedule(N, source, dests, ALL_PORT).max_step
        assert ws <= ms, f"src={source} dests={dests}: wsort {ws} > maxport {ms}"
