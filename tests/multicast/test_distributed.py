"""Tests for the distributed (node-local) execution model.

The key claim: running each algorithm as a cascade of node-local
decisions over the address fields physically carried by messages
produces exactly the trees the centralized builders construct -- i.e.
the address fields are self-sufficient, as they must be on a real
machine.
"""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.core.paths import ResolutionOrder
from repro.multicast import ALL_PORT
from repro.multicast.distributed import (
    KERNELS,
    execute_distributed,
    maxport_kernel,
    ucube_kernel,
)
from repro.multicast.registry import get_algorithm
from tests.conftest import multicast_cases

ALGS = ("ucube", "maxport", "combine", "wsort")


def centralized(algorithm: str, n: int, source: int, dests, order=ResolutionOrder.DESCENDING):
    return get_algorithm(algorithm).build_tree(n, source, dests, order)


class TestKernelBasics:
    def test_singleton_field_no_sends(self):
        assert ucube_kernel([5]) == []
        assert maxport_kernel([5]) == []

    def test_ucube_kernel_fig4(self):
        """Source's own sends for the Fig. 3 example: to positions
        center, then halves downward."""
        chain = [0, 1, 3, 5, 7, 11, 12, 14, 15]
        sends = ucube_kernel(chain)
        assert [s[0] for s in sends] == [7, 3, 1]
        # first receiver is handed the whole upper half
        assert sends[0][1] == [7, 11, 12, 14, 15]

    def test_maxport_kernel_distinct_dimensions(self):
        from repro.core.addressing import delta

        chain = [0, 1, 3, 5, 7, 11, 12, 14, 15]
        sends = maxport_kernel(chain)
        dims = [delta(0, dst) for dst, _ in sends]
        assert len(set(dims)) == len(dims)

    def test_maxport_kernel_weighted_chain(self):
        """On the Fig. 8 weighted chain the source forwards the crowded
        high subcube to node 14 first."""
        chain = [0, 1, 3, 5, 7, 14, 15, 12, 11]
        sends = maxport_kernel(chain)
        assert sends[0][0] == 14
        assert sends[0][1] == [14, 15, 12, 11]

    def test_unknown_kernel(self):
        with pytest.raises(KeyError):
            execute_distributed("separate", 3, 0, [1])


class TestDistributedEqualsCentralized:
    @pytest.mark.parametrize("algorithm", ALGS)
    @given(case=multicast_cases())
    def test_same_sends(self, algorithm, case):
        n, source, dests = case
        dist = execute_distributed(algorithm, n, source, dests)
        cent = centralized(algorithm, n, source, dests)
        assert sorted((s.src, s.dst, s.chain) for s in dist.sends) == sorted(
            (s.src, s.dst, s.chain) for s in cent.sends
        )

    @pytest.mark.parametrize("algorithm", ALGS)
    @given(case=multicast_cases(max_n=5))
    def test_same_per_sender_issue_order(self, algorithm, case):
        n, source, dests = case
        dist = execute_distributed(algorithm, n, source, dests)
        cent = centralized(algorithm, n, source, dests)
        senders = {s.src for s in cent.sends}
        for node in senders:
            assert [s.dst for s in dist.sends_from(node)] == [
                s.dst for s in cent.sends_from(node)
            ]

    @pytest.mark.parametrize("algorithm", ALGS)
    @given(case=multicast_cases(max_n=5))
    def test_same_schedule(self, algorithm, case):
        n, source, dests = case
        dist = execute_distributed(algorithm, n, source, dests).schedule(ALL_PORT)
        cent = centralized(algorithm, n, source, dests).schedule(ALL_PORT)
        assert dist.dest_steps == cent.dest_steps

    @pytest.mark.parametrize("algorithm", ALGS)
    def test_ascending_order(self, algorithm):
        dests = [1, 3, 5, 7, 11, 12, 14, 15]
        dist = execute_distributed(
            algorithm, 4, 0, dests, ResolutionOrder.ASCENDING
        )
        cent = centralized(algorithm, 4, 0, dests, ResolutionOrder.ASCENDING)
        assert sorted((s.src, s.dst) for s in dist.sends) == sorted(
            (s.src, s.dst) for s in cent.sends
        )
        assert dist.order is ResolutionOrder.ASCENDING


class TestFieldSufficiency:
    """Nothing outside the address field is needed: the payload chains
    recorded on sends are exactly the fields the kernels received."""

    @pytest.mark.parametrize("algorithm", ALGS)
    @given(case=multicast_cases(max_n=5))
    def test_fields_cover_subtrees(self, algorithm, case):
        n, source, dests = case
        tree = execute_distributed(algorithm, n, source, dests)
        from repro.core.contention import reachable_sets
        from repro.core.contention import Unicast

        sched = tree.schedule(ALL_PORT)
        reach = reachable_sets(source, sched.unicasts)
        for s in tree.sends:
            # a send's field lists exactly the receiver's subtree minus itself
            assert set(s.chain) == reach[s.dst] - {s.dst}

    def test_kernels_registered_for_all_paper_algorithms(self):
        assert set(KERNELS) == {"ucube", "maxport", "combine", "wsort"}
