"""Tests for weighted_sort variants and their guard rails."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.multicast import ALL_PORT, WSort
from repro.multicast.wsort import cube_center, weighted_sort, weighted_sort_fast
from tests.conftest import multicast_cases


class TestGuards:
    def test_weighted_sort_rejects_non_cube_ordered(self):
        with pytest.raises(ValueError):
            weighted_sort([0, 4, 1], 4)

    def test_fast_rejects_unsorted_body(self):
        with pytest.raises(ValueError):
            weighted_sort_fast([0, 5, 3, 7], 4)

    def test_fast_rejects_source_not_minimal(self):
        with pytest.raises(ValueError):
            weighted_sort_fast([5, 1, 3], 4)

    def test_cube_center_rejects_zero_dim(self):
        with pytest.raises(ValueError):
            cube_center([0, 1], 0, 1, 0)

    def test_tiny_chains_passthrough(self):
        assert weighted_sort([], 4) == []
        assert weighted_sort([3], 4) == [3]
        assert weighted_sort_fast([0, 9], 4) == [0, 9]


class TestCubeCenter:
    def test_split_position(self):
        # block {0,1,3,5,7,11,12,14,15} at level 4 splits at value 11
        chain = [0, 1, 3, 5, 7, 11, 12, 14, 15]
        assert cube_center(chain, 0, 8, 4) == 5

    def test_no_split_returns_last_plus_one(self):
        chain = [8, 9, 10]  # all in the high half of a 4-cube
        assert cube_center(chain, 0, 2, 4) == 3


class TestLiteralSortVariant:
    """WSort(fast_sort=False) exercises the Fig. 7 transcription."""

    def test_paper_example(self):
        sched = WSort(fast_sort=False).schedule(4, 0, [1, 3, 5, 7, 11, 12, 14, 15], ALL_PORT)
        assert sched.max_step == 2
        assert sched.check_contention().ok

    @given(case=multicast_cases(max_n=5))
    def test_both_variants_identical_trees(self, case):
        n, source, dests = case
        fast = WSort(fast_sort=True).build_tree(n, source, dests)
        literal = WSort(fast_sort=False).build_tree(n, source, dests)
        assert [(s.src, s.dst) for s in fast.sends] == [
            (s.src, s.dst) for s in literal.sends
        ]

    def test_literal_accepts_general_cube_ordered_chain(self):
        """The literal sort also handles chains that are cube-ordered
        but not dimension-ordered (where the fast variant refuses)."""
        chain = [0, 1, 3, 5, 7, 14, 15, 12, 11]  # the Fig. 8 output
        out = weighted_sort(chain, 4)
        assert sorted(out) == sorted(chain)
        assert out[0] == 0
        with pytest.raises(ValueError):
            weighted_sort_fast(chain, 4)
