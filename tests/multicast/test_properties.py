"""Property-based tests: every algorithm, random cubes and destination sets.

These are the library's strongest guarantees: for arbitrary multicast
instances, each algorithm must cover all destinations exactly once,
involve no other CPUs, and produce a schedule the *independent*
Definition 4 verifier accepts.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.chains import is_cube_ordered_chain, relative_chain
from repro.multicast import (
    ALL_PORT,
    ONE_PORT,
    Combine,
    DimensionalSAF,
    Maxport,
    SeparateAddressing,
    UCube,
    WSort,
    k_port,
    verify_multicast,
)
from repro.multicast.maxport import MaxportSubcube
from repro.multicast.ucube import ucube_optimal_steps
from repro.multicast.wsort import weighted_sort, weighted_sort_fast
from tests.conftest import multicast_cases

PAPER_ALGS = [UCube(), Maxport(), MaxportSubcube(), Combine(), WSort()]
ALL_ALGS = PAPER_ALGS + [SeparateAddressing()]


@pytest.mark.parametrize("alg", ALL_ALGS, ids=lambda a: a.name)
class TestAlgorithmInvariants:
    @given(case=multicast_cases())
    def test_all_port_contention_free(self, alg, case):
        n, source, dests = case
        verify_multicast(alg, n, source, dests, ALL_PORT).raise_if_failed()

    @given(case=multicast_cases(max_n=5))
    def test_one_port_contention_free(self, alg, case):
        n, source, dests = case
        verify_multicast(alg, n, source, dests, ONE_PORT).raise_if_failed()

    @given(case=multicast_cases(max_n=5))
    def test_two_port_contention_free(self, alg, case):
        n, source, dests = case
        verify_multicast(alg, n, source, dests, k_port(2)).raise_if_failed()

    @given(case=multicast_cases(max_n=4))
    def test_ascending_order_contention_free(self, alg, case):
        from repro.core.paths import ResolutionOrder

        n, source, dests = case
        verify_multicast(
            alg, n, source, dests, ALL_PORT, order=ResolutionOrder.ASCENDING
        ).raise_if_failed()

    @given(case=multicast_cases())
    def test_sends_equal_destination_count(self, alg, case):
        """Exactly one unicast per destination (no relays, no repeats)."""
        n, source, dests = case
        tree = alg.build_tree(n, source, dests)
        assert len(tree.sends) == len(dests)
        assert {s.dst for s in tree.sends} == set(dests)


class TestSAFBaseline:
    @given(case=multicast_cases())
    def test_saf_covers_with_relays(self, case):
        n, source, dests = case
        verify_multicast(
            DimensionalSAF(), n, source, dests, ONE_PORT, allow_relays=True
        ).raise_if_failed()

    @given(case=multicast_cases())
    def test_saf_unicasts_single_hop(self, case):
        from repro.core.addressing import hamming

        n, source, dests = case
        tree = DimensionalSAF().build_tree(n, source, dests)
        assert all(hamming(s.src, s.dst) == 1 for s in tree.sends)


class TestStepBounds:
    @given(case=multicast_cases())
    def test_ucube_one_port_is_optimal(self, case):
        """U-cube achieves the tight bound ceil(log2(m + 1)) (Section 2)."""
        n, source, dests = case
        sched = UCube().schedule(n, source, dests, ONE_PORT)
        assert sched.max_step == ucube_optimal_steps(len(dests))

    @given(case=multicast_cases())
    def test_all_port_never_worse_than_one_port(self, case):
        n, source, dests = case
        for alg in PAPER_ALGS:
            one = alg.schedule(n, source, dests, ONE_PORT).max_step
            allp = alg.schedule(n, source, dests, ALL_PORT).max_step
            assert allp <= one

    @given(case=multicast_cases())
    def test_steps_at_least_logarithmic(self, case):
        """No unicast-based multicast can beat ceil(log2(m+1)) steps even
        on all-port hardware *in tree height*... but all-port steps can:
        the real lower bound is the tree height needed given n ports.
        We assert the weaker sound bound: at least 1 step, and at least
        ceil(m / sum-of-ports) growth."""
        n, source, dests = case
        m = len(dests)
        for alg in PAPER_ALGS:
            steps = alg.schedule(n, source, dests, ALL_PORT).max_step
            assert steps >= 1
            # with all ports, the informed-node count can grow at most
            # (n+1)-fold per step
            informed = 1
            for _ in range(steps):
                informed *= n + 1
            assert informed >= m + 1

    @given(case=multicast_cases())
    def test_combine_never_deeper_than_ucube_chain_halving(self, case):
        """Combine's next >= center, so each sender's remaining chain at
        least halves: its tree height is at most U-cube's."""
        n, source, dests = case
        cmb = Combine().build_tree(n, source, dests)
        ucb = UCube().build_tree(n, source, dests)
        assert cmb.depth() <= ucb.depth()

    @given(case=multicast_cases(max_n=5))
    def test_broadcast_steps(self, case):
        """Multicast to *all* other nodes: U-cube needs exactly n steps
        on one-port; the all-port algorithms need at most n."""
        n, source, _ = case
        dests = [u for u in range(1 << n) if u != source]
        assert UCube().schedule(n, source, dests, ONE_PORT).max_step == n
        for alg in PAPER_ALGS:
            assert alg.schedule(n, source, dests, ALL_PORT).max_step <= n


class TestMaxportFormulations:
    @given(case=multicast_cases())
    def test_loop_equals_subcube_recursion(self, case):
        """The Fig. 4 loop with next=highdim and the Section 4.2
        subcube recursion emit identical sends on dimension-ordered
        chains."""
        n, source, dests = case
        a = Maxport().build_tree(n, source, dests)
        b = MaxportSubcube().build_tree(n, source, dests)
        assert [(s.src, s.dst, s.chain) for s in a.sends] == [
            (s.src, s.dst, s.chain) for s in b.sends
        ]


class TestWeightedSort:
    @given(case=multicast_cases())
    def test_theorem5(self, case):
        """Theorem 5: weighted_sort yields a cube-ordered permutation
        with the source still first."""
        n, source, dests = case
        chain = relative_chain(source, dests)
        out = weighted_sort(chain, n)
        assert out[0] == chain[0] == 0
        assert sorted(out) == sorted(chain)
        assert is_cube_ordered_chain(out, n)

    @given(case=multicast_cases())
    def test_fast_matches_literal(self, case):
        n, source, dests = case
        chain = relative_chain(source, dests)
        assert weighted_sort_fast(chain, n) == weighted_sort(chain, n)

    @given(case=multicast_cases())
    def test_idempotent_population_order(self, case):
        """After weighted_sort, within every non-source block the first
        half is at least as populated as the second."""
        n, source, dests = case
        chain = weighted_sort(relative_chain(source, dests), n)

        def check(lo: int, hi: int, dim: int, protected: bool) -> None:
            if hi - lo <= 1 or dim == 0:
                return
            b = 1 << (dim - 1)
            head = chain[lo] & b
            split = hi
            for i in range(lo + 1, hi):
                if (chain[i] & b) != head:
                    split = i
                    break
            if split < hi and not protected:
                assert split - lo >= hi - split
            check(lo, split, dim - 1, protected)
            check(split, hi, dim - 1, False)

        check(0, len(chain), n, True)

    @given(case=multicast_cases())
    def test_wsort_vs_maxport_steps(self, case):
        """weighted_sort never hurts Maxport's step count by more than
        the reordering can cost -- empirically on random sets it is
        never worse (checked, not proven in the paper)."""
        n, source, dests = case
        plain = MaxportSubcube().schedule(n, source, dests, ALL_PORT).max_step
        sorted_ = WSort().schedule(n, source, dests, ALL_PORT).max_step
        assert sorted_ <= plain
