"""Regression tests for every worked example in the paper.

Each test cites the figure or passage it reproduces; together these pin
the implementation to the paper's semantics.
"""

from __future__ import annotations

import pytest

from repro.core.paths import ResolutionOrder
from repro.multicast import (
    ALL_PORT,
    ONE_PORT,
    Combine,
    DimensionalSAF,
    Maxport,
    UCube,
    WSort,
)
from repro.multicast.ucube import ucube_optimal_steps
from repro.multicast.wsort import weighted_sort

#: Fig. 2/3 running example: multicast from 0000 to eight destinations.
FIG3_SOURCE = 0b0000
FIG3_DESTS = [0b0001, 0b0011, 0b0101, 0b0111, 0b1011, 0b1100, 0b1110, 0b1111]

#: Fig. 8 example.
FIG8_SOURCE = 0
FIG8_DESTS = [1, 3, 5, 7, 11, 12, 14, 15]


class TestFigure3:
    def test_3a_saf_tree(self):
        """Fig. 3(a): the store-and-forward tree needs 4 steps and
        involves exactly the five relay CPUs 0010, 0100, 0110, 1000,
        1010."""
        tree = DimensionalSAF().build_tree(4, FIG3_SOURCE, FIG3_DESTS)
        assert tree.relay_nodes == {0b0010, 0b0100, 0b0110, 0b1000, 0b1010}
        assert tree.schedule(ONE_PORT).max_step == 4

    def test_3c_ucube_one_port(self):
        """Fig. 3(c): U-cube reaches the 8 destinations in 4 steps on a
        one-port machine, with no relay CPUs, contention-free."""
        tree = UCube().build_tree(4, FIG3_SOURCE, FIG3_DESTS)
        assert tree.relay_nodes == set()
        sched = tree.schedule(ONE_PORT)
        assert sched.max_step == 4 == ucube_optimal_steps(8)
        assert sched.check_contention().ok

    def test_3d_ucube_all_port(self):
        """Fig. 3(d): on an all-port machine U-cube still needs 4 steps;
        destination 1011 is reached only in step 3 because its unicast
        shares a channel with the path to 1100."""
        sched = UCube().schedule(4, FIG3_SOURCE, FIG3_DESTS, ALL_PORT)
        assert sched.max_step == 4
        assert sched.dest_steps[0b1011] == 3
        assert sched.check_contention().ok

    def test_3d_some_destinations_earlier(self):
        """Fig. 3(d) vs 3(c): all-port reaches some destinations earlier."""
        one = UCube().schedule(4, FIG3_SOURCE, FIG3_DESTS, ONE_PORT).dest_steps
        allp = UCube().schedule(4, FIG3_SOURCE, FIG3_DESTS, ALL_PORT).dest_steps
        assert all(allp[d] <= one[d] for d in allp)
        assert any(allp[d] < one[d] for d in allp)

    def test_3e_two_step_tree_exists(self):
        """Fig. 3(e): a 2-step contention-free all-port tree exists for
        this destination set, and W-sort finds one."""
        sched = WSort().schedule(4, FIG3_SOURCE, FIG3_DESTS, ALL_PORT)
        assert sched.max_step == 2
        assert sched.check_contention().ok
        assert sched.tree.relay_nodes == set()


class TestFigure5:
    """U-cube from source 0100 to eight destinations (one-port 4-cube)."""

    SOURCE = 0b0100
    DESTS = [0b0001, 0b0011, 0b0101, 0b0111, 0b1000, 0b1010, 0b1011, 0b1111]

    def test_four_steps(self):
        sched = UCube().schedule(4, self.SOURCE, self.DESTS, ONE_PORT)
        assert sched.max_step == 4
        assert sched.check_contention().ok

    def test_same_relative_operation_as_fig3(self):
        """The paper notes this d0-relative chain is the Fig. 3 multicast."""
        from repro.core.chains import relative_chain

        chain = relative_chain(self.SOURCE, self.DESTS)
        assert chain == [0] + sorted(FIG3_DESTS)


class TestFigure6:
    """Source 0000 to {1001, 1010, 1011}: Maxport 3 steps, U-cube 2."""

    DESTS = [0b1001, 0b1010, 0b1011]

    def test_maxport_three_steps(self):
        sched = Maxport().schedule(4, 0, self.DESTS, ALL_PORT)
        assert sched.max_step == 3

    def test_ucube_two_steps(self):
        sched = UCube().schedule(4, 0, self.DESTS, ALL_PORT)
        assert sched.max_step == 2

    def test_combine_matches_ucube_here(self):
        """Combine never leaves one node a large subset; here it should
        also finish in 2 steps."""
        sched = Combine().schedule(4, 0, self.DESTS, ALL_PORT)
        assert sched.max_step == 2

    def test_maxport_chain_structure(self):
        """Fig. 6(a): Maxport sends 0000->1001->1010? No: the maxport
        chain is 0000 -> 1001, 1001 -> 1010, 1010 -> 1011 in relative
        space; all three unicasts leave on dimension 3 ancestry."""
        tree = Maxport().build_tree(4, 0, self.DESTS)
        sends = [(s.src, s.dst) for s in tree.sends]
        assert (0, 0b1001) in sends
        assert len(tree.sends_from(0)) == 1  # single port used


class TestFigure8:
    def test_weighted_sort_output(self):
        """Section 4.2: weighted_sort({0,1,3,5,7,11,12,14,15}) =
        {0,1,3,5,7,14,15,12,11}."""
        chain = [0, 1, 3, 5, 7, 11, 12, 14, 15]
        assert weighted_sort(chain, 4) == [0, 1, 3, 5, 7, 14, 15, 12, 11]

    def test_8a_ucube_four_steps(self):
        sched = UCube().schedule(4, FIG8_SOURCE, FIG8_DESTS, ALL_PORT)
        assert sched.max_step == 4

    def test_8b_maxport_four_steps(self):
        sched = Maxport().schedule(4, FIG8_SOURCE, FIG8_DESTS, ALL_PORT)
        assert sched.max_step == 4

    def test_8b_maxport_distinct_outgoing_channels(self):
        """Fig. 8(b): all unicasts with a common source use different
        outgoing channels."""
        from repro.core.addressing import delta

        tree = Maxport().build_tree(4, FIG8_SOURCE, FIG8_DESTS)
        for node in {s.src for s in tree.sends}:
            dims = [delta(s.src, s.dst) for s in tree.sends_from(node)]
            assert len(set(dims)) == len(dims)

    def test_8c_wsort_two_steps(self):
        sched = WSort().schedule(4, FIG8_SOURCE, FIG8_DESTS, ALL_PORT)
        assert sched.max_step == 2
        assert sched.check_contention().ok


class TestSection41ChainExamples:
    def test_dimension_order_example(self):
        """Section 4.1: ordering of 10100, 00110, 10010 (high-to-low)."""
        assert sorted([0b10100, 0b00110, 0b10010]) == [0b00110, 0b10010, 0b10100]

    def test_ascending_resolution_order_example(self):
        """With low-to-high resolution the chain reverses; our ascending
        trees are built through bit-reversal conjugation, so check the
        ordering it induces."""
        from repro.core.addressing import reverse_bits

        vals = [0b10100, 0b00110, 0b10010]
        by_reversed = sorted(vals, key=lambda v: reverse_bits(v, 5))
        assert by_reversed == [0b10100, 0b10010, 0b00110]


class TestResolutionOrderInvariance:
    """The paper: 'In the nCUBE-2, the opposite resolution strategy is
    used, but this difference does not affect any of the results.'"""

    @pytest.mark.parametrize("alg", [UCube(), Maxport(), Combine(), WSort()])
    def test_conjugate_step_counts_match(self, alg):
        """Per-instance results transfer under bit-reversal of the
        destination set: the ascending-order multicast to the reversed
        set behaves exactly like the descending-order one, and remains
        contention-free under ascending-arc semantics."""
        from repro.core.addressing import reverse_bits

        for dests in (FIG3_DESTS, FIG8_DESTS, [0b1001, 0b1010, 0b1011]):
            rdests = [reverse_bits(d, 4) for d in dests]
            desc = alg.schedule(4, 0, dests, ALL_PORT, ResolutionOrder.DESCENDING)
            asc = alg.schedule(4, 0, rdests, ALL_PORT, ResolutionOrder.ASCENDING)
            assert desc.max_step == asc.max_step
            assert asc.check_contention().ok
            assert {reverse_bits(d, 4): s for d, s in desc.dest_steps.items()} == asc.dest_steps

    @pytest.mark.parametrize("alg", [UCube(), Maxport(), Combine(), WSort()])
    def test_ascending_contention_free(self, alg):
        """Contention-freedom itself holds under either resolution order
        for the same destination set (the theorems are order-symmetric)."""
        for dests in (FIG3_DESTS, FIG8_DESTS, [0b1001, 0b1010, 0b1011]):
            asc = alg.schedule(4, 0, dests, ALL_PORT, ResolutionOrder.ASCENDING)
            assert asc.check_contention().ok
            assert asc.tree.destinations == set(dests)
