"""Edge-case sweep: degenerate instances through every public surface."""

from __future__ import annotations

import pytest

from repro.core.paths import ResolutionOrder
from repro.multicast import ALL_PORT, ONE_PORT, verify_multicast
from repro.multicast.optimal import optimal_steps, optimal_tree
from repro.multicast.registry import ALGORITHMS, get_algorithm
from repro.simulator import NCUBE2, simulate_multicast

ALL_NAMES = sorted(ALGORITHMS)


class TestOneCube:
    """The smallest hypercube: 2 nodes, 1 channel each way."""

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_single_possible_multicast(self, name):
        alg = get_algorithm(name)
        result = verify_multicast(alg, 1, 0, [1], ALL_PORT, allow_relays=True)
        assert result
        tree = alg.build_tree(1, 0, [1])
        res = simulate_multicast(tree, 64, NCUBE2, ALL_PORT)
        assert res.delays[1] == pytest.approx(NCUBE2.unicast_latency(64, 1))

    def test_optimal_is_one_step(self):
        assert optimal_steps(1, 0, [1]) == 1


class TestEmptyDestinationSet:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_empty_multicast(self, name):
        alg = get_algorithm(name)
        tree = alg.build_tree(4, 7, [])
        assert tree.sends == []
        assert tree.schedule(ONE_PORT).max_step == 0
        res = simulate_multicast(tree, 64, NCUBE2)
        assert res.avg_delay == 0.0


class TestSingleDestination:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_one_send_only(self, name):
        alg = get_algorithm(name)
        tree = alg.build_tree(5, 9, [22])
        dst_sends = [s for s in tree.sends if s.dst == 22]
        assert len(dst_sends) == 1
        assert tree.schedule(ALL_PORT).max_step >= 1


class TestFullBroadcastEveryAlgorithm:
    @pytest.mark.parametrize("name", ["ucube", "maxport", "combine", "wsort"])
    @pytest.mark.parametrize("source", [0, 7, 31])
    def test_broadcast_from_any_source(self, name, source):
        n = 5
        dests = [u for u in range(1 << n) if u != source]
        result = verify_multicast(get_algorithm(name), n, source, dests, ALL_PORT)
        assert result, result.errors

    def test_broadcast_trees_all_have_n_steps_one_port(self):
        n = 4
        for name in ("ucube", "maxport", "combine", "wsort"):
            dests = [u for u in range(1 << n) if u != 3]
            sched = get_algorithm(name).schedule(n, 3, dests, ONE_PORT)
            assert sched.max_step >= n  # information-theoretic floor


class TestAscendingOrderEdgeCases:
    def test_optimal_tree_ascending(self):
        tree = optimal_tree(3, 0, [1, 2, 4], ResolutionOrder.ASCENDING)
        assert {s.dst for s in tree.sends} == {1, 2, 4}
        sched = tree.schedule(ALL_PORT)
        assert sched.check_contention().ok

    @pytest.mark.parametrize("name", ["ucube", "maxport", "combine", "wsort"])
    def test_single_dest_ascending(self, name):
        tree = get_algorithm(name).build_tree(4, 5, [10], ResolutionOrder.ASCENDING)
        assert [(s.src, s.dst) for s in tree.sends] == [(5, 10)]

    def test_separate_and_saf_ascending(self):
        for name in ("separate", "saf"):
            result = verify_multicast(
                get_algorithm(name),
                4,
                0,
                [3, 9, 14],
                ONE_PORT,
                order=ResolutionOrder.ASCENDING,
                allow_relays=True,
            )
            assert result, result.errors
