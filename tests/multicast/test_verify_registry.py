"""Unit tests for the verification entry point and the registry."""

from __future__ import annotations

import pytest

from repro.core.paths import ResolutionOrder
from repro.multicast import (
    ALL_PORT,
    MulticastAlgorithm,
    MulticastTree,
    verify_multicast,
)
from repro.multicast.registry import (
    ALGORITHMS,
    PAPER_ALGORITHMS,
    get_algorithm,
    register,
)
from repro.multicast.verify import verify_tree


class BrokenMissesDest(MulticastAlgorithm):
    name = "broken-miss"

    def build_tree(self, n, source, destinations, order=ResolutionOrder.DESCENDING):
        tree = MulticastTree(n, source, destinations, order)
        for d in list(destinations)[:-1]:
            tree.add_send(source, d)
        return tree


class BrokenDoubleDelivery(MulticastAlgorithm):
    name = "broken-double"

    def build_tree(self, n, source, destinations, order=ResolutionOrder.DESCENDING):
        tree = MulticastTree(n, source, destinations, order)
        for d in destinations:
            tree.add_send(source, d)
            tree.add_send(source, d)
        return tree


class BrokenRelay(MulticastAlgorithm):
    name = "broken-relay"

    def build_tree(self, n, source, destinations, order=ResolutionOrder.DESCENDING):
        tree = MulticastTree(n, source, destinations, order)
        relay = next(
            u for u in range(1 << n) if u != source and u not in set(destinations)
        )
        tree.add_send(source, relay)
        for d in destinations:
            tree.add_send(relay, d)
        return tree


class TestVerifyTree:
    def test_detects_missing_destination(self):
        errors = verify_tree(BrokenMissesDest().build_tree(3, 0, [1, 2, 3]))
        assert any("never reached" in e for e in errors)

    def test_detects_double_delivery(self):
        errors = verify_tree(BrokenDoubleDelivery().build_tree(3, 0, [1]))
        assert any("receives the message 2 times" in e for e in errors)

    def test_detects_relays(self):
        errors = verify_tree(BrokenRelay().build_tree(3, 0, [3, 5]))
        assert any("non-destination CPUs" in e for e in errors)
        assert verify_tree(BrokenRelay().build_tree(3, 0, [3, 5]), allow_relays=True) == []

    def test_detects_source_self_delivery(self):
        tree = MulticastTree(3, 0, [1])
        tree.add_send(1, 0)  # delivers back to the source
        tree.add_send(0, 1)
        errors = verify_tree(tree)
        assert any("source receives" in e for e in errors)


class TestVerifyMulticast:
    def test_good_algorithm_passes(self):
        result = verify_multicast(get_algorithm("wsort"), 4, 0, [1, 3, 7], ALL_PORT)
        assert result
        result.raise_if_failed()
        assert result.schedule is not None

    def test_broken_algorithm_fails_with_errors(self):
        result = verify_multicast(BrokenMissesDest(), 3, 0, [1, 2, 3], ALL_PORT)
        assert not result
        with pytest.raises(AssertionError):
            result.raise_if_failed()

    def test_relay_algorithm_fails_without_flag(self):
        assert not verify_multicast(BrokenRelay(), 3, 0, [3, 5], ALL_PORT)
        assert verify_multicast(BrokenRelay(), 3, 0, [3, 5], ALL_PORT, allow_relays=True)


class TestRegistry:
    def test_known_algorithms(self):
        assert set(PAPER_ALGORITHMS) <= set(ALGORITHMS)
        for name in ALGORITHMS:
            alg = get_algorithm(name)
            assert alg.name == name

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown algorithm"):
            get_algorithm("definitely-not-real")

    def test_fresh_instances(self):
        assert get_algorithm("wsort") is not get_algorithm("wsort")

    def test_repr(self):
        assert "wsort" in repr(get_algorithm("wsort"))


class TestRegisterHook:
    def test_register_and_resolve(self):
        register("test-relay", BrokenRelay)
        try:
            assert isinstance(get_algorithm("test-relay"), BrokenRelay)
        finally:
            ALGORITHMS.pop("test-relay", None)

    def test_taken_name_rejected_without_replace(self):
        with pytest.raises(ValueError, match="already registered"):
            register("wsort", BrokenRelay)
        assert not isinstance(get_algorithm("wsort"), BrokenRelay)

    def test_replace_overrides_and_restores(self):
        original = ALGORITHMS["wsort"]
        register("wsort", BrokenRelay, replace=True)
        try:
            assert isinstance(get_algorithm("wsort"), BrokenRelay)
        finally:
            register("wsort", original, replace=True)
        assert not isinstance(get_algorithm("wsort"), BrokenRelay)

    def test_returns_factory_for_decorator_use(self):
        assert register("test-decorated", BrokenRelay) is BrokenRelay
        ALGORITHMS.pop("test-decorated", None)

    def test_exported_from_package(self):
        import repro
        import repro.multicast

        assert repro.multicast.register is register
        assert repro.register is register
