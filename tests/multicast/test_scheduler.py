"""Tests for the multicast tree structure and the greedy step scheduler."""

from __future__ import annotations

import pytest

from repro.core.paths import ResolutionOrder
from repro.multicast import ALL_PORT, ONE_PORT, MulticastTree, k_port
from repro.multicast.ports import PortModel


class TestMulticastTree:
    def test_basic_construction(self):
        tree = MulticastTree(3, 0, [1, 2])
        tree.add_send(0, 1)
        tree.add_send(0, 2)
        assert tree.nodes_receiving == {1, 2}
        assert tree.relay_nodes == set()
        assert tree.depth() == 1
        assert tree.total_hops() == 2

    def test_source_among_destinations_rejected(self):
        with pytest.raises(ValueError):
            MulticastTree(3, 0, [0, 1])

    def test_self_send_rejected(self):
        tree = MulticastTree(3, 0, [1])
        with pytest.raises(ValueError):
            tree.add_send(1, 1)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            MulticastTree(3, 8, [1])
        tree = MulticastTree(3, 0, [1])
        with pytest.raises(ValueError):
            tree.add_send(0, 9)

    def test_relay_nodes(self):
        tree = MulticastTree(3, 0, [3])
        tree.add_send(0, 1)  # relay CPU
        tree.add_send(1, 3)
        assert tree.relay_nodes == {1}

    def test_depth_chain(self):
        tree = MulticastTree(3, 0, [1, 3, 7])
        tree.add_send(0, 1)
        tree.add_send(1, 3)
        tree.add_send(3, 7)
        assert tree.depth() == 3

    def test_depth_generic_order(self):
        """depth() falls back to a fixpoint when sends are appended
        child-before-parent (hand-built trees)."""
        tree = MulticastTree(3, 0, [1, 3])
        tree.add_send(1, 3)
        tree.add_send(0, 1)
        assert tree.depth() == 2

    def test_disconnected_tree_depth_raises(self):
        tree = MulticastTree(3, 0, [3])
        tree.add_send(2, 3)
        with pytest.raises(ValueError):
            tree.depth()

    def test_disconnected_tree_schedule_raises(self):
        tree = MulticastTree(3, 0, [3])
        tree.add_send(2, 3)
        with pytest.raises(ValueError):
            tree.schedule(ALL_PORT)

    def test_sends_from_preserves_issue_order(self):
        tree = MulticastTree(4, 0, [1, 2, 4])
        tree.add_send(0, 4)
        tree.add_send(0, 2)
        tree.add_send(0, 1)
        assert [s.dst for s in tree.sends_from(0)] == [4, 2, 1]

    def test_parent_of(self):
        tree = MulticastTree(3, 0, [1, 3])
        tree.add_send(0, 1)
        tree.add_send(1, 3)
        assert tree.parent_of(3) == 1
        assert tree.parent_of(1) == 0
        assert tree.parent_of(0) is None


class TestScheduler:
    def test_empty_tree(self):
        tree = MulticastTree(3, 0, [])
        sched = tree.schedule(ALL_PORT)
        assert sched.max_step == 0
        assert sched.unicasts == []

    def test_one_port_serializes(self):
        tree = MulticastTree(3, 0, [1, 2, 4])
        for d in (4, 2, 1):
            tree.add_send(0, d)
        sched = tree.schedule(ONE_PORT)
        assert [u.step for u in sched.unicasts] == [1, 2, 3]

    def test_all_port_parallelizes_distinct_channels(self):
        tree = MulticastTree(3, 0, [1, 2, 4])
        for d in (4, 2, 1):
            tree.add_send(0, d)
        sched = tree.schedule(ALL_PORT)
        assert sched.max_step == 1

    def test_all_port_serializes_shared_first_channel(self):
        """Two sends whose E-cube paths share the first arc cannot go in
        the same step even on an all-port node (Fig. 3(d))."""
        tree = MulticastTree(4, 0b0111, [0b1100, 0b1011])
        tree.add_send(0b0111, 0b1100)
        tree.add_send(0b0111, 0b1011)
        sched = tree.schedule(ALL_PORT)
        steps = sorted(sched.dest_steps.values())
        assert steps == [1, 2]

    def test_two_port_model(self):
        tree = MulticastTree(3, 0, [1, 2, 4])
        for d in (4, 2, 1):
            tree.add_send(0, d)
        sched = tree.schedule(k_port(2))
        assert sched.max_step == 2  # two in step 1, one in step 2

    def test_port_limit_capped_at_n(self):
        assert k_port(10).limit(3) == 3
        assert ALL_PORT.limit(5) == 5
        assert ONE_PORT.limit(5) == 1

    def test_invalid_port_count(self):
        with pytest.raises(ValueError):
            PortModel(0, "zero")

    def test_receiver_sends_strictly_later(self):
        tree = MulticastTree(3, 0, [4, 6])
        tree.add_send(0, 4)
        tree.add_send(4, 6)
        sched = tree.schedule(ALL_PORT)
        assert sched.dest_steps[4] < sched.dest_steps[6]

    def test_cross_sender_same_step_conflict_delayed(self):
        """Two different senders conflicting deeper in the network must
        not be scheduled in the same step."""
        # 0 -> 4 (arc (0,2)); then 4 -> 7 (arcs (4,1),(6,0))
        # and 0 -> 6 (arcs (0,2)? no: 0^6=6, dims 2,1: arcs (0,2),(4,1)).
        tree = MulticastTree(3, 0, [4, 6, 7])
        tree.add_send(0, 4)
        tree.add_send(4, 7)
        tree.add_send(0, 6)
        sched = tree.schedule(ALL_PORT)
        by = {(u.src, u.dst): u.step for u in sched.unicasts}
        # 0->6 and 0->4 share arc (0,2): serialized at the source.
        assert by[(0, 6)] != by[(0, 4)]
        # 4->7 and 0->6 share arc (4,1): must not share a step.
        assert by[(4, 7)] != by[(0, 6)]
        assert sched.check_contention().ok

    def test_dest_steps_complete(self):
        tree = MulticastTree(3, 0, [1, 2, 3])
        tree.add_send(0, 2, chain=(3,))
        tree.add_send(2, 3)
        tree.add_send(0, 1)
        sched = tree.schedule(ALL_PORT)
        assert set(sched.dest_steps) == {1, 2, 3}

    def test_step_of(self):
        tree = MulticastTree(3, 0, [1])
        send = tree.add_send(0, 1)
        sched = tree.schedule(ALL_PORT)
        assert sched.step_of(send) == 1

    def test_schedule_respects_order_attribute(self):
        """Ascending-order trees schedule with ascending-order arcs:
        0->3 and 0->1 share the first arc (0,0) under ASC but are
        disjoint under DESC."""
        tree = MulticastTree(2, 0, [1, 3], order=ResolutionOrder.ASCENDING)
        tree.add_send(0, 3)
        tree.add_send(0, 1)
        assert tree.schedule(ALL_PORT).max_step == 2
        tree_d = MulticastTree(2, 0, [1, 3], order=ResolutionOrder.DESCENDING)
        tree_d.add_send(0, 3)
        tree_d.add_send(0, 1)
        assert tree_d.schedule(ALL_PORT).max_step == 1
