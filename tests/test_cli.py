"""Tests for the command-line interface."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main

_REPO_ROOT = Path(__file__).resolve().parents[1]


def _run_cli(*argv: str, cwd=None) -> subprocess.CompletedProcess:
    """Invoke the real ``python -m repro`` entry point (exit codes and
    stderr behavior must hold for the installed command, not just
    ``main()`` in-process)."""
    env = dict(os.environ, PYTHONPATH=str(_REPO_ROOT / "src"))
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        env=env, cwd=cwd or _REPO_ROOT, capture_output=True, text=True, timeout=300,
    )


class TestList:
    def test_lists_algorithms_and_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("ucube", "maxport", "combine", "wsort", "fig9", "fig14"):
            assert name in out


class TestTree:
    def test_prints_tree(self, capsys):
        rc = main(["tree", "-n", "4", "-d", "1,3,5,7,11,12,14,15", "-a", "wsort"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "steps: 2" in out
        assert "contention-free" in out

    def test_hex_and_binary_destinations(self, capsys):
        rc = main(["tree", "-n", "4", "-d", "0b0101 0x0b 7"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "3 destination(s)" in out

    def test_one_port(self, capsys):
        rc = main(["tree", "-n", "4", "-d", "1,2,3,4,5,6,7,8", "-a", "ucube", "-p", "one"])
        assert rc == 0
        assert "steps: 4" in capsys.readouterr().out

    def test_simulate_flag(self, capsys):
        rc = main(["tree", "-n", "4", "-d", "1,3,5", "--simulate"])
        assert rc == 0
        assert "simulated" in capsys.readouterr().out

    def test_ascending(self, capsys):
        rc = main(["tree", "-n", "4", "-d", "1,3,5", "--ascending"])
        assert rc == 0


class TestExperiment:
    def test_fig9_runs(self, capsys, monkeypatch):
        # shrink by forcing fast mode (the default)
        monkeypatch.delenv("REPRO_FULL", raising=False)
        rc = main(["experiment", "fig9"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out and "wsort" in out

    def test_unknown_id_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "nope"])


class TestReport:
    def test_report_single_figure(self, capsys):
        rc = main(["report", "--figures", "fig11"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 11" in out
        assert "| PASS |" in out
        assert "FAIL" not in out


class TestTreeTimeline:
    def test_timeline_rendered(self, capsys):
        rc = main(["tree", "-n", "4", "-d", "1,3,5", "--timeline"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "channel occupancy" in out
        assert "worm0" in out


class TestExperimentTelemetry:
    def test_fig9_telemetry_writes_record_per_point(self, capsys, monkeypatch, tmp_path):
        """Acceptance: ``experiment fig9 --telemetry out.jsonl`` writes at
        least one valid RunRecord line per figure point, parseable back."""
        from repro.obs.sink import read_jsonl

        monkeypatch.delenv("REPRO_FULL", raising=False)
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        out = str(tmp_path / "out.jsonl")
        rc = main(["experiment", "fig9", "--telemetry", out])
        assert rc == 0
        rendered = capsys.readouterr().out
        records = read_jsonl(out)
        points = [r for r in records if r.kind == "experiment-point"]
        # one x value per rendered table row; >= 1 record per point
        xs = {r.extra["x"] for r in points}
        assert len(points) >= len(xs) >= 1
        first = points[0]
        assert first.extra["experiment"] == "fig9"
        assert first.n == 6
        assert set(first.extra["columns"]) == {"ucube", "maxport", "combine", "wsort"}
        # every x in the table appears in the telemetry
        for line in rendered.splitlines():
            cells = line.split()
            if cells and cells[0].isdigit():
                assert int(cells[0]) in xs

    def test_telemetry_flag_does_not_leak(self, monkeypatch, tmp_path):
        from repro.obs.sink import get_sink

        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        out = str(tmp_path / "out.jsonl")
        main(["experiment", "fig9", "--telemetry", out])
        assert get_sink() is None

    def test_disabled_telemetry_is_bit_identical(self, monkeypatch, tmp_path):
        """With telemetry enabled vs disabled, simulated event counts and
        delays are bit-identical (instrumentation observes, never
        perturbs)."""
        from repro.multicast.registry import get_algorithm
        from repro.obs.sink import capture
        from repro.simulator.run import simulate_multicast

        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        tree = get_algorithm("wsort").build_tree(6, 0, [1, 3, 7, 15, 31, 63, 42])
        plain = simulate_multicast(tree, size=4096)
        with capture():
            instrumented = simulate_multicast(tree, size=4096)
        assert instrumented.delays == plain.delays
        assert instrumented.events == plain.events
        assert instrumented.total_blocked_time == plain.total_blocked_time


class TestStats:
    def test_stats_prints_full_instrumentation(self, capsys):
        rc = main(["stats", "-n", "4", "-d", "1,3,5,9", "-a", "wsort"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "multicast replay" in out
        assert "metrics:" in out
        assert "sim.events" in out
        assert "heap depth: peak" in out
        assert "cancellation:" in out
        assert "hotspots:" in out
        assert "per-dim busy" in out

    def test_stats_json_is_valid_run_record(self, capsys):
        from repro.obs.telemetry import RunRecord

        rc = main(["stats", "-n", "4", "-d", "1,3,5", "--json"])
        assert rc == 0
        rec = RunRecord.from_json(capsys.readouterr().out)
        assert rec.kind == "multicast"
        assert "probes" in rec.extra and "channels" in rec.extra

    def test_stats_telemetry_export(self, capsys, tmp_path):
        from repro.obs.sink import read_jsonl

        out = str(tmp_path / "stats.jsonl")
        rc = main(["stats", "-n", "3", "-d", "1,2,3", "--telemetry", out])
        assert rc == 0
        records = read_jsonl(out)
        assert len(records) == 1
        assert records[0].extra["channels"]["channels_used"] > 0


class TestCollectiveTelemetry:
    def test_collective_telemetry_export(self, capsys, tmp_path, monkeypatch):
        from repro.obs.sink import read_jsonl

        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        out = str(tmp_path / "col.jsonl")
        rc = main(["collective", "scatter", "-n", "3", "--size", "64", "--telemetry", out])
        assert rc == 0
        records = read_jsonl(out)
        assert len(records) == 1
        assert records[0].kind == "comm"
        assert records[0].algorithm == "scatter"


class TestFaults:
    def test_sweep_prints_counters(self, capsys):
        rc = main(["faults", "-n", "4", "--links", "0,2", "--sets", "2", "-m", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fault sweep" in out
        for col in ("delivered", "ratio", "aborted", "retries"):
            assert col in out
        for name in ("ucube", "maxport", "combine", "wsort"):
            assert name in out

    def test_repair_mode_single_algorithm(self, capsys):
        rc = main(
            ["faults", "-n", "4", "--links", "2", "--sets", "1", "-a", "wsort", "--repair"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "fault-aware repair" in out
        assert "ucube" not in out

    def test_min_ratio_gate(self, capsys):
        # an impossible floor forces a nonzero exit once faults bite
        rc = main(
            ["faults", "-n", "4", "--links", "1", "--sets", "1", "-m", "2",
             "--deadline-us", "1", "--min-ratio", "1.0"]
        )
        assert rc == 1

    def test_telemetry_export(self, capsys, tmp_path, monkeypatch):
        from repro.obs.sink import read_jsonl

        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        out = str(tmp_path / "faults.jsonl")
        rc = main(
            ["faults", "-n", "6", "--links", "3", "--sets", "2", "-a", "wsort",
             "--telemetry", out]
        )
        assert rc == 0
        records = read_jsonl(out)
        assert len(records) == 2  # one per destination set
        for rec in records:
            assert rec.kind == "degraded-multicast"
            assert rec.extra["failed_links"] == 3
            assert "aborted_worms" in rec.extra and "retries" in rec.extra
            assert rec.extra["deadlock"]["verdict"] in (
                "clear", "contention", "fault-stall", "deadlock"
            )


class TestExitCodes:
    """Failures must reach the invoking shell as nonzero exit codes --
    a CI script piping ``repro-hypercube`` must never see a silent 0."""

    def test_runtime_error_exits_one_with_message(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("")
        proc = _run_cli(
            "experiment", "fig9", "--cache-dir", str(blocker / "cache")
        )
        assert proc.returncode == 1
        assert "error:" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_unknown_sweep_id_exits_two(self):
        proc = _run_cli("sweep", "not-a-figure")
        assert proc.returncode == 2
        assert "unknown experiment" in proc.stderr

    def test_resume_without_journal_dir_exits_two(self):
        proc = _run_cli("sweep", "fig11", "--resume")
        assert proc.returncode == 2
        assert "--journal-dir" in proc.stderr

    def test_report_fail_exits_one(self, capsys, monkeypatch):
        monkeypatch.setattr(
            "repro.analysis.report.markdown_report",
            lambda fast, figures: "| claim | FAIL | detail |",
        )
        assert main(["report", "--figures", "fig11"]) == 1

    def test_mismatched_resume_run_id_exits_two(self, capsys, tmp_path):
        rc = main(
            ["sweep", "fig11", "--journal-dir", str(tmp_path),
             "--resume", "feedc0ffee99"]
        )
        assert rc == 2
        assert "does not match" in capsys.readouterr().err


class TestCacheSubcommand:
    def _seed(self, tmp_path) -> Path:
        from repro.parallel.cache import ScheduleCache, cache_key

        cache_dir = tmp_path / "cache"
        cache = ScheduleCache(cache_dir)
        for x in range(3):
            cache.put(cache_key("t", x=x), {"v": x})
        return cache_dir

    def test_verify_clean_cache(self, capsys, tmp_path):
        cache_dir = self._seed(tmp_path)
        assert main(["cache", "verify", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "3 intact" in out and "no damage" in out

    def test_verify_reports_damage_and_repairs(self, capsys, tmp_path):
        cache_dir = self._seed(tmp_path)
        victim = next(p for p in sorted(cache_dir.rglob("*.json")))
        victim.write_text("{torn")
        assert main(["cache", "verify", str(cache_dir)]) == 1
        assert "corrupt: 1 found" in capsys.readouterr().out
        assert main(["cache", "verify", str(cache_dir), "--repair"]) == 0
        assert "quarantined" in capsys.readouterr().out
        assert not victim.exists()

    def test_gc_reclaims_quarantine(self, capsys, tmp_path):
        cache_dir = self._seed(tmp_path)
        next(iter(sorted(cache_dir.rglob("*.json")))).write_text("{torn")
        main(["cache", "verify", str(cache_dir), "--repair"])
        capsys.readouterr()
        assert main(["cache", "gc", str(cache_dir)]) == 0
        assert "removed 1 quarantined" in capsys.readouterr().out
        assert not (cache_dir / "_quarantine").exists() or not list(
            (cache_dir / "_quarantine").iterdir()
        )

    def test_missing_directory_exits_two(self, capsys, tmp_path):
        assert main(["cache", "verify", str(tmp_path / "absent")]) == 2
        assert main(["cache", "gc", str(tmp_path / "absent")]) == 2


class TestSweepResumeCli:
    def test_sweep_journal_then_resume(self, capsys, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        journal_dir = str(tmp_path / "journal")
        assert main(["sweep", "fig11", "--journal-dir", journal_dir]) == 0
        first = capsys.readouterr().out
        assert "0 point(s) served from journal" in first
        assert main(
            ["sweep", "fig11", "--journal-dir", journal_dir, "--resume"]
        ) == 0
        second = capsys.readouterr().out
        assert "10 point(s) served from journal" in second

        def table(text: str) -> list[str]:
            return [ln for ln in text.splitlines() if "journal:" not in ln
                    and "parallel:" not in ln]

        assert table(first) == table(second)  # resumed output byte-identical


class TestStatsFromFile:
    """``stats --from``: summarize exported telemetry, exit 2 on damage."""

    def test_missing_file_exits_two(self, capsys, tmp_path):
        rc = main(["stats", "--from", str(tmp_path / "absent.jsonl")])
        assert rc == 2
        err = capsys.readouterr().err
        assert "error: cannot read telemetry file" in err
        assert "Traceback" not in err

    def test_corrupt_file_exits_two(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"schema": 2, "kind": "x"\n{torn\n', encoding="utf-8")
        rc = main(["stats", "--from", str(bad)])
        assert rc == 2
        assert "error: corrupt telemetry file" in capsys.readouterr().err

    def test_missing_n_without_from_exits_two(self, capsys):
        rc = main(["stats"])
        assert rc == 2
        assert "required (unless --from)" in capsys.readouterr().err

    def test_summarizes_valid_export(self, capsys, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        out = str(tmp_path / "stats.jsonl")
        assert main(["stats", "-n", "3", "-d", "1,2,3", "--telemetry", out]) == 0
        capsys.readouterr()
        rc = main(["stats", "--from", out])
        assert rc == 0
        text = capsys.readouterr().out
        assert "1 record(s)" in text
        assert "multicast: 1" in text

    def test_json_summary(self, capsys, tmp_path, monkeypatch):
        import json

        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        out = str(tmp_path / "stats.jsonl")
        assert main(["stats", "-n", "3", "-d", "1,2", "--telemetry", out]) == 0
        capsys.readouterr()
        assert main(["stats", "--from", out, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["records"] == 1
        assert doc["kinds"] == {"multicast": 1}

    def test_exit_two_through_real_entry_point(self, tmp_path):
        proc = _run_cli("stats", "--from", str(tmp_path / "gone.jsonl"))
        assert proc.returncode == 2
        assert "error: cannot read telemetry file" in proc.stderr

    def test_gzipped_telemetry_summarizes(self, capsys, tmp_path, monkeypatch):
        """Rotated ``.gz`` segments load exactly like plain JSONL."""
        import gzip

        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        plain = tmp_path / "stats.jsonl"
        assert main(["stats", "-n", "3", "-d", "1,2,3", "--telemetry", str(plain)]) == 0
        capsys.readouterr()
        gz = tmp_path / "stats.jsonl.1.gz"
        with gzip.open(gz, "wb") as f:
            f.write(plain.read_bytes())
        rc = main(["stats", "--from", str(gz)])
        assert rc == 0
        assert "1 record(s)" in capsys.readouterr().out

    def test_truncated_gzip_exits_two(self, capsys, tmp_path, monkeypatch):
        import gzip

        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        plain = tmp_path / "stats.jsonl"
        for dests in ("1,2,3", "1,5", "2,6,7"):
            assert main(["stats", "-n", "3", "-d", dests, "--telemetry", str(plain)]) == 0
        capsys.readouterr()
        gz = tmp_path / "stats.jsonl.1.gz"
        with gzip.open(gz, "wb") as f:
            f.write(plain.read_bytes())
        data = gz.read_bytes()
        gz.write_bytes(data[: len(data) // 2])  # damage the stream
        rc = main(["stats", "--from", str(gz)])
        assert rc == 2
        err = capsys.readouterr().err
        assert "error: corrupt telemetry file" in err
        assert "Traceback" not in err


class TestServe:
    """The ``serve`` subcommand's exit-code contract."""

    def test_bad_port_exits_two(self, capsys):
        rc = main(["serve", "--port", "70000"])
        assert rc == 2
        assert "port must be in" in capsys.readouterr().err

    def test_bad_workers_exits_two(self, capsys):
        rc = main(["serve", "--port", "0", "--workers", "0"])
        assert rc == 2
        assert "--workers" in capsys.readouterr().err

    def test_bad_admission_exits_two(self, capsys):
        rc = main(["serve", "--port", "0", "--max-inflight", "0"])
        assert rc == 2
        assert "max_inflight" in capsys.readouterr().err

    def test_sigterm_drains_and_exits_zero(self):
        """Boot the real process, serve one request, SIGTERM, expect a
        clean drain and exit code 0."""
        import json as _json
        import signal
        import urllib.request

        env = dict(os.environ, PYTHONPATH=str(_REPO_ROOT / "src"))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env, text=True,
        )
        try:
            banner = proc.stdout.readline().strip()
            assert banner.startswith("serving on http://")
            base = banner.split(" on ")[1]
            body = _json.dumps({"n": 4, "destinations": [1, 2, 3]}).encode()
            req = urllib.request.Request(base + "/v1/schedule", data=body, method="POST")
            with urllib.request.urlopen(req, timeout=30) as resp:
                assert resp.status == 200
            proc.send_signal(signal.SIGTERM)
            _, err = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup on failure
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0
        assert "drained: clean" in err


class TestTraceSubcommand:
    def test_trace_writes_perfetto_loadable_json(self, capsys, tmp_path):
        import json

        out = tmp_path / "trace.json"
        rc = main(["trace", "fig11", "-o", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "trace " in text and "event(s) written" in text
        assert "fig11: 10 point(s)" in text
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]
        names = {e["name"] for e in doc["traceEvents"]}
        # nested schedule/verify/simulate spans per point, per acceptance
        for required in ("experiment", "point.delay", "schedule.build",
                         "simulate", "verify.delivery"):
            assert required in names, f"missing {required} spans"
        for event in doc["traceEvents"]:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(event)

    def test_trace_prometheus_sidecar(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        prom = tmp_path / "metrics.prom"
        rc = main(["trace", "fig11", "-o", str(out), "--prometheus", str(prom)])
        assert rc == 0
        text = prom.read_text()
        assert "# TYPE repro_sim_parallel_cache_misses counter" in text
        assert "repro_sim_parallel_points_total 10" in text

    def test_unknown_experiment_exits_two(self, capsys):
        rc = main(["trace", "not-a-figure", "-o", "ignored.json"])
        assert rc == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_sweep_trace_flag(self, capsys, tmp_path):
        import json

        out = tmp_path / "sweep-trace.json"
        rc = main(["sweep", "fig11", "--trace", str(out)])
        assert rc == 0
        assert "event(s) written" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        assert {e["name"] for e in doc["traceEvents"]} >= {"experiment", "point.delay"}


class TestBenchSubcommand:
    def _bench(self, tmp_path, *extra: str):
        return main(
            ["bench", "--quick", "--repeat", "1",
             "--ledger-dir", str(tmp_path), *extra]
        )

    def test_first_run_seeds_trajectory(self, capsys, tmp_path):
        from repro.obs.ledger import host_class, load_ledger

        rc = self._bench(tmp_path)
        assert rc == 0
        out = capsys.readouterr().out
        assert "seeding the trajectory" in out
        book = load_ledger(tmp_path / f"BENCH_{host_class()}.json")
        assert len(book["entries"]) == 1

    def test_second_run_compares_clean(self, capsys, tmp_path):
        assert self._bench(tmp_path) == 0
        capsys.readouterr()
        assert self._bench(tmp_path) == 0
        assert "no regressions vs" in capsys.readouterr().out

    def test_regression_exits_one(self, capsys, tmp_path):
        from repro.obs.ledger import host_class, load_ledger, save_ledger

        assert self._bench(tmp_path) == 0
        capsys.readouterr()
        path = tmp_path / f"BENCH_{host_class()}.json"
        book = load_ledger(path)
        for res in book["entries"][0]["benchmarks"].values():
            res["wall_seconds"] /= 100.0  # past looks 100x faster
        save_ledger(path, book)
        rc = self._bench(tmp_path)
        err = capsys.readouterr().err
        assert rc == 1
        assert "REGRESSION:" in err and "slowed beyond" in err

    def test_regression_still_appends_entry(self, capsys, tmp_path):
        from repro.obs.ledger import host_class, load_ledger, save_ledger

        assert self._bench(tmp_path) == 0
        path = tmp_path / f"BENCH_{host_class()}.json"
        book = load_ledger(path)
        for res in book["entries"][0]["benchmarks"].values():
            res["wall_seconds"] /= 100.0
        save_ledger(path, book)
        assert self._bench(tmp_path) == 1
        assert len(load_ledger(path)["entries"]) == 2  # honest trajectory

    def test_dry_run_does_not_write(self, capsys, tmp_path):
        from repro.obs.ledger import host_class

        rc = self._bench(tmp_path, "--dry-run")
        assert rc == 0
        assert "dry run: ledger not written" in capsys.readouterr().out
        assert not (tmp_path / f"BENCH_{host_class()}.json").exists()

    def test_corrupt_ledger_exits_two(self, capsys, tmp_path):
        from repro.obs.ledger import host_class

        (tmp_path / f"BENCH_{host_class()}.json").write_text("{torn")
        rc = self._bench(tmp_path)
        assert rc == 2
        assert "corrupt benchmark ledger" in capsys.readouterr().err

    def test_bad_threshold_exits_two(self, capsys, tmp_path):
        assert self._bench(tmp_path, "--threshold", "0.5") == 2
        assert "must be > 1.0" in capsys.readouterr().err

    def test_bad_repeat_exits_two(self, capsys, tmp_path):
        assert self._bench(tmp_path, "--repeat", "0") == 2
        assert "--repeat must be >= 1" in capsys.readouterr().err

    def test_threshold_env_override(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_THRESHOLD", "garbage")
        assert self._bench(tmp_path) == 2
        assert "REPRO_BENCH_THRESHOLD" in capsys.readouterr().err


class TestCollective:
    @pytest.mark.parametrize(
        "op", ["broadcast", "scatter", "gather", "allgather", "reduce", "allreduce", "barrier"]
    )
    def test_ops_run(self, capsys, op):
        rc = main(["collective", op, "-n", "3", "--size", "64"])
        assert rc == 0
        assert op in capsys.readouterr().out

    def test_multicast_with_destinations(self, capsys):
        rc = main(["collective", "multicast", "-n", "4", "-d", "1,5,9", "--size", "128"])
        assert rc == 0
        assert "multicast" in capsys.readouterr().out
