"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestList:
    def test_lists_algorithms_and_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("ucube", "maxport", "combine", "wsort", "fig9", "fig14"):
            assert name in out


class TestTree:
    def test_prints_tree(self, capsys):
        rc = main(["tree", "-n", "4", "-d", "1,3,5,7,11,12,14,15", "-a", "wsort"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "steps: 2" in out
        assert "contention-free" in out

    def test_hex_and_binary_destinations(self, capsys):
        rc = main(["tree", "-n", "4", "-d", "0b0101 0x0b 7"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "3 destination(s)" in out

    def test_one_port(self, capsys):
        rc = main(["tree", "-n", "4", "-d", "1,2,3,4,5,6,7,8", "-a", "ucube", "-p", "one"])
        assert rc == 0
        assert "steps: 4" in capsys.readouterr().out

    def test_simulate_flag(self, capsys):
        rc = main(["tree", "-n", "4", "-d", "1,3,5", "--simulate"])
        assert rc == 0
        assert "simulated" in capsys.readouterr().out

    def test_ascending(self, capsys):
        rc = main(["tree", "-n", "4", "-d", "1,3,5", "--ascending"])
        assert rc == 0


class TestExperiment:
    def test_fig9_runs(self, capsys, monkeypatch):
        # shrink by forcing fast mode (the default)
        monkeypatch.delenv("REPRO_FULL", raising=False)
        rc = main(["experiment", "fig9"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out and "wsort" in out

    def test_unknown_id_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "nope"])


class TestReport:
    def test_report_single_figure(self, capsys):
        rc = main(["report", "--figures", "fig11"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 11" in out
        assert "| PASS |" in out
        assert "FAIL" not in out


class TestTreeTimeline:
    def test_timeline_rendered(self, capsys):
        rc = main(["tree", "-n", "4", "-d", "1,3,5", "--timeline"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "channel occupancy" in out
        assert "worm0" in out


class TestCollective:
    @pytest.mark.parametrize(
        "op", ["broadcast", "scatter", "gather", "allgather", "reduce", "allreduce", "barrier"]
    )
    def test_ops_run(self, capsys, op):
        rc = main(["collective", op, "-n", "3", "--size", "64"])
        assert rc == 0
        assert op in capsys.readouterr().out

    def test_multicast_with_destinations(self, capsys):
        rc = main(["collective", "multicast", "-n", "4", "-d", "1,5,9", "--size", "128"])
        assert rc == 0
        assert "multicast" in capsys.readouterr().out
