"""Tests for the command-line interface."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main

_REPO_ROOT = Path(__file__).resolve().parents[1]


def _run_cli(*argv: str, cwd=None) -> subprocess.CompletedProcess:
    """Invoke the real ``python -m repro`` entry point (exit codes and
    stderr behavior must hold for the installed command, not just
    ``main()`` in-process)."""
    env = dict(os.environ, PYTHONPATH=str(_REPO_ROOT / "src"))
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        env=env, cwd=cwd or _REPO_ROOT, capture_output=True, text=True, timeout=300,
    )


class TestList:
    def test_lists_algorithms_and_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("ucube", "maxport", "combine", "wsort", "fig9", "fig14"):
            assert name in out


class TestTree:
    def test_prints_tree(self, capsys):
        rc = main(["tree", "-n", "4", "-d", "1,3,5,7,11,12,14,15", "-a", "wsort"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "steps: 2" in out
        assert "contention-free" in out

    def test_hex_and_binary_destinations(self, capsys):
        rc = main(["tree", "-n", "4", "-d", "0b0101 0x0b 7"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "3 destination(s)" in out

    def test_one_port(self, capsys):
        rc = main(["tree", "-n", "4", "-d", "1,2,3,4,5,6,7,8", "-a", "ucube", "-p", "one"])
        assert rc == 0
        assert "steps: 4" in capsys.readouterr().out

    def test_simulate_flag(self, capsys):
        rc = main(["tree", "-n", "4", "-d", "1,3,5", "--simulate"])
        assert rc == 0
        assert "simulated" in capsys.readouterr().out

    def test_ascending(self, capsys):
        rc = main(["tree", "-n", "4", "-d", "1,3,5", "--ascending"])
        assert rc == 0


class TestExperiment:
    def test_fig9_runs(self, capsys, monkeypatch):
        # shrink by forcing fast mode (the default)
        monkeypatch.delenv("REPRO_FULL", raising=False)
        rc = main(["experiment", "fig9"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out and "wsort" in out

    def test_unknown_id_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "nope"])


class TestReport:
    def test_report_single_figure(self, capsys):
        rc = main(["report", "--figures", "fig11"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 11" in out
        assert "| PASS |" in out
        assert "FAIL" not in out


class TestTreeTimeline:
    def test_timeline_rendered(self, capsys):
        rc = main(["tree", "-n", "4", "-d", "1,3,5", "--timeline"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "channel occupancy" in out
        assert "worm0" in out


class TestExperimentTelemetry:
    def test_fig9_telemetry_writes_record_per_point(self, capsys, monkeypatch, tmp_path):
        """Acceptance: ``experiment fig9 --telemetry out.jsonl`` writes at
        least one valid RunRecord line per figure point, parseable back."""
        from repro.obs.sink import read_jsonl

        monkeypatch.delenv("REPRO_FULL", raising=False)
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        out = str(tmp_path / "out.jsonl")
        rc = main(["experiment", "fig9", "--telemetry", out])
        assert rc == 0
        rendered = capsys.readouterr().out
        records = read_jsonl(out)
        points = [r for r in records if r.kind == "experiment-point"]
        # one x value per rendered table row; >= 1 record per point
        xs = {r.extra["x"] for r in points}
        assert len(points) >= len(xs) >= 1
        first = points[0]
        assert first.extra["experiment"] == "fig9"
        assert first.n == 6
        assert set(first.extra["columns"]) == {"ucube", "maxport", "combine", "wsort"}
        # every x in the table appears in the telemetry
        for line in rendered.splitlines():
            cells = line.split()
            if cells and cells[0].isdigit():
                assert int(cells[0]) in xs

    def test_telemetry_flag_does_not_leak(self, monkeypatch, tmp_path):
        from repro.obs.sink import get_sink

        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        out = str(tmp_path / "out.jsonl")
        main(["experiment", "fig9", "--telemetry", out])
        assert get_sink() is None

    def test_disabled_telemetry_is_bit_identical(self, monkeypatch, tmp_path):
        """With telemetry enabled vs disabled, simulated event counts and
        delays are bit-identical (instrumentation observes, never
        perturbs)."""
        from repro.multicast.registry import get_algorithm
        from repro.obs.sink import capture
        from repro.simulator.run import simulate_multicast

        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        tree = get_algorithm("wsort").build_tree(6, 0, [1, 3, 7, 15, 31, 63, 42])
        plain = simulate_multicast(tree, size=4096)
        with capture():
            instrumented = simulate_multicast(tree, size=4096)
        assert instrumented.delays == plain.delays
        assert instrumented.events == plain.events
        assert instrumented.total_blocked_time == plain.total_blocked_time


class TestStats:
    def test_stats_prints_full_instrumentation(self, capsys):
        rc = main(["stats", "-n", "4", "-d", "1,3,5,9", "-a", "wsort"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "multicast replay" in out
        assert "metrics:" in out
        assert "sim.events" in out
        assert "heap depth: peak" in out
        assert "cancellation:" in out
        assert "hotspots:" in out
        assert "per-dim busy" in out

    def test_stats_json_is_valid_run_record(self, capsys):
        from repro.obs.telemetry import RunRecord

        rc = main(["stats", "-n", "4", "-d", "1,3,5", "--json"])
        assert rc == 0
        rec = RunRecord.from_json(capsys.readouterr().out)
        assert rec.kind == "multicast"
        assert "probes" in rec.extra and "channels" in rec.extra

    def test_stats_telemetry_export(self, capsys, tmp_path):
        from repro.obs.sink import read_jsonl

        out = str(tmp_path / "stats.jsonl")
        rc = main(["stats", "-n", "3", "-d", "1,2,3", "--telemetry", out])
        assert rc == 0
        records = read_jsonl(out)
        assert len(records) == 1
        assert records[0].extra["channels"]["channels_used"] > 0


class TestCollectiveTelemetry:
    def test_collective_telemetry_export(self, capsys, tmp_path, monkeypatch):
        from repro.obs.sink import read_jsonl

        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        out = str(tmp_path / "col.jsonl")
        rc = main(["collective", "scatter", "-n", "3", "--size", "64", "--telemetry", out])
        assert rc == 0
        records = read_jsonl(out)
        assert len(records) == 1
        assert records[0].kind == "comm"
        assert records[0].algorithm == "scatter"


class TestFaults:
    def test_sweep_prints_counters(self, capsys):
        rc = main(["faults", "-n", "4", "--links", "0,2", "--sets", "2", "-m", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fault sweep" in out
        for col in ("delivered", "ratio", "aborted", "retries"):
            assert col in out
        for name in ("ucube", "maxport", "combine", "wsort"):
            assert name in out

    def test_repair_mode_single_algorithm(self, capsys):
        rc = main(
            ["faults", "-n", "4", "--links", "2", "--sets", "1", "-a", "wsort", "--repair"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "fault-aware repair" in out
        assert "ucube" not in out

    def test_min_ratio_gate(self, capsys):
        # an impossible floor forces a nonzero exit once faults bite
        rc = main(
            ["faults", "-n", "4", "--links", "1", "--sets", "1", "-m", "2",
             "--deadline-us", "1", "--min-ratio", "1.0"]
        )
        assert rc == 1

    def test_telemetry_export(self, capsys, tmp_path, monkeypatch):
        from repro.obs.sink import read_jsonl

        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        out = str(tmp_path / "faults.jsonl")
        rc = main(
            ["faults", "-n", "6", "--links", "3", "--sets", "2", "-a", "wsort",
             "--telemetry", out]
        )
        assert rc == 0
        records = read_jsonl(out)
        assert len(records) == 2  # one per destination set
        for rec in records:
            assert rec.kind == "degraded-multicast"
            assert rec.extra["failed_links"] == 3
            assert "aborted_worms" in rec.extra and "retries" in rec.extra
            assert rec.extra["deadlock"]["verdict"] in (
                "clear", "contention", "fault-stall", "deadlock"
            )


class TestExitCodes:
    """Failures must reach the invoking shell as nonzero exit codes --
    a CI script piping ``repro-hypercube`` must never see a silent 0."""

    def test_runtime_error_exits_one_with_message(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("")
        proc = _run_cli(
            "experiment", "fig9", "--cache-dir", str(blocker / "cache")
        )
        assert proc.returncode == 1
        assert "error:" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_unknown_sweep_id_exits_two(self):
        proc = _run_cli("sweep", "not-a-figure")
        assert proc.returncode == 2
        assert "unknown experiment" in proc.stderr

    def test_resume_without_journal_dir_exits_two(self):
        proc = _run_cli("sweep", "fig11", "--resume")
        assert proc.returncode == 2
        assert "--journal-dir" in proc.stderr

    def test_report_fail_exits_one(self, capsys, monkeypatch):
        monkeypatch.setattr(
            "repro.analysis.report.markdown_report",
            lambda fast, figures: "| claim | FAIL | detail |",
        )
        assert main(["report", "--figures", "fig11"]) == 1

    def test_mismatched_resume_run_id_exits_two(self, capsys, tmp_path):
        rc = main(
            ["sweep", "fig11", "--journal-dir", str(tmp_path),
             "--resume", "feedc0ffee99"]
        )
        assert rc == 2
        assert "does not match" in capsys.readouterr().err


class TestCacheSubcommand:
    def _seed(self, tmp_path) -> Path:
        from repro.parallel.cache import ScheduleCache, cache_key

        cache_dir = tmp_path / "cache"
        cache = ScheduleCache(cache_dir)
        for x in range(3):
            cache.put(cache_key("t", x=x), {"v": x})
        return cache_dir

    def test_verify_clean_cache(self, capsys, tmp_path):
        cache_dir = self._seed(tmp_path)
        assert main(["cache", "verify", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "3 intact" in out and "no damage" in out

    def test_verify_reports_damage_and_repairs(self, capsys, tmp_path):
        cache_dir = self._seed(tmp_path)
        victim = next(p for p in sorted(cache_dir.rglob("*.json")))
        victim.write_text("{torn")
        assert main(["cache", "verify", str(cache_dir)]) == 1
        assert "corrupt: 1 found" in capsys.readouterr().out
        assert main(["cache", "verify", str(cache_dir), "--repair"]) == 0
        assert "quarantined" in capsys.readouterr().out
        assert not victim.exists()

    def test_gc_reclaims_quarantine(self, capsys, tmp_path):
        cache_dir = self._seed(tmp_path)
        next(iter(sorted(cache_dir.rglob("*.json")))).write_text("{torn")
        main(["cache", "verify", str(cache_dir), "--repair"])
        capsys.readouterr()
        assert main(["cache", "gc", str(cache_dir)]) == 0
        assert "removed 1 quarantined" in capsys.readouterr().out
        assert not (cache_dir / "_quarantine").exists() or not list(
            (cache_dir / "_quarantine").iterdir()
        )

    def test_missing_directory_exits_two(self, capsys, tmp_path):
        assert main(["cache", "verify", str(tmp_path / "absent")]) == 2
        assert main(["cache", "gc", str(tmp_path / "absent")]) == 2


class TestSweepResumeCli:
    def test_sweep_journal_then_resume(self, capsys, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        journal_dir = str(tmp_path / "journal")
        assert main(["sweep", "fig11", "--journal-dir", journal_dir]) == 0
        first = capsys.readouterr().out
        assert "0 point(s) served from journal" in first
        assert main(
            ["sweep", "fig11", "--journal-dir", journal_dir, "--resume"]
        ) == 0
        second = capsys.readouterr().out
        assert "10 point(s) served from journal" in second

        def table(text: str) -> list[str]:
            return [ln for ln in text.splitlines() if "journal:" not in ln
                    and "parallel:" not in ln]

        assert table(first) == table(second)  # resumed output byte-identical


class TestCollective:
    @pytest.mark.parametrize(
        "op", ["broadcast", "scatter", "gather", "allgather", "reduce", "allreduce", "barrier"]
    )
    def test_ops_run(self, capsys, op):
        rc = main(["collective", op, "-n", "3", "--size", "64"])
        assert rc == 0
        assert op in capsys.readouterr().out

    def test_multicast_with_destinations(self, capsys):
        rc = main(["collective", "multicast", "-n", "4", "-d", "1,5,9", "--size", "128"])
        assert rc == 0
        assert "multicast" in capsys.readouterr().out
