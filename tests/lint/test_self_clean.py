"""The linter applied to its own repository, serial and parallel.

Two invariants: the shipped ``src/`` tree lints clean (the CI gate
assumes it), and fanning the same file set across worker processes via
the sweep engine produces the identical result -- the dogfooding claim
in :mod:`repro.lint.engine`.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import lint_paths
from repro.obs.metrics import MetricsRegistry

_SRC = str(Path(__file__).resolve().parents[2] / "src")


def test_src_tree_is_clean():
    result = lint_paths([_SRC])
    assert result.files > 50  # the whole package, not an empty walk
    assert result.clean, "\n".join(f.format() for f in result.findings)
    assert result.waived > 0  # the documented display-only waivers exist


def test_parallel_matches_serial():
    serial = lint_paths([_SRC])
    parallel = lint_paths([_SRC], jobs=2)
    assert parallel.files == serial.files
    assert parallel.waived == serial.waived
    assert [f.to_dict() for f in parallel.findings] == [
        f.to_dict() for f in serial.findings
    ]


def test_lint_metrics_are_emitted():
    registry = MetricsRegistry()
    result = lint_paths([_SRC], metrics=registry)
    snapshot = registry.snapshot()
    assert snapshot["sim.lint.files"]["value"] == result.files
    assert snapshot["sim.lint.findings"]["value"] == 0
    assert snapshot["sim.lint.waived"]["value"] == result.waived
