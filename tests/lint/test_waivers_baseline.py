"""Waiver parsing/placement and baseline load/save/split semantics."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.lint.baseline import (
    BaselineError,
    load_baseline,
    save_baseline,
    split_findings,
)
from repro.lint.engine import lint_source
from repro.lint.findings import Finding


def _lint(source: str):
    return lint_source(textwrap.dedent(source), "snippet.py")


class TestWaivers:
    def test_inline_waiver_suppresses(self):
        found, waived = _lint(
            """
            import time

            started = time.time()  # repro: lint-ok[REP002] display-only timestamp
            """
        )
        assert found == []
        assert waived == 1

    def test_own_line_waiver_targets_next_line(self):
        found, waived = _lint(
            """
            import time

            # repro: lint-ok[REP002] display-only timestamp, line kept short
            started = time.time()
            """
        )
        assert found == []
        assert waived == 1

    def test_waiver_does_not_leak_past_its_line(self):
        found, waived = _lint(
            """
            import time

            a = time.time()  # repro: lint-ok[REP002] display only
            b = time.time()
            """
        )
        assert waived == 1
        assert [f.line for f in found] == [5]

    def test_wrong_rule_id_does_not_suppress(self):
        found, waived = _lint(
            """
            import time

            started = time.time()  # repro: lint-ok[REP001] not the right rule
            """
        )
        assert waived == 0
        assert [f.rule for f in found] == ["REP002"]

    def test_multi_rule_waiver(self):
        found, waived = _lint(
            """
            import random

            # repro: lint-ok[REP001,REP002] fixture exercising both rules at once
            x = random.random()
            """
        )
        assert found == []
        assert waived == 1

    def test_missing_reason_is_rep000(self):
        found, _waived = _lint(
            """
            import time

            started = time.time()  # repro: lint-ok[REP002]
            """
        )
        rules = sorted(f.rule for f in found)
        # the reasonless waiver is reported AND does not suppress
        assert rules == ["REP000", "REP002"]

    def test_waiver_inside_string_literal_is_inert(self):
        found, waived = _lint(
            '''
            import time

            DOC = "# repro: lint-ok[REP002] not a real waiver"
            started = time.time()
            '''
        )
        assert waived == 0
        assert [f.rule for f in found] == ["REP002"]


class TestBaseline:
    def _finding(self, message="m", path="src/x.py"):
        return Finding(
            rule="REP002", path=path, line=10, col=5, message=message, snippet="s"
        )

    def test_missing_file_is_empty_baseline(self, tmp_path):
        data = load_baseline(tmp_path / "nope.json")
        assert data["findings"] == []
        assert data["report_only"] == {}

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "baseline.json"
        f = self._finding()
        save_baseline(path, [f, f], report_only={"tests": 3})
        data = load_baseline(path)
        assert data["schema"] == 1
        assert data["tool"] == "repro.lint"
        assert data["findings"] == [
            {
                "fingerprint": f.fingerprint(),
                "rule": "REP002",
                "path": "src/x.py",
                "count": 2,
            }
        ]
        assert data["report_only"] == {"tests": 3}

    def test_corrupt_json_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(BaselineError):
            load_baseline(path)

    def test_wrong_schema_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"schema": 99, "findings": []}), encoding="utf-8")
        with pytest.raises(BaselineError):
            load_baseline(path)

    def test_malformed_entries_raise(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps({"schema": 1, "findings": [{"rule": "REP002"}]}),
            encoding="utf-8",
        )
        with pytest.raises(BaselineError):
            load_baseline(path)

    def test_split_is_a_multiset_consume(self, tmp_path):
        path = tmp_path / "baseline.json"
        f = self._finding()
        save_baseline(path, [f, f])  # grandfather two occurrences
        baseline = load_baseline(path)
        new, baselined = split_findings([f, f, f], baseline)
        assert baselined == 2
        assert len(new) == 1  # the third identical finding is new

    def test_split_ignores_line_shifts(self, tmp_path):
        path = tmp_path / "baseline.json"
        f = self._finding()
        save_baseline(path, [f])
        shifted = Finding(
            rule=f.rule,
            path=f.path,
            line=99,  # moved, same code
            col=1,
            message=f.message,
            snippet=f.snippet,
        )
        new, baselined = split_findings([shifted], load_baseline(path))
        assert (new, baselined) == ([], 1)

    def test_unrelated_finding_is_new(self, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline(path, [self._finding()])
        other = self._finding(message="different defect")
        new, baselined = split_findings([other], load_baseline(path))
        assert baselined == 0
        assert new == [other]
