"""Subprocess tests for the ``lint`` subcommand's exit-code contract.

The contract the CI job gates on: 0 clean tree, 1 new findings,
2 usage error / corrupt baseline.  Golden-output tests pin the
``--format text`` and ``--format json`` shapes.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[2]

#: A module with exactly one violation: wall-clock duration (REP002)
#: at line 5, column 12.
_BAD_SOURCE = (
    "import time\n"
    "\n"
    "\n"
    "def uptime(start):\n"
    "    return time.time() - start\n"
)

_REP002_MESSAGE = (
    "time.time() is not monotonic -- use time.monotonic() or "
    "time.perf_counter() for durations; waive only display-only "
    "wall-clock timestamps"
)


def _run_cli(*argv: str, cwd=None) -> subprocess.CompletedProcess:
    env = dict(os.environ, PYTHONPATH=str(_REPO_ROOT / "src"))
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        env=env, cwd=cwd or _REPO_ROOT, capture_output=True, text=True, timeout=300,
    )


def _write_fixture(tmp_path: Path) -> Path:
    bad = tmp_path / "bad.py"
    bad.write_text(_BAD_SOURCE, encoding="utf-8")
    return bad


class TestExitCodes:
    def test_exit_0_on_clean_shipped_tree(self):
        """The committed tree must lint clean with the committed baseline."""
        proc = _run_cli("lint")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout

    def test_exit_1_on_injected_violation(self, tmp_path):
        bad = _write_fixture(tmp_path)
        proc = _run_cli("lint", str(bad), cwd=tmp_path)
        assert proc.returncode == 1
        assert "REP002" in proc.stdout

    def test_exit_2_on_corrupt_baseline(self, tmp_path):
        bad = _write_fixture(tmp_path)
        broken = tmp_path / "baseline.json"
        broken.write_text("{definitely not json", encoding="utf-8")
        proc = _run_cli("lint", str(bad), "--baseline", str(broken), cwd=tmp_path)
        assert proc.returncode == 2
        assert "corrupt baseline" in proc.stderr

    def test_exit_2_on_unknown_rule(self, tmp_path):
        bad = _write_fixture(tmp_path)
        proc = _run_cli("lint", str(bad), "--select", "REP999", cwd=tmp_path)
        assert proc.returncode == 2
        assert "unknown rule" in proc.stderr

    def test_exit_2_on_missing_path(self, tmp_path):
        proc = _run_cli("lint", str(tmp_path / "absent"), cwd=tmp_path)
        assert proc.returncode == 2
        assert "no such path" in proc.stderr

    def test_report_only_downgrades_to_exit_0(self, tmp_path):
        bad = _write_fixture(tmp_path)
        proc = _run_cli("lint", str(bad), "--report-only", cwd=tmp_path)
        assert proc.returncode == 0
        assert "REP002" in proc.stdout

    def test_select_other_rule_passes(self, tmp_path):
        bad = _write_fixture(tmp_path)
        proc = _run_cli("lint", str(bad), "--select", "REP001", cwd=tmp_path)
        assert proc.returncode == 0


class TestGoldenText:
    def test_finding_line_and_summary(self, tmp_path):
        bad = _write_fixture(tmp_path)
        proc = _run_cli("lint", str(bad), cwd=tmp_path)
        lines = proc.stdout.splitlines()
        assert lines[0] == f"{bad}:5:12: REP002 {_REP002_MESSAGE}"
        assert lines[-1] == "lint: 1 file(s) checked, 1 new finding(s) (0 waived, 0 baselined)"

    def test_clean_summary(self, tmp_path):
        good = tmp_path / "good.py"
        good.write_text("import time\n\nSTART = time.monotonic()\n", encoding="utf-8")
        proc = _run_cli("lint", str(good), cwd=tmp_path)
        assert proc.returncode == 0
        assert proc.stdout.splitlines() == [
            "lint: 1 file(s) checked, clean (0 waived, 0 baselined)"
        ]


class TestGoldenJson:
    def test_json_payload_shape(self, tmp_path):
        bad = _write_fixture(tmp_path)
        proc = _run_cli("lint", str(bad), "--format", "json", cwd=tmp_path)
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["schema"] == 1
        assert payload["paths"] == [str(bad)]
        assert payload["files"] == 1
        assert payload["counts"] == {
            "findings": 1, "new": 1, "waived": 0, "baselined": 0,
        }
        assert payload["clean"] is False
        (finding,) = payload["findings"]
        assert finding["rule"] == "REP002"
        assert finding["path"] == str(bad)
        assert (finding["line"], finding["col"]) == (5, 12)
        assert finding["message"] == _REP002_MESSAGE
        assert finding["snippet"] == "return time.time() - start"
        assert isinstance(finding["fingerprint"], str) and len(finding["fingerprint"]) == 16

    def test_json_clean_tree(self, tmp_path):
        good = tmp_path / "good.py"
        good.write_text("VALUE = 1\n", encoding="utf-8")
        proc = _run_cli("lint", str(good), "--format", "json", cwd=tmp_path)
        assert proc.returncode == 0
        payload = json.loads(proc.stdout)
        assert payload["clean"] is True
        assert payload["findings"] == []


class TestBaselineWorkflow:
    def test_update_then_rerun_is_baselined(self, tmp_path):
        bad = _write_fixture(tmp_path)
        baseline = tmp_path / "baseline.json"
        update = _run_cli(
            "lint", str(bad), "--baseline", str(baseline), "--update-baseline",
            cwd=tmp_path,
        )
        assert update.returncode == 0
        assert "1 grandfathered finding(s)" in update.stdout
        rerun = _run_cli("lint", str(bad), "--baseline", str(baseline), cwd=tmp_path)
        assert rerun.returncode == 0
        assert "(0 waived, 1 baselined)" in rerun.stdout

    def test_fixing_the_code_keeps_passing(self, tmp_path):
        """The ratchet direction: baselined entries may go stale harmlessly."""
        bad = _write_fixture(tmp_path)
        baseline = tmp_path / "baseline.json"
        _run_cli(
            "lint", str(bad), "--baseline", str(baseline), "--update-baseline",
            cwd=tmp_path,
        )
        bad.write_text(
            "import time\n\n\ndef uptime(start):\n    return time.monotonic() - start\n",
            encoding="utf-8",
        )
        fixed = _run_cli("lint", str(bad), "--baseline", str(baseline), cwd=tmp_path)
        assert fixed.returncode == 0
        assert "(0 waived, 0 baselined)" in fixed.stdout
