"""Unit tests for the REP001..REP006 rule implementations."""

from __future__ import annotations

import textwrap

from repro.lint.engine import lint_source


def _findings(source: str, rule: str | None = None):
    found, _waived = lint_source(textwrap.dedent(source), "snippet.py")
    if rule is None:
        return found
    return [f for f in found if f.rule == rule]


class TestRep001Determinism:
    def test_flags_global_random_calls(self):
        found = _findings(
            """
            import random

            def pick(xs):
                return xs[random.randint(0, len(xs) - 1)]
            """,
            "REP001",
        )
        assert len(found) == 1
        assert "random.randint" in found[0].message

    def test_seeded_instances_are_fine(self):
        assert not _findings(
            """
            import random

            def pick(xs, seed):
                rng = random.Random(seed)
                return rng.choice(xs)
            """,
            "REP001",
        )

    def test_flags_legacy_numpy_global_rng(self):
        found = _findings(
            """
            import numpy as np

            def noise(n):
                return np.random.rand(n)
            """,
            "REP001",
        )
        assert len(found) == 1
        assert "numpy" in found[0].message

    def test_default_rng_is_fine(self):
        assert not _findings(
            """
            import numpy as np

            def noise(n, seed):
                return np.random.default_rng(seed).random(n)
            """,
            "REP001",
        )

    def test_flags_builtin_hash(self):
        found = _findings(
            """
            def key(spec):
                return hash(spec)
            """,
            "REP001",
        )
        assert len(found) == 1
        assert "salted per process" in found[0].message

    def test_method_named_hash_is_fine(self):
        assert not _findings(
            """
            def key(spec):
                return spec.hash()
            """,
            "REP001",
        )

    def test_flags_set_iteration(self):
        found = _findings(
            """
            def schedule(dests):
                return [d for d in set(dests)]
            """,
            "REP001",
        )
        assert len(found) == 1
        assert "sorted()" in found[0].message

    def test_flags_set_literal_for_loop(self):
        assert _findings(
            """
            def walk():
                for d in {3, 1, 2}:
                    yield d
            """,
            "REP001",
        )

    def test_sorted_set_is_fine(self):
        assert not _findings(
            """
            def schedule(dests):
                return [d for d in sorted(set(dests))]
            """,
            "REP001",
        )


class TestRep002Timing:
    def test_flags_wall_clock(self):
        found = _findings(
            """
            import time

            def uptime(start):
                return time.time() - start
            """,
            "REP002",
        )
        assert len(found) == 1

    def test_resolves_module_alias(self):
        assert _findings(
            """
            import time as _time

            def now():
                return _time.time()
            """,
            "REP002",
        )

    def test_resolves_from_import(self):
        assert _findings(
            """
            from time import time

            def now():
                return time()
            """,
            "REP002",
        )

    def test_monotonic_is_fine(self):
        assert not _findings(
            """
            import time

            def uptime(start):
                return time.monotonic() - start
            """,
            "REP002",
        )

    def test_unrelated_time_attribute_is_fine(self):
        assert not _findings(
            """
            def sample(clock):
                return clock.time()
            """,
            "REP002",
        )


class TestRep003AsyncHygiene:
    def test_flags_sleep_in_async_def(self):
        found = _findings(
            """
            import time

            async def handler():
                time.sleep(1.0)
            """,
            "REP003",
        )
        assert len(found) == 1
        assert "run_in_executor" in found[0].message

    def test_flags_subprocess_and_open(self):
        found = _findings(
            """
            import subprocess

            async def handler(path):
                subprocess.run(["ls"])
                with open(path) as f:
                    return f.read()
            """,
            "REP003",
        )
        assert {f.snippet.split("(")[0] for f in found} >= {"subprocess.run"}
        assert len(found) == 2

    def test_asyncio_sleep_is_fine(self):
        assert not _findings(
            """
            import asyncio

            async def handler():
                await asyncio.sleep(1.0)
            """,
            "REP003",
        )

    def test_sync_def_nested_in_async_is_off_loop(self):
        # a sync helper defined inside an async def runs via the
        # executor / a callback, not on the loop
        assert not _findings(
            """
            import time

            async def handler(loop):
                def blocking():
                    time.sleep(1.0)
                await loop.run_in_executor(None, blocking)
            """,
            "REP003",
        )

    def test_blocking_outside_async_is_fine(self):
        assert not _findings(
            """
            import time

            def retry_backoff():
                time.sleep(0.5)
            """,
            "REP003",
        )


class TestRep004ExceptionHygiene:
    def test_flags_silent_blanket_except(self):
        found = _findings(
            """
            def load(path):
                try:
                    return open(path).read()
                except Exception:
                    pass
            """,
            "REP004",
        )
        assert len(found) == 1

    def test_flags_bare_except(self):
        assert _findings(
            """
            def load(path):
                try:
                    return parse(path)
                except:
                    return None
            """,
            "REP004",
        )

    def test_reraise_is_fine(self):
        assert not _findings(
            """
            def load(path):
                try:
                    return parse(path)
                except Exception:
                    raise
            """,
            "REP004",
        )

    def test_metric_emission_is_fine(self):
        assert not _findings(
            """
            def load(path, metrics):
                try:
                    return parse(path)
                except Exception:
                    metrics.counter("sim.resilience.load_errors").inc()
                    return None
            """,
            "REP004",
        )

    def test_specific_exception_is_fine(self):
        assert not _findings(
            """
            def load(path):
                try:
                    return parse(path)
                except FileNotFoundError:
                    return None
            """,
            "REP004",
        )


class TestRep005ExitCodes:
    def test_flags_unknown_constant_code(self):
        found = _findings(
            """
            import sys

            def main():
                sys.exit(3)
            """,
            "REP005",
        )
        assert len(found) == 1
        assert "0, 1, 2, 130" in found[0].message

    def test_flags_negative_and_systemexit(self):
        assert _findings("import sys\nsys.exit(-1)\n", "REP005")
        assert _findings("raise SystemExit(77)\n", "REP005")

    def test_contract_codes_are_fine(self):
        for code in (0, 1, 2, 130):
            assert not _findings(f"import sys\nsys.exit({code})\n", "REP005")

    def test_dynamic_code_is_fine(self):
        assert not _findings(
            """
            import sys

            def main(run):
                sys.exit(run())
            """,
            "REP005",
        )


class TestRep006TelemetryNaming:
    def test_flags_unregistered_metric_literal(self):
        found = _findings(
            """
            def record(registry):
                registry.counter("sim.bogus.things").inc()
            """,
            "REP006",
        )
        assert len(found) == 1
        assert "sim.bogus.things" in found[0].message

    def test_registered_families_and_core_names_are_fine(self):
        assert not _findings(
            """
            def record(registry):
                registry.counter("sim.parallel.points_total").inc()
                registry.gauge("sim.service.cache_hit_ratio").set(1.0)
                registry.timer("sim.wall").record(0.1)
            """,
            "REP006",
        )

    def test_fstring_prefix_checked(self):
        assert _findings(
            """
            def record(registry, label):
                registry.counter(f"sim.nope.{label}").inc()
            """,
            "REP006",
        )
        assert not _findings(
            """
            def record(registry, label):
                registry.counter(f"sim.parallel.points.{label}").inc()
            """,
            "REP006",
        )

    def test_flags_unregistered_runrecord_kind(self):
        found = _findings(
            """
            from repro.obs.telemetry import RunRecord

            def emit():
                return RunRecord(run_id="x", kind="mystery-run", n=4)
            """,
            "REP006",
        )
        assert len(found) == 1
        assert "mystery-run" in found[0].message

    def test_registered_kind_is_fine(self):
        assert not _findings(
            """
            from repro.obs.telemetry import RunRecord

            def emit():
                return RunRecord(run_id="x", kind="experiment-point", n=4)
            """,
            "REP006",
        )


class TestRep000Integrity:
    def test_syntax_error_is_a_finding_not_a_crash(self):
        found = _findings("def broken(:\n")
        assert [f.rule for f in found] == ["REP000"]
        assert "does not parse" in found[0].message

    def test_findings_are_sorted_and_fingerprinted(self):
        found = _findings(
            """
            import time

            def b():
                return time.time()

            def a():
                return time.time()
            """
        )
        assert [f.line for f in found] == sorted(f.line for f in found)
        # same rule+path+snippet+message => same fingerprint (line-free)
        assert found[0].fingerprint() == found[1].fingerprint()
