"""Static channel-load analysis of multicast trees.

Counts how many of a tree's unicasts traverse each directed channel.
A maximum multiplicity of 1 means the tree's paths are *globally*
arc-disjoint -- sufficient for contention-freedom under any timing
whatsoever, and the structural reason Maxport and W-sort never block
in the simulator.  U-cube and Combine reuse channels across steps
(multiplicity > 1), which is safe only because of Definition 4's
timing condition -- and is exactly what hurts them when timing
assumptions erode (background traffic, concurrent operations).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.paths import Arc, ecube_arcs
from repro.multicast.base import MulticastTree

__all__ = ["LoadSummary", "channel_load", "load_summary"]


def channel_load(tree: MulticastTree) -> dict[Arc, int]:
    """Number of the tree's unicasts crossing each directed channel."""
    load: dict[Arc, int] = {}
    for s in tree.sends:
        for arc in ecube_arcs(s.src, s.dst, tree.order):
            load[arc] = load.get(arc, 0) + 1
    return load


@dataclass(frozen=True, slots=True)
class LoadSummary:
    """Aggregate channel-load metrics for one tree.

    Attributes:
        distinct_channels: channels used at least once.
        total_traversals: sum of loads (== total hops).
        max_multiplicity: heaviest channel's load; 1 means globally
            arc-disjoint paths.
        mean_multiplicity: total / distinct.
    """

    distinct_channels: int
    total_traversals: int
    max_multiplicity: int
    mean_multiplicity: float


def load_summary(tree: MulticastTree) -> LoadSummary:
    """Compute :class:`LoadSummary` for a tree."""
    load = channel_load(tree)
    total = sum(load.values())
    return LoadSummary(
        distinct_channels=len(load),
        total_traversals=total,
        max_multiplicity=max(load.values(), default=0),
        mean_multiplicity=total / len(load) if load else 0.0,
    )
