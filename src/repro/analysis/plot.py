"""ASCII line plots for experiment tables.

The paper's results are figures; when a terminal is all you have, a
coarse character plot of the same series still shows the staircase and
the crossovers.  Used by the CLI's ``experiment --plot`` flag.
"""

from __future__ import annotations

from repro.analysis.tables import Table

__all__ = ["ascii_plot"]

_MARKERS = "ox+*#@%&"


def ascii_plot(table: Table, width: int = 64, height: int = 18) -> str:
    """Render a Table's columns as an ASCII scatter/line plot.

    Each column gets a marker character; overlapping points show the
    marker of the first column plotted (legend order).
    """
    if width < 8 or height < 4:
        raise ValueError("plot area too small")
    xs = table.x_values
    if not xs:
        return "(no data)"
    all_vals = [v for col in table.columns.values() for v in col]
    lo, hi = min(all_vals), max(all_vals)
    span = (hi - lo) or 1.0
    x_lo, x_hi = min(xs), max(xs)
    x_span = (x_hi - x_lo) or 1

    grid = [[" "] * width for _ in range(height)]

    def cell(x: int, v: float) -> tuple[int, int]:
        cx = round((x - x_lo) / x_span * (width - 1))
        cy = height - 1 - round((v - lo) / span * (height - 1))
        return cy, cx

    for idx, (name, col) in enumerate(table.columns.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        for x, v in zip(xs, col):
            cy, cx = cell(x, v)
            if grid[cy][cx] == " ":
                grid[cy][cx] = marker

    y_labels = [f"{hi:.4g}", f"{(lo + hi) / 2:.4g}", f"{lo:.4g}"]
    label_w = max(len(s) for s in y_labels)
    lines = [table.title]
    for r, row in enumerate(grid):
        if r == 0:
            label = y_labels[0]
        elif r == height // 2:
            label = y_labels[1]
        elif r == height - 1:
            label = y_labels[2]
        else:
            label = ""
        lines.append(f"{label.rjust(label_w)} |{''.join(row)}")
    lines.append(" " * label_w + " +" + "-" * width)
    lines.append(
        " " * label_w
        + f"  {x_lo}".ljust(width // 2)
        + f"{table.x_label}".center(8)
        + f"{x_hi}".rjust(width // 2 - 8)
    )
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}" for i, name in enumerate(table.columns)
    )
    lines.append(" " * label_w + "  " + legend)
    return "\n".join(lines)
