"""One experiment definition per paper figure, plus ablations.

Each experiment regenerates the series behind one figure of Section 5
(see the experiment index in DESIGN.md) and returns a
:class:`~repro.analysis.tables.Table` whose columns are the figure's
curves.  ``fast=True`` (the default unless the ``REPRO_FULL``
environment variable is set) thins the sweep so the whole harness runs
in minutes; the full paper-parity parameters are used when
``fast=False``.  Both are deterministic.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from statistics import mean
from time import perf_counter
from typing import Callable, Sequence

from repro.obs import sink as _telemetry_sink
from repro.obs import trace_spans
from repro.obs.telemetry import RunRecord, new_run_id

from repro.analysis.delay import delay_experiment
from repro.analysis.steps import stepwise_experiment
from repro.analysis.tables import Table, linear_grid
from repro.analysis.workloads import random_destination_sets
from repro.core.paths import ResolutionOrder
from repro.multicast.ports import ALL_PORT, ONE_PORT, k_port
from repro.multicast.registry import PAPER_ALGORITHMS, get_algorithm
from repro.obs.metrics import MetricsRegistry
from repro.parallel.cache import CACHE_SCHEMA
from repro.parallel.engine import run_points, sweep_context
from repro.parallel.fabric import FabricConfig
from repro.parallel.journal import SweepJournal, derive_run_id
from repro.parallel.resilience import WatchdogConfig
from repro.simulator.params import NCUBE2
from repro.simulator.run import simulate_multicast

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "run_experiment",
    "run_sweep",
    "sweep_run_id",
]


def default_fast() -> bool:
    """Fast mode unless REPRO_FULL is set to a truthy value."""
    return os.environ.get("REPRO_FULL", "") in ("", "0", "false", "no")


@dataclass(frozen=True, slots=True)
class Experiment:
    """A named, runnable reproduction of one figure."""

    id: str
    title: str
    description: str
    runner: Callable[[bool], Table]

    def run(self, fast: bool | None = None) -> Table:
        if fast is None:
            fast = default_fast()
        return self.runner(fast)


# ---------------------------------------------------------------------------
# Figures 9-10: stepwise comparisons
# ---------------------------------------------------------------------------


def _fig9(fast: bool) -> Table:
    m_values = [1] + linear_grid(2, 63, 2 if not fast else 4)
    sets = 100 if not fast else 40
    res = stepwise_experiment(n=6, m_values=m_values, sets_per_point=sets)
    return Table(
        title=f"Figure 9: average max steps, 6-cube ({sets} random sets/point)",
        x_label="m",
        x_values=res.m_values,
        columns={name: res.mean_steps[name] for name in PAPER_ALGORITHMS},
        notes=["all-port greedy step schedule; source node 0"],
    )


def _fig10(fast: bool) -> Table:
    if fast:
        m_values = [1, 10, 50, 100, 200, 400, 600, 800, 1000, 1023]
        sets = 20
    else:
        m_values = [1, 10, 25] + linear_grid(50, 1000, 50) + [1023]
        sets = 100
    res = stepwise_experiment(n=10, m_values=m_values, sets_per_point=sets)
    return Table(
        title=f"Figure 10: average max steps, 10-cube ({sets} random sets/point)",
        x_label="m",
        x_values=res.m_values,
        columns={name: res.mean_steps[name] for name in PAPER_ALGORITHMS},
        notes=["all-port greedy step schedule; source node 0"],
    )


# ---------------------------------------------------------------------------
# Figures 11-12: "nCUBE-2" (simulated 5-cube) delays, 4096-byte messages
# ---------------------------------------------------------------------------


def _delay_5cube(fast: bool):
    m_values = list(range(1, 32)) if not fast else [1, 2, 4, 7, 8, 12, 15, 16, 24, 31]
    sets = 20
    return delay_experiment(
        n=5, m_values=m_values, sets_per_point=sets, size=4096, timings=NCUBE2
    )


def _fig11(fast: bool) -> Table:
    res = _delay_5cube(fast)
    return Table(
        title="Figure 11: average delay (us), 4096-byte multicast, 5-cube (20 sets/point)",
        x_label="m",
        x_values=res.m_values,
        columns={name: res.avg_delay[name] for name in PAPER_ALGORITHMS},
        notes=["nCUBE-2 testbed substituted by the calibrated simulator (DESIGN.md S4)"],
    )


def _fig12(fast: bool) -> Table:
    res = _delay_5cube(fast)
    return Table(
        title="Figure 12: maximum delay (us), 4096-byte multicast, 5-cube (20 sets/point)",
        x_label="m",
        x_values=res.m_values,
        columns={name: res.max_delay[name] for name in PAPER_ALGORITHMS},
        notes=["nCUBE-2 testbed substituted by the calibrated simulator (DESIGN.md S4)"],
    )


# ---------------------------------------------------------------------------
# Figures 13-14: simulated 10-cube delays
# ---------------------------------------------------------------------------


def _delay_10cube(fast: bool):
    if fast:
        m_values = [1, 50, 100, 200, 400, 700, 1023]
        sets = 12
    else:
        m_values = [1, 10, 25] + linear_grid(50, 1000, 50) + [1023]
        sets = 100
    return delay_experiment(
        n=10, m_values=m_values, sets_per_point=sets, size=4096, timings=NCUBE2
    )


def _fig13(fast: bool) -> Table:
    res = _delay_10cube(fast)
    sets = res.sets_per_point
    return Table(
        title=f"Figure 13: average delay (us), 4096-byte multicast, 10-cube ({sets} sets/point)",
        x_label="m",
        x_values=res.m_values,
        columns={name: res.avg_delay[name] for name in PAPER_ALGORITHMS},
        notes=["MultiSim substituted by repro.simulator (DESIGN.md S4)"],
    )


def _fig14(fast: bool) -> Table:
    res = _delay_10cube(fast)
    sets = res.sets_per_point
    return Table(
        title=f"Figure 14: maximum delay (us), 4096-byte multicast, 10-cube ({sets} sets/point)",
        x_label="m",
        x_values=res.m_values,
        columns={name: res.max_delay[name] for name in PAPER_ALGORITHMS},
        notes=["MultiSim substituted by repro.simulator (DESIGN.md S4)"],
    )


# ---------------------------------------------------------------------------
# Ablations (design choices DESIGN.md calls out; beyond the paper)
# ---------------------------------------------------------------------------


def _ablation_ports(fast: bool) -> Table:
    """W-sort under one-port / 2-port / all-port injection."""
    m_values = [1, 4, 8, 16, 32, 63] if fast else [1, 2, 4, 8, 16, 24, 32, 48, 63]
    sets = 15 if fast else 40
    alg = get_algorithm("wsort")
    columns: dict[str, list[float]] = {"one-port": [], "2-port": [], "all-port": []}
    for i, m in enumerate(m_values):
        per = {"one-port": [], "2-port": [], "all-port": []}
        for dests in random_destination_sets(6, m, sets, seed=7100 + i):
            tree = alg.build_tree(6, 0, dests)
            for label, ports in (
                ("one-port", ONE_PORT),
                ("2-port", k_port(2)),
                ("all-port", ALL_PORT),
            ):
                per[label].append(simulate_multicast(tree, 4096, NCUBE2, ports).avg_delay)
        for label in columns:
            columns[label].append(mean(per[label]))
    return Table(
        title="Ablation: port model (W-sort, 6-cube, 4096 bytes, avg delay us)",
        x_label="m",
        x_values=m_values,
        columns=columns,
    )


def _ablation_wsort(fast: bool) -> Table:
    """The value of weighted_sort: Maxport with vs without it."""
    m_values = [1, 4, 8, 16, 32, 63] if fast else [1, 2, 4, 8, 12, 16, 24, 32, 48, 63]
    sets = 25 if fast else 100
    res = stepwise_experiment(
        n=6, m_values=m_values, algorithms=("maxport", "wsort"), sets_per_point=sets
    )
    return Table(
        title="Ablation: weighted_sort (mean max steps, 6-cube, all-port)",
        x_label="m",
        x_values=res.m_values,
        columns={"maxport": res.mean_steps["maxport"], "wsort": res.mean_steps["wsort"]},
    )


def _ablation_msgsize(fast: bool) -> Table:
    """Startup- vs bandwidth-dominated regimes (fixed m=16, 6-cube)."""
    sizes = [16, 64, 256, 1024, 4096, 16384]
    sets = 10 if fast else 30
    columns: dict[str, list[float]] = {name: [] for name in PAPER_ALGORITHMS}
    dest_sets = random_destination_sets(6, 16, sets, seed=7300)
    for size in sizes:
        for name in PAPER_ALGORITHMS:
            alg = get_algorithm(name)
            vals = [
                simulate_multicast(alg.build_tree(6, 0, d), size, NCUBE2, ALL_PORT).avg_delay
                for d in dest_sets
            ]
            columns[name].append(mean(vals))
    return Table(
        title="Ablation: message size (avg delay us, m=16, 6-cube, all-port)",
        x_label="bytes",
        x_values=sizes,
        columns=columns,
    )


def _ablation_resolution(fast: bool) -> Table:
    """E-cube resolution order: aggregate results are order-invariant."""
    m_values = [1, 4, 8, 16, 32, 63] if fast else [1, 2, 4, 8, 16, 32, 48, 63]
    sets = 25 if fast else 100
    columns: dict[str, list[float]] = {"desc": [], "asc": []}
    alg = get_algorithm("maxport")
    for i, m in enumerate(m_values):
        d_vals, a_vals = [], []
        for dests in random_destination_sets(6, m, sets, seed=7400 + i):
            d_vals.append(
                alg.schedule(6, 0, dests, ALL_PORT, ResolutionOrder.DESCENDING).max_step
            )
            a_vals.append(
                alg.schedule(6, 0, dests, ALL_PORT, ResolutionOrder.ASCENDING).max_step
            )
        columns["desc"].append(mean(d_vals))
        columns["asc"].append(mean(a_vals))
    return Table(
        title="Ablation: E-cube resolution order (Maxport mean max steps, 6-cube)",
        x_label="m",
        x_values=m_values,
        columns=columns,
    )


def _ablation_sensitivity(fast: bool) -> Table:
    """Sensitivity of the U-cube -> W-sort improvement to the timing
    constants (beyond the paper).

    The absolute nCUBE-2 constants are a substitution (DESIGN.md S4);
    this sweep shows the *conclusion* is insensitive to them: the
    relative improvement of W-sort over U-cube (average delay, m=16,
    6-cube) as the software startup is scaled from 1/4x to 4x the
    calibrated value, for three per-byte bandwidth scalings.
    """
    from repro.simulator.params import Timings

    setup_scales = [0.25, 0.5, 1.0, 2.0, 4.0]
    byte_scales = [0.25, 1.0, 4.0]
    sets = 10 if fast else 30
    dest_sets = random_destination_sets(6, 16, sets, seed=7600)
    ucube = get_algorithm("ucube")
    wsort = get_algorithm("wsort")
    columns: dict[str, list[float]] = {f"tbyte_x{b:g}": [] for b in byte_scales}
    for s in setup_scales:
        for b in byte_scales:
            t = Timings(
                t_setup=NCUBE2.t_setup * s,
                t_recv=NCUBE2.t_recv * s,
                t_byte=NCUBE2.t_byte * b,
                t_hop=NCUBE2.t_hop,
            )
            u_vals, w_vals = [], []
            for d in dest_sets:
                u_vals.append(
                    simulate_multicast(ucube.build_tree(6, 0, d), 4096, t, ALL_PORT).avg_delay
                )
                w_vals.append(
                    simulate_multicast(wsort.build_tree(6, 0, d), 4096, t, ALL_PORT).avg_delay
                )
            improvement = 100.0 * (1.0 - mean(w_vals) / mean(u_vals))
            columns[f"tbyte_x{b:g}"].append(improvement)
    return Table(
        title="Ablation: timing sensitivity (W-sort improvement over U-cube, %, m=16)",
        x_label="setup_x4",  # x values are setup scale * 4 (integers)
        x_values=[int(s * 4) for s in setup_scales],
        columns=columns,
        notes=["x axis: software-overhead scale x4 (1 = quarter, 16 = 4x calibrated)"],
    )


@dataclass(frozen=True, slots=True)
class _ConcurrentPoint:
    """Picklable spec for one k of the concurrent-multicast ablation."""

    k: int
    trials: int
    algorithms: tuple[str, ...]


def _concurrent_point(spec: _ConcurrentPoint) -> dict[str, float]:
    """One k-point: mean (over trials and operations) avg delay per
    algorithm.  Module-level so the sweep engine can fan it out."""
    import numpy as np

    from repro.simulator.multirun import simulate_concurrent_multicasts

    per: dict[str, list[float]] = {name: [] for name in spec.algorithms}
    for t in range(spec.trials):
        rng = np.random.default_rng(7500 + 97 * spec.k + t)
        sources = [int(s) for s in rng.choice(64, size=spec.k, replace=False)]
        dest_sets = []
        for s in sources:
            cand = np.array([u for u in range(64) if u != s])
            dest_sets.append(sorted(int(x) for x in rng.choice(cand, 16, replace=False)))
        for name in spec.algorithms:
            alg = get_algorithm(name)
            trees = [
                alg.build_tree(6, s, d) for s, d in zip(sources, dest_sets)
            ]
            res = simulate_concurrent_multicasts(trees, 4096, NCUBE2, ALL_PORT)
            per[name].append(mean(res.avg_delays))
    return {name: mean(per[name]) for name in spec.algorithms}


def _ablation_concurrent(fast: bool) -> Table:
    """Interference between concurrent multicasts (beyond the paper).

    k simultaneous multicasts, each from a distinct random source to 16
    random destinations in a 6-cube; the metric is the mean (over
    operations and trials) of the per-operation average delay.
    """
    ks = [1, 2, 4, 8]
    trials = 8 if fast else 25
    specs = [_ConcurrentPoint(k, trials, PAPER_ALGORITHMS) for k in ks]
    points = run_points(_concurrent_point, specs, label="concurrent")
    columns: dict[str, list[float]] = {
        name: [point[name] for point in points] for name in PAPER_ALGORITHMS
    }
    return Table(
        title="Ablation: k concurrent multicasts (mean avg delay us, m=16, 6-cube)",
        x_label="k",
        x_values=ks,
        columns=columns,
    )


# ---------------------------------------------------------------------------
# Fault sweeps (repro.faults; beyond the paper -- the paper's theory
# assumes a fault-free cube)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class _FaultPoint:
    """Picklable spec for one failed-link count of the fault sweep."""

    k: int
    n: int
    m: int
    sets: int
    algorithms: tuple[str, ...]


def _fault_point(spec: _FaultPoint) -> dict[str, dict[str, float]]:
    """One k-point of the fault sweep: per algorithm, mean avg delay
    and delivery ratio for both modes.  Module-level so the sweep
    engine can fan it out; seeds derive from k alone."""
    from repro.faults import (
        DegradedHypercube,
        FaultScenario,
        repair_multicast,
        simulate_degraded_multicast,
    )

    k, n = spec.k, spec.n
    scenario = (
        FaultScenario.random_links(n, k, seed=9300 + k) if k else FaultScenario(n)
    )
    degraded = DegradedHypercube(n, scenario)
    dest_sets = random_destination_sets(n, spec.m, spec.sets, seed=9400 + k)
    out: dict[str, dict[str, float]] = {}
    for name in spec.algorithms:
        delays, ratios, r_delays, r_ratios = [], [], [], []
        for dests in dest_sets:
            res = simulate_degraded_multicast(
                get_algorithm(name).build_tree(n, 0, dests),
                scenario,
                label=f"faults/{name}/links{k}",
            )
            delays.append(res.avg_delay)
            ratios.append(res.delivery_ratio)
            report = repair_multicast(name, degraded, n, 0, dests)
            r_res = simulate_degraded_multicast(
                report.tree,
                scenario,
                label=f"faults/fault-{name}/links{k}",
                unreachable_hint=report.unreachable,
            )
            r_delays.append(r_res.avg_delay)
            r_ratios.append(r_res.delivery_ratio)
        out[name] = {
            "delay": mean(delays),
            "ratio": mean(ratios),
            "repaired_delay": mean(r_delays),
            "repaired_ratio": mean(r_ratios),
        }
    return out


def _fault_sweep(fast: bool) -> dict:
    """Shared sweep: 6-cube, m=16, the four paper algorithms under k
    failed links, comparing oblivious abort+retry against fault-aware
    repair.  Returns per-(k, algorithm) mean avg delay (over delivered
    destinations) and mean delivery ratio, both modes."""
    ks = [0, 1, 2, 3] if fast else [0, 1, 2, 3, 4, 6, 8]
    sets = 4 if fast else 15
    specs = [_FaultPoint(k, 6, 16, sets, PAPER_ALGORITHMS) for k in ks]
    points = run_points(_fault_point, specs, label="faults")
    out = {
        "ks": ks,
        "delay": {name: [] for name in PAPER_ALGORITHMS},
        "ratio": {name: [] for name in PAPER_ALGORITHMS},
        "repaired_delay": {name: [] for name in PAPER_ALGORITHMS},
        "repaired_ratio": {name: [] for name in PAPER_ALGORITHMS},
    }
    for point in points:
        for name in PAPER_ALGORITHMS:
            for field_name in ("delay", "ratio", "repaired_delay", "repaired_ratio"):
                out[field_name][name].append(point[name][field_name])
    return out


def _faults_delay(fast: bool) -> Table:
    res = _fault_sweep(fast)
    columns: dict[str, list[float]] = {}
    for name in PAPER_ALGORITHMS:
        columns[name] = res["delay"][name]
        columns[f"fault-{name}"] = res["repaired_delay"][name]
    return Table(
        title="Faults: avg delay (us) vs failed links (m=16, 6-cube, 4096 bytes)",
        x_label="links",
        x_values=res["ks"],
        columns=columns,
        notes=[
            "plain curves: oblivious abort+retry; fault-* curves: repaired detour schedules",
            "delay averaged over delivered destinations only (see docs/FAULTS.md)",
        ],
    )


def _faults_ratio(fast: bool) -> Table:
    res = _fault_sweep(fast)
    columns: dict[str, list[float]] = {}
    for name in PAPER_ALGORITHMS:
        columns[name] = res["ratio"][name]
        columns[f"fault-{name}"] = res["repaired_ratio"][name]
    return Table(
        title="Faults: delivery ratio vs failed links (m=16, 6-cube, 4096 bytes)",
        x_label="links",
        x_values=res["ks"],
        columns=columns,
        notes=[
            "ratio < 1 only when a destination is unreachable or retries are exhausted",
            "plain curves: oblivious abort+retry; fault-* curves: repaired detour schedules",
        ],
    )


EXPERIMENTS: dict[str, Experiment] = {
    e.id: e
    for e in [
        Experiment("fig9", "Stepwise comparisons, 6-cube", "Figure 9", _fig9),
        Experiment("fig10", "Stepwise comparisons, 10-cube", "Figure 10", _fig10),
        Experiment("fig11", "Average delay, 5-cube nCUBE-2", "Figure 11", _fig11),
        Experiment("fig12", "Maximum delay, 5-cube nCUBE-2", "Figure 12", _fig12),
        Experiment("fig13", "Average delay, 10-cube simulation", "Figure 13", _fig13),
        Experiment("fig14", "Maximum delay, 10-cube simulation", "Figure 14", _fig14),
        Experiment("ablation-ports", "Port-model ablation", "beyond the paper", _ablation_ports),
        Experiment("ablation-wsort", "weighted_sort ablation", "beyond the paper", _ablation_wsort),
        Experiment(
            "ablation-msgsize", "Message-size ablation", "beyond the paper", _ablation_msgsize
        ),
        Experiment(
            "ablation-resolution",
            "Resolution-order ablation",
            "beyond the paper",
            _ablation_resolution,
        ),
        Experiment(
            "ablation-concurrent",
            "Concurrent-multicast interference",
            "beyond the paper",
            _ablation_concurrent,
        ),
        Experiment(
            "ablation-sensitivity",
            "Timing-constant sensitivity",
            "beyond the paper",
            _ablation_sensitivity,
        ),
        Experiment(
            "faults-delay",
            "Delay vs failed links",
            "beyond the paper",
            _faults_delay,
        ),
        Experiment(
            "faults-ratio",
            "Delivery ratio vs failed links",
            "beyond the paper",
            _faults_ratio,
        ),
    ]
}


def _run_one(exp_id: str, fast: bool | None) -> Table:
    """Run one experiment under whatever sweep context is active."""
    try:
        exp = EXPERIMENTS[exp_id]
    except KeyError:
        known = ", ".join(EXPERIMENTS)
        raise KeyError(f"unknown experiment {exp_id!r}; known: {known}") from None
    if fast is None:
        fast = default_fast()
    with trace_spans.span("experiment", id=exp_id, fast=bool(fast)) as _span:
        wall_start = perf_counter()
        table = exp.run(fast)
        wall_seconds = perf_counter() - wall_start
        if _span is not None:
            _span.set(points=len(table.x_values), wall_seconds=round(wall_seconds, 6))
    sink = _telemetry_sink.get_sink()
    if sink is not None:
        _emit_table_points(sink, exp, table, fast, wall_seconds)
    return table


def run_experiment(
    exp_id: str,
    fast: bool | None = None,
    *,
    jobs: int | None = None,
    cache_dir: str | None = None,
) -> Table:
    """Run a registered experiment by id (``fig9`` ... ``fig14``, or an
    ablation id).

    Args:
        exp_id: registered experiment id.
        fast: thinned sweep (default: fast unless ``REPRO_FULL``).
        jobs: fan the figure's points across this many worker processes
            (``0`` -> the CPU count / ``REPRO_JOBS``).  With the
            default ``None`` (and no ``cache_dir``) the experiment runs
            exactly as it always has: serially, in-process.  Results
            are bit-identical either way.
        cache_dir: content-addressed schedule/delay cache directory
            shared across runs and workers (see
            :mod:`repro.parallel.cache`); enables caching even with
            serial execution.

    When a telemetry sink is active (``REPRO_TELEMETRY`` or the CLI's
    ``--telemetry``), one ``kind="experiment-point"``
    :class:`~repro.obs.telemetry.RunRecord` is emitted per x-axis point
    of the figure, carrying that point's value for every curve --
    worker telemetry included, merged into the same sink.
    """
    if jobs is None and cache_dir is None:
        return _run_one(exp_id, fast)
    with sweep_context(jobs=1 if jobs is None else jobs, cache_dir=cache_dir):
        return _run_one(exp_id, fast)


def sweep_run_id(exp_ids: Sequence[str], fast: bool | None = None) -> str:
    """The content-addressed run id of a sweep definition.

    Derived from the experiment ids (in order), the resolved fast/full
    mode, and the cache schema -- the same inputs that determine every
    point of the sweep -- so ``repro-hypercube sweep --resume`` can find
    the journal of a crashed run by re-deriving its id from the same
    command line.
    """
    if fast is None:
        fast = default_fast()
    return derive_run_id(list(exp_ids), bool(fast), CACHE_SCHEMA)


def run_sweep(
    exp_ids: Sequence[str],
    fast: bool | None = None,
    *,
    jobs: int | None = None,
    cache_dir: str | None = None,
    metrics: MetricsRegistry | None = None,
    journal_dir: str | None = None,
    resume: bool = False,
    watchdog: WatchdogConfig | None = None,
    fabric: "FabricConfig | None" = None,
) -> dict[str, Table]:
    """Run several experiments under one shared sweep context.

    One process pool configuration and one schedule cache span all the
    experiments, so figures that share points (11/12, 13/14, the two
    fault figures) compute each point once.  Returns ``{id: Table}``
    in the requested order; ``metrics`` (optional) receives the
    ``sim.parallel.*`` engine counters.

    With ``journal_dir`` set, every completed point is checkpointed to
    ``<journal_dir>/<run_id>.jsonl`` (see
    :mod:`repro.parallel.journal`); ``resume=True`` additionally loads
    an existing journal first, so points already computed by a crashed
    or interrupted run of the *same* sweep are served from it,
    bit-identically.  ``watchdog`` enables hung-worker detection and
    requeueing (see :mod:`repro.parallel.resilience`).

    With ``fabric`` set (a :class:`~repro.parallel.fabric.FabricConfig`)
    the points are distributed over TCP worker hosts instead of the
    local process pool -- still bit-identically, and still journaled:
    a resumed sweep serves points computed by *any* previous host from
    the journal, because fingerprints are content-addressed, not
    host-addressed.
    """
    ids = list(exp_ids)
    unknown = [exp_id for exp_id in ids if exp_id not in EXPERIMENTS]
    if unknown:
        known = ", ".join(EXPERIMENTS)
        raise KeyError(f"unknown experiment(s) {unknown}; known: {known}")
    if resume and journal_dir is None:
        raise ValueError("resume=True requires journal_dir")
    if fast is None:
        fast = default_fast()
    journal = None
    if journal_dir is not None:
        run_id = sweep_run_id(ids, fast)
        journal = SweepJournal(
            os.path.join(journal_dir, f"{run_id}.jsonl"),
            run_id=run_id,
            meta={"ids": ids, "fast": bool(fast)},
            resume=resume,
        )
    if jobs is None:
        # a fabric sweep's parallelism is its worker fleet, not local
        # processes; jobs only sizes the chunks (and the degradation
        # pool), so the CPU-count default is the right fallback
        jobs = 0 if fabric is not None else 1
    try:
        with sweep_context(
            jobs=jobs,
            cache_dir=cache_dir,
            metrics=metrics,
            watchdog=watchdog,
            journal=journal,
            fabric=fabric,
        ):
            return {exp_id: _run_one(exp_id, fast) for exp_id in ids}
    finally:
        if journal is not None:
            journal.close()


def _emit_table_points(
    sink, exp: Experiment, table: Table, fast: bool, wall_seconds: float
) -> None:
    """One experiment-point record per x value of the result table."""
    n = _EXPERIMENT_CUBE_DIMS.get(exp.id, 0)
    for i, x in enumerate(table.x_values):
        sink.write(
            RunRecord(
                run_id=new_run_id(),
                kind="experiment-point",
                n=n,
                algorithm=exp.id,
                wall_seconds=wall_seconds,
                extra={
                    "experiment": exp.id,
                    "title": table.title,
                    "fast": fast,
                    "point_index": i,
                    "points": len(table.x_values),
                    "x_label": table.x_label,
                    "x": x,
                    "columns": {name: col[i] for name, col in table.columns.items()},
                    "wall_is_experiment_total": True,
                },
                trace_id=trace_spans.current_trace_id(),
            )
        )


#: Cube dimension each experiment sweeps (for the RunRecord ``n`` field).
_EXPERIMENT_CUBE_DIMS: dict[str, int] = {
    "fig9": 6,
    "fig10": 10,
    "fig11": 5,
    "fig12": 5,
    "fig13": 10,
    "fig14": 10,
    "ablation-ports": 6,
    "ablation-wsort": 6,
    "ablation-msgsize": 6,
    "ablation-resolution": 6,
    "ablation-concurrent": 6,
    "ablation-sensitivity": 6,
    "faults-delay": 6,
    "faults-ratio": 6,
}
