"""Random multicast workloads, reproducibly generated.

The paper draws, for each point of each curve, a number of destination
sets "randomly distributed throughout the hypercube" (100 sets for the
stepwise and 10-cube experiments, 20 for the nCUBE-2 measurements).
Node 0 is used as the source throughout -- the hypercube is
vertex-transitive, so this loses no generality (a property the test
suite checks directly).
"""

from __future__ import annotations

import numpy as np

__all__ = ["random_destination_sets"]


def random_destination_sets(
    n: int,
    m: int,
    count: int,
    seed: int,
    source: int = 0,
) -> list[list[int]]:
    """Draw ``count`` sets of ``m`` distinct destinations in an ``n``-cube.

    Destinations are uniform without replacement over all nodes except
    ``source``.  Deterministic in ``(n, m, count, seed, source)``.

    Raises:
        ValueError: if ``m`` exceeds the number of candidate nodes.
    """
    size = 1 << n
    if not 0 <= source < size:
        raise ValueError(f"source {source} out of range for an {n}-cube")
    if not 1 <= m <= size - 1:
        raise ValueError(f"cannot pick {m} destinations from {size - 1} candidates")
    rng = np.random.default_rng(seed)
    candidates = np.array([u for u in range(size) if u != source])
    sets: list[list[int]] = []
    for _ in range(count):
        picks = rng.choice(candidates, size=m, replace=False)
        sets.append(sorted(int(x) for x in picks))
    return sets
