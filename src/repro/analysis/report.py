"""Markdown report generation: paper-vs-measured for every figure.

``python -m repro report`` regenerates all six figures (fast or full
parameters), evaluates each against the paper's shape criteria
(:mod:`repro.analysis.shapes`), and emits a self-contained markdown
document -- the machine-generated core of EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.analysis.experiments import EXPERIMENTS, run_experiment
from repro.analysis.shapes import FIGURE_CRITERIA, check_figure
from repro.analysis.tables import Table

__all__ = ["markdown_report"]

_PAPER_NOTES = {
    "fig9": "Average (100 random sets/point) of the max steps to multicast "
    "in a 6-cube. Paper: U-cube staircase; new algorithms below it and smooth.",
    "fig10": "Same on a 10-cube. Paper: the gap widens with system size.",
    "fig11": "Average delay, 4096-byte messages, 5-cube nCUBE-2, 20 sets/point. "
    "Paper: all multiport algorithms beat U-cube; U-cube's multicast average "
    "can exceed its broadcast average.",
    "fig12": "Maximum delay, same setting. Paper: U-cube staircase visible; "
    "new algorithms smooth it.",
    "fig13": "Average delay, 10-cube MultiSim simulation, 100 sets/point. "
    "Paper: W-sort's advantage becomes obvious at scale.",
    "fig14": "Maximum delay, same setting.",
}


def figure_section(fig_id: str, table: Table) -> str:
    lines = [f"### {table.title}", ""]
    note = _PAPER_NOTES.get(fig_id)
    if note:
        lines += [f"*Paper:* {note}", ""]
    lines.append("```")
    lines.append(table.render(2))
    lines.append("```")
    lines.append("")
    lines.append("| claim | verdict | detail |")
    lines.append("|---|---|---|")
    for c in check_figure(fig_id, table):
        verdict = "PASS" if c.passed else "FAIL"
        lines.append(f"| {c.claim} | {verdict} | {c.detail} |")
    lines.append("")
    return "\n".join(lines)


def markdown_report(fast: bool = True, figures: list[str] | None = None) -> str:
    """Regenerate figures and produce the paper-vs-measured report."""
    fig_ids = figures if figures is not None else sorted(FIGURE_CRITERIA)
    mode = "fast sweep" if fast else "paper-parity parameters (REPRO_FULL)"
    parts = [
        "## Regenerated evaluation (Section 5 of the paper)",
        "",
        f"Mode: {mode}.  All runs are deterministic (seeded).",
        "",
    ]
    for fig_id in fig_ids:
        if fig_id not in EXPERIMENTS:
            raise KeyError(f"unknown figure {fig_id!r}")
        table = run_experiment(fig_id, fast=fast)
        parts.append(figure_section(fig_id, table))
    return "\n".join(parts)
