"""Summary statistics for experiment samples.

The paper reports point averages over random destination sets; for a
faithful comparison the reproduction also reports dispersion.  Plain
formulas (mean, sample standard deviation, normal-approximation
confidence intervals) implemented on numpy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["SampleSummary", "paired_improvement", "summarize"]

#: two-sided z critical values
_Z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


@dataclass(frozen=True, slots=True)
class SampleSummary:
    """Mean, spread, and a normal-approximation confidence interval."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    ci_low: float
    ci_high: float
    confidence: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.mean:.3g} +- {self.std:.2g} "
            f"[{self.ci_low:.3g}, {self.ci_high:.3g}]@{self.confidence:.0%} (n={self.count})"
        )


def summarize(samples: Sequence[float], confidence: float = 0.95) -> SampleSummary:
    """Summarize a sample; the CI uses the normal approximation
    (adequate at the paper's 20-100 sets per point)."""
    if not samples:
        raise ValueError("cannot summarize an empty sample")
    if confidence not in _Z:
        raise ValueError(f"confidence must be one of {sorted(_Z)}")
    arr = np.asarray(samples, dtype=float)
    mean = float(arr.mean())
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    half = _Z[confidence] * std / np.sqrt(arr.size)
    return SampleSummary(
        count=int(arr.size),
        mean=mean,
        std=std,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        ci_low=mean - float(half),
        ci_high=mean + float(half),
        confidence=confidence,
    )


def paired_improvement(
    baseline: Sequence[float], improved: Sequence[float], confidence: float = 0.95
) -> SampleSummary:
    """Summary of per-pair relative improvement ``1 - improved/baseline``.

    The experiments are paired (same random destination sets for every
    algorithm), so per-pair ratios are the statistically honest way to
    quote the speedup.
    """
    if len(baseline) != len(improved):
        raise ValueError("paired samples must have equal length")
    base = np.asarray(baseline, dtype=float)
    if np.any(base == 0):
        raise ValueError("baseline contains zeros")
    ratios = 1.0 - np.asarray(improved, dtype=float) / base
    return summarize([float(r) for r in ratios], confidence)
