"""Calibration: fitting the wormhole cost model to measurements.

The paper's simulator credibility rests on calibration against a real
nCUBE-2.  This module provides the same workflow for users with their
own latency measurements: given samples of contention-free unicast
delay as a function of message size and hop count, recover the model
constants by linear least squares,

    delay = t_sw + hops * t_hop + size * t_byte

where ``t_sw`` is the combined software overhead (``t_setup + t_recv``
is not separable from one-way delay measurements alone; the split is a
free parameter).  The round-trip test -- measure the simulator, fit,
recover the constants -- is in ``tests/analysis/test_calibration.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.simulator.params import Timings

__all__ = ["CalibrationFit", "fit_timings", "measure_unicast_samples"]


@dataclass(frozen=True, slots=True)
class CalibrationFit:
    """Result of fitting the affine cost model.

    Attributes:
        t_software: combined per-message software overhead (us).
        t_hop: per-hop header routing latency (us).
        t_byte: per-byte channel time (us).
        residual_rms: root-mean-square fit residual (us).
    """

    t_software: float
    t_hop: float
    t_byte: float
    residual_rms: float

    def to_timings(self, recv_fraction: float = 0.5) -> Timings:
        """Materialize :class:`Timings`, splitting the software overhead.

        Args:
            recv_fraction: share of ``t_software`` assigned to the
                receive side (the split is unobservable from one-way
                delays; 0.5 by default).
        """
        if not 0.0 <= recv_fraction <= 1.0:
            raise ValueError("recv_fraction must be in [0, 1]")
        return Timings(
            t_setup=self.t_software * (1.0 - recv_fraction),
            t_recv=self.t_software * recv_fraction,
            t_byte=self.t_byte,
            t_hop=self.t_hop,
        )


def fit_timings(samples: Sequence[tuple[int, int, float]]) -> CalibrationFit:
    """Least-squares fit of ``(size_bytes, hops, delay_us)`` samples.

    Requires at least three samples spanning more than one size and
    more than one hop count (otherwise the system is singular).

    Raises:
        ValueError: on insufficient or degenerate sample sets.
    """
    if len(samples) < 3:
        raise ValueError("need at least 3 samples to fit 3 coefficients")
    sizes = {s for s, _, _ in samples}
    hops = {h for _, h, _ in samples}
    if len(sizes) < 2 or len(hops) < 2:
        raise ValueError("samples must span at least two sizes and two hop counts")
    a = np.array([[1.0, float(h), float(s)] for s, h, _ in samples])
    y = np.array([d for _, _, d in samples])
    coef, _, _, _ = np.linalg.lstsq(a, y, rcond=None)
    t_sw, t_hop, t_byte = (float(c) for c in coef)
    resid = a @ coef - y
    rms = float(np.sqrt(np.mean(resid**2)))
    if t_byte < 0 or t_hop < -1e-9 or t_sw < -1e-9:
        raise ValueError(
            f"fit produced negative constants (t_sw={t_sw:.3g}, t_hop={t_hop:.3g}, "
            f"t_byte={t_byte:.3g}); the samples do not look like wormhole latencies"
        )
    return CalibrationFit(
        t_software=max(0.0, t_sw),
        t_hop=max(0.0, t_hop),
        t_byte=t_byte,
        residual_rms=rms,
    )


def measure_unicast_samples(
    n: int,
    timings: Timings,
    sizes: Sequence[int] = (64, 512, 4096),
    max_hops: int | None = None,
) -> list[tuple[int, int, float]]:
    """Generate calibration samples by 'measuring' the simulator itself.

    One isolated unicast per (size, hops) combination from node 0 to
    the all-ones node of the first ``hops`` dimensions.
    """
    from repro.simulator.engine import Simulator
    from repro.simulator.network import WormholeNetwork

    out: list[tuple[int, int, float]] = []
    hop_range = range(1, (max_hops or n) + 1)
    for size in sizes:
        for h in hop_range:
            dst = (1 << h) - 1
            sim = Simulator()
            received = []
            net = WormholeNetwork(sim, n, timings=timings)
            from repro.simulator.node import HostNode

            def on_recv(host, worm):
                received.append(sim.now)

            nodes = {}

            def get_node(addr):
                if addr not in nodes:
                    nodes[addr] = HostNode(net, addr, 1, on_recv)
                return nodes[addr]

            net.on_delivered = lambda w: (get_node(w.src).release_port(), get_node(w.dst).deliver(w))
            get_node(0).submit_sends([(dst, size, None)], 0.0)
            sim.run()
            out.append((size, h, received[0]))
    return out
