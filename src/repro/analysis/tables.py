"""ASCII rendering of experiment results.

Each paper figure is a set of curves (one per algorithm) over the
destination-count axis; a :class:`Table` is its textual equivalent --
one row per ``m``, one column per algorithm -- which the benchmark
harness prints so the figures can be compared series-by-series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["Table"]


@dataclass(slots=True)
class Table:
    """A printable result table for one experiment."""

    title: str
    x_label: str
    x_values: list[int]
    columns: dict[str, list[float]]
    notes: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        for name, values in self.columns.items():
            if len(values) != len(self.x_values):
                raise ValueError(
                    f"column {name!r} has {len(values)} values for "
                    f"{len(self.x_values)} x-points"
                )

    def column(self, name: str) -> list[float]:
        return self.columns[name]

    def row(self, x: int) -> dict[str, float]:
        i = self.x_values.index(x)
        return {name: vals[i] for name, vals in self.columns.items()}

    def render(self, precision: int = 2) -> str:
        """Fixed-width text rendering."""
        names = list(self.columns)
        widths = [max(len(self.x_label), 6)] + [
            max(len(name), 10) for name in names
        ]
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(
            [self.x_label.rjust(widths[0])]
            + [name.rjust(w) for name, w in zip(names, widths[1:])]
        )
        lines.append(header)
        lines.append("-" * len(header))
        for i, x in enumerate(self.x_values):
            cells = [str(x).rjust(widths[0])]
            for name, w in zip(names, widths[1:]):
                cells.append(f"{self.columns[name][i]:.{precision}f}".rjust(w))
            lines.append("  ".join(cells))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()

    def to_json(self) -> str:
        """Serialize (title, axes, columns, notes) as a JSON document."""
        import json

        return json.dumps(
            {
                "title": self.title,
                "x_label": self.x_label,
                "x_values": self.x_values,
                "columns": self.columns,
                "notes": self.notes,
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "Table":
        """Inverse of :meth:`to_json`."""
        import json

        data = json.loads(text)
        return cls(
            title=data["title"],
            x_label=data["x_label"],
            x_values=list(data["x_values"]),
            columns={k: list(v) for k, v in data["columns"].items()},
            notes=list(data.get("notes", [])),
        )

    @classmethod
    def parse(cls, text: str) -> "Table":
        """Parse a table back from its :meth:`render` output (round-trip).

        Used to re-validate archived experiment results without
        re-running the sweep.
        """
        lines = [ln for ln in text.splitlines() if ln.strip()]
        if len(lines) < 4:
            raise ValueError("not a rendered Table")
        title = lines[0]
        header_idx = 2
        header = lines[header_idx].split()
        x_label, names = header[0], header[1:]
        x_values: list[int] = []
        columns: dict[str, list[float]] = {name: [] for name in names}
        notes: list[str] = []
        for ln in lines[header_idx + 2 :]:
            stripped = ln.strip()
            if stripped.startswith("note:"):
                notes.append(stripped[len("note:") :].strip())
                continue
            cells = stripped.split()
            if len(cells) != len(names) + 1:
                raise ValueError(f"malformed row: {ln!r}")
            x_values.append(int(cells[0]))
            for name, cell in zip(names, cells[1:]):
                columns[name].append(float(cell))
        return cls(title, x_label, x_values, columns, notes)


def geometric_grid(lo: int, hi: int, points: int) -> list[int]:
    """Roughly geometric integer grid from ``lo`` to ``hi`` inclusive."""
    if lo < 1 or hi < lo or points < 1:
        raise ValueError("need 1 <= lo <= hi and points >= 1")
    if points == 1:
        return [hi]
    values: list[int] = []
    ratio = (hi / lo) ** (1.0 / (points - 1))
    x = float(lo)
    for _ in range(points):
        v = round(x)
        if not values or v > values[-1]:
            values.append(v)
        x *= ratio
    if values[-1] != hi:
        values.append(hi)
    return values


def linear_grid(lo: int, hi: int, step: int) -> list[int]:
    """Linear integer grid ``lo, lo+step, ...`` always including ``hi``."""
    values = list(range(lo, hi + 1, step))
    if values[-1] != hi:
        values.append(hi)
    return values
