"""Delay comparisons on the wormhole simulator (Figures 11-14).

For each destination-set size, random sets are multicast through the
timed network model; we record, per set, the *average* and *maximum*
delay across destinations, then average over the sets -- exactly the
quantities plotted in Figures 11/13 (average) and 12/14 (maximum).
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import Sequence

from repro.analysis.workloads import random_destination_sets
from repro.multicast.base import MulticastAlgorithm
from repro.multicast.ports import ALL_PORT, PortModel
from repro.multicast.registry import PAPER_ALGORITHMS, get_algorithm
from repro.simulator.params import NCUBE2, Timings
from repro.simulator.run import simulate_multicast

__all__ = ["DelayResult", "delay_experiment"]


@dataclass(slots=True)
class DelayResult:
    """Mean-of-average and mean-of-maximum destination delays (us)."""

    n: int
    m_values: list[int]
    sets_per_point: int
    size: int
    timings: Timings
    ports: PortModel
    avg_delay: dict[str, list[float]]
    max_delay: dict[str, list[float]]
    blocked_time: dict[str, list[float]]

    def series(self, algorithm: str, metric: str = "avg") -> list[tuple[int, float]]:
        data = self.avg_delay if metric == "avg" else self.max_delay
        return list(zip(self.m_values, data[algorithm]))


def delay_experiment(
    n: int,
    m_values: Sequence[int],
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    sets_per_point: int = 20,
    size: int = 4096,
    timings: Timings = NCUBE2,
    ports: PortModel = ALL_PORT,
    seed: int = 1993,
    source: int = 0,
) -> DelayResult:
    """Run the Figures 11-14 experiment.

    Args:
        n: cube dimension (5 for the nCUBE-2 figures, 10 for the
            MultiSim figures).
        m_values: destination-set sizes to sweep.
        sets_per_point: random sets per point (paper: 20 on the nCUBE-2,
            100 in simulation).
        size: message length in bytes (paper: 4096).
    """
    algs: dict[str, MulticastAlgorithm] = {name: get_algorithm(name) for name in algorithms}
    avg_delay: dict[str, list[float]] = {name: [] for name in algorithms}
    max_delay: dict[str, list[float]] = {name: [] for name in algorithms}
    blocked: dict[str, list[float]] = {name: [] for name in algorithms}

    for i, m in enumerate(m_values):
        sets = random_destination_sets(n, m, sets_per_point, seed=seed + i, source=source)
        for name, alg in algs.items():
            avgs, maxs, blks = [], [], []
            for dests in sets:
                tree = alg.build_tree(n, source, dests)
                res = simulate_multicast(tree, size=size, timings=timings, ports=ports)
                avgs.append(res.avg_delay)
                maxs.append(res.max_delay)
                blks.append(res.total_blocked_time)
            avg_delay[name].append(mean(avgs))
            max_delay[name].append(mean(maxs))
            blocked[name].append(mean(blks))

    return DelayResult(
        n=n,
        m_values=list(m_values),
        sets_per_point=sets_per_point,
        size=size,
        timings=timings,
        ports=ports,
        avg_delay=avg_delay,
        max_delay=max_delay,
        blocked_time=blocked,
    )
