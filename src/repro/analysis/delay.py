"""Delay comparisons on the wormhole simulator (Figures 11-14).

For each destination-set size, random sets are multicast through the
timed network model; we record, per set, the *average* and *maximum*
delay across destinations, then average over the sets -- exactly the
quantities plotted in Figures 11/13 (average) and 12/14 (maximum).
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import Sequence

from repro.analysis.workloads import random_destination_sets
from repro.multicast.ports import ALL_PORT, PortModel
from repro.multicast.registry import PAPER_ALGORITHMS
from repro.obs import trace_spans
from repro.parallel.cache import cached_delay_stats
from repro.parallel.engine import run_points
from repro.simulator.params import NCUBE2, Timings

__all__ = ["DelayResult", "delay_experiment"]


@dataclass(slots=True)
class DelayResult:
    """Mean-of-average and mean-of-maximum destination delays (us)."""

    n: int
    m_values: list[int]
    sets_per_point: int
    size: int
    timings: Timings
    ports: PortModel
    avg_delay: dict[str, list[float]]
    max_delay: dict[str, list[float]]
    blocked_time: dict[str, list[float]]

    def series(self, algorithm: str, metric: str = "avg") -> list[tuple[int, float]]:
        data = self.avg_delay if metric == "avg" else self.max_delay
        return list(zip(self.m_values, data[algorithm]))


@dataclass(frozen=True, slots=True)
class _DelayPoint:
    """Picklable spec for one x-axis point of a delay sweep."""

    n: int
    m: int
    sets_per_point: int
    seed: int
    source: int
    algorithms: tuple[str, ...]
    size: int
    timings: Timings
    ports: PortModel


def _delay_point(spec: _DelayPoint) -> dict[str, tuple[float, float, float]]:
    """Evaluate one point: ``{algorithm: (avg, max, blocked) means}``.

    Module-level (and spec-driven) so the sweep engine can run it in a
    worker process; the serial path runs the identical code.  Each
    (algorithm, destination-set) simulation is served from the schedule
    cache when one is active.
    """
    with trace_spans.span("point.delay", n=spec.n, m=spec.m, sets=spec.sets_per_point):
        sets = random_destination_sets(
            spec.n, spec.m, spec.sets_per_point, seed=spec.seed, source=spec.source
        )
        out: dict[str, tuple[float, float, float]] = {}
        for name in spec.algorithms:
            avgs, maxs, blks = [], [], []
            for dests in sets:
                stats = cached_delay_stats(
                    name, spec.n, spec.source, dests, spec.size, spec.timings, spec.ports
                )
                avgs.append(stats["avg_delay_us"])
                maxs.append(stats["max_delay_us"])
                blks.append(stats["total_blocked_us"])
            out[name] = (mean(avgs), mean(maxs), mean(blks))
        return out


def delay_experiment(
    n: int,
    m_values: Sequence[int],
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    sets_per_point: int = 20,
    size: int = 4096,
    timings: Timings = NCUBE2,
    ports: PortModel = ALL_PORT,
    seed: int = 1993,
    source: int = 0,
) -> DelayResult:
    """Run the Figures 11-14 experiment.

    Points run through :func:`repro.parallel.engine.run_points` (serial
    by default, process-pool fan-out inside a
    :func:`~repro.parallel.engine.sweep_context`) and each simulated
    multicast's delay summary is content-address cached, so Figures 11
    and 12 -- which share every point -- simulate each one once.

    Args:
        n: cube dimension (5 for the nCUBE-2 figures, 10 for the
            MultiSim figures).
        m_values: destination-set sizes to sweep.
        sets_per_point: random sets per point (paper: 20 on the nCUBE-2,
            100 in simulation).
        size: message length in bytes (paper: 4096).
    """
    specs = [
        _DelayPoint(
            n, m, sets_per_point, seed + i, source, tuple(algorithms), size, timings, ports
        )
        for i, m in enumerate(m_values)
    ]
    points = run_points(_delay_point, specs, label="delay")

    avg_delay: dict[str, list[float]] = {name: [] for name in algorithms}
    max_delay: dict[str, list[float]] = {name: [] for name in algorithms}
    blocked: dict[str, list[float]] = {name: [] for name in algorithms}
    for point in points:
        for name in algorithms:
            avg, mx, blk = point[name]
            avg_delay[name].append(avg)
            max_delay[name].append(mx)
            blocked[name].append(blk)

    return DelayResult(
        n=n,
        m_values=list(m_values),
        sets_per_point=sets_per_point,
        size=size,
        timings=timings,
        ports=ports,
        avg_delay=avg_delay,
        max_delay=max_delay,
        blocked_time=blocked,
    )
