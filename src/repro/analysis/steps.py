"""Stepwise comparisons (Figures 9 and 10).

For each destination-set size ``m``, draw random sets and record the
*maximum number of steps* each algorithm needs to reach all
destinations on an all-port machine; report the average (and extremes)
over the sets.  U-cube's curve is the ``ceil(log2(m + 1))`` staircase;
the all-port algorithms fall below it and smooth it out.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import Sequence

from repro.analysis.workloads import random_destination_sets
from repro.multicast.base import MulticastAlgorithm
from repro.multicast.ports import ALL_PORT, PortModel
from repro.multicast.registry import PAPER_ALGORITHMS, get_algorithm

__all__ = ["StepsResult", "stepwise_experiment"]


@dataclass(slots=True)
class StepsResult:
    """Average/min/max of the per-set maximum step count, one series
    per algorithm."""

    n: int
    m_values: list[int]
    sets_per_point: int
    ports: PortModel
    mean_steps: dict[str, list[float]]
    min_steps: dict[str, list[int]]
    max_steps: dict[str, list[int]]

    def series(self, algorithm: str) -> list[tuple[int, float]]:
        """``(m, mean max steps)`` pairs for one algorithm."""
        return list(zip(self.m_values, self.mean_steps[algorithm]))


def stepwise_experiment(
    n: int,
    m_values: Sequence[int],
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    sets_per_point: int = 100,
    seed: int = 1993,
    ports: PortModel = ALL_PORT,
    source: int = 0,
) -> StepsResult:
    """Run the Figures 9/10 experiment.

    Args:
        n: cube dimension (6 for Fig. 9, 10 for Fig. 10).
        m_values: destination-set sizes to sweep.
        algorithms: registry names, one curve each.
        sets_per_point: random sets per (m, algorithm) point (paper: 100).
        seed: RNG seed; the same sets are used for all algorithms, as in
            a paired experiment.
    """
    algs: dict[str, MulticastAlgorithm] = {name: get_algorithm(name) for name in algorithms}
    mean_steps: dict[str, list[float]] = {name: [] for name in algorithms}
    min_steps: dict[str, list[int]] = {name: [] for name in algorithms}
    max_steps: dict[str, list[int]] = {name: [] for name in algorithms}

    for i, m in enumerate(m_values):
        sets = random_destination_sets(n, m, sets_per_point, seed=seed + i, source=source)
        for name, alg in algs.items():
            counts = [alg.schedule(n, source, dests, ports).max_step for dests in sets]
            mean_steps[name].append(mean(counts))
            min_steps[name].append(min(counts))
            max_steps[name].append(max(counts))

    return StepsResult(
        n=n,
        m_values=list(m_values),
        sets_per_point=sets_per_point,
        ports=ports,
        mean_steps=mean_steps,
        min_steps=min_steps,
        max_steps=max_steps,
    )
