"""Stepwise comparisons (Figures 9 and 10).

For each destination-set size ``m``, draw random sets and record the
*maximum number of steps* each algorithm needs to reach all
destinations on an all-port machine; report the average (and extremes)
over the sets.  U-cube's curve is the ``ceil(log2(m + 1))`` staircase;
the all-port algorithms fall below it and smooth it out.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import Sequence

from repro.analysis.workloads import random_destination_sets
from repro.multicast.ports import ALL_PORT, PortModel
from repro.multicast.registry import PAPER_ALGORITHMS
from repro.obs import trace_spans
from repro.parallel.cache import cached_schedule_table
from repro.parallel.engine import run_points

__all__ = ["StepsResult", "stepwise_experiment"]


@dataclass(slots=True)
class StepsResult:
    """Average/min/max of the per-set maximum step count, one series
    per algorithm."""

    n: int
    m_values: list[int]
    sets_per_point: int
    ports: PortModel
    mean_steps: dict[str, list[float]]
    min_steps: dict[str, list[int]]
    max_steps: dict[str, list[int]]

    def series(self, algorithm: str) -> list[tuple[int, float]]:
        """``(m, mean max steps)`` pairs for one algorithm."""
        return list(zip(self.m_values, self.mean_steps[algorithm]))


@dataclass(frozen=True, slots=True)
class _StepsPoint:
    """Picklable spec for one x-axis point of a stepwise sweep."""

    n: int
    m: int
    sets_per_point: int
    seed: int
    source: int
    algorithms: tuple[str, ...]
    ports: PortModel


def _steps_point(spec: _StepsPoint) -> dict[str, tuple[float, int, int]]:
    """Evaluate one point: ``{algorithm: (mean, min, max) max-steps}``.

    Module-level (and spec-driven) so the sweep engine can run it in a
    worker process; the serial path runs the identical code.
    """
    with trace_spans.span("point.steps", n=spec.n, m=spec.m, sets=spec.sets_per_point):
        sets = random_destination_sets(
            spec.n, spec.m, spec.sets_per_point, seed=spec.seed, source=spec.source
        )
        out: dict[str, tuple[float, int, int]] = {}
        for name in spec.algorithms:
            counts = [
                cached_schedule_table(name, spec.n, spec.source, dests, spec.ports)["max_step"]
                for dests in sets
            ]
            out[name] = (mean(counts), min(counts), max(counts))
        return out


def stepwise_experiment(
    n: int,
    m_values: Sequence[int],
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    sets_per_point: int = 100,
    seed: int = 1993,
    ports: PortModel = ALL_PORT,
    source: int = 0,
) -> StepsResult:
    """Run the Figures 9/10 experiment.

    Points run through :func:`repro.parallel.engine.run_points`:
    serial by default, fanned across a process pool inside a
    :func:`~repro.parallel.engine.sweep_context`, with identical
    results either way.

    Args:
        n: cube dimension (6 for Fig. 9, 10 for Fig. 10).
        m_values: destination-set sizes to sweep.
        algorithms: registry names, one curve each.
        sets_per_point: random sets per (m, algorithm) point (paper: 100).
        seed: RNG seed; the same sets are used for all algorithms, as in
            a paired experiment.  Per-point seeds are ``seed + i`` by
            x-index -- part of the point spec, so results never depend
            on scheduling order.
    """
    specs = [
        _StepsPoint(n, m, sets_per_point, seed + i, source, tuple(algorithms), ports)
        for i, m in enumerate(m_values)
    ]
    points = run_points(_steps_point, specs, label="stepwise")

    mean_steps: dict[str, list[float]] = {name: [] for name in algorithms}
    min_steps: dict[str, list[int]] = {name: [] for name in algorithms}
    max_steps: dict[str, list[int]] = {name: [] for name in algorithms}
    for point in points:
        for name in algorithms:
            avg, lo, hi = point[name]
            mean_steps[name].append(avg)
            min_steps[name].append(lo)
            max_steps[name].append(hi)

    return StepsResult(
        n=n,
        m_values=list(m_values),
        sets_per_point=sets_per_point,
        ports=ports,
        mean_steps=mean_steps,
        min_steps=min_steps,
        max_steps=max_steps,
    )
