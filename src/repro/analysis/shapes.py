"""Shape criteria: the paper's qualitative claims, as checkable predicates.

The reproduction cannot match the paper's absolute microseconds (the
hardware is simulated; DESIGN.md Section 4), so what it *asserts* is
the shape of each figure: who wins, by roughly what factor, where the
staircase and the crossovers fall.  This module encodes those claims
once; the benchmark harness and the report generator both evaluate
them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.tables import Table

__all__ = ["Criterion", "check_figure", "FIGURE_CRITERIA"]


@dataclass(frozen=True, slots=True)
class Criterion:
    """One checked claim about a figure."""

    claim: str
    passed: bool
    detail: str = ""


def _staircase(table: Table) -> Criterion:
    bad = [
        (m, v)
        for m, v in zip(table.x_values, table.column("ucube"))
        if abs(v - math.ceil(math.log2(m + 1))) > 1e-9
    ]
    return Criterion(
        "U-cube max steps follow the ceil(log2(m+1)) staircase exactly",
        not bad,
        f"violations at m={[m for m, _ in bad][:5]}" if bad else "",
    )


def _never_worse(table: Table, names=("combine", "wsort"), slack=1e-9) -> Criterion:
    bad = []
    for name in names:
        for m, v, u in zip(table.x_values, table.column(name), table.column("ucube")):
            if v > u + slack:
                bad.append((name, m))
    return Criterion(
        f"{'/'.join(names)} never exceed U-cube",
        not bad,
        f"violations: {bad[:5]}" if bad else "",
    )


def _maxport_close(table: Table, slack=0.5) -> Criterion:
    bad = [
        m
        for m, v, u in zip(
            table.x_values, table.column("maxport"), table.column("ucube")
        )
        if v > u + slack
    ]
    return Criterion(
        "Maxport within +0.5 steps of U-cube (it may exceed it, Section 4.1)",
        not bad,
        f"violations at m={bad[:5]}" if bad else "",
    )


def _wsort_gain(table: Table, lo: int, hi: int, min_gain: float) -> Criterion:
    idx = [i for i, m in enumerate(table.x_values) if lo <= m <= hi]
    gain = sum(
        table.column("ucube")[i] - table.column("wsort")[i] for i in idx
    ) / max(1, len(idx))
    return Criterion(
        f"W-sort saves >= {min_gain} steps on average for {lo} <= m <= {hi}",
        gain >= min_gain,
        f"measured gain {gain:.2f}",
    )


def _multiport_beats_ucube_delay(table: Table) -> Criterion:
    bad = []
    bcast_m = max(table.x_values)  # at full broadcast the trees coincide
    for name in ("maxport", "combine", "wsort"):
        for m, v, u in zip(table.x_values, table.column(name), table.column("ucube")):
            if 4 <= m < bcast_m and v >= u:
                bad.append((name, m))
    return Criterion(
        "every multiport algorithm beats U-cube's delay for 4 <= m < broadcast",
        not bad,
        f"violations: {bad[:5]}" if bad else "",
    )


def _broadcast_anomaly(table: Table) -> Criterion:
    u = dict(zip(table.x_values, table.column("ucube")))
    bcast_m = max(table.x_values)
    worst_mid = max(v for m, v in u.items() if m < bcast_m)
    return Criterion(
        "U-cube average multicast delay exceeds its broadcast delay (Fig. 11 anomaly)",
        worst_mid > u[bcast_m],
        f"worst multicast {worst_mid:.0f} us vs broadcast {u[bcast_m]:.0f} us",
    )


def _endpoints_algorithm_independent(table: Table) -> Criterion:
    bad = []
    for m in (min(table.x_values), max(table.x_values)):
        i = table.x_values.index(m)
        vals = [table.columns[name][i] for name in table.columns]
        if max(vals) - min(vals) > 1e-6 * max(vals):
            bad.append(m)
    return Criterion(
        "unicast (m=1) and broadcast delays are algorithm-independent",
        not bad,
        f"violations at m={bad}" if bad else "",
    )


def _wsort_best_at_scale(table: Table, lo: int, hi: int) -> Criterion:
    bad = []
    for i, m in enumerate(table.x_values):
        if lo <= m <= hi:
            w = table.column("wsort")[i]
            if w > table.column("maxport")[i] + 1e-6 or w > table.column("combine")[i] + 1e-6:
                bad.append(m)
    return Criterion(
        f"W-sort lowest among multiport algorithms for {lo} <= m <= {hi}",
        not bad,
        f"violations at m={bad[:5]}" if bad else "",
    )


def _multiport_at_most_ucube_delay(table: Table) -> Criterion:
    # Combine/W-sort stay at or below U-cube; Maxport may exceed it by a
    # few percent at some set sizes (its known weakness, Section 4.1)
    bad = []
    for name, slack in (("maxport", 1.10), ("combine", 1.02), ("wsort", 1.02)):
        for m, v, u in zip(table.x_values, table.column(name), table.column("ucube")):
            if v > u * slack:
                bad.append((name, m))
    return Criterion(
        "combine/wsort within 2% of U-cube everywhere; maxport within 10%",
        not bad,
        f"violations: {bad[:5]}" if bad else "",
    )


def check_figure(fig_id: str, table: Table) -> list[Criterion]:
    """Evaluate the paper's claims for one figure's regenerated table."""
    try:
        checks = FIGURE_CRITERIA[fig_id]
    except KeyError:
        raise KeyError(f"no shape criteria registered for {fig_id!r}") from None
    return [check(table) for check in checks]


FIGURE_CRITERIA = {
    "fig9": [
        _staircase,
        _never_worse,
        _maxport_close,
        lambda t: _wsort_gain(t, 8, 48, 0.5),
    ],
    "fig10": [
        _staircase,
        _never_worse,
        _maxport_close,
        lambda t: _wsort_gain(t, 50, 800, 1.0),
    ],
    "fig11": [
        _multiport_beats_ucube_delay,
        _broadcast_anomaly,
        _endpoints_algorithm_independent,
    ],
    "fig12": [
        _multiport_at_most_ucube_delay,
        _endpoints_algorithm_independent,
    ],
    "fig13": [
        _multiport_beats_ucube_delay,
        lambda t: _wsort_best_at_scale(t, 50, 800),
    ],
    "fig14": [
        _multiport_at_most_ucube_delay,
        lambda t: _wsort_best_at_scale(t, 50, 800),
    ],
}
