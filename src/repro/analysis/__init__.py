"""Evaluation harness: the paper's Section 5 experiments.

- :mod:`repro.analysis.workloads` -- reproducible random destination
  sets ("the nodes are randomly distributed throughout the hypercube").
- :mod:`repro.analysis.steps` -- stepwise comparisons (Figures 9-10).
- :mod:`repro.analysis.delay` -- simulated delay comparisons
  (Figures 11-14).
- :mod:`repro.analysis.experiments` -- one definition per figure, with
  the paper's parameters, plus ablations; each returns a
  :class:`~repro.analysis.tables.Table`.
- :mod:`repro.analysis.tables` -- ASCII rendering of result series.
"""

from repro.analysis.delay import DelayResult, delay_experiment
from repro.analysis.experiments import EXPERIMENTS, Experiment, run_experiment
from repro.analysis.calibration import fit_timings
from repro.analysis.load import LoadSummary, channel_load, load_summary
from repro.analysis.plot import ascii_plot
from repro.analysis.stats import SampleSummary, paired_improvement, summarize
from repro.analysis.steps import StepsResult, stepwise_experiment
from repro.analysis.tables import Table
from repro.analysis.workloads import random_destination_sets

__all__ = [
    "DelayResult",
    "EXPERIMENTS",
    "Experiment",
    "LoadSummary",
    "SampleSummary",
    "StepsResult",
    "Table",
    "ascii_plot",
    "channel_load",
    "delay_experiment",
    "fit_timings",
    "load_summary",
    "paired_improvement",
    "random_destination_sets",
    "run_experiment",
    "stepwise_experiment",
    "summarize",
]
