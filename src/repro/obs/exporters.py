"""Trace and metrics exporters: Chrome trace-event JSON and Prometheus text.

Two output formats, both consumed by standard external tooling:

* :func:`to_chrome_trace` renders a :class:`~repro.obs.trace_spans.Tracer`
  (or a list of spans) as Chrome trace-event JSON — the ``traceEvents``
  object format loadable in Perfetto (https://ui.perfetto.dev) and
  ``chrome://tracing``.  Finished spans become complete (``ph: "X"``)
  events with microsecond ``ts``/``dur``; unfinished (partial) spans and
  zero-duration instants become instant (``ph: "i"``) events.

* :func:`to_prometheus` renders a :meth:`MetricsRegistry.snapshot
  <repro.obs.metrics.MetricsRegistry.snapshot>` in the Prometheus text
  exposition format: counters and gauges verbatim, timers as summaries
  (``_seconds_sum`` / ``_seconds_count``), histograms with cumulative
  ``_bucket{le=...}`` series plus the mandatory ``+Inf`` bucket.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Iterable, Mapping

from .metrics import MetricsRegistry
from .trace_spans import Span, Tracer

__all__ = [
    "to_chrome_trace",
    "to_prometheus",
    "write_chrome_trace",
    "write_prometheus",
]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _span_dicts(source: Tracer | Iterable[Span | Mapping[str, Any]]) -> list[dict]:
    if isinstance(source, Tracer):
        return source.snapshot()["spans"]
    out = []
    for s in source:
        out.append(s.to_dict() if isinstance(s, Span) else dict(s))
    return out


def to_chrome_trace(
    source: Tracer | Iterable[Span | Mapping[str, Any]],
    trace_id: str | None = None,
) -> dict[str, Any]:
    """Render spans as a Chrome trace-event JSON object.

    Accepts a :class:`Tracer`, a list of :class:`Span`, or a list of
    span dicts (e.g. a worker snapshot's ``spans``).  Returns the
    ``{"traceEvents": [...]}`` object format so metadata can ride along.
    """
    spans = _span_dicts(source)
    if trace_id is None and isinstance(source, Tracer):
        trace_id = source.trace_id
    events: list[dict[str, Any]] = []
    for d in spans:
        args = dict(d.get("attrs") or {})
        args["span_id"] = d.get("span_id")
        if d.get("parent_id"):
            args["parent_id"] = d["parent_id"]
        base = {
            "name": d.get("name", "?"),
            "cat": str(d.get("name", "?")).split(".", 1)[0],
            "pid": int(d.get("pid", 0) or 0),
            "tid": int(d.get("tid", 0) or 0),
            "ts": float(d.get("start_us", 0.0)),
            "args": args,
        }
        end = d.get("end_us")
        start = float(d.get("start_us", 0.0))
        if end is None or float(end) <= start:
            base["ph"] = "i"
            base["s"] = "t"  # thread-scoped instant
            if end is None:
                base["args"]["partial"] = True
        else:
            base["ph"] = "X"
            base["dur"] = float(end) - start
        events.append(base)
    out: dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if trace_id is not None:
        out["otherData"] = {"trace_id": trace_id}
    return out


def write_chrome_trace(
    path: str | Path,
    source: Tracer | Iterable[Span | Mapping[str, Any]],
    trace_id: str | None = None,
) -> int:
    """Write Chrome trace JSON to ``path``; returns the event count."""
    doc = to_chrome_trace(source, trace_id=trace_id)
    Path(path).write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    return len(doc["traceEvents"])


def _metric_name(name: str, prefix: str) -> str:
    sanitized = _NAME_RE.sub("_", name)
    if prefix:
        sanitized = f"{prefix}_{sanitized}"
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def to_prometheus(
    snapshot: MetricsRegistry | Mapping[str, Mapping[str, Any]],
    prefix: str = "repro",
) -> str:
    """Render a metrics snapshot in Prometheus text exposition format."""
    if isinstance(snapshot, MetricsRegistry):
        snapshot = snapshot.snapshot()
    lines: list[str] = []
    for name in sorted(snapshot):
        snap = snapshot[name]
        kind = snap.get("type")
        metric = _metric_name(name, prefix)
        if kind == "counter":
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {_fmt(float(snap['value']))}")
        elif kind == "gauge":
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_fmt(float(snap['value']))}")
            lines.append(f"{metric}_min {_fmt(float(snap['min']))}")
            lines.append(f"{metric}_max {_fmt(float(snap['max']))}")
        elif kind == "timer":
            base = f"{metric}_seconds"
            lines.append(f"# TYPE {base} summary")
            lines.append(f"{base}_sum {_fmt(float(snap['total_seconds']))}")
            lines.append(f"{base}_count {_fmt(int(snap['count']))}")
        elif kind == "histogram":
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for bound, count in zip(snap["bounds"], snap["counts"]):
                cumulative += int(count)
                lines.append(f'{metric}_bucket{{le="{_fmt(float(bound))}"}} {cumulative}')
            cumulative += int(snap["overflow"])
            lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{metric}_sum {_fmt(float(snap['sum']))}")
            lines.append(f"{metric}_count {_fmt(int(snap['count']))}")
        else:
            raise ValueError(f"cannot export unknown instrument type {kind!r} for {name!r}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(
    path: str | Path,
    snapshot: MetricsRegistry | Mapping[str, Mapping[str, Any]],
    prefix: str = "repro",
) -> int:
    """Write Prometheus text format to ``path``; returns the line count."""
    text = to_prometheus(snapshot, prefix=prefix)
    Path(path).write_text(text)
    return text.count("\n")
