"""Unified observability layer: metrics, run telemetry, profiling probes.

``repro.obs`` is the one place the reproduction's measurements flow
through (docs/OBSERVABILITY.md documents schemas and metric names):

- :mod:`repro.obs.metrics` -- a :class:`MetricsRegistry` of counters,
  gauges, timers, and fixed-bucket histograms, snapshot-able to plain
  dicts;
- :mod:`repro.obs.telemetry` -- the :class:`RunRecord` JSONL envelope
  every simulation driver and experiment can emit;
- :mod:`repro.obs.sink` -- JSONL / in-memory sinks plus the
  ``REPRO_TELEMETRY`` environment toggle and ``--telemetry`` CLI flags;
- :mod:`repro.obs.probes` -- opt-in event-kernel profiling (per-callback
  wall time, peak heap depth, cancellation rate);
- :mod:`repro.obs.rollup` -- channel-level aggregates (hotspot arcs,
  utilization histogram, per-dimension busy/blocked time) from a
  :class:`~repro.simulator.trace.ChannelTrace`;
- :mod:`repro.obs.trace_spans` -- opt-in hierarchical span tracing
  (schedule-build / verify / simulate / cache / journal timelines) with
  worker-snapshot replay for the parallel sweep engine;
- :mod:`repro.obs.exporters` -- Chrome trace-event JSON (Perfetto /
  ``chrome://tracing``) and Prometheus text-format exporters;
- :mod:`repro.obs.ledger` -- the committed ``BENCH_<host-class>.json``
  benchmark trajectory with regression gating (``repro-hypercube
  bench``).

The package is dependency-free (stdlib only, no imports from the
simulator; the ledger defers its benchmark-workload imports into the
run), and every integration point is opt-in: with no registry, no
probes, no sink, and no tracer configured, an instrumented code path
performs the same operations it did before this layer existed.
"""

from repro.obs.metrics import (
    CORE_METRIC_NAMES,
    Counter,
    Gauge,
    Histogram,
    METRIC_FAMILIES,
    MetricsRegistry,
    Timer,
    is_registered_metric,
    merge_snapshot,
)
from repro.obs.probes import (
    CallbackTimeProbe,
    CancellationProbe,
    HeapDepthProbe,
    Probe,
    default_probes,
    probe_summaries,
)
from repro.obs.rollup import (
    channel_rollup,
    hotspot_arcs,
    per_dimension_blocked_time,
    per_dimension_busy_time,
    utilization_histogram,
)
from repro.obs.exporters import (
    to_chrome_trace,
    to_prometheus,
    write_chrome_trace,
    write_prometheus,
)
from repro.obs.ledger import (
    LEDGER_SCHEMA,
    Regression,
    compare_entries,
    env_fingerprint,
    host_class,
    latest_entry,
    ledger_path,
    load_ledger,
    run_benchmark_suite,
    save_ledger,
)
from repro.obs.sink import JsonlSink, MemorySink, TelemetrySink, capture, configure, get_sink
from repro.obs.telemetry import KNOWN_KINDS, RunRecord, new_run_id, summarize_delays
from repro.obs.trace_spans import (
    Span,
    Tracer,
    configure_tracing,
    current_span,
    current_trace_id,
    derive_trace_id,
    get_tracer,
    instant,
    phase_rollup,
    span,
    trace_capture,
)

__all__ = [
    "CORE_METRIC_NAMES",
    "CallbackTimeProbe",
    "CancellationProbe",
    "Counter",
    "Gauge",
    "HeapDepthProbe",
    "Histogram",
    "JsonlSink",
    "KNOWN_KINDS",
    "LEDGER_SCHEMA",
    "METRIC_FAMILIES",
    "MemorySink",
    "MetricsRegistry",
    "Probe",
    "Regression",
    "RunRecord",
    "Span",
    "TelemetrySink",
    "Timer",
    "Tracer",
    "capture",
    "channel_rollup",
    "compare_entries",
    "configure",
    "configure_tracing",
    "current_span",
    "current_trace_id",
    "default_probes",
    "derive_trace_id",
    "env_fingerprint",
    "get_sink",
    "get_tracer",
    "host_class",
    "hotspot_arcs",
    "instant",
    "latest_entry",
    "ledger_path",
    "load_ledger",
    "is_registered_metric",
    "merge_snapshot",
    "new_run_id",
    "per_dimension_blocked_time",
    "per_dimension_busy_time",
    "phase_rollup",
    "probe_summaries",
    "run_benchmark_suite",
    "save_ledger",
    "span",
    "summarize_delays",
    "to_chrome_trace",
    "to_prometheus",
    "trace_capture",
    "utilization_histogram",
    "write_chrome_trace",
    "write_prometheus",
]
