"""Unified observability layer: metrics, run telemetry, profiling probes.

``repro.obs`` is the one place the reproduction's measurements flow
through (docs/OBSERVABILITY.md documents schemas and metric names):

- :mod:`repro.obs.metrics` -- a :class:`MetricsRegistry` of counters,
  gauges, timers, and fixed-bucket histograms, snapshot-able to plain
  dicts;
- :mod:`repro.obs.telemetry` -- the :class:`RunRecord` JSONL envelope
  every simulation driver and experiment can emit;
- :mod:`repro.obs.sink` -- JSONL / in-memory sinks plus the
  ``REPRO_TELEMETRY`` environment toggle and ``--telemetry`` CLI flags;
- :mod:`repro.obs.probes` -- opt-in event-kernel profiling (per-callback
  wall time, peak heap depth, cancellation rate);
- :mod:`repro.obs.rollup` -- channel-level aggregates (hotspot arcs,
  utilization histogram, per-dimension busy/blocked time) from a
  :class:`~repro.simulator.trace.ChannelTrace`.

The package is dependency-free (stdlib only, no imports from the
simulator), and every integration point is opt-in: with no registry, no
probes, and no sink configured, an instrumented code path performs the
same operations it did before this layer existed.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    merge_snapshot,
)
from repro.obs.probes import (
    CallbackTimeProbe,
    CancellationProbe,
    HeapDepthProbe,
    Probe,
    default_probes,
    probe_summaries,
)
from repro.obs.rollup import (
    channel_rollup,
    hotspot_arcs,
    per_dimension_blocked_time,
    per_dimension_busy_time,
    utilization_histogram,
)
from repro.obs.sink import JsonlSink, MemorySink, TelemetrySink, capture, configure, get_sink
from repro.obs.telemetry import RunRecord, new_run_id, summarize_delays

__all__ = [
    "CallbackTimeProbe",
    "CancellationProbe",
    "Counter",
    "Gauge",
    "HeapDepthProbe",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "Probe",
    "RunRecord",
    "TelemetrySink",
    "Timer",
    "capture",
    "channel_rollup",
    "configure",
    "default_probes",
    "get_sink",
    "hotspot_arcs",
    "merge_snapshot",
    "new_run_id",
    "per_dimension_blocked_time",
    "per_dimension_busy_time",
    "probe_summaries",
    "summarize_delays",
    "utilization_histogram",
]
