"""Simulator profiling probes.

A :class:`Probe` observes the event kernel from the outside: the
:class:`~repro.simulator.engine.Simulator` calls ``on_schedule`` when
an event enters the heap and ``on_fire`` after a callback runs (with
the callback's host wall-clock cost).  The kernel takes probes as an
optional sequence and skips all probe bookkeeping — including the
``perf_counter`` pair around each callback — when none are attached,
so profiling is strictly opt-in.

Built-in probes cover the three questions that matter when the
simulator itself is the bottleneck (the 10-cube sweeps fire millions of
events): where does host time go per callback type
(:class:`CallbackTimeProbe`), how deep does the heap get
(:class:`HeapDepthProbe`), and how much scheduling work is wasted on
events that never fire (:class:`CancellationProbe`).

Probes are deliberately decoupled from the engine: this module imports
nothing from :mod:`repro.simulator`, and the engine refers to probes
only through duck typing, so ``repro.obs`` stays dependency-free.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.simulator.engine import Event, Simulator

__all__ = [
    "CallbackTimeProbe",
    "CancellationProbe",
    "HeapDepthProbe",
    "Probe",
    "default_probes",
    "probe_summaries",
]


@runtime_checkable
class Probe(Protocol):
    """What the event kernel calls into when profiling is enabled."""

    def on_schedule(self, sim: "Simulator", event: "Event") -> None:
        """``event`` was just pushed onto the heap."""

    def on_fire(self, sim: "Simulator", event: "Event", wall_seconds: float) -> None:
        """``event``'s callback just ran, costing ``wall_seconds`` of host time."""

    def summary(self) -> dict[str, object]:
        """Accumulated results as a JSON-safe dict."""


def _callback_label(event: "Event") -> str:
    cb = event.callback
    return getattr(cb, "__qualname__", None) or getattr(cb, "__name__", None) or repr(cb)


class CallbackTimeProbe:
    """Host wall time and fire count per callback type.

    The per-callback breakdown says which layer of the model dominates a
    slow sweep -- header progression (``_header_crossed``), delivery
    fan-out (``_deliver``), or CPU-side send issue.
    """

    name = "callback_time"

    def __init__(self) -> None:
        self._seconds: dict[str, float] = {}
        self._fires: dict[str, int] = {}

    def on_schedule(self, sim: "Simulator", event: "Event") -> None:
        pass

    def on_fire(self, sim: "Simulator", event: "Event", wall_seconds: float) -> None:
        label = _callback_label(event)
        self._seconds[label] = self._seconds.get(label, 0.0) + wall_seconds
        self._fires[label] = self._fires.get(label, 0) + 1

    def summary(self) -> dict[str, object]:
        by_callback = {
            label: {"fires": self._fires[label], "wall_seconds": self._seconds[label]}
            for label in sorted(self._seconds, key=self._seconds.get, reverse=True)
        }
        return {
            "total_wall_seconds": sum(self._seconds.values()),
            "by_callback": by_callback,
        }


class HeapDepthProbe:
    """Peak (and final) pending-event count.

    Peak heap depth bounds the kernel's memory footprint and the
    ``log n`` factor in every push/pop; a model change that balloons it
    shows up here before it shows up as wall time.
    """

    name = "heap_depth"

    def __init__(self) -> None:
        self.peak = 0
        self.scheduled = 0

    def on_schedule(self, sim: "Simulator", event: "Event") -> None:
        self.scheduled += 1
        depth = len(sim._heap)
        if depth > self.peak:
            self.peak = depth

    def on_fire(self, sim: "Simulator", event: "Event", wall_seconds: float) -> None:
        pass

    def summary(self) -> dict[str, object]:
        return {"peak": self.peak, "scheduled": self.scheduled}


class CancellationProbe:
    """Fraction of scheduled events that were cancelled instead of fired.

    The kernel cancels lazily (tombstones stay in the heap), so a high
    cancellation rate means the heap is doing real work on dead events;
    models that re-schedule speculatively should watch this.
    """

    name = "cancellation"

    def __init__(self) -> None:
        self.scheduled = 0
        self.fired = 0

    def on_schedule(self, sim: "Simulator", event: "Event") -> None:
        self.scheduled += 1

    def on_fire(self, sim: "Simulator", event: "Event", wall_seconds: float) -> None:
        self.fired += 1

    def summary(self) -> dict[str, object]:
        cancelled = self.scheduled - self.fired
        return {
            "scheduled": self.scheduled,
            "fired": self.fired,
            "cancelled": cancelled,
            "cancellation_rate": cancelled / self.scheduled if self.scheduled else 0.0,
        }


def default_probes() -> list[Probe]:
    """A fresh instance of every built-in probe."""
    return [CallbackTimeProbe(), HeapDepthProbe(), CancellationProbe()]


def probe_summaries(probes) -> dict[str, dict[str, object]]:
    """``{probe.name: probe.summary()}`` for a probe collection."""
    return {p.name: p.summary() for p in probes}
