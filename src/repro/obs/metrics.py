"""A dependency-free metrics registry: counters, gauges, timers, histograms.

The paper's evaluation rests on *measurement* (nCUBE-2 runs, MultiSim
traces); this module is the reproduction's common measurement substrate.
Every instrument lives in a :class:`MetricsRegistry` and snapshots to a
plain dict, so simulation drivers, experiments, and the CLI all export
through one path (JSON Lines via :mod:`repro.obs.telemetry`).

Design constraints, in order:

1. **Zero overhead when disabled.**  The simulation drivers accept
   ``metrics=None`` and guard every instrumentation block on it, so the
   hot path of an un-instrumented run is byte-for-byte the same set of
   operations as before this module existed.
2. **No dependencies.**  Pure stdlib; importable from anywhere in the
   package without cycles.
3. **Plain-dict snapshots.**  ``snapshot()`` returns only str/int/float
   containers so the result is directly JSON-serializable.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from contextlib import contextmanager
from typing import Iterator, Sequence

__all__ = [
    "CORE_METRIC_NAMES",
    "Counter",
    "DELAY_BUCKETS_US",
    "Gauge",
    "Histogram",
    "METRIC_FAMILIES",
    "MetricsRegistry",
    "SERVICE_LATENCY_BUCKETS_MS",
    "Timer",
    "UTILIZATION_BUCKETS",
    "is_registered_metric",
    "merge_snapshot",
]

#: The registered ``sim.*`` metric families.  Every instrument name in
#: the codebase must live in one of these namespaces (or be a core
#: simulator name from :data:`CORE_METRIC_NAMES`); the ``repro.lint``
#: REP006 rule enforces this statically, so adding a family here is
#: what makes its names legal everywhere.
METRIC_FAMILIES: tuple[str, ...] = (
    "sim.fabric",
    "sim.faults",
    "sim.lint",
    "sim.parallel",
    "sim.resilience",
    "sim.service",
)

#: Core simulator instruments that predate the family namespaces.
CORE_METRIC_NAMES: frozenset[str] = frozenset(
    {
        "sim.runs",
        "sim.wall",
        "sim.events",
        "sim.delay_us",
        "sim.blocked_us",
        "sim.completion_us",
        "sim.worms",
        "sim.worm_blocked_us",
    }
)


def is_registered_metric(name: str) -> bool:
    """Whether ``name`` conforms to the metric-naming contract."""
    if name in CORE_METRIC_NAMES:
        return True
    return any(name.startswith(f"{family}.") for family in METRIC_FAMILIES)

#: Default bucket upper bounds (microseconds) for delay / blocked-time
#: distributions: geometric, spanning sub-hop times to full 10-cube
#: broadcast delays under the nCUBE-2 constants.
DELAY_BUCKETS_US: tuple[float, ...] = (
    50.0, 100.0, 250.0, 500.0, 1_000.0, 2_500.0, 5_000.0,
    10_000.0, 25_000.0, 50_000.0, 100_000.0,
)

#: Default buckets for per-channel utilization fractions in ``[0, 1]``.
UTILIZATION_BUCKETS: tuple[float, ...] = (
    0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0,
)

#: Request-latency buckets (milliseconds) for the schedule-planning
#: service and its load generator: dense below 50 ms (the service SLO
#: region) so bucket-quantile estimates stay tight there, geometric
#: above it for the overload tail.
SERVICE_LATENCY_BUCKETS_MS: tuple[float, ...] = (
    0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0, 7.5, 10.0, 15.0,
    20.0, 25.0, 35.0, 50.0, 75.0, 100.0, 150.0, 250.0, 500.0,
    1_000.0, 2_500.0, 10_000.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc by {amount})")
        self.value += amount

    def snapshot(self) -> dict[str, float]:
        return {"type": "counter", "value": self.value}  # type: ignore[dict-item]


class Gauge:
    """A point-in-time value; remembers its extrema."""

    __slots__ = ("name", "value", "min", "max", "_touched")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.min = 0.0
        self.max = 0.0
        self._touched = False

    def set(self, value: float) -> None:
        if not self._touched:
            self.min = self.max = value
            self._touched = True
        else:
            self.min = min(self.min, value)
            self.max = max(self.max, value)
        self.value = value

    def add(self, delta: float) -> None:
        self.set(self.value + delta)

    def snapshot(self) -> dict[str, float]:
        return {  # type: ignore[return-value]
            "type": "gauge",
            "value": self.value,
            "min": self.min,
            "max": self.max,
        }


class Timer:
    """Accumulated wall-clock time (seconds) over any number of spans."""

    __slots__ = ("name", "total_seconds", "count")

    def __init__(self, name: str) -> None:
        self.name = name
        self.total_seconds = 0.0
        self.count = 0

    def record(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"timer {self.name} cannot record negative time")
        self.total_seconds += seconds
        self.count += 1

    @contextmanager
    def time(self) -> Iterator[None]:
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.record(time.perf_counter() - t0)

    def snapshot(self) -> dict[str, float]:
        return {  # type: ignore[return-value]
            "type": "timer",
            "total_seconds": self.total_seconds,
            "count": self.count,
            "mean_seconds": self.total_seconds / self.count if self.count else 0.0,
        }


class Histogram:
    """Fixed-bucket histogram (cumulative-free, one overflow bucket).

    ``bounds`` are upper bucket edges in increasing order; an
    observation ``v`` lands in the first bucket with ``v <= bound``, or
    in the overflow bucket past the last bound.
    """

    __slots__ = ("name", "bounds", "counts", "overflow", "count", "sum", "min", "max")

    def __init__(self, name: str, bounds: Sequence[float] = DELAY_BUCKETS_US) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket bound")
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram {name} bounds must be strictly increasing")
        self.name = name
        self.bounds = bounds
        self.counts = [0] * len(bounds)
        self.overflow = 0
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        i = bisect_left(self.bounds, value)
        if i < len(self.counts):
            self.counts[i] += 1
        else:
            self.overflow += 1
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Conservative bucket-resolution quantile estimate.

        Returns the upper bound of the bucket holding the ``q``-th
        observation (nearest-rank over cumulative counts), so the true
        quantile is never *under*-reported -- the property an SLO gate
        ("p99 under X ms") needs.  Observations past the last bound are
        estimated by the observed maximum.  O(1) memory regardless of
        sample count, which is why the soak harness records latencies
        here instead of keeping raw samples.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        target = q * self.count
        cumulative = 0
        for bound, count in zip(self.bounds, self.counts):
            cumulative += count
            if cumulative >= target:
                return bound
        return self.max

    def snapshot(self) -> dict[str, object]:
        return {
            "type": "histogram",
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "overflow": self.overflow,
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }


class MetricsRegistry:
    """A flat namespace of instruments, snapshot-able to a plain dict.

    Instruments are created on first access (``registry.counter("x")``)
    and are idempotent thereafter; asking for an existing name with a
    different instrument type is an error (one name, one meaning).
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Timer | Histogram] = {}

    def _get(self, name: str, cls, *args):
        inst = self._instruments.get(name)
        if inst is None:
            inst = self._instruments[name] = cls(name, *args)
        elif type(inst) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as {type(inst).__name__}, "
                f"not {cls.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def timer(self, name: str) -> Timer:
        return self._get(name, Timer)

    def histogram(self, name: str, bounds: Sequence[float] = DELAY_BUCKETS_US) -> Histogram:
        inst = self._instruments.get(name)
        if inst is None:
            inst = self._instruments[name] = Histogram(name, bounds)
        elif type(inst) is not Histogram:
            raise TypeError(
                f"metric {name!r} already registered as {type(inst).__name__}, not Histogram"
            )
        return inst  # type: ignore[return-value]

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def snapshot(self) -> dict[str, dict]:
        """All instruments as ``{name: {"type": ..., ...}}`` (JSON-safe)."""
        return {name: self._instruments[name].snapshot() for name in sorted(self._instruments)}


def merge_snapshot(registry: MetricsRegistry, snapshot: dict[str, dict]) -> None:
    """Fold a :meth:`MetricsRegistry.snapshot` into ``registry``.

    This is how the parallel sweep engine aggregates per-worker
    measurement deltas into the parent's registry: counters and timers
    add, gauges keep the latest value with merged extrema, and
    histograms (same bucket bounds required) add bucket-wise.

    Raises:
        TypeError: if a name is already registered as a different
            instrument type.
        ValueError: on an unknown instrument type or mismatched
            histogram bounds.
    """
    for name, snap in snapshot.items():
        kind = snap.get("type")
        if kind == "counter":
            registry.counter(name).inc(float(snap["value"]))
        elif kind == "gauge":
            gauge = registry.gauge(name)
            gauge.set(float(snap["value"]))
            gauge.min = min(gauge.min, float(snap["min"]))
            gauge.max = max(gauge.max, float(snap["max"]))
        elif kind == "timer":
            timer = registry.timer(name)
            timer.total_seconds += float(snap["total_seconds"])
            timer.count += int(snap["count"])
        elif kind == "histogram":
            bounds = tuple(float(b) for b in snap["bounds"])
            hist = registry.histogram(name, bounds)
            if hist.bounds != bounds:
                raise ValueError(
                    f"histogram {name!r} bounds mismatch: {hist.bounds} vs {bounds}"
                )
            for i, count in enumerate(snap["counts"]):
                hist.counts[i] += int(count)
            hist.overflow += int(snap["overflow"])
            hist.count += int(snap["count"])
            hist.sum += float(snap["sum"])
            if int(snap["count"]):
                hist.min = min(hist.min, float(snap["min"]))
                hist.max = max(hist.max, float(snap["max"]))
        else:
            raise ValueError(f"cannot merge unknown instrument type {kind!r} for {name!r}")
