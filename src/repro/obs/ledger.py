"""The committed benchmark ledger: a perf trajectory with regression gating.

``repro-hypercube bench`` runs a curated benchmark set over the repo's
hot paths — tree construction, greedy step scheduling, weighted_sort,
Definition-4 verification, the event simulator, a cached fig11-style
sweep point, and warm-cache round trips through the planning service
(``service/*``, real loopback sockets) — and appends one
schema-versioned entry to
``benchmarks/BENCH_<host-class>.json``.  Each entry records per-benchmark
wall time (best of ``repeat`` untraced fixed-iteration batches — batches
are sized to ~10 ms so the numbers are stable), a span-phase breakdown
from one traced run, the sweep benchmark's cache hit ratio, and an
environment fingerprint.  Entries accumulate into a committed
trajectory; :func:`compare_entries` gates new entries against the
previous one with a configurable regression threshold so CI (and the
future array-native kernel work) can fail fast on a slowdown.

Ledgers are keyed by *host class* (``os-machine-implementation-x.y``):
numbers from different machines or interpreters are never compared, and
a host class with no committed baseline simply seeds a new trajectory.

All heavyweight imports (multicast, simulator, parallel) are deferred
into the benchmark bodies so :mod:`repro.obs` stays import-light.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping

from .trace_spans import Tracer, phase_rollup, trace_capture

__all__ = [
    "BENCHMARK_NAMES",
    "LEDGER_SCHEMA",
    "Regression",
    "compare_entries",
    "env_fingerprint",
    "host_class",
    "latest_entry",
    "ledger_path",
    "load_ledger",
    "run_benchmark_suite",
    "save_ledger",
]

LEDGER_SCHEMA = 1

#: Regression threshold: a benchmark regresses when its new wall time
#: exceeds ``previous * threshold``.  Overridable per run (CLI flag or
#: ``REPRO_BENCH_THRESHOLD``).
DEFAULT_THRESHOLD = 1.5

#: Ignore regressions smaller than this absolute delta (seconds).
#: Timed runs are fixed-iteration batches sized to ~10 ms precisely so
#: that a real threshold-sized slowdown clears this jitter floor.
MIN_DELTA_SECONDS = 0.002


def host_class() -> str:
    """A stable key for "numbers comparable to these": e.g.
    ``linux-x86_64-cpython-3.11``."""
    return "-".join(
        [
            platform.system().lower(),
            platform.machine().lower(),
            platform.python_implementation().lower(),
            f"{sys.version_info.major}.{sys.version_info.minor}",
        ]
    )


def env_fingerprint() -> dict[str, Any]:
    """Environment details recorded alongside every ledger entry."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def ledger_path(ledger_dir: str | os.PathLike, host: str | None = None) -> Path:
    return Path(ledger_dir) / f"BENCH_{host or host_class()}.json"


# -- the curated benchmark set -----------------------------------------
#
# Each benchmark returns ``(fn, params, finalize)``: ``fn()`` is one
# iteration of the timed body, ``params`` documents the workload
# (including ``iters``, the fixed batch size one wall_seconds sample
# covers — batches are sized to ~10 ms so best-of-``repeat`` timing is
# stable against scheduler jitter), and ``finalize()`` (optional)
# returns extra payload such as the cache hit ratio.


def _bench_build_tree(algorithm: str, quick: bool):
    from repro.analysis.workloads import random_destination_sets
    from repro.multicast.registry import get_algorithm

    n, m, iters = (8, 128, 25) if quick else (10, 512, 6)
    dests = random_destination_sets(n, m, 1, seed=5)[0]
    alg = get_algorithm(algorithm)
    return lambda: alg.build_tree(n, 0, dests), {"n": n, "m": m, "iters": iters}, None


def _bench_schedule(quick: bool):
    from repro.analysis.workloads import random_destination_sets
    from repro.multicast import ALL_PORT
    from repro.multicast.registry import get_algorithm

    n, m, iters = (8, 128, 20) if quick else (10, 512, 5)
    dests = random_destination_sets(n, m, 1, seed=5)[0]
    tree = get_algorithm("wsort").build_tree(n, 0, dests)
    return lambda: tree.schedule(ALL_PORT), {"n": n, "m": m, "iters": iters}, None


def _bench_weighted_sort(quick: bool):
    from repro.analysis.workloads import random_destination_sets
    from repro.core.chains import relative_chain
    from repro.multicast.wsort import weighted_sort

    n, m, iters = (8, 128, 60) if quick else (10, 512, 15)
    chain = relative_chain(0, random_destination_sets(n, m, 1, seed=5)[0])
    return lambda: weighted_sort(chain, n), {"n": n, "m": m, "iters": iters}, None


def _bench_verify(quick: bool):
    from repro.analysis.workloads import random_destination_sets
    from repro.multicast import ALL_PORT
    from repro.multicast.registry import get_algorithm

    n, m, iters = (6, 32, 60) if quick else (8, 128, 15)
    dests = random_destination_sets(n, m, 1, seed=7)[0]
    sched = get_algorithm("wsort").build_tree(n, 0, dests).schedule(ALL_PORT)
    return lambda: sched.check_contention(), {"n": n, "m": m, "iters": iters}, None


def _bench_simulate(quick: bool):
    from repro.analysis.workloads import random_destination_sets
    from repro.multicast import ALL_PORT
    from repro.multicast.registry import get_algorithm
    from repro.simulator import NCUBE2, simulate_multicast

    n, m, iters = (6, 32, 15) if quick else (8, 128, 4)
    dests = random_destination_sets(n, m, 1, seed=9)[0]
    tree = get_algorithm("wsort").build_tree(n, 0, dests)
    return (
        lambda: simulate_multicast(tree, 4096, NCUBE2, ALL_PORT),
        {"n": n, "m": m, "size": 4096, "iters": iters},
        None,
    )


def _bench_sweep_point(quick: bool):
    """A cached fig11-style point set: cold pass then warm pass.

    Exercises the whole per-point stack (build → simulate → cache) and
    reports the cache hit ratio, which the ledger tracks alongside wall
    time.
    """
    from repro.analysis.workloads import random_destination_sets
    from repro.multicast import ALL_PORT
    from repro.parallel.cache import ScheduleCache, activate_cache, cached_delay_stats
    from repro.simulator import NCUBE2

    n, m, sets, iters = (6, 16, 4, 40) if quick else (8, 64, 8, 10)
    workloads = random_destination_sets(n, m, sets, seed=11)
    cache = ScheduleCache()

    def run() -> None:
        previous = activate_cache(cache)
        try:
            for _ in range(2):  # cold pass misses, warm pass hits
                for dests in workloads:
                    cached_delay_stats("wsort", n, 0, dests, 4096, NCUBE2, ALL_PORT)
        finally:
            activate_cache(previous)

    def finalize() -> dict[str, Any]:
        return {
            "cache": {
                "hits": cache.hits,
                "misses": cache.misses,
                "hit_ratio": round(cache.hit_ratio(), 6),
            }
        }

    return run, {"n": n, "m": m, "sets": sets, "size": 4096, "iters": iters}, finalize


def _bench_service(endpoint: str, quick: bool):
    """Warm-cache service round trips over real loopback sockets.

    Boots the planning service on an ephemeral port, populates every
    key in the pool, then times fixed-size load batches -- so
    ``wall_seconds`` tracks the full serve path (HTTP parse, admission,
    cache hit, canonical encode) and the ledger gates service
    throughput the same way it gates library hot paths.  ``finalize``
    reports client-side req/s and latency quantiles plus the
    repository's own hit ratio.
    """
    from dataclasses import replace

    from repro.service import LoadConfig, ServiceConfig, ServiceThread, run_load_sync

    requests, conc, keys, iters = (150, 8, 12, 3) if quick else (400, 8, 16, 4)
    svc = ServiceThread(ServiceConfig(port=0)).start()
    load = LoadConfig(
        host=svc.host,
        port=svc.port,
        endpoint=endpoint,
        requests=requests,
        concurrency=conc,
        keys=keys,
        skew=1.1,
        n=6,
        m=8,
    )
    # warm pass: populate every key so timed batches measure the hit path
    run_load_sync(replace(load, requests=3 * keys, skew=0.0, client_id="bench-warmup"))
    last: dict[str, Any] = {}

    def run() -> None:
        last["summary"] = run_load_sync(load)

    def finalize() -> dict[str, Any]:
        summary = last["summary"]
        cache = svc.app.planner.cache  # type: ignore[union-attr]
        report = {
            "service": {
                "requests": summary.requests,
                "rps": round(summary.rps, 1),
                "p50_ms": round(summary.p50_ms, 4),
                "p99_ms": round(summary.p99_ms, 4),
                "hit_ratio": round(summary.hit_ratio, 6),
            },
            "cache": {
                "hits": cache.hits,
                "misses": cache.misses,
                "hit_ratio": round(cache.hit_ratio(), 6),
            },
        }
        svc.stop()
        return report

    params = {
        "endpoint": endpoint,
        "requests": requests,
        "concurrency": conc,
        "keys": keys,
        "iters": iters,
    }
    return run, params, finalize


_BENCHMARKS: dict[str, Callable[[bool], tuple]] = {
    "build-tree/ucube": lambda quick: _bench_build_tree("ucube", quick),
    "build-tree/wsort": lambda quick: _bench_build_tree("wsort", quick),
    "schedule/wsort": _bench_schedule,
    "weighted-sort": _bench_weighted_sort,
    "verify/contention": _bench_verify,
    "simulate/wsort": _bench_simulate,
    "sweep/fig11-point": _bench_sweep_point,
    "service/schedule-warm": lambda quick: _bench_service("schedule", quick),
    "service/simulate-warm": lambda quick: _bench_service("simulate", quick),
}

BENCHMARK_NAMES: tuple[str, ...] = tuple(_BENCHMARKS)


def _run_one(name: str, quick: bool, repeat: int) -> dict[str, Any]:
    # set up under a throwaway tracer: resolution-time decisions (the
    # registry wrapping algorithms in traced proxies) must see tracing
    # active so the later traced run yields its phase breakdown.  The
    # setup tracer itself is discarded — setup cost is not a phase.
    with trace_capture(Tracer(label=f"bench:{name}:setup")):
        fn, params, finalize = _BENCHMARKS[name](quick)
    iters = int(params.get("iters", 1))
    fn()  # warm-up (also primes the sweep benchmark's cache stats once)
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        for _ in range(iters):
            fn()
        best = min(best, time.perf_counter() - t0)
    # one extra traced run for the phase breakdown; kept out of the
    # timed repeats so tracing overhead never shows up in wall_seconds
    with trace_capture(Tracer(label=f"bench:{name}")) as tracer:
        fn()
    phases = {
        span_name: round(agg["total_us"], 3)
        for span_name, agg in sorted(phase_rollup(tracer.spans).items())
    }
    result: dict[str, Any] = {
        "wall_seconds": round(best, 6),
        "repeat": repeat,
        "params": params,
        "phases": phases,
    }
    if finalize is not None:
        result.update(finalize())
    return result


def run_benchmark_suite(
    quick: bool = True,
    repeat: int | None = None,
    progress: Callable[[str], None] | None = None,
) -> dict[str, Any]:
    """Run the curated set; returns one ledger entry (JSON-safe dict)."""
    if repeat is None:
        repeat = 3 if quick else 5
    benchmarks: dict[str, Any] = {}
    for name in BENCHMARK_NAMES:
        if progress is not None:
            progress(name)
        benchmarks[name] = _run_one(name, quick, repeat)
    return {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "quick": quick,
        "env": env_fingerprint(),
        "benchmarks": benchmarks,
    }


# -- ledger file -------------------------------------------------------


def load_ledger(path: str | os.PathLike, host: str | None = None) -> dict[str, Any]:
    """Load a ledger file, or a fresh empty ledger when absent.

    Raises:
        ValueError: on a corrupt file or a schema from the future.
    """
    p = Path(path)
    if not p.exists():
        return {"schema": LEDGER_SCHEMA, "host_class": host or host_class(), "entries": []}
    try:
        doc = json.loads(p.read_text(encoding="utf-8"))
    except ValueError as exc:
        raise ValueError(f"corrupt benchmark ledger {p}: {exc}") from exc
    if not isinstance(doc, dict) or not isinstance(doc.get("entries"), list):
        raise ValueError(f"corrupt benchmark ledger {p}: not a ledger object")
    if doc.get("schema") != LEDGER_SCHEMA:
        raise ValueError(
            f"benchmark ledger {p} has schema {doc.get('schema')!r}, expected {LEDGER_SCHEMA}"
        )
    return doc


def save_ledger(path: str | os.PathLike, ledger: Mapping[str, Any]) -> None:
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(ledger, indent=1, sort_keys=True) + "\n", encoding="utf-8")


def latest_entry(
    ledger: Mapping[str, Any], quick: bool | None = None
) -> dict[str, Any] | None:
    """The most recent entry, optionally restricted to the same mode
    (quick entries are never compared against full ones)."""
    for entry in reversed(ledger.get("entries", [])):
        if quick is None or bool(entry.get("quick")) == quick:
            return entry
    return None


@dataclass(slots=True)
class Regression:
    """One benchmark that slowed past the threshold."""

    name: str
    before_seconds: float
    after_seconds: float

    @property
    def ratio(self) -> float:
        return self.after_seconds / self.before_seconds if self.before_seconds else float("inf")

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.before_seconds * 1e3:.2f} ms -> "
            f"{self.after_seconds * 1e3:.2f} ms ({self.ratio:.2f}x)"
        )


def compare_entries(
    previous: Mapping[str, Any] | None,
    new: Mapping[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
    min_delta_seconds: float = MIN_DELTA_SECONDS,
) -> list[Regression]:
    """Benchmarks in ``new`` that regressed beyond ``threshold`` vs
    ``previous``.  No baseline (or no shared benchmarks) → no
    regressions: a new host class seeds its trajectory cleanly."""
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    if previous is None:
        return []
    regressions: list[Regression] = []
    before_set = previous.get("benchmarks", {})
    for name, after in new.get("benchmarks", {}).items():
        before = before_set.get(name)
        if before is None:
            continue
        b = float(before["wall_seconds"])
        a = float(after["wall_seconds"])
        if a > b * threshold and (a - b) > min_delta_seconds:
            regressions.append(Regression(name, b, a))
    return regressions
