"""Channel-level rollups computed from a :class:`ChannelTrace`.

The trace records raw per-channel occupancy intervals; these helpers
aggregate them into the three views that make algorithm comparisons
trustworthy (per-phase / per-channel measurement, as in the k-ported
broadcast literature):

- **hotspot arcs** -- the channels that were busy longest, i.e. where a
  schedule concentrates traffic;
- **utilization histogram** -- the distribution of per-channel busy
  fractions over the run horizon (a contention-free schedule spreads
  load; a skewed histogram reveals serialization);
- **per-dimension busy / blocked time** -- E-cube routing resolves
  dimensions in a fixed order, so imbalance across dimensions is the
  signature of a bad resolution-order interaction.

Everything here duck-types against the trace (``.records`` of objects
with ``.arc`` / ``.duration``) and worms (``.blocked_by_dim``), keeping
``repro.obs`` free of simulator imports.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.obs.metrics import UTILIZATION_BUCKETS, Histogram

__all__ = [
    "channel_rollup",
    "hotspot_arcs",
    "per_dimension_blocked_time",
    "per_dimension_busy_time",
    "utilization_histogram",
]


def _busy_by_arc(trace) -> dict:
    busy: dict = {}
    for rec in trace.records:
        busy[rec.arc] = busy.get(rec.arc, 0.0) + rec.duration
    return busy


def hotspot_arcs(trace, top: int = 10) -> list[tuple[tuple[int, int], float]]:
    """The ``top`` channels by total busy time, hottest first."""
    if top < 1:
        raise ValueError(f"need top >= 1, got {top}")
    busy = _busy_by_arc(trace)
    ranked = sorted(busy.items(), key=lambda kv: (-kv[1], kv[0]))
    return ranked[:top]


def utilization_histogram(
    trace,
    horizon: float,
    bounds: Sequence[float] = UTILIZATION_BUCKETS,
) -> Histogram:
    """Histogram of per-channel busy fractions over ``[0, horizon]``.

    Channels the run never touched are not counted (the denominator is
    channels-with-traffic, matching :meth:`ChannelTrace.utilization`).
    """
    if horizon <= 0:
        raise ValueError(f"need a positive horizon, got {horizon}")
    hist = Histogram("channel_utilization", bounds)
    for busy in _busy_by_arc(trace).values():
        hist.observe(busy / horizon)
    return hist


def per_dimension_busy_time(trace) -> dict[int, float]:
    """Total channel-busy time per hypercube dimension."""
    by_dim: dict[int, float] = {}
    for rec in trace.records:
        dim = rec.arc[1]
        by_dim[dim] = by_dim.get(dim, 0.0) + rec.duration
    return dict(sorted(by_dim.items()))


def per_dimension_blocked_time(worms: Iterable) -> dict[int, float]:
    """Total header-blocked time per dimension, summed over worms.

    Worms record which dimension's channel they were waiting on (see
    :meth:`repro.simulator.message.Worm.mark_blocked`); a contention-free
    schedule yields an empty dict.
    """
    by_dim: dict[int, float] = {}
    for worm in worms:
        blocked = getattr(worm, "blocked_by_dim", None)
        if blocked:
            for dim, t in blocked.items():
                by_dim[dim] = by_dim.get(dim, 0.0) + t
    return dict(sorted(by_dim.items()))


def channel_rollup(network, horizon: float | None = None, top: int = 10) -> dict[str, object]:
    """One JSON-safe dict combining every rollup for a finished run.

    Args:
        network: a :class:`~repro.simulator.network.WormholeNetwork`
            (or anything with ``.trace``, ``.worms``, ``.sim``).
        horizon: utilization denominator; defaults to the simulator's
            final clock.
        top: hotspot list length.
    """
    trace = network.trace
    if horizon is None:
        horizon = network.sim.now
    rollup: dict[str, object] = {
        "channels_used": len({rec.arc for rec in trace.records}),
        "occupancies": len(trace.records),
        "hotspot_arcs": [
            {"node": arc[0], "dim": arc[1], "busy_us": busy}
            for arc, busy in hotspot_arcs(trace, top)
        ]
        if trace.records
        else [],
        "per_dimension_busy_us": {str(d): t for d, t in per_dimension_busy_time(trace).items()},
        "per_dimension_blocked_us": {
            str(d): t for d, t in per_dimension_blocked_time(network.worms).items()
        },
    }
    if horizon > 0 and trace.records:
        rollup["utilization"] = utilization_histogram(trace, horizon).snapshot()
    return rollup
