"""Telemetry sinks and the process-wide export toggle.

A sink consumes :class:`~repro.obs.telemetry.RunRecord` objects.  The
simulation drivers ask :func:`get_sink` before building a record, so an
un-instrumented run pays one dict lookup and nothing else.

Resolution order:

1. an explicit override installed with :func:`configure` (what the CLI
   ``--telemetry`` flags and the :func:`capture` context manager use);
2. the ``REPRO_TELEMETRY`` environment variable, interpreted as a JSONL
   output path (re-read on every call so tests and long-lived processes
   can toggle it);
3. nothing -- telemetry disabled.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from typing import Iterator, Protocol

from repro.obs.telemetry import RunRecord

__all__ = [
    "ENV_VAR",
    "JsonlSink",
    "MemorySink",
    "TelemetrySink",
    "capture",
    "configure",
    "emit",
    "get_sink",
    "read_jsonl",
]

#: Environment variable naming a JSONL path to export run telemetry to.
ENV_VAR = "REPRO_TELEMETRY"


class TelemetrySink(Protocol):
    """Anything that can consume run records."""

    def write(self, record: RunRecord) -> None: ...


class JsonlSink:
    """Appends one JSON line per record to a file.

    The file is opened per write (append mode), so concurrent processes
    sharing a path interleave whole lines rather than corrupting each
    other, and a crashed run loses nothing already written.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.written = 0

    def write(self, record: RunRecord) -> None:
        with open(self.path, "a", encoding="utf-8") as f:
            f.write(record.to_json() + "\n")
        self.written += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JsonlSink({self.path!r}, written={self.written})"


class MemorySink:
    """Collects records in a list (tests, in-process analysis)."""

    def __init__(self) -> None:
        self.records: list[RunRecord] = []

    def write(self, record: RunRecord) -> None:
        self.records.append(record)


def read_jsonl(path: str) -> list[RunRecord]:
    """Parse a JSONL telemetry file back into records."""
    records: list[RunRecord] = []
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line:
                records.append(RunRecord.from_dict(json.loads(line)))
    return records


_override: TelemetrySink | None = None
#: JsonlSink cache for the env-var path, keyed by path so that changing
#: REPRO_TELEMETRY mid-process starts a fresh sink.
_env_sinks: dict[str, JsonlSink] = {}


def configure(sink: TelemetrySink | str | None) -> TelemetrySink | None:
    """Install (or, with ``None``, clear) the explicit telemetry sink.

    A string argument is shorthand for ``JsonlSink(path)``.  Clearing
    the override falls back to the ``REPRO_TELEMETRY`` environment
    variable.  Returns the previous override so callers can restore it.
    """
    global _override
    previous = _override
    _override = JsonlSink(sink) if isinstance(sink, str) else sink
    return previous


def get_sink() -> TelemetrySink | None:
    """The active sink, or None when telemetry is disabled."""
    if _override is not None:
        return _override
    path = os.environ.get(ENV_VAR)
    if not path:
        return None
    sink = _env_sinks.get(path)
    if sink is None:
        _env_sinks.clear()
        sink = _env_sinks[path] = JsonlSink(path)
    return sink


def emit(record: RunRecord) -> None:
    """Write ``record`` to the active sink, if any."""
    sink = get_sink()
    if sink is not None:
        sink.write(record)


@contextmanager
def capture(sink: TelemetrySink | str | None = None) -> Iterator[TelemetrySink]:
    """Temporarily install a sink (default: a fresh :class:`MemorySink`).

    Example::

        with capture() as sink:
            simulate_multicast(tree)
        assert sink.records[0].kind == "multicast"
    """
    target: TelemetrySink = (
        MemorySink() if sink is None else JsonlSink(sink) if isinstance(sink, str) else sink
    )
    previous = configure(target)
    try:
        yield target
    finally:
        configure(previous)
