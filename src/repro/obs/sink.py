"""Telemetry sinks and the process-wide export toggle.

A sink consumes :class:`~repro.obs.telemetry.RunRecord` objects.  The
simulation drivers ask :func:`get_sink` before building a record, so an
un-instrumented run pays one dict lookup and nothing else.

Resolution order:

1. an explicit override installed with :func:`configure` (what the CLI
   ``--telemetry`` flags and the :func:`capture` context manager use);
2. the ``REPRO_TELEMETRY`` environment variable, interpreted as a JSONL
   output path (re-read on every call so tests and long-lived processes
   can toggle it);
3. nothing -- telemetry disabled.
"""

from __future__ import annotations

import gzip
import json
import os
import zlib
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Protocol

from repro.obs.telemetry import RunRecord

__all__ = [
    "ENV_VAR",
    "JsonlSink",
    "MemorySink",
    "RotatingJsonlSink",
    "TelemetrySink",
    "capture",
    "configure",
    "emit",
    "get_sink",
    "read_jsonl",
]

#: Environment variable naming a JSONL path to export run telemetry to.
ENV_VAR = "REPRO_TELEMETRY"


class TelemetrySink(Protocol):
    """Anything that can consume run records."""

    def write(self, record: RunRecord) -> None: ...


class JsonlSink:
    """Appends one JSON line per record to a file.

    The file is opened per write (append mode), so concurrent processes
    sharing a path interleave whole lines rather than corrupting each
    other, and a crashed run loses nothing already written.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.written = 0

    def write(self, record: RunRecord) -> None:
        with open(self.path, "a", encoding="utf-8") as f:
            f.write(record.to_json() + "\n")
        self.written += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JsonlSink({self.path!r}, written={self.written})"


class RotatingJsonlSink:
    """A :class:`JsonlSink` that rotates and gzips bulk telemetry.

    High-volume producers (the service load generator and soak harness
    emit one record per request) would otherwise grow one JSONL file
    without bound.  When the active file exceeds ``max_bytes`` after a
    write, it is rotated to ``<path>.<k>.gz`` (``k`` counting up from
    1, gzip-compressed) and a fresh active file is started.  Every
    segment -- rotated or active -- loads with :func:`read_jsonl`.
    """

    def __init__(self, path: str, max_bytes: int = 32 * 1024 * 1024) -> None:
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.path = path
        self.max_bytes = max_bytes
        self.written = 0
        self.rotations = 0

    def _next_segment(self) -> Path:
        k = 1
        while True:
            candidate = Path(f"{self.path}.{k}.gz")
            if not candidate.exists():
                return candidate
            k += 1

    def rotate(self) -> Path | None:
        """Compress the active file into the next ``.gz`` segment."""
        active = Path(self.path)
        try:
            data = active.read_bytes()
        except OSError:
            return None
        segment = self._next_segment()
        with gzip.open(segment, "wb") as gz:
            gz.write(data)
        active.unlink()
        self.rotations += 1
        return segment

    def write(self, record: RunRecord) -> None:
        with open(self.path, "a", encoding="utf-8") as f:
            f.write(record.to_json() + "\n")
            size = f.tell()
        self.written += 1
        if size > self.max_bytes:
            self.rotate()

    def segments(self) -> list[Path]:
        """Every telemetry file this sink has produced, oldest first."""
        out = sorted(
            Path(self.path).parent.glob(Path(self.path).name + ".*.gz"),
            key=lambda p: int(p.suffixes[-2].lstrip(".")),
        )
        if Path(self.path).exists():
            out.append(Path(self.path))
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RotatingJsonlSink({self.path!r}, written={self.written}, "
            f"rotations={self.rotations})"
        )


class MemorySink:
    """Collects records in a list (tests, in-process analysis)."""

    def __init__(self) -> None:
        self.records: list[RunRecord] = []

    def write(self, record: RunRecord) -> None:
        self.records.append(record)


#: gzip magic bytes; rotated telemetry segments are detected by content,
#: not just the ``.gz`` suffix, so renamed artifacts still load.
_GZIP_MAGIC = b"\x1f\x8b"


def _is_gzip(path: str | os.PathLike) -> bool:
    with open(path, "rb") as f:
        return f.read(2) == _GZIP_MAGIC


def read_jsonl(path: str | os.PathLike) -> list[RunRecord]:
    """Parse a JSONL telemetry file back into records.

    Accepts plain text and gzip-compressed files (what
    :class:`RotatingJsonlSink` produces for rotated segments; loadgen
    and soak runs gzip their bulk telemetry).  Raises ``OSError`` for
    an unreadable file and ``ValueError`` for corrupt content --
    including a truncated or damaged gzip stream -- which is what the
    CLI's exit-code contract distinguishes on.
    """
    records: list[RunRecord] = []
    opener = gzip.open if _is_gzip(path) else open
    with opener(path, "rt", encoding="utf-8") as f:  # type: ignore[operator]
        try:
            lines = f.readlines()
        except (EOFError, gzip.BadGzipFile, zlib.error) as exc:
            raise ValueError(f"truncated or corrupt gzip stream: {exc}") from exc
    for line in lines:
        line = line.strip()
        if line:
            records.append(RunRecord.from_dict(json.loads(line)))
    return records


_override: TelemetrySink | None = None
#: JsonlSink cache for the env-var path, keyed by path so that changing
#: REPRO_TELEMETRY mid-process starts a fresh sink.
_env_sinks: dict[str, JsonlSink] = {}


def configure(sink: TelemetrySink | str | None) -> TelemetrySink | None:
    """Install (or, with ``None``, clear) the explicit telemetry sink.

    A string argument is shorthand for ``JsonlSink(path)``.  Clearing
    the override falls back to the ``REPRO_TELEMETRY`` environment
    variable.  Returns the previous override so callers can restore it.
    """
    global _override
    previous = _override
    _override = JsonlSink(sink) if isinstance(sink, str) else sink
    return previous


def get_sink() -> TelemetrySink | None:
    """The active sink, or None when telemetry is disabled."""
    if _override is not None:
        return _override
    path = os.environ.get(ENV_VAR)
    if not path:
        return None
    sink = _env_sinks.get(path)
    if sink is None:
        _env_sinks.clear()
        sink = _env_sinks[path] = JsonlSink(path)
    return sink


def emit(record: RunRecord) -> None:
    """Write ``record`` to the active sink, if any."""
    sink = get_sink()
    if sink is not None:
        sink.write(record)


@contextmanager
def capture(sink: TelemetrySink | str | None = None) -> Iterator[TelemetrySink]:
    """Temporarily install a sink (default: a fresh :class:`MemorySink`).

    Example::

        with capture() as sink:
            simulate_multicast(tree)
        assert sink.records[0].kind == "multicast"
    """
    target: TelemetrySink = (
        MemorySink() if sink is None else JsonlSink(sink) if isinstance(sink, str) else sink
    )
    previous = configure(target)
    try:
        yield target
    finally:
        configure(previous)
