"""Structured run telemetry: the :class:`RunRecord` envelope.

Every simulated run — a single multicast, a batch of concurrent
multicasts, a collective operation, or one point of a figure
reproduction — can be exported as one :class:`RunRecord`: a flat,
JSON-serializable envelope carrying identity (run id, kind, algorithm),
machine configuration (cube size, port model, timing constants), cost
(simulated microseconds, host wall-clock seconds, event count), a
metrics snapshot, and kind-specific extras (delay summaries, figure
columns, channel rollups).

Records round-trip losslessly through JSON (``to_json`` /
``from_json``), which the test suite verifies; the JSONL sink in
:mod:`repro.obs.sink` writes one record per line.
"""

from __future__ import annotations

import datetime as _dt
import json
import uuid
from dataclasses import dataclass, field
from typing import Mapping

__all__ = ["KNOWN_KINDS", "RunRecord", "new_run_id", "summarize_delays"]

#: The registered ``RunRecord.kind`` values.  Consumers (``stats
#: --from``, the CI telemetry checks, dashboards) switch on these
#: literals, and the ``repro.lint`` REP006 rule rejects any other
#: ``kind="..."`` literal at the construction site -- register new
#: kinds here first.
KNOWN_KINDS: frozenset[str] = frozenset(
    {
        "multicast",
        "concurrent",
        "comm",
        "experiment-point",
        "degraded-multicast",
        "resilience-event",
        "fabric-event",
        "service-request",
    }
)

#: Envelope schema version; bump on incompatible field changes.
#: v2 adds the optional ``trace_id`` field so JSONL telemetry can be
#: joined against span-trace exports; the loader accepts v1 and v2.
SCHEMA_VERSION = 2

#: Schema versions :meth:`RunRecord.from_dict` accepts.  v1 records
#: simply have no ``trace_id``.
ACCEPTED_SCHEMAS = frozenset({1, 2})


def new_run_id() -> str:
    """A fresh, collision-resistant run identifier (12 hex chars)."""
    return uuid.uuid4().hex[:12]


def _utc_now_iso() -> str:
    return _dt.datetime.now(_dt.timezone.utc).isoformat(timespec="milliseconds")


def summarize_delays(delays: Mapping[int, float]) -> dict[str, float]:
    """Compact summary of a per-destination delay map (count/min/mean/max)."""
    if not delays:
        return {"count": 0, "min_us": 0.0, "mean_us": 0.0, "max_us": 0.0}
    vals = list(delays.values())
    return {
        "count": len(vals),
        "min_us": min(vals),
        "mean_us": sum(vals) / len(vals),
        "max_us": max(vals),
    }


@dataclass(slots=True)
class RunRecord:
    """One exported run.

    Attributes:
        run_id: unique identifier (see :func:`new_run_id`).
        kind: what ran -- ``"multicast"``, ``"concurrent"``, ``"comm"``,
            ``"experiment-point"``, ``"degraded-multicast"``, or
            ``"resilience-event"``.
        n: hypercube dimension.
        algorithm: multicast algorithm / operation label, if known.
        ports: port-model name (``"all-port"`` etc.), if known.
        size: message size in bytes, if meaningful for the kind.
        timings: the cost-model constants as a plain dict, if known.
        started_at: ISO-8601 UTC wall-clock time the run started.
        wall_seconds: host wall-clock duration of the run.
        sim_time_us: final simulated clock, if a simulation ran.
        events: discrete events fired, if a simulation ran.
        metrics: a :meth:`MetricsRegistry.snapshot` (possibly empty).
        extra: kind-specific payload (delay summaries, figure columns,
            probe summaries, channel rollups, ...).
        trace_id: id of the span trace active when the run was recorded
            (see :mod:`repro.obs.trace_spans`), or ``None``; joins this
            record to its Chrome-trace export.
    """

    run_id: str
    kind: str
    n: int
    algorithm: str | None = None
    ports: str | None = None
    size: int | None = None
    timings: dict[str, float] | None = None
    started_at: str = field(default_factory=_utc_now_iso)
    wall_seconds: float = 0.0
    sim_time_us: float | None = None
    events: int | None = None
    metrics: dict[str, dict] = field(default_factory=dict)
    extra: dict[str, object] = field(default_factory=dict)
    trace_id: str | None = None

    def to_dict(self) -> dict[str, object]:
        return {
            "schema": SCHEMA_VERSION,
            "run_id": self.run_id,
            "kind": self.kind,
            "n": self.n,
            "algorithm": self.algorithm,
            "ports": self.ports,
            "size": self.size,
            "timings": self.timings,
            "started_at": self.started_at,
            "wall_seconds": self.wall_seconds,
            "sim_time_us": self.sim_time_us,
            "events": self.events,
            "metrics": self.metrics,
            "extra": self.extra,
            "trace_id": self.trace_id,
        }

    def to_json(self) -> str:
        """One-line JSON (JSONL-ready: no embedded newlines)."""
        return json.dumps(self.to_dict(), separators=(", ", ": "), sort_keys=False)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RunRecord":
        schema = data.get("schema", SCHEMA_VERSION)
        if schema not in ACCEPTED_SCHEMAS:
            raise ValueError(f"unsupported RunRecord schema {schema!r}")
        for key in ("run_id", "kind", "n"):
            if key not in data:
                raise ValueError(f"RunRecord missing required field {key!r}")
        return cls(
            run_id=str(data["run_id"]),
            kind=str(data["kind"]),
            n=int(data["n"]),  # type: ignore[arg-type]
            algorithm=data.get("algorithm"),  # type: ignore[arg-type]
            ports=data.get("ports"),  # type: ignore[arg-type]
            size=data.get("size"),  # type: ignore[arg-type]
            timings=data.get("timings"),  # type: ignore[arg-type]
            started_at=str(data.get("started_at", "")),
            wall_seconds=float(data.get("wall_seconds", 0.0)),  # type: ignore[arg-type]
            sim_time_us=data.get("sim_time_us"),  # type: ignore[arg-type]
            events=data.get("events"),  # type: ignore[arg-type]
            metrics=dict(data.get("metrics") or {}),  # type: ignore[arg-type]
            extra=dict(data.get("extra") or {}),  # type: ignore[arg-type]
            trace_id=data.get("trace_id"),  # type: ignore[arg-type]
        )

    @classmethod
    def from_json(cls, text: str) -> "RunRecord":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))
