"""Hierarchical span tracing for schedule/verify/simulate timelines.

A :class:`Tracer` records a tree of timed spans — schedule-build, greedy
step assignment, Definition-4 verification, simulator runs, cache and
journal I/O — with monotonic timing and per-span metric attributes.  The
module-level :func:`span` context manager is the instrumentation hook
used throughout the codebase: it is a cheap no-op unless a tracer has
been installed with :func:`configure_tracing` (mirroring the telemetry
sink in :mod:`repro.obs.sink`), so tracing is strictly opt-in and the
instrumented hot paths produce byte-identical outputs when it is off.

Span and trace ids follow the repo's deterministic-id discipline: both
are SHA-256 digests over a canonical ``|``-joined encoding (the same
scheme as ``repro.parallel.seeds.derive_seed`` and the journal's
``derive_run_id``), truncated to 16 hex characters.  Worker processes
run their own tracer and ship a JSON-safe snapshot back to the parent,
which replays it with :meth:`Tracer.replay` — re-anchoring the worker's
wall-clock epoch and re-parenting its root spans under the dispatching
span, exactly the way ``MemorySink`` telemetry is already absorbed.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

__all__ = [
    "Span",
    "TRACE_SCHEMA",
    "Tracer",
    "configure_tracing",
    "current_span",
    "current_trace_id",
    "derive_trace_id",
    "get_tracer",
    "instant",
    "phase_rollup",
    "span",
    "trace_capture",
]

TRACE_SCHEMA = 1

_ID_HEX = 16  # 64 bits of SHA-256, same truncation as the schedule cache keys


def _encode(value: Any) -> str:
    """Canonical text encoding, matching ``repro.parallel.seeds``."""
    if isinstance(value, bool):
        return f"b:{int(value)}"
    if isinstance(value, int):
        return f"i:{value}"
    if isinstance(value, float):
        return f"f:{value.hex()}"
    if isinstance(value, str):
        return f"s:{value}"
    if isinstance(value, (tuple, list)):
        return "l:[" + ",".join(_encode(v) for v in value) + "]"
    if value is None:
        return "n:"
    raise TypeError(f"cannot canonically encode {type(value).__name__}")


def derive_trace_id(*components: Any) -> str:
    """Deterministic trace id from arbitrary components (SHA-256)."""
    payload = "|".join(_encode(c) for c in components)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:_ID_HEX]


@dataclass(slots=True)
class Span:
    """One timed node in a trace tree.

    ``start_us``/``end_us`` are microsecond offsets from the owning
    tracer's epoch; ``end_us`` is ``None`` while the span is open (a
    snapshot taken then marks it partial — a worker that died mid-span
    still yields a well-formed trace).
    """

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    start_us: float
    end_us: float | None = None
    pid: int = 0
    tid: int = 0
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.end_us is not None

    @property
    def duration_us(self) -> float:
        if self.end_us is None:
            return 0.0
        return self.end_us - self.start_us

    def set(self, **attrs: Any) -> None:
        """Attach metric attributes (JSON-safe values) to the span."""
        self.attrs.update(attrs)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_us": self.start_us,
            "end_us": self.end_us,
            "pid": self.pid,
            "tid": self.tid,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out


class Tracer:
    """Thread-safe collector of hierarchical spans.

    Nesting is tracked per thread: a span opened while another is active
    on the same thread becomes its child.  Span ids are derived from the
    trace id, the parent id, the span name, and a per-tracer sequence
    counter, so two runs of the same traced workload produce the same
    id *structure* (timing attributes still differ, of course).
    """

    def __init__(self, trace_id: str | None = None, label: str = "trace") -> None:
        if trace_id is None:
            trace_id = derive_trace_id(label, os.getpid(), time.time_ns())
        self.trace_id = trace_id
        self.label = label
        # the wall-clock anchor exists so exported traces can be joined
        # to external logs; all span *durations* come from perf_counter
        self.epoch_unix = time.time()  # repro: lint-ok[REP002] display-only trace epoch
        self._epoch_perf = time.perf_counter()
        self._lock = threading.Lock()
        self._seq = 0
        self._local = threading.local()
        self.spans: list[Span] = []

    # -- timing ---------------------------------------------------------

    def _now_us(self) -> float:
        return (time.perf_counter() - self._epoch_perf) * 1e6

    # -- span lifecycle -------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _next_id(self, parent_id: str | None, name: str) -> str:
        with self._lock:
            self._seq += 1
            seq = self._seq
        return derive_trace_id(self.trace_id, parent_id, name, seq)

    def start_span(self, name: str, attrs: Mapping[str, Any] | None = None) -> Span:
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else None
        s = Span(
            trace_id=self.trace_id,
            span_id=self._next_id(parent_id, name),
            parent_id=parent_id,
            name=name,
            start_us=self._now_us(),
            pid=os.getpid(),
            tid=threading.get_ident(),
            attrs=dict(attrs) if attrs else {},
        )
        with self._lock:
            self.spans.append(s)
        stack.append(s)
        return s

    def end_span(self, s: Span) -> None:
        if s.end_us is None:
            s.end_us = self._now_us()
        stack = self._stack()
        if s in stack:  # tolerate exits out of order (crashed children)
            while stack and stack[-1] is not s:
                stack.pop()
            if stack:
                stack.pop()

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        s = self.start_span(name, attrs)
        try:
            yield s
        except BaseException as exc:
            s.attrs.setdefault("error", f"{type(exc).__name__}: {exc}")
            raise
        finally:
            self.end_span(s)

    def instant(self, name: str, **attrs: Any) -> Span:
        """Record a zero-duration event (watchdog kill, retry, resume)."""
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else None
        now = self._now_us()
        s = Span(
            trace_id=self.trace_id,
            span_id=self._next_id(parent_id, name),
            parent_id=parent_id,
            name=name,
            start_us=now,
            end_us=now,
            pid=os.getpid(),
            tid=threading.get_ident(),
            attrs=dict(attrs),
        )
        with self._lock:
            self.spans.append(s)
        return s

    def current(self) -> Span | None:
        stack = self._stack()
        return stack[-1] if stack else None

    # -- snapshot / replay ---------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe dump for shipping across a process boundary.

        Open spans are included with ``end_us: None`` and marked
        ``partial`` — the parent must be able to replay a trace from a
        worker that died mid-span.
        """
        with self._lock:
            spans = list(self.spans)
        dumped = []
        for s in spans:
            d = s.to_dict()
            if s.end_us is None:
                d["partial"] = True
            dumped.append(d)
        return {
            "schema": TRACE_SCHEMA,
            "trace_id": self.trace_id,
            "epoch_unix": self.epoch_unix,
            "spans": dumped,
        }

    def replay(self, snapshot: Mapping[str, Any], parent_id: str | None = None) -> int:
        """Fold a worker snapshot into this trace.

        Timestamps are re-anchored via the wall-clock epoch delta, ids
        are kept (they embed the worker pid-independent sequence but are
        already unique per worker tracer seeded with the parent's trace
        id), root spans are re-parented under ``parent_id``, and
        malformed entries are dropped rather than raised — a crashed
        chunk must never corrupt the parent trace.  Returns the number
        of spans replayed.
        """
        try:
            worker_epoch = float(snapshot["epoch_unix"])
            raw = snapshot["spans"]
        except (KeyError, TypeError, ValueError):
            return 0
        offset_us = (worker_epoch - self.epoch_unix) * 1e6
        local_ids = set()
        for d in raw:
            if isinstance(d, Mapping) and isinstance(d.get("span_id"), str):
                local_ids.add(d["span_id"])
        replayed = 0
        for d in raw:
            if not isinstance(d, Mapping):
                continue
            try:
                span_id = d["span_id"]
                name = d["name"]
                start = float(d["start_us"]) + offset_us
            except (KeyError, TypeError, ValueError):
                continue
            if not isinstance(span_id, str) or not isinstance(name, str):
                continue
            raw_end = d.get("end_us")
            end: float | None
            try:
                end = None if raw_end is None else float(raw_end) + offset_us
            except (TypeError, ValueError):
                end = None
            parent = d.get("parent_id")
            if not isinstance(parent, str) or parent not in local_ids:
                parent = parent_id
            attrs = d.get("attrs")
            attrs = dict(attrs) if isinstance(attrs, Mapping) else {}
            if d.get("partial"):
                attrs.setdefault("partial", True)
            s = Span(
                trace_id=self.trace_id,
                span_id=span_id,
                parent_id=parent,
                name=name,
                start_us=start,
                end_us=end,
                pid=int(d.get("pid", 0) or 0),
                tid=int(d.get("tid", 0) or 0),
                attrs=attrs,
            )
            with self._lock:
                self.spans.append(s)
            replayed += 1
        return replayed


def phase_rollup(spans: list[Span]) -> dict[str, dict[str, float]]:
    """Aggregate spans by name: count and total self-reported duration."""
    out: dict[str, dict[str, float]] = {}
    for s in spans:
        agg = out.setdefault(s.name, {"count": 0, "total_us": 0.0})
        agg["count"] += 1
        agg["total_us"] += s.duration_us
    return out


# -- module-level installation (mirrors repro.obs.sink) -----------------

_tracer: Tracer | None = None


def configure_tracing(tracer: Tracer | None) -> Tracer | None:
    """Install (or clear) the active tracer; returns the previous one."""
    global _tracer
    previous = _tracer
    _tracer = tracer
    return previous


def get_tracer() -> Tracer | None:
    return _tracer


def current_trace_id() -> str | None:
    """Trace id of the active tracer, for stamping RunRecords."""
    t = _tracer
    return t.trace_id if t is not None else None


def current_span() -> Span | None:
    t = _tracer
    return t.current() if t is not None else None


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[Span | None]:
    """Record a span on the active tracer; no-op (yields None) when off."""
    t = _tracer
    if t is None:
        yield None
        return
    with t.span(name, **attrs) as s:
        yield s


def instant(name: str, **attrs: Any) -> Span | None:
    t = _tracer
    if t is None:
        return None
    return t.instant(name, **attrs)


@contextmanager
def trace_capture(
    tracer: Tracer | None = None, label: str = "trace"
) -> Iterator[Tracer]:
    """Install a tracer for the duration of a block and hand it back."""
    target = tracer if tracer is not None else Tracer(label=label)
    previous = configure_tracing(target)
    try:
        yield target
    finally:
        configure_tracing(previous)
