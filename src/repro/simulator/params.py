"""Timing parameters for the wormhole network model.

The defaults approximate the nCUBE-2, the machine the paper measured on
and validated MultiSim against.  Published nCUBE-2 characteristics:
per-channel DMA bandwidth of roughly 2.2 Mbytes/s (about 0.45 us/byte)
and a software messaging overhead on the order of 100-160 us per
send/receive pair.  The absolute values only scale the delay curves;
the *shapes* the paper reports (U-cube's staircase, the roughly 2x gain
of the all-port algorithms, the broadcast-vs-multicast anomaly) come
from the startup/port/contention structure, which is what the
reproduction asserts.  See DESIGN.md Section 4 (substitutions).

All times are in microseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NCUBE2", "STEP", "Timings"]


@dataclass(frozen=True, slots=True)
class Timings:
    """Cost model for one wormhole unicast.

    An unblocked unicast of ``L`` bytes over ``h`` hops, issued by a
    CPU that is ready at time ``T``, is delivered to the receiving CPU
    at ``T + t_setup + h * t_hop + L * t_byte + t_recv``.

    Attributes:
        t_setup: software cost for the sending CPU to initiate one send
            (buffer registration, address-field construction, DMA
            kick-off).  Successive sends from one CPU are issued
            ``t_setup`` apart even on an all-port node.
        t_recv: software cost at the receiving CPU between the worm's
            tail arriving and the message being available for
            forwarding.
        t_byte: per-byte transmission time of a channel (inverse DMA
            bandwidth).
        t_hop: per-hop routing latency of the header flit.
    """

    t_setup: float = 85.0
    t_recv: float = 75.0
    t_byte: float = 0.45
    t_hop: float = 2.0

    def __post_init__(self) -> None:
        for name in ("t_setup", "t_recv", "t_byte", "t_hop"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def unicast_latency(self, size: int, hops: int) -> float:
        """Contention-free latency of one unicast (CPU to CPU)."""
        return self.t_setup + hops * self.t_hop + size * self.t_byte + self.t_recv

    def network_time(self, size: int, hops: int) -> float:
        """Network portion of the latency (no software overheads)."""
        return hops * self.t_hop + size * self.t_byte


#: nCUBE-2-like constants used by the delay experiments (Figures 11-14).
NCUBE2 = Timings()

#: Unit-cost timings: each unicast costs exactly one time unit and all
#: software/header overheads vanish.  Under STEP timings the simulated
#: delivery time of each destination equals its abstract step number,
#: which the test suite uses to cross-validate the simulator against
#: the step scheduler.
STEP = Timings(t_setup=0.0, t_recv=0.0, t_byte=1.0, t_hop=0.0)
