"""A minimal discrete-event simulation kernel.

The paper's MultiSim was built on the (proprietary) CSIM library; this
module provides the small slice of discrete-event machinery the network
model needs: a time-ordered event heap with deterministic FIFO
tie-breaking and cancellable events.

Determinism matters: two events scheduled for the same instant fire in
scheduling order, so simulation runs are exactly reproducible and the
unit-cost cross-validation against the abstract step scheduler is
stable.

The kernel supports optional profiling probes (duck-typed against
:class:`repro.obs.probes.Probe`): when any are attached it reports each
scheduled event and times each callback with ``perf_counter``; with none
attached (the default) the hot path is identical to the un-instrumented
kernel -- no clock reads, no extra calls.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable, Iterable

if TYPE_CHECKING:  # pragma: no cover - type-only, avoids an import cycle
    from repro.obs.probes import Probe

__all__ = ["Event", "Simulator"]


@dataclass(slots=True)
class Event:
    """A scheduled callback.

    The heap itself stores ``(time, seq, event)`` tuples so that heap
    maintenance compares native floats/ints -- profiling the 10-cube
    sweeps showed a generated dataclass ``__lt__`` dominating otherwise.
    """

    time: float
    seq: int
    callback: Callable[..., None]
    args: tuple[Any, ...] = ()
    cancelled: bool = False

    def cancel(self) -> None:
        """Prevent the event from firing (it stays in the heap lazily)."""
        self.cancelled = True


class Simulator:
    """Event heap + clock.

    Usage::

        sim = Simulator()
        sim.schedule(5.0, print, "five microseconds later")
        sim.run()
    """

    def __init__(self, probes: "Iterable[Probe] | None" = None) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._processed = 0
        self._probes: tuple[Probe, ...] = tuple(probes) if probes else ()

    @property
    def now(self) -> float:
        """Current simulation time (microseconds by convention)."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (for instrumentation)."""
        return self._processed

    @property
    def probes(self) -> "tuple[Probe, ...]":
        """Attached profiling probes (empty by default)."""
        return self._probes

    def add_probe(self, probe: "Probe") -> None:
        """Attach a profiling probe (see :mod:`repro.obs.probes`)."""
        self._probes = self._probes + (probe,)

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` from now.

        Raises:
            ValueError: if ``delay`` is negative (the past is immutable).
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        ev = Event(self._now + delay, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, (ev.time, ev.seq, ev))
        if self._probes:
            for probe in self._probes:
                probe.on_schedule(self, ev)
        return ev

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time``."""
        return self.schedule(time - self._now, callback, *args)

    def peek(self) -> float | None:
        """Time of the next pending event, or None if the heap is empty."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def step(self) -> bool:
        """Fire the next event.  Returns False when nothing is pending."""
        while self._heap:
            _, _, ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self._now = ev.time
            self._processed += 1
            if self._probes:
                t0 = perf_counter()
                ev.callback(*ev.args)
                elapsed = perf_counter() - t0
                for probe in self._probes:
                    probe.on_fire(self, ev, elapsed)
            else:
                ev.callback(*ev.args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Run until the heap drains (or a limit is hit); returns the clock.

        Args:
            until: stop before firing any event later than this time.
            max_events: safety valve against runaway models.
        """
        fired = 0
        while True:
            nxt = self.peek()
            if nxt is None or (until is not None and nxt > until):
                break
            if max_events is not None and fired >= max_events:
                raise RuntimeError(f"simulation exceeded {max_events} events")
            self.step()
            fired += 1
        if until is not None and until > self._now:
            self._now = until
        return self._now
