"""Background traffic: multicast performance on a loaded network.

The paper evaluates multicasts on an otherwise idle machine; a natural
question (and the kind of study MultiSim was built for) is how the
algorithms degrade when the network also carries unrelated point-to-
point traffic.  This module injects a Poisson-like stream of random
unicasts around a multicast and measures the slowdown.

The random stream is generated up front from a seeded ``numpy``
generator, so runs are exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean

import numpy as np

from repro.multicast.base import MulticastTree
from repro.multicast.ports import ALL_PORT, PortModel
from repro.simulator.engine import Simulator
from repro.simulator.message import Worm
from repro.simulator.network import WormholeNetwork
from repro.simulator.node import HostNode
from repro.simulator.params import NCUBE2, Timings

__all__ = ["LoadedResult", "simulate_multicast_under_load"]


@dataclass(slots=True)
class LoadedResult:
    """Multicast delays in the presence of background unicasts."""

    delays: dict[int, float]
    avg_delay: float
    max_delay: float
    multicast_blocked_time: float
    background_messages: int
    background_mean_latency: float


def simulate_multicast_under_load(
    tree: MulticastTree,
    size: int = 4096,
    timings: Timings = NCUBE2,
    ports: PortModel = ALL_PORT,
    background_rate: float = 0.001,
    background_size: int = 1024,
    horizon: float = 20_000.0,
    seed: int = 0,
    max_events: int | None = 10_000_000,
) -> LoadedResult:
    """Run a multicast while random unicasts load the network.

    Args:
        background_rate: expected background messages per microsecond,
            machine-wide (exponential inter-arrival times).
        background_size: bytes per background message.
        horizon: injection window for background traffic (us); the
            multicast starts at ``horizon / 4`` so traffic is already
            flowing.

    Returns:
        Multicast per-destination delays (measured from the multicast's
        start time) and background statistics.
    """
    if background_rate < 0:
        raise ValueError("background_rate must be >= 0")
    sim = Simulator()
    limit = ports.limit(tree.n)
    rng = np.random.default_rng(seed)
    n_nodes = 1 << tree.n
    start_time = horizon / 4

    nodes: dict[int, HostNode] = {}
    delays: dict[int, float] = {}
    mc_worm_uids: set[int] = set()
    bg_latencies: list[float] = []

    def on_receive(host: HostNode, worm: Worm) -> None:
        if worm.uid in mc_worm_uids:
            delays[host.address] = sim.now - start_time
            sends = [(s.dst, size, "mc") for s in tree.sends_from(host.address)]
            if sends:
                submit_multicast(host, sends)
        else:
            bg_latencies.append(sim.now - worm.t_created)

    def get_node(address: int) -> HostNode:
        node = nodes.get(address)
        if node is None:
            node = nodes[address] = HostNode(network, address, limit, on_receive)
        return node

    def on_delivered(worm: Worm) -> None:
        get_node(worm.src).release_port()
        get_node(worm.dst).deliver(worm)

    network = WormholeNetwork(
        sim, tree.n, timings=timings, order=tree.order, on_delivered=on_delivered
    )

    def submit_multicast(host: HostNode, sends) -> None:
        host.submit_sends(sends, sim.now)
        # tag the worms as they are created: wrap make_worm once
        # (worms are created inside HostNode._inject; intercept there)

    # --- tag multicast worms by wrapping worm creation ------------------
    original_make = network.make_worm

    def make_worm(src: int, dst: int, wsize: int, payload=None) -> Worm:
        worm = original_make(src, dst, wsize, payload)
        if payload == "mc":
            mc_worm_uids.add(worm.uid)
        return worm

    network.make_worm = make_worm  # type: ignore[method-assign]

    # --- background stream ----------------------------------------------
    bg_count = 0
    if background_rate > 0:
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / background_rate))
            if t >= horizon:
                break
            src = int(rng.integers(0, n_nodes))
            dst = int(rng.integers(0, n_nodes - 1))
            if dst >= src:
                dst += 1
            bg_count += 1

            def fire(s=src, d=dst) -> None:
                get_node(s).submit_sends([(d, background_size, "bg")], sim.now)

            sim.schedule(t, fire)

    # --- the multicast ----------------------------------------------------
    def start_multicast() -> None:
        host = get_node(tree.source)
        sends = [(s.dst, size, "mc") for s in tree.sends_from(tree.source)]
        if sends:
            submit_multicast(host, sends)

    sim.schedule(start_time, start_multicast)
    sim.run(max_events=max_events)
    network.assert_quiescent()

    missing = tree.destinations - delays.keys()
    if missing:
        raise AssertionError(f"multicast never completed at: {sorted(missing)}")

    mc_blocked = sum(w.blocked_time for w in network.worms if w.uid in mc_worm_uids)
    dest_delays = [delays[d] for d in tree.destinations]
    return LoadedResult(
        delays=delays,
        avg_delay=mean(dest_delays) if dest_delays else 0.0,
        max_delay=max(dest_delays, default=0.0),
        multicast_blocked_time=mc_blocked,
        background_messages=bg_count,
        background_mean_latency=mean(bg_latencies) if bg_latencies else 0.0,
    )
