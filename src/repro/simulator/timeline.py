"""ASCII timelines of channel occupancy.

Turns a :class:`~repro.simulator.trace.ChannelTrace` into a Gantt-style
text chart: one row per channel, time on the x-axis, each worm drawn
with its own character.  Makes wormhole blocking *visible*: a worm
queued behind another shows as a gap between its upstream and
downstream channel tenures.
"""

from __future__ import annotations

from repro.core.paths import Arc
from repro.simulator.trace import ChannelTrace

__all__ = ["render_timeline"]

_GLYPHS = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"


def _arc_label(arc: Arc, n: int) -> str:
    node, dim = arc
    return f"{node:0{n}b}.d{dim}"


def render_timeline(
    trace: ChannelTrace,
    n: int,
    width: int = 72,
    horizon: float | None = None,
) -> str:
    """Render channel occupancy intervals as text.

    Args:
        trace: a finished trace (all channels released).
        n: cube dimension (for address formatting).
        width: characters across the time axis.
        horizon: time range to draw (defaults to the last release).

    Worms are labeled ``0-9a-zA-Z`` cyclically; the legend maps glyphs
    back to worm uids.
    """
    recs = trace.records
    if not recs:
        return "(no channel activity)"
    end = horizon if horizon is not None else max(r.t_end for r in recs)
    if end <= 0:
        return "(empty horizon)"

    by_arc: dict[Arc, list] = {}
    for r in recs:
        by_arc.setdefault(r.arc, []).append(r)

    label_w = max(len(_arc_label(a, n)) for a in by_arc)
    lines = [f"channel occupancy, 0 .. {end:.1f} us"]
    used_glyphs: dict[int, str] = {}
    for arc in sorted(by_arc):
        row = [" "] * width
        for r in sorted(by_arc[arc], key=lambda r: r.t_start):
            glyph = used_glyphs.setdefault(
                r.worm_uid, _GLYPHS[r.worm_uid % len(_GLYPHS)]
            )
            c0 = min(width - 1, int(r.t_start / end * width))
            c1 = min(width - 1, int(r.t_end / end * width))
            for c in range(c0, c1 + 1):
                row[c] = glyph
        lines.append(f"{_arc_label(arc, n).rjust(label_w)} |{''.join(row)}|")
    legend = "  ".join(f"{g}=worm{uid}" for uid, g in sorted(used_glyphs.items())[:12])
    lines.append(f"{' ' * label_w}  {legend}")
    return "\n".join(lines)
