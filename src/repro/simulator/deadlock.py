"""Deadlock analysis: channel-dependency graphs (Dally & Seitz).

Wormhole routing is deadlock-free iff the *channel dependency graph* --
a directed graph over channels with an edge ``c1 -> c2`` whenever some
route uses ``c2`` immediately after ``c1`` -- is acyclic.  E-cube
routing orders channels by dimension, so its dependency graph is
trivially acyclic; that is what licenses the paper (and this library)
to ignore deadlock entirely.  This module makes the argument
executable:

- :func:`channel_dependency_graph` builds the graph for any routing
  function over all node pairs;
- :func:`is_deadlock_free` checks acyclicity (via networkx);
- :func:`find_dependency_cycle` returns a witness cycle for routing
  functions that are *not* safe (e.g. random minimal routing).

A run-time companion, :func:`waiting_cycle`, inspects a live network
and reports an actual circular wait among blocked worms -- used by the
failure-injection tests to show a real deadlock happening under unsafe
routing.
"""

from __future__ import annotations

import networkx as nx

from repro.core.paths import Arc
from repro.simulator.message import WormState
from repro.simulator.network import WormholeNetwork
from repro.simulator.routing import RoutingFunction

__all__ = [
    "channel_dependency_graph",
    "find_dependency_cycle",
    "is_deadlock_free",
    "stall_report",
    "waiting_cycle",
]


def channel_dependency_graph(n: int, route: RoutingFunction) -> "nx.DiGraph":
    """The channel dependency graph of ``route`` over all ``(src, dst)``
    pairs of the ``n``-cube.

    Note: for *randomized* routing functions this samples one route per
    pair; safety claims then hold only for the sampled behaviour, while
    a found cycle is already a genuine counterexample.
    """
    g = nx.DiGraph()
    size = 1 << n
    for u in range(size):
        for d in range(n):
            g.add_node((u, d))
    for src in range(size):
        for dst in range(size):
            if src == dst:
                continue
            arcs = route(src, dst)
            for a, b in zip(arcs, arcs[1:]):
                g.add_edge(a, b)
    return g


def is_deadlock_free(n: int, route: RoutingFunction) -> bool:
    """True iff the channel dependency graph is acyclic."""
    return nx.is_directed_acyclic_graph(channel_dependency_graph(n, route))


def find_dependency_cycle(n: int, route: RoutingFunction) -> list[Arc] | None:
    """A witness cycle of channels, or None if the graph is acyclic."""
    g = channel_dependency_graph(n, route)
    try:
        cycle_edges = nx.find_cycle(g)
    except nx.NetworkXNoCycle:
        return None
    return [edge[0] for edge in cycle_edges]


def waiting_cycle(network: WormholeNetwork) -> list[int] | None:
    """Detect a circular wait among currently blocked worms.

    Builds the wait-for graph: worm ``w`` waits for the worm occupying
    the channel at the head of ``w``'s queue position.  Returns the
    worm uids on a cycle, or None.  On an idle or live network this is
    always None; under an unsafe routing function it is the post-mortem
    evidence of deadlock.
    """
    g = nx.DiGraph()
    for ch in network._channels.values():
        if ch.occupied_by is None:
            continue
        holder = ch.occupied_by.uid
        for waiter in ch.queue:
            g.add_edge(waiter.uid, holder)
    try:
        cycle_edges = nx.find_cycle(g)
    except (nx.NetworkXNoCycle, nx.NetworkXError):
        return None
    return [edge[0] for edge in cycle_edges]


def stall_report(network: WormholeNetwork) -> dict:
    """Classify every blocked worm and render a JSON-ready verdict.

    Telemetry companion to :func:`waiting_cycle`: for each worm whose
    header is waiting on a busy channel, walk the holder chain and
    decide *why* it is not progressing:

    - ``fault-stalled`` -- the chain ends at a worm whose next channel
      is dead (or the worm itself waits on one): the stall is caused by
      an injected failure, not by traffic;
    - ``deadlocked`` -- the chain revisits a worm (a circular wait);
    - ``contention`` -- the chain ends at a worm that is actively
      progressing; the wait is ordinary wormhole contention.

    The returned dict is embedded verbatim in exported
    :class:`~repro.obs.telemetry.RunRecord` JSONL (``extra["deadlock"]``,
    see docs/OBSERVABILITY.md), so a fault-stalled cycle is
    distinguishable from ordinary contention offline.  On a quiescent
    network every count is zero and the verdict is ``"clear"``.
    """
    dead = network.dead_arcs
    blocked = [
        w
        for w in network.worms
        if w.state is WormState.INJECTING and w._blocked_since >= 0
    ]
    fault_stalled: list[int] = []
    deadlocked: list[int] = []
    contention: list[int] = []
    for w in blocked:
        seen = {w.uid}
        cur = w
        kind = "contention"
        while True:
            if cur.hop < cur.hops and cur.arcs[cur.hop] in dead:
                kind = "fault-stalled"
                break
            holder = network._channels[cur.arcs[cur.hop]].occupied_by
            if holder is None or holder._blocked_since < 0:
                break  # head of the chain is progressing: plain contention
            if holder.uid in seen:
                kind = "deadlocked"
                break
            seen.add(holder.uid)
            cur = holder
        {"fault-stalled": fault_stalled, "deadlocked": deadlocked, "contention": contention}[
            kind
        ].append(w.uid)
    if deadlocked:
        verdict = "deadlock"
    elif fault_stalled:
        verdict = "fault-stall"
    elif blocked:
        verdict = "contention"
    else:
        verdict = "clear"
    cycle = waiting_cycle(network)
    return {
        "verdict": verdict,
        "blocked_worms": len(blocked),
        "fault_stalled_worms": sorted(fault_stalled),
        "deadlocked_worms": sorted(deadlocked),
        "contention_worms": sorted(contention),
        "waiting_cycle": cycle,
        "dead_arcs": sorted(list(a) for a in dead),
    }
