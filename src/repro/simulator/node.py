"""Host (processor) model: software overheads and injection ports.

A node's CPU issues sends sequentially, spending ``t_setup`` on each;
the send then needs a free *injection port*.  The port model gives a
node 1 (one-port), ``k``, or ``n`` (all-port) ports.  A port is held
from injection until the worm is fully delivered -- the same
conservatism as channel release, and exactly what serializes successive
sends on a one-port node the way the paper's step model assumes.

On the receive side a message becomes available to the local processor
(for forwarding or consumption) ``t_recv`` after its tail drains.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from repro.simulator.message import Worm, WormState
from repro.simulator.network import WormholeNetwork

__all__ = ["HostNode"]


class HostNode:
    """One processing node attached to the wormhole network.

    Args:
        network: the shared network model.
        address: this node's hypercube address.
        port_limit: concurrent injection limit (from the PortModel).
        on_receive: application callback ``(node, worm)`` fired when the
            local CPU has fully received a message (after ``t_recv``).
    """

    def __init__(
        self,
        network: WormholeNetwork,
        address: int,
        port_limit: int,
        on_receive: Callable[["HostNode", Worm], None] | None = None,
    ) -> None:
        self.network = network
        self.sim = network.sim
        self.address = address
        self.port_limit = port_limit
        self.on_receive = on_receive

        self._free_ports = port_limit
        self._awaiting_port: deque[tuple[int, int, Any]] = deque()
        self._cpu_free_at = 0.0
        self.sent: list[Worm] = []
        self.received: list[Worm] = []

    # -- sending --------------------------------------------------------

    def submit_sends(self, sends: list[tuple[int, int, Any]], ready_time: float) -> None:
        """Queue ``(dst, size, payload)`` sends, CPU-ready at ``ready_time``.

        The CPU performs the per-send setup work back to back starting
        at ``ready_time`` (or when it frees up, if later); each send
        enters the network as soon as its setup is done and a port is
        free.
        """
        t = max(ready_time, self._cpu_free_at, self.sim.now)
        for dst, size, payload in sends:
            t += self.network.timings.t_setup
            self.sim.schedule_at(t, self._setup_done, dst, size, payload)
        self._cpu_free_at = t

    def _setup_done(self, dst: int, size: int, payload: Any) -> None:
        if self._free_ports > 0:
            self._inject(dst, size, payload)
        else:
            self._awaiting_port.append((dst, size, payload))

    def _inject(self, dst: int, size: int, payload: Any) -> None:
        self._free_ports -= 1
        worm = self.network.make_worm(self.address, dst, size, payload)
        self.sent.append(worm)
        self.network.inject(worm)

    def release_port(self) -> None:
        """Called when one of this node's worms has been delivered."""
        self._free_ports += 1
        if self._awaiting_port:
            self._inject(*self._awaiting_port.popleft())

    # -- receiving ------------------------------------------------------

    def deliver(self, worm: Worm) -> None:
        """Network delivered a worm addressed to this node."""
        if worm.dst != self.address:
            raise ValueError(f"worm {worm.uid} for {worm.dst} delivered to {self.address}")
        self.sim.schedule(self.network.timings.t_recv, self._received, worm)

    def _received(self, worm: Worm) -> None:
        worm.state = WormState.RECEIVED
        worm.t_received = self.sim.now
        self.received.append(worm)
        if self.on_receive is not None:
            self.on_receive(self, worm)
