"""High-level driver: execute a multicast tree on the simulator.

This is the bridge between the abstract algorithm layer (a
:class:`~repro.multicast.base.MulticastTree`) and the timed network
model, and is what the delay experiments of Figures 11-14 run.

The source node starts issuing its sends at ``t = 0``.  Every node
that receives the message looks up its own forwarding responsibilities
in the tree and issues them; per-destination *delay* is the time at
which the destination CPU has fully received the message -- exactly the
quantity the paper measures ("the delay between the sending of a
multicast message and its receipt at the destination").
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from statistics import mean
from time import perf_counter
from typing import TYPE_CHECKING, Sequence

from repro.multicast.base import MulticastTree
from repro.multicast.ports import ALL_PORT, PortModel
from repro.obs import sink as _telemetry_sink
from repro.obs import trace_spans
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import RunRecord, new_run_id, summarize_delays
from repro.simulator.engine import Simulator
from repro.simulator.message import Worm
from repro.simulator.network import WormholeNetwork
from repro.simulator.node import HostNode
from repro.simulator.params import NCUBE2, Timings

if TYPE_CHECKING:  # pragma: no cover - type-only
    from repro.obs.probes import Probe

__all__ = ["MulticastResult", "record_sim_metrics", "simulate_multicast"]


def record_sim_metrics(
    metrics: MetricsRegistry,
    *,
    events: int,
    worms: Sequence[Worm],
    delays: dict | None,
    completion_us: float,
    blocked_us: float,
    wall_seconds: float,
) -> None:
    """Record one simulated run into a registry (shared metric names).

    Metric names are documented in docs/OBSERVABILITY.md; every
    simulation driver funnels through here so that registries attached
    across many runs (e.g. one per :class:`HypercubeCollectives`)
    aggregate consistently.
    """
    metrics.counter("sim.runs").inc()
    metrics.counter("sim.events").inc(events)
    metrics.counter("sim.worms").inc(len(worms))
    metrics.counter("sim.blocked_us").inc(blocked_us)
    metrics.gauge("sim.completion_us").set(completion_us)
    metrics.timer("sim.wall").record(wall_seconds)
    if delays:
        delay_hist = metrics.histogram("sim.delay_us")
        for d in delays.values():
            delay_hist.observe(d)
    blocked_hist = metrics.histogram("sim.worm_blocked_us")
    for w in worms:
        if w.blocked_time > 0:
            blocked_hist.observe(w.blocked_time)


@dataclass(slots=True)
class MulticastResult:
    """Outcome of one simulated multicast."""

    tree: MulticastTree
    size: int
    timings: Timings
    ports: PortModel
    delays: dict[int, float]
    total_blocked_time: float
    events: int
    network: WormholeNetwork = field(repr=False)

    @property
    def max_delay(self) -> float:
        """Maximum delay across destinations (Figures 12 and 14)."""
        return max((self.delays[d] for d in self.tree.destinations), default=0.0)

    @property
    def avg_delay(self) -> float:
        """Average delay across destinations (Figures 11 and 13)."""
        dests = self.tree.destinations
        return mean(self.delays[d] for d in dests) if dests else 0.0

    @property
    def completion_time(self) -> float:
        """Time at which the last receiving CPU (destination or relay)
        holds the message."""
        return max(self.delays.values(), default=0.0)


def simulate_multicast(
    tree: MulticastTree,
    size: int = 4096,
    timings: Timings = NCUBE2,
    ports: PortModel = ALL_PORT,
    trace: bool = False,
    max_events: int | None = 10_000_000,
    metrics: MetricsRegistry | None = None,
    probes: "Sequence[Probe] | None" = None,
    label: str | None = None,
) -> MulticastResult:
    """Run one multicast tree through the wormhole network model.

    Args:
        tree: who forwards to whom (any MulticastAlgorithm output, or a
            hand-built tree).
        size: message length in bytes (the paper uses 4096).
        timings: cost model; ``STEP`` turns the run into a step-semantics
            cross-check.
        ports: injection-port model for every node.
        trace: record channel occupancies for auditing.
        metrics: optional registry to record run metrics into.
        probes: optional event-kernel profiling probes.
        label: algorithm/operation name stamped on exported telemetry.

    Returns:
        Per-destination delays plus blocking/trace instrumentation.

    When a telemetry sink is active (``REPRO_TELEMETRY`` or
    :func:`repro.obs.sink.configure`) one ``kind="multicast"``
    :class:`~repro.obs.telemetry.RunRecord` is emitted per call; with no
    sink, no registry, and no probes the run is bit-identical to the
    un-instrumented driver.

    While a tracer is installed (see :mod:`repro.obs.trace_spans`) the
    run records one ``simulate`` span with event/delay/blocking totals
    -- and probe rollups, when probes are attached -- plus a nested
    ``verify.delivery`` span over the quiescence and coverage checks.
    """
    with trace_spans.span(
        "simulate", n=tree.n, algorithm=label, size=size, ports=ports.name
    ) as _span:
        result = _simulate_multicast(
            tree, size, timings, ports, trace, max_events, metrics, probes, label
        )
        if _span is not None:
            _span.set(
                events=result.events,
                completion_us=result.completion_time,
                avg_delay_us=result.avg_delay,
                total_blocked_us=result.total_blocked_time,
                worms=len(result.network.worms),
            )
            if probes:
                from repro.obs.probes import probe_summaries

                _span.set(probes=probe_summaries(probes))
        return result


def _simulate_multicast(
    tree: MulticastTree,
    size: int,
    timings: Timings,
    ports: PortModel,
    trace: bool,
    max_events: int | None,
    metrics: MetricsRegistry | None,
    probes: "Sequence[Probe] | None",
    label: str | None,
) -> MulticastResult:
    wall_start = perf_counter()
    sim = Simulator(probes)
    limit = ports.limit(tree.n)

    nodes: dict[int, HostNode] = {}
    delays: dict[int, float] = {}

    def on_receive(host: HostNode, worm: Worm) -> None:
        delays[host.address] = sim.now
        payload_sends = [
            (s.dst, size, None) for s in tree.sends_from(host.address)
        ]
        if payload_sends:
            host.submit_sends(payload_sends, sim.now)

    def get_node(address: int) -> HostNode:
        node = nodes.get(address)
        if node is None:
            node = nodes[address] = HostNode(network, address, limit, on_receive)
        return node

    def on_delivered(worm: Worm) -> None:
        get_node(worm.src).release_port()
        get_node(worm.dst).deliver(worm)

    network = WormholeNetwork(
        sim, tree.n, timings=timings, order=tree.order, trace=trace, on_delivered=on_delivered
    )

    source = get_node(tree.source)
    source.submit_sends(
        [(s.dst, size, None) for s in tree.sends_from(tree.source)], ready_time=0.0
    )
    sim.run(max_events=max_events)
    with trace_spans.span("verify.delivery", n=tree.n) as vsp:
        network.assert_quiescent()
        missing = tree.destinations - delays.keys()
        if missing:
            raise AssertionError(
                f"simulation ended with undelivered destinations: {sorted(missing)}"
            )
        if vsp is not None:
            vsp.set(delivered=len(delays))

    result = MulticastResult(
        tree=tree,
        size=size,
        timings=timings,
        ports=ports,
        delays=delays,
        total_blocked_time=network.total_blocked_time,
        events=sim.events_processed,
        network=network,
    )

    wall_seconds = perf_counter() - wall_start
    if metrics is not None:
        record_sim_metrics(
            metrics,
            events=result.events,
            worms=network.worms,
            delays=delays,
            completion_us=result.completion_time,
            blocked_us=result.total_blocked_time,
            wall_seconds=wall_seconds,
        )
    telemetry = _telemetry_sink.get_sink()
    if telemetry is not None:
        telemetry.write(
            RunRecord(
                run_id=new_run_id(),
                kind="multicast",
                n=tree.n,
                algorithm=label,
                ports=ports.name,
                size=size,
                timings=asdict(timings),
                wall_seconds=wall_seconds,
                sim_time_us=sim.now,
                events=result.events,
                metrics=metrics.snapshot() if metrics is not None else {},
                extra={
                    "destinations": len(tree.destinations),
                    "avg_delay_us": result.avg_delay,
                    "max_delay_us": result.max_delay,
                    "completion_us": result.completion_time,
                    "total_blocked_us": result.total_blocked_time,
                    "worms": len(network.worms),
                },
                trace_id=trace_spans.current_trace_id(),
            )
        )
    return result
