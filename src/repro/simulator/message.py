"""Worm (in-flight wormhole message) representation."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.core.paths import Arc

__all__ = ["Worm", "WormState"]


class WormState(enum.Enum):
    """Lifecycle of a worm."""

    PENDING = "pending"  # created, waiting for an injection port
    INJECTING = "injecting"  # header advancing / blocked in the network
    DELIVERED = "delivered"  # tail drained at the destination router
    RECEIVED = "received"  # receiving CPU finished its software overhead
    ABORTED = "aborted"  # header hit a dead channel; all held channels released


@dataclass(slots=True)
class Worm:
    """One unicast in flight.

    Attributes:
        uid: unique id (issue order).
        src/dst: endpoint node addresses.
        size: message length in bytes.
        arcs: the E-cube path's directed channels, in traversal order.
        payload: opaque data carried to the receiver (the multicast
            address field, reduction operands, ...).
        hop: index of the next arc the header must acquire.
        held: number of leading arcs currently held by the worm.
    """

    uid: int
    src: int
    dst: int
    size: int
    arcs: list[Arc]
    payload: Any = None

    state: WormState = WormState.PENDING
    hop: int = 0
    held: int = 0

    #: retry attempt this worm represents (0 for a first transmission;
    #: set by fault-aware drivers when they re-inject after an abort)
    attempt: int = 0

    # timestamps (microseconds); -1.0 means "not yet"
    t_created: float = -1.0
    t_injected: float = -1.0
    t_delivered: float = -1.0
    t_received: float = -1.0
    t_aborted: float = -1.0

    # accumulated time the header spent blocked on busy channels
    blocked_time: float = 0.0
    #: blocked time split by the dimension of the channel waited on
    #: (allocated lazily -- None until the worm first blocks)
    blocked_by_dim: dict[int, float] | None = None
    _blocked_since: float = field(default=-1.0, repr=False)
    _blocked_dim: int = field(default=-1, repr=False)

    @property
    def hops(self) -> int:
        """Physical path length."""
        return len(self.arcs)

    @property
    def network_latency(self) -> float:
        """Injection-to-delivery time (valid once delivered)."""
        if self.t_delivered < 0 or self.t_injected < 0:
            raise ValueError(f"worm {self.uid} not delivered yet")
        return self.t_delivered - self.t_injected

    def mark_blocked(self, now: float, dim: int = -1) -> None:
        self._blocked_since = now
        self._blocked_dim = dim

    def mark_unblocked(self, now: float) -> None:
        if self._blocked_since >= 0:
            span = now - self._blocked_since
            self.blocked_time += span
            if self._blocked_dim >= 0:
                if self.blocked_by_dim is None:
                    self.blocked_by_dim = {}
                self.blocked_by_dim[self._blocked_dim] = (
                    self.blocked_by_dim.get(self._blocked_dim, 0.0) + span
                )
            self._blocked_since = -1.0
            self._blocked_dim = -1
