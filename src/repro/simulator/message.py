"""Worm (in-flight wormhole message) representation."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.core.paths import Arc

__all__ = ["Worm", "WormState"]


class WormState(enum.Enum):
    """Lifecycle of a worm."""

    PENDING = "pending"  # created, waiting for an injection port
    INJECTING = "injecting"  # header advancing / blocked in the network
    DELIVERED = "delivered"  # tail drained at the destination router
    RECEIVED = "received"  # receiving CPU finished its software overhead


@dataclass(slots=True)
class Worm:
    """One unicast in flight.

    Attributes:
        uid: unique id (issue order).
        src/dst: endpoint node addresses.
        size: message length in bytes.
        arcs: the E-cube path's directed channels, in traversal order.
        payload: opaque data carried to the receiver (the multicast
            address field, reduction operands, ...).
        hop: index of the next arc the header must acquire.
        held: number of leading arcs currently held by the worm.
    """

    uid: int
    src: int
    dst: int
    size: int
    arcs: list[Arc]
    payload: Any = None

    state: WormState = WormState.PENDING
    hop: int = 0
    held: int = 0

    # timestamps (microseconds); -1.0 means "not yet"
    t_created: float = -1.0
    t_injected: float = -1.0
    t_delivered: float = -1.0
    t_received: float = -1.0

    # accumulated time the header spent blocked on busy channels
    blocked_time: float = 0.0
    _blocked_since: float = field(default=-1.0, repr=False)

    @property
    def hops(self) -> int:
        """Physical path length."""
        return len(self.arcs)

    @property
    def network_latency(self) -> float:
        """Injection-to-delivery time (valid once delivered)."""
        if self.t_delivered < 0 or self.t_injected < 0:
            raise ValueError(f"worm {self.uid} not delivered yet")
        return self.t_delivered - self.t_injected

    def mark_blocked(self, now: float) -> None:
        self._blocked_since = now

    def mark_unblocked(self, now: float) -> None:
        if self._blocked_since >= 0:
            self.blocked_time += now - self._blocked_since
            self._blocked_since = -1.0
