"""Channel-occupancy tracing and post-hoc contention audits.

A :class:`ChannelTrace` records, for every directed channel, the
intervals during which each worm held it.  Auditing the trace proves
*empirically* what Definition 4 proves analytically: that no two worms
ever held the same channel at once (the network model enforces this by
construction -- the audit is the test suite's independent witness) and
that a contention-free schedule incurred zero header blocking.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.paths import Arc

__all__ = ["ChannelTrace", "Occupancy"]


@dataclass(frozen=True, slots=True)
class Occupancy:
    """One worm's tenure on one channel."""

    arc: Arc
    worm_uid: int
    t_start: float
    t_end: float

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


@dataclass(slots=True)
class ChannelTrace:
    """Append-only record of channel occupancies."""

    enabled: bool = True
    _open: dict[Arc, tuple[int, float]] = field(default_factory=dict)
    records: list[Occupancy] = field(default_factory=list)

    def occupy(self, arc: Arc, worm_uid: int, now: float) -> None:
        if not self.enabled:
            return
        if arc in self._open:
            raise AssertionError(f"channel {arc} double-occupied at t={now}")
        self._open[arc] = (worm_uid, now)

    def release(self, arc: Arc, worm_uid: int, now: float) -> None:
        if not self.enabled:
            return
        entry = self._open.pop(arc, None)
        if entry is None:
            raise AssertionError(
                f"channel {arc} released by worm {worm_uid} at t={now} but was "
                f"never occupied (trace enabled mid-run?)"
            )
        uid, start = entry
        if uid != worm_uid:
            raise AssertionError(f"channel {arc} released by worm {worm_uid}, held by {uid}")
        self.records.append(Occupancy(arc, worm_uid, start, now))

    def finish(self) -> None:
        """Assert that no channel is still held (call after the run)."""
        if self._open:
            raise AssertionError(f"channels still held at end of run: {sorted(self._open)}")

    def overlapping_pairs(self) -> list[tuple[Occupancy, Occupancy]]:
        """All pairs of occupancies of the same channel that overlap in
        time.  Always empty for runs produced by this simulator; the
        test suite calls it as an independent invariant check."""
        by_arc: dict[Arc, list[Occupancy]] = {}
        for rec in self.records:
            by_arc.setdefault(rec.arc, []).append(rec)
        bad: list[tuple[Occupancy, Occupancy]] = []
        for recs in by_arc.values():
            recs.sort(key=lambda r: r.t_start)
            for a, b in zip(recs, recs[1:]):
                if b.t_start < a.t_end:
                    bad.append((a, b))
        return bad

    def utilization(self, horizon: float) -> dict[Arc, float]:
        """Fraction of ``[0, horizon]`` each channel was busy."""
        busy: dict[Arc, float] = {}
        for rec in self.records:
            busy[rec.arc] = busy.get(rec.arc, 0.0) + rec.duration
        return {arc: t / horizon for arc, t in busy.items()} if horizon > 0 else {}
