"""Concurrent multicasts: collective *data distribution* at large.

The paper's title problem is broader than a single multicast: in real
redistribution phases several nodes multicast at once (e.g. every
producer broadcasts its boundary data).  Each algorithm guarantees its
*own* unicasts are contention-free; concurrent operations still compete
for channels.  This driver runs any number of multicast trees in one
network so that cross-operation interference can be measured -- the
operations with fewer channel-hops and fewer steps interfere less,
which is an additional (unproven in the paper) advantage of the
contention-aware algorithms.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from statistics import mean
from time import perf_counter
from typing import TYPE_CHECKING, Sequence

from repro.multicast.base import MulticastTree
from repro.multicast.ports import ALL_PORT, PortModel
from repro.obs import sink as _telemetry_sink
from repro.obs import trace_spans
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import RunRecord, new_run_id
from repro.simulator.engine import Simulator
from repro.simulator.message import Worm
from repro.simulator.network import WormholeNetwork
from repro.simulator.node import HostNode
from repro.simulator.params import NCUBE2, Timings

if TYPE_CHECKING:  # pragma: no cover - type-only
    from repro.obs.probes import Probe

__all__ = ["ConcurrentResult", "simulate_concurrent_multicasts"]


@dataclass(slots=True)
class ConcurrentResult:
    """Outcome of several multicasts sharing the network."""

    trees: list[MulticastTree]
    #: per multicast: destination -> delay from that multicast's start
    delays: list[dict[int, float]]
    start_times: list[float]
    total_blocked_time: float
    events: int

    @property
    def avg_delays(self) -> list[float]:
        return [
            mean(d[x] for x in t.destinations) if t.destinations else 0.0
            for t, d in zip(self.trees, self.delays)
        ]

    @property
    def max_delays(self) -> list[float]:
        return [
            max((d[x] for x in t.destinations), default=0.0)
            for t, d in zip(self.trees, self.delays)
        ]

    @property
    def makespan(self) -> float:
        """Time from the first start until the last delivery."""
        finish = [
            s + mx for s, mx in zip(self.start_times, self.max_delays)
        ]
        return max(finish, default=0.0) - min(self.start_times, default=0.0)


def simulate_concurrent_multicasts(
    trees: Sequence[MulticastTree],
    size: int = 4096,
    timings: Timings = NCUBE2,
    ports: PortModel = ALL_PORT,
    start_times: Sequence[float] | None = None,
    max_events: int | None = 10_000_000,
    metrics: MetricsRegistry | None = None,
    probes: "Sequence[Probe] | None" = None,
    label: str | None = None,
) -> ConcurrentResult:
    """Run several multicast trees over one wormhole network.

    All trees must share the cube dimension and resolution order.  A
    node may appear in any role in any number of the operations; its
    injection ports are shared across them.

    Args:
        start_times: per-tree injection start (default: all at 0.0).
        metrics: optional registry to record run metrics into.
        probes: optional event-kernel profiling probes.
        label: algorithm/operation name stamped on exported telemetry.

    When a telemetry sink is active, one ``kind="concurrent"``
    :class:`~repro.obs.telemetry.RunRecord` is emitted per call.
    """
    if not trees:
        raise ValueError("need at least one multicast tree")
    n = trees[0].n
    order = trees[0].order
    for t in trees:
        if t.n != n or t.order is not order:
            raise ValueError("all trees must share cube size and resolution order")
    starts = list(start_times) if start_times is not None else [0.0] * len(trees)
    if len(starts) != len(trees):
        raise ValueError("start_times must match trees")
    if any(s < 0 for s in starts):
        raise ValueError("start times must be non-negative")

    with trace_spans.span(
        "simulate.concurrent", n=n, operations=len(trees), size=size, ports=ports.name
    ) as _span:
        result = _run_concurrent(
            trees, size, timings, ports, starts, max_events, metrics, probes, label, n, order
        )
        if _span is not None:
            _span.set(
                events=result.events,
                makespan_us=result.makespan,
                total_blocked_us=result.total_blocked_time,
            )
            if probes:
                from repro.obs.probes import probe_summaries

                _span.set(probes=probe_summaries(probes))
        return result


def _run_concurrent(
    trees: Sequence[MulticastTree],
    size: int,
    timings: Timings,
    ports: PortModel,
    starts: list[float],
    max_events: int | None,
    metrics: MetricsRegistry | None,
    probes: "Sequence[Probe] | None",
    label: str | None,
    n: int,
    order,
) -> ConcurrentResult:
    wall_start = perf_counter()
    sim = Simulator(probes)
    limit = ports.limit(n)
    nodes: dict[int, HostNode] = {}
    delays: list[dict[int, float]] = [{} for _ in trees]

    def on_receive(host: HostNode, worm: Worm) -> None:
        ti = worm.payload
        delays[ti][host.address] = sim.now - starts[ti]
        sends = [(s.dst, size, ti) for s in trees[ti].sends_from(host.address)]
        if sends:
            host.submit_sends(sends, sim.now)

    def get_node(address: int) -> HostNode:
        node = nodes.get(address)
        if node is None:
            node = nodes[address] = HostNode(network, address, limit, on_receive)
        return node

    def on_delivered(worm: Worm) -> None:
        get_node(worm.src).release_port()
        get_node(worm.dst).deliver(worm)

    network = WormholeNetwork(
        sim, n, timings=timings, order=order, on_delivered=on_delivered
    )

    for ti, tree in enumerate(trees):
        sends = [(s.dst, size, ti) for s in tree.sends_from(tree.source)]
        if not sends:
            continue

        def fire(ti=ti, src=tree.source, sends=sends) -> None:
            get_node(src).submit_sends(sends, sim.now)

        sim.schedule(starts[ti], fire)

    sim.run(max_events=max_events)
    with trace_spans.span("verify.delivery", n=n) as vsp:
        network.assert_quiescent()
        for ti, tree in enumerate(trees):
            missing = tree.destinations - delays[ti].keys()
            if missing:
                raise AssertionError(
                    f"multicast {ti} never reached destinations {sorted(missing)}"
                )
        if vsp is not None:
            vsp.set(operations=len(trees))

    result = ConcurrentResult(
        trees=list(trees),
        delays=delays,
        start_times=starts,
        total_blocked_time=network.total_blocked_time,
        events=sim.events_processed,
    )

    wall_seconds = perf_counter() - wall_start
    if metrics is not None:
        from repro.simulator.run import record_sim_metrics

        merged = {
            (ti, dst): d for ti, per in enumerate(delays) for dst, d in per.items()
        }
        record_sim_metrics(
            metrics,
            events=result.events,
            worms=network.worms,
            delays=merged,
            completion_us=result.makespan,
            blocked_us=result.total_blocked_time,
            wall_seconds=wall_seconds,
        )
    telemetry = _telemetry_sink.get_sink()
    if telemetry is not None:
        telemetry.write(
            RunRecord(
                run_id=new_run_id(),
                kind="concurrent",
                n=n,
                algorithm=label,
                ports=ports.name,
                size=size,
                timings=asdict(timings),
                wall_seconds=wall_seconds,
                sim_time_us=sim.now,
                events=result.events,
                metrics=metrics.snapshot() if metrics is not None else {},
                extra={
                    "operations": len(trees),
                    "start_times": starts,
                    "avg_delays_us": result.avg_delays,
                    "max_delays_us": result.max_delays,
                    "makespan_us": result.makespan,
                    "total_blocked_us": result.total_blocked_time,
                    "worms": len(network.worms),
                },
                trace_id=trace_spans.current_trace_id(),
            )
        )
    return result
