"""Routing functions for the wormhole network.

The paper assumes deterministic E-cube routing throughout; the network
model accepts any *routing function* mapping ``(src, dst)`` to a
channel sequence so that the E-cube assumptions can be tested rather
than baked in:

- :func:`ecube_routing` -- dimension-ordered (the paper's model), in
  either resolution order;
- :func:`random_minimal_routing` -- a seeded adversarial baseline that
  picks a random minimal path per worm.  Minimal but *unordered*
  routing admits cyclic channel dependencies, i.e. deadlock
  (Dally & Seitz), which :mod:`repro.simulator.deadlock` demonstrates.

A routing function must return a connected, cycle-free channel walk
from ``src`` to ``dst``; :func:`validate_route` checks one.
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

from repro.core.paths import Arc, ResolutionOrder, ecube_arcs

__all__ = [
    "RoutingFunction",
    "ecube_routing",
    "random_minimal_routing",
    "validate_route",
]


class RoutingFunction(Protocol):
    """Maps a (src, dst) pair to the channel sequence its worm uses."""

    def __call__(self, src: int, dst: int) -> list[Arc]: ...


def ecube_routing(
    order: ResolutionOrder = ResolutionOrder.DESCENDING,
) -> RoutingFunction:
    """Deterministic dimension-ordered routing (the paper's model)."""

    def route(src: int, dst: int) -> list[Arc]:
        return ecube_arcs(src, dst, order)

    return route


def random_minimal_routing(seed: int = 0) -> RoutingFunction:
    """Adversarial baseline: a random minimal path per call.

    Still shortest-path (corrects each differing bit exactly once) but
    in a random order, so the global channel-dependency relation is
    cyclic and concurrent worms can deadlock.  Deterministic for a
    given seed and call sequence.
    """
    rng = np.random.default_rng(seed)

    def route(src: int, dst: int) -> list[Arc]:
        x = src ^ dst
        dims = [d for d in range(x.bit_length()) if (x >> d) & 1]
        rng.shuffle(dims)
        arcs: list[Arc] = []
        cur = src
        for d in dims:
            arcs.append((cur, d))
            cur ^= 1 << d
        return arcs

    return route


def validate_route(src: int, dst: int, arcs: list[Arc]) -> None:
    """Check that ``arcs`` is a legal channel walk from src to dst.

    Raises:
        ValueError: if the walk is disconnected, revisits a channel, or
            does not terminate at ``dst``.
    """
    cur = src
    seen: set[Arc] = set()
    for arc in arcs:
        node, dim = arc
        if node != cur:
            raise ValueError(f"route disconnected at {arc} (expected tail {cur})")
        if arc in seen:
            raise ValueError(f"route revisits channel {arc}")
        seen.add(arc)
        cur = node ^ (1 << dim)
    if cur != dst:
        raise ValueError(f"route ends at {cur}, expected {dst}")


#: convenience alias used by the network constructor
RouteFactory = Callable[[], RoutingFunction]
