"""Validation of the simulator against the analytical cost model.

The paper leans on MultiSim having been *validated against an nCUBE-2*.
We have no nCUBE-2, but the same discipline applies one level down: on
contention-free workloads the discrete-event model must agree exactly
with the closed-form wormhole cost model

    delay(send) = t_setup + h * t_hop + L * t_byte + t_recv

composed over the multicast tree's forwarding chains (each node issues
its i-th send only after its own receive plus ``i`` setup slots).  This
module computes that analytical prediction independently of the event
simulator and reports the discrepancy; the test suite asserts it is
zero (to float precision) for the contention-free algorithms, on any
instance.  Any future change that breaks the event model's timing
semantics trips these checks immediately.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.addressing import hamming
from repro.multicast.base import MulticastTree
from repro.multicast.ports import ALL_PORT, PortModel
from repro.simulator.params import NCUBE2, Timings
from repro.simulator.run import simulate_multicast

__all__ = ["ValidationReport", "predict_delays", "validate_against_model"]


@dataclass(frozen=True, slots=True)
class ValidationReport:
    """Per-run comparison of simulated vs analytically predicted delays."""

    max_abs_error: float
    max_rel_error: float
    destinations: int

    @property
    def ok(self) -> bool:
        return self.max_rel_error < 1e-9


def predict_delays(
    tree: MulticastTree,
    size: int = 4096,
    timings: Timings = NCUBE2,
    ports: PortModel = ALL_PORT,
) -> dict[int, float]:
    """Closed-form per-destination delays, assuming no channel blocking.

    Valid for algorithms whose sends from any one node depart on
    distinct channels (Maxport, W-sort) under the all-port model; for
    other algorithm/port combinations the event simulator may
    legitimately exceed this bound, never undercut it.
    """
    limit = ports.limit(tree.n)
    ready: dict[int, float] = {tree.source: 0.0}
    delays: dict[int, float] = {}
    # process sends in construction order: parents precede children
    port_free: dict[int, list[float]] = {}
    cpu_free: dict[int, float] = {}
    for idx, send in enumerate(tree.sends):
        if send.src not in ready:
            raise ValueError("tree sends are not parent-before-child ordered")
        r = ready[send.src]
        cpu = max(cpu_free.get(send.src, 0.0), r) + timings.t_setup
        cpu_free[send.src] = cpu
        ports_list = port_free.setdefault(send.src, [0.0] * limit)
        slot = min(range(limit), key=lambda i: ports_list[i])
        inject = max(cpu, ports_list[slot])
        h = hamming(send.src, send.dst)
        delivered = inject + h * timings.t_hop + size * timings.t_byte
        ports_list[slot] = delivered
        received = delivered + timings.t_recv
        delays[send.dst] = received
        ready[send.dst] = received
        del idx
    return delays


def validate_against_model(
    tree: MulticastTree,
    size: int = 4096,
    timings: Timings = NCUBE2,
    ports: PortModel = ALL_PORT,
) -> ValidationReport:
    """Run the event simulator and compare with :func:`predict_delays`."""
    sim = simulate_multicast(tree, size, timings, ports)
    pred = predict_delays(tree, size, timings, ports)
    max_abs = 0.0
    max_rel = 0.0
    for dst, p in pred.items():
        s = sim.delays[dst]
        err = abs(s - p)
        max_abs = max(max_abs, err)
        if p > 0:
            max_rel = max(max_rel, err / p)
    return ValidationReport(
        max_abs_error=max_abs, max_rel_error=max_rel, destinations=len(pred)
    )
