"""The wormhole network model: channels, header progression, blocking.

Model (DESIGN.md Section 3): a worm's header acquires the directed
channels of its E-cube path one at a time, spending ``t_hop`` per
acquired hop.  A header that finds a channel busy joins that channel's
FIFO queue while *holding* every channel it already acquired -- the
defining (and costly) property of wormhole switching.  Once the header
reaches the destination router, the body pipelines through at channel
rate, so the tail drains ``size * t_byte`` later; at that instant the
message is delivered and every held channel is released (a conservative
simplification: on real hardware channel ``i`` is released as the tail
*passes* it, a stagger of at most ``hops * t_hop`` which is negligible
against ``size * t_byte`` and can only make the model report *more*
contention, never less).
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.core.addressing import require_address
from repro.core.paths import Arc, ResolutionOrder, ecube_arcs
from repro.simulator.engine import Simulator
from repro.simulator.message import Worm, WormState
from repro.simulator.params import NCUBE2, Timings
from repro.simulator.trace import ChannelTrace

__all__ = ["Channel", "WormholeNetwork"]


class Channel:
    """One directed channel with single ownership and a FIFO wait queue."""

    __slots__ = ("arc", "occupied_by", "queue")

    def __init__(self, arc: Arc) -> None:
        self.arc = arc
        self.occupied_by: Worm | None = None
        self.queue: deque[Worm] = deque()

    @property
    def busy(self) -> bool:
        return self.occupied_by is not None


class WormholeNetwork:
    """An ``n``-cube of wormhole routers driven by a :class:`Simulator`.

    Args:
        sim: the event kernel.
        n: hypercube dimension.
        timings: cost model (defaults to nCUBE-2-like constants).
        order: E-cube resolution order used by all routes.
        trace: record channel occupancies (small overhead; on by default
            in tests, off in large benchmark sweeps).
        on_delivered: callback fired when a worm's tail drains at its
            destination router (before the receiving CPU's ``t_recv``).
        on_aborted: callback fired when a worm aborts on a dead channel
            (see :meth:`fail_arc`); fault-aware drivers hook retries here.

    Channel failures (see docs/FAULTS.md): arcs marked dead via
    :meth:`fail_arc` take effect at *acquisition* time.  A header that
    attempts to acquire a dead channel aborts -- releasing every channel
    it holds, waking the released channels' waiters -- as do headers
    already queued on the channel when it fails.  A worm that acquired a
    channel before the failure completes normally (its flits are already
    in transit).  With no dead arcs, every code path is identical to the
    fault-free network.
    """

    def __init__(
        self,
        sim: Simulator,
        n: int,
        timings: Timings = NCUBE2,
        order: ResolutionOrder = ResolutionOrder.DESCENDING,
        trace: bool = False,
        on_delivered: Callable[[Worm], None] | None = None,
        route: Callable[[int, int], list[Arc]] | None = None,
        on_aborted: Callable[[Worm], None] | None = None,
    ) -> None:
        if n < 1:
            raise ValueError(f"hypercube dimension must be >= 1, got {n}")
        self.sim = sim
        self.n = n
        self.timings = timings
        self.order = order
        self.trace = ChannelTrace(enabled=trace)
        self.on_delivered = on_delivered
        self.on_aborted = on_aborted
        #: routing function; defaults to E-cube in the given order.  Any
        #: non-E-cube function forfeits the deadlock-freedom guarantee
        #: (see repro.simulator.deadlock).
        self.route = route if route is not None else (lambda u, v: ecube_arcs(u, v, order))
        self._channels: dict[Arc, Channel] = {}
        self._dead_arcs: set[Arc] = set()
        self._next_uid = 0
        self.worms: list[Worm] = []
        #: number of worms aborted on dead channels so far
        self.aborted_count = 0

    # -- topology validation hooks (overridable: see repro.mesh) --------

    def validate_node(self, node: int, what: str) -> None:
        require_address(node, self.n, what)

    def validate_arc(self, arc: Arc) -> None:
        node, dim = arc
        require_address(node, self.n, "channel tail")
        if not 0 <= dim < self.n:
            raise ValueError(f"channel dimension {dim} out of range")

    # -- worm creation / injection ------------------------------------

    def make_worm(
        self, src: int, dst: int, size: int, payload=None, arcs: list[Arc] | None = None
    ) -> Worm:
        """Create (but do not inject) a worm for the route ``src -> dst``.

        ``arcs`` overrides the network routing function for this worm
        only (fault-aware drivers use it to re-route retries around dead
        channels).
        """
        self.validate_node(src, "worm source")
        self.validate_node(dst, "worm destination")
        if src == dst:
            raise ValueError("a worm needs distinct endpoints")
        if size < 1:
            raise ValueError(f"message size must be >= 1 byte, got {size}")
        worm = Worm(
            uid=self._next_uid,
            src=src,
            dst=dst,
            size=size,
            arcs=self.route(src, dst) if arcs is None else list(arcs),
            payload=payload,
        )
        worm.t_created = self.sim.now
        self._next_uid += 1
        self.worms.append(worm)
        return worm

    def inject(self, worm: Worm) -> None:
        """Start the worm's header into the network *now*."""
        if worm.state is not WormState.PENDING:
            raise ValueError(f"worm {worm.uid} already injected")
        worm.state = WormState.INJECTING
        worm.t_injected = self.sim.now
        self._advance(worm)

    def channel(self, arc: Arc) -> Channel:
        ch = self._channels.get(arc)
        if ch is None:
            self.validate_arc(arc)
            ch = self._channels[arc] = Channel(arc)
        return ch

    # -- channel failures ----------------------------------------------

    @property
    def dead_arcs(self) -> frozenset[Arc]:
        """The directed channels currently marked dead."""
        return frozenset(self._dead_arcs)

    def fail_arc(self, arc: Arc) -> None:
        """Mark one directed channel dead, effective immediately.

        Headers queued on the channel abort now; the current occupant
        (if any) completes -- its flits are already in transit -- and
        every later acquisition attempt aborts (see :meth:`_abort`).
        Schedulable as a timed event: ``sim.schedule_at(t, net.fail_arc,
        arc)``.
        """
        self.validate_arc(arc)
        self._dead_arcs.add(arc)
        ch = self._channels.get(arc)
        if ch is None:
            return
        while ch.queue:
            waiter = ch.queue.popleft()
            waiter.mark_unblocked(self.sim.now)
            self._abort(waiter)

    def fail_link(self, node: int, dim: int) -> None:
        """Fail the bidirectional link ``{node, node ^ (1 << dim)}``
        (both directed arcs)."""
        self.fail_arc((node, dim))
        self.fail_arc((node ^ (1 << dim), dim))

    def _abort(self, worm: Worm) -> None:
        """Abort a worm on a dead channel: release everything it holds."""
        worm.state = WormState.ABORTED
        worm.t_aborted = self.sim.now
        self.aborted_count += 1
        held = worm.arcs[: worm.held]
        worm.held = 0
        for arc in held:
            ch = self.channel(arc)
            assert ch.occupied_by is worm
            ch.occupied_by = None
            self.trace.release(arc, worm.uid, self.sim.now)
            if ch.queue:
                nxt = ch.queue.popleft()
                nxt.mark_unblocked(self.sim.now)
                self._occupy(nxt, ch)
        if self.on_aborted is not None:
            self.on_aborted(worm)

    # -- header progression -------------------------------------------

    def _advance(self, worm: Worm) -> None:
        """Try to move the header across its next channel."""
        if worm.hop == worm.hops:
            # header at the destination router; the body pipelines in
            self.sim.schedule(worm.size * self.timings.t_byte, self._deliver, worm)
            return
        if self._dead_arcs and worm.arcs[worm.hop] in self._dead_arcs:
            self._abort(worm)
            return
        ch = self.channel(worm.arcs[worm.hop])
        if ch.busy:
            worm.mark_blocked(self.sim.now, ch.arc[1])
            ch.queue.append(worm)
        else:
            self._occupy(worm, ch)

    def _occupy(self, worm: Worm, ch: Channel) -> None:
        ch.occupied_by = worm
        worm.held += 1
        self.trace.occupy(ch.arc, worm.uid, self.sim.now)
        self.sim.schedule(self.timings.t_hop, self._header_crossed, worm)

    def _header_crossed(self, worm: Worm) -> None:
        worm.hop += 1
        self._advance(worm)

    def _deliver(self, worm: Worm) -> None:
        worm.state = WormState.DELIVERED
        worm.t_delivered = self.sim.now
        # tail has drained: release every held channel, waking waiters
        for arc in worm.arcs[: worm.held]:
            ch = self.channel(arc)
            assert ch.occupied_by is worm
            ch.occupied_by = None
            self.trace.release(arc, worm.uid, self.sim.now)
            if ch.queue:
                nxt = ch.queue.popleft()
                nxt.mark_unblocked(self.sim.now)
                self._occupy(nxt, ch)
        if self.on_delivered is not None:
            self.on_delivered(worm)

    # -- instrumentation ----------------------------------------------

    @property
    def total_blocked_time(self) -> float:
        """Sum of header blocking time across all worms."""
        return sum(w.blocked_time for w in self.worms)

    def assert_quiescent(self) -> None:
        """After a run: every worm delivered (or aborted on a dead
        channel), every channel free."""
        terminal = (WormState.DELIVERED, WormState.RECEIVED, WormState.ABORTED)
        for w in self.worms:
            if w.state not in terminal:
                raise AssertionError(f"worm {w.uid} ({w.src}->{w.dst}) stuck in {w.state}")
        for ch in self._channels.values():
            if ch.busy or ch.queue:
                raise AssertionError(f"channel {ch.arc} not quiescent")
        self.trace.finish()
