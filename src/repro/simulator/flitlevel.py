"""Flit-level reference simulator.

MultiSim's contribution [11] was simulating wormhole networks
*efficiently* -- i.e. above the flit level -- and validating that
abstraction against real hardware.  This module plays the role of the
ground truth for our own abstraction: a worm is simulated flit by flit,
with finite flit buffers at each router and genuine backpressure, so
that the channel-holding model of :mod:`repro.simulator.network` can be
cross-validated against it (``tests/simulator/test_flitlevel.py``).

Model
-----
A unicast of ``F`` flits follows its path's channel sequence
``c_0 .. c_{h-1}`` through buffer *positions* ``0 .. h``: position 0 is
the source's injection queue (unbounded), positions ``1 .. h-1`` are
router flit buffers of capacity ``buffer_flits``, position ``h`` is the
destination (unbounded).  Channel ``c_i`` moves one flit from position
``i`` to ``i+1`` per ``t_flit``, the header flit additionally paying
``t_hop`` routing delay; a channel is owned by one worm from the moment
its header is granted the channel until the tail flit crosses it, with
FIFO granting.  Backpressure is exact: a flit moves only into free
buffer space, so a blocked header stalls the worm's whole pipeline.

This model is O(F * h) events per worm -- orders of magnitude slower
than the channel-holding model, which is the point: it exists to be
checked against, not to run the 10-cube sweeps.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.paths import Arc, ResolutionOrder, ecube_arcs
from repro.simulator.engine import Simulator
from repro.simulator.params import NCUBE2, Timings

__all__ = ["FlitLevelNetwork", "FlitWorm", "simulate_tree_flitlevel"]


@dataclass(slots=True)
class FlitWorm:
    """One unicast simulated flit-by-flit."""

    uid: int
    src: int
    dst: int
    flits: int
    arcs: list[Arc]

    #: flits resident at each position (len == hops + 1)
    at: list[int] = field(default_factory=list)
    #: flits that have crossed each channel so far (len == hops)
    crossed: list[int] = field(default_factory=list)
    #: channels currently owned (prefix of the path)
    owned: int = 0
    #: index of the channel the header is waiting for, or None
    waiting_for: int | None = None
    t_injected: float = -1.0
    t_delivered: float = -1.0

    @property
    def hops(self) -> int:
        return len(self.arcs)

    def head_position(self) -> int:
        """Furthest position any flit has reached."""
        for i in range(self.hops, -1, -1):
            if self.at[i] > 0:
                return i
        return 0


class _FlitChannel:
    __slots__ = ("owner", "queue", "transfer_scheduled")

    def __init__(self) -> None:
        self.owner: FlitWorm | None = None
        self.queue: deque[FlitWorm] = deque()
        self.transfer_scheduled = False


class FlitLevelNetwork:
    """A hypercube simulated at flit granularity.

    Args:
        sim: event kernel.
        n: cube dimension.
        timings: ``t_byte`` is interpreted as the per-flit transfer time
            (one byte per flit), ``t_hop`` as the header routing delay.
        buffer_flits: router buffer capacity per channel (wormhole
            routing's defining "small" number; default 2).
    """

    def __init__(
        self,
        sim: Simulator,
        n: int,
        timings: Timings = NCUBE2,
        order: ResolutionOrder = ResolutionOrder.DESCENDING,
        buffer_flits: int = 2,
        route=None,
    ) -> None:
        if buffer_flits < 1:
            raise ValueError("router buffers need at least one flit slot")
        self.sim = sim
        self.n = n
        self.timings = timings
        self.order = order
        self.buffer_flits = buffer_flits
        #: routing function (defaults to E-cube; the mesh passes XY)
        self.route = route if route is not None else (lambda u, v: ecube_arcs(u, v, order))
        #: optional callback fired when a worm's last flit arrives
        self.on_delivered = None
        self._channels: dict[Arc, _FlitChannel] = {}
        self.worms: list[FlitWorm] = []

    # -- injection -------------------------------------------------------

    def inject(self, src: int, dst: int, flits: int) -> FlitWorm:
        """Start a unicast of ``flits`` flits now.  Returns its record."""
        if src == dst:
            raise ValueError("unicast endpoints must differ")
        if flits < 1:
            raise ValueError("a worm needs at least one flit")
        worm = FlitWorm(
            uid=len(self.worms),
            src=src,
            dst=dst,
            flits=flits,
            arcs=list(self.route(src, dst)),
        )
        worm.at = [flits] + [0] * worm.hops
        worm.crossed = [0] * worm.hops
        worm.t_injected = self.sim.now
        self.worms.append(worm)
        self._request(worm, 0)
        return worm

    def channel(self, arc: Arc) -> _FlitChannel:
        ch = self._channels.get(arc)
        if ch is None:
            ch = self._channels[arc] = _FlitChannel()
        return ch

    # -- ownership -------------------------------------------------------

    def _request(self, worm: FlitWorm, i: int) -> None:
        """Worm's header requests channel ``i``."""
        ch = self.channel(worm.arcs[i])
        if ch.owner is None:
            ch.owner = worm
            worm.owned = i + 1
            worm.waiting_for = None
            self._kick(worm, i)
        else:
            worm.waiting_for = i
            ch.queue.append(worm)

    def _release(self, worm: FlitWorm, i: int) -> None:
        ch = self.channel(worm.arcs[i])
        assert ch.owner is worm
        ch.owner = None
        if ch.queue:
            nxt = ch.queue.popleft()
            assert nxt.waiting_for is not None
            self._request(nxt, nxt.waiting_for)

    # -- flit movement ---------------------------------------------------

    def _can_transfer(self, worm: FlitWorm, i: int) -> bool:
        """Can channel ``i`` (owned by worm) move a flit right now?"""
        if i >= worm.owned:
            return False
        if worm.at[i] == 0:
            return False
        if worm.crossed[i] >= worm.flits:
            return False
        if i + 1 < worm.hops and worm.at[i + 1] >= self.buffer_flits:
            return False
        return True

    def _kick(self, worm: FlitWorm, i: int) -> None:
        """(Re)schedule channel ``i``'s next transfer if it can proceed."""
        ch = self.channel(worm.arcs[i])
        if ch.transfer_scheduled or ch.owner is not worm:
            return
        if not self._can_transfer(worm, i):
            return
        ch.transfer_scheduled = True
        is_header = worm.crossed[i] == 0
        delay = self.timings.t_byte + (self.timings.t_hop if is_header else 0.0)
        self.sim.schedule(delay, self._complete_transfer, worm, i)

    def _complete_transfer(self, worm: FlitWorm, i: int) -> None:
        ch = self.channel(worm.arcs[i])
        ch.transfer_scheduled = False
        worm.at[i] -= 1
        worm.at[i + 1] += 1
        worm.crossed[i] += 1
        header_arrived = worm.crossed[i] == 1 and i + 1 == worm.owned
        if header_arrived and i + 1 < worm.hops:
            self._request(worm, i + 1)
        if worm.crossed[i] == worm.flits:
            # tail has crossed channel i: release it
            self._release(worm, i)
        if i + 1 == worm.hops and worm.at[worm.hops] == worm.flits:
            worm.t_delivered = self.sim.now
            if self.on_delivered is not None:
                self.on_delivered(worm)
        # movement may unblock this channel again and the one upstream
        self._kick(worm, i)
        if i > 0:
            self._kick(worm, i - 1)
        if i + 1 < worm.hops:
            self._kick(worm, i + 1)

    # -- instrumentation ---------------------------------------------------

    def assert_quiescent(self) -> None:
        for w in self.worms:
            if w.t_delivered < 0:
                raise AssertionError(f"worm {w.uid} ({w.src}->{w.dst}) undelivered")
        for arc, ch in self._channels.items():
            if ch.owner is not None or ch.queue:
                raise AssertionError(f"channel {arc} not quiescent")


def simulate_tree_flitlevel(tree, flits: int, timings: Timings = NCUBE2, buffer_flits: int = 2):
    """Run a whole multicast tree at flit granularity (no CPU model).

    Each node's forwards are injected the moment its own copy fully
    arrives.  Returns ``{destination: delivery_time}``.  Intended for
    validation at small message sizes -- O(flits x hops) events per
    unicast.
    """
    from repro.simulator.engine import Simulator

    sim = Simulator()
    net = FlitLevelNetwork(sim, tree.n, timings=timings, order=tree.order,
                           buffer_flits=buffer_flits)
    delivered: dict[int, float] = {}

    def on_delivered(worm: FlitWorm) -> None:
        delivered[worm.dst] = sim.now
        for s in tree.sends_from(worm.dst):
            net.inject(s.src, s.dst, flits)

    net.on_delivered = on_delivered
    for s in tree.sends_from(tree.source):
        net.inject(s.src, s.dst, flits)
    sim.run()
    net.assert_quiescent()
    missing = tree.destinations - delivered.keys()
    if missing:
        raise AssertionError(f"flit-level multicast never reached {sorted(missing)}")
    return delivered
