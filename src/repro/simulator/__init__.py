"""Discrete-event simulator for wormhole-routed hypercubes.

This subpackage stands in for both pieces of the paper's evaluation
infrastructure that cannot be reproduced directly:

- the 64-node **nCUBE-2** the measurements of Section 5.2 ran on, and
- **MultiSim** [McKinley & Trefftz 1993], the CSIM-based simulator used
  for the larger cubes of Section 5.3.

The model (see DESIGN.md Section 3): a unicast's worm acquires the
channels of its E-cube path hop by hop; blocked headers wait FIFO on
the busy channel while holding all upstream channels; data pipelines
behind the header, so an unblocked ``L``-byte unicast over ``h`` hops
costs ``t_setup + h * t_hop + L * t_byte`` of network time -- nearly
distance-insensitive, as wormhole routing requires.  Injection ports
are a per-node resource implementing the one-port/all-port/k-port
models.

The timing constants default to nCUBE-2-like values
(:data:`repro.simulator.params.NCUBE2`); :data:`~repro.simulator.params.STEP`
gives unit-cost timings under which delivery times coincide with the
abstract step schedule, which the test suite uses for cross-validation.
"""

from repro.simulator.deadlock import is_deadlock_free, stall_report, waiting_cycle
from repro.simulator.engine import Event, Simulator
from repro.simulator.flitlevel import FlitLevelNetwork
from repro.simulator.message import Worm, WormState
from repro.simulator.multirun import ConcurrentResult, simulate_concurrent_multicasts
from repro.simulator.network import Channel, WormholeNetwork
from repro.simulator.node import HostNode
from repro.simulator.params import NCUBE2, STEP, Timings
from repro.simulator.routing import ecube_routing, random_minimal_routing
from repro.simulator.run import MulticastResult, simulate_multicast
from repro.simulator.timeline import render_timeline
from repro.simulator.trace import ChannelTrace, Occupancy
from repro.simulator.traffic import LoadedResult, simulate_multicast_under_load
from repro.simulator.validation import validate_against_model

__all__ = [
    "Channel",
    "ChannelTrace",
    "ConcurrentResult",
    "Event",
    "FlitLevelNetwork",
    "HostNode",
    "LoadedResult",
    "MulticastResult",
    "NCUBE2",
    "Occupancy",
    "STEP",
    "Simulator",
    "Timings",
    "Worm",
    "WormState",
    "WormholeNetwork",
    "ecube_routing",
    "is_deadlock_free",
    "random_minimal_routing",
    "render_timeline",
    "simulate_concurrent_multicasts",
    "simulate_multicast",
    "simulate_multicast_under_load",
    "stall_report",
    "validate_against_model",
    "waiting_cycle",
]
