"""Wire protocol of the schedule-planning service: requests and errors.

Every ``/v1/*`` endpoint consumes one JSON object and produces one
JSON object.  This module is the single place where untrusted request
bodies become validated, *bounded* :class:`PlanRequest` values: the
planner behind the service executes pure-Python schedule builds, so the
protocol layer enforces the limits (cube dimension, destination count,
message size) that keep one request from monopolizing a worker.

Canonical encoding: responses are serialized with sorted keys and
compact separators (:func:`encode_json`), so two requests resolving to
the same planner value receive byte-identical bodies -- the property
the single-flight coalescing tests pin down.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping

from repro.core.paths import ResolutionOrder
from repro.multicast.ports import ALL_PORT, ONE_PORT, PortModel, k_port
from repro.simulator.params import NCUBE2, Timings

__all__ = [
    "MAX_DESTINATIONS",
    "MAX_MESSAGE_BYTES",
    "MAX_N",
    "PlanRequest",
    "ProtocolError",
    "encode_json",
    "parse_plan_request",
]

#: Largest cube dimension the service will plan for.  2^12 = 4096
#: nodes; beyond that a single pure-Python build can take seconds and
#: belongs in the batch sweep engine, not a request/response service.
MAX_N = 12

#: Cap on destinations per request (also bounded by ``2^n - 1``).
MAX_DESTINATIONS = 4096

#: Cap on the simulated message size for ``/v1/simulate``.
MAX_MESSAGE_BYTES = 1 << 20


class ProtocolError(ValueError):
    """A malformed or out-of-bounds request body (HTTP 400)."""


def encode_json(payload: Any) -> bytes:
    """The canonical response encoding: sorted keys, compact, one LF."""
    return (json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n").encode("utf-8")


@dataclass(frozen=True, slots=True)
class PlanRequest:
    """One validated planning request (schedule, verify, or simulate).

    ``destinations`` is normalized to a sorted, de-duplicated tuple so
    equal requests -- however the client ordered them -- share one
    cache key and coalesce onto one in-flight build.
    """

    kind: str
    algorithm: str
    n: int
    source: int
    destinations: tuple[int, ...]
    ports: PortModel
    order: ResolutionOrder
    size: int = 4096
    timings: Timings = NCUBE2

    @property
    def m(self) -> int:
        return len(self.destinations)

    def describe(self) -> dict[str, Any]:
        """The request echo included in responses (JSON-safe)."""
        doc: dict[str, Any] = {
            "kind": self.kind,
            "algorithm": self.algorithm,
            "n": self.n,
            "source": self.source,
            "m": self.m,
            "ports": self.ports.name,
            "order": self.order.name.lower(),
        }
        if self.kind == "simulate":
            doc["size"] = self.size
        return doc


def _require_int(doc: Mapping[str, Any], field: str, lo: int, hi: int, default=None) -> int:
    value = doc.get(field, default)
    if value is None:
        raise ProtocolError(f"missing required field {field!r}")
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"field {field!r} must be an integer, got {value!r}")
    if not lo <= value <= hi:
        raise ProtocolError(f"field {field!r} must be in [{lo}, {hi}], got {value}")
    return value


def _parse_ports(spec: Any, n: int) -> PortModel:
    if isinstance(spec, bool):  # bool is an int; reject before == 1 matches
        raise ProtocolError(f"field 'ports' must be 'all', 'one', or an integer, got {spec!r}")
    if spec is None or spec == "all":
        return ALL_PORT
    if spec == "one" or spec == 1:
        return ONE_PORT
    if not isinstance(spec, int):
        raise ProtocolError(f"field 'ports' must be 'all', 'one', or an integer, got {spec!r}")
    if not 1 <= spec <= n:
        raise ProtocolError(f"field 'ports' must be in [1, {n}] for an {n}-cube, got {spec}")
    return k_port(spec)


def _parse_order(spec: Any) -> ResolutionOrder:
    if spec is None or spec == "descending":
        return ResolutionOrder.DESCENDING
    if spec == "ascending":
        return ResolutionOrder.ASCENDING
    raise ProtocolError(
        f"field 'order' must be 'descending' or 'ascending', got {spec!r}"
    )


def parse_plan_request(doc: Any, kind: str) -> PlanRequest:
    """Validate one request body into a :class:`PlanRequest`.

    Raises:
        ProtocolError: on any structural, type, or bounds violation;
            the message is safe to return verbatim in a 400 body.
    """
    if not isinstance(doc, Mapping):
        raise ProtocolError("request body must be a JSON object")
    from repro.multicast.registry import ALGORITHMS

    algorithm = doc.get("algorithm", "wsort")
    if algorithm not in ALGORITHMS:
        raise ProtocolError(
            f"unknown algorithm {algorithm!r}; known: {', '.join(sorted(ALGORITHMS))}"
        )
    n = _require_int(doc, "n", 1, MAX_N)
    size = 1 << n
    source = _require_int(doc, "source", 0, size - 1, default=0)
    raw_dests = doc.get("destinations")
    if not isinstance(raw_dests, (list, tuple)) or not raw_dests:
        raise ProtocolError("field 'destinations' must be a non-empty array of node ids")
    if len(raw_dests) > MAX_DESTINATIONS:
        raise ProtocolError(
            f"too many destinations ({len(raw_dests)} > {MAX_DESTINATIONS})"
        )
    dests: set[int] = set()
    for d in raw_dests:
        if isinstance(d, bool) or not isinstance(d, int):
            raise ProtocolError(f"destination {d!r} is not an integer node id")
        if not 0 <= d < size:
            raise ProtocolError(f"destination {d} out of range for an {n}-cube")
        if d == source:
            raise ProtocolError(f"destination {d} equals the source")
        dests.add(d)
    msg_size = _require_int(doc, "size", 1, MAX_MESSAGE_BYTES, default=4096)
    return PlanRequest(
        kind=kind,
        algorithm=algorithm,
        n=n,
        source=source,
        destinations=tuple(sorted(dests)),
        ports=_parse_ports(doc.get("ports"), n),
        order=_parse_order(doc.get("order")),
        size=msg_size,
    )
