"""The planner service: cache-backed, single-flight, executor-offloaded.

This is the service's middle layer -- handlers call it, it calls the
library -- and it adds the three production mechanics a long-lived
process needs on top of :mod:`repro.parallel.cache`:

* **Repository.**  The content-addressed
  :class:`~repro.parallel.cache.ScheduleCache` (memory + checksummed
  disk) is the backing store.  Keys come from the *same* key functions
  the sweep engine uses (:func:`~repro.parallel.cache.schedule_table_key`,
  :func:`~repro.parallel.cache.delay_stats_key`), so a warm sweep cache
  directory serves the service and vice versa.

* **Single-flight coalescing.**  N concurrent requests for the same key
  perform exactly one build; followers await the leader's task (shielded,
  so one caller's deadline cannot cancel everyone's build) and all see
  the identical value object.  ``sim.service.builds`` counts actual
  builds, ``sim.service.coalesced`` counts followers.

* **Executor offload.**  Builds are pure-Python CPU work; they run on a
  bounded :class:`~concurrent.futures.ThreadPoolExecutor` so the event
  loop keeps accepting connections and serving cache hits while a build
  is in progress.  The executor's bounded worker count is the service's
  build concurrency; excess builds queue inside the executor.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable

from repro.obs.metrics import MetricsRegistry
from repro.parallel.cache import (
    ScheduleCache,
    cache_key,
    compute_delay_stats,
    compute_schedule_table,
    delay_stats_key,
    schedule_table_key,
)
from repro.service.protocol import PlanRequest

__all__ = ["PlanResult", "PlannerService", "verify_table_key"]


def verify_table_key(req: PlanRequest) -> str:
    """Content address of one verification verdict.

    Same input fields as a schedule table (a verdict is a pure function
    of them), under its own ``kind`` namespace.
    """
    return cache_key(
        "verify",
        algorithm=req.algorithm,
        n=req.n,
        source=req.source,
        dests=list(req.destinations),
        ports=[req.ports.ports, req.ports.name],
        order=req.order.name,
    )


def _compute_verify(req: PlanRequest) -> dict:
    from repro.multicast.registry import get_algorithm
    from repro.multicast.verify import verify_multicast

    result = verify_multicast(
        get_algorithm(req.algorithm),
        req.n,
        req.source,
        list(req.destinations),
        req.ports,
        req.order,
    )
    return {
        "ok": result.ok,
        "errors": list(result.errors),
        "max_step": result.schedule.max_step if result.schedule is not None else None,
    }


@dataclass(slots=True)
class PlanResult:
    """One resolved plan: the cached value plus where it came from.

    ``source`` is ``"cache"`` for a repository hit and ``"build"`` for
    a freshly computed value -- including for every follower coalesced
    onto that build, so one coalesced group reports uniformly (and
    serializes byte-identically).
    """

    key: str
    value: dict
    source: str


class PlannerService:
    """Async facade over the schedule/verify/simulate computations."""

    def __init__(
        self,
        cache: ScheduleCache | None = None,
        metrics: MetricsRegistry | None = None,
        max_workers: int = 4,
        build_delay_s: float = 0.0,
    ) -> None:
        self.cache = cache if cache is not None else ScheduleCache()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: artificial per-build delay; a test/soak knob that widens the
        #: coalescing window without changing any computed value.
        self.build_delay_s = build_delay_s
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-service-build"
        )
        self._inflight: dict[str, asyncio.Task] = {}

    # -- request entry points ------------------------------------------

    async def schedule(self, req: PlanRequest) -> PlanResult:
        key = schedule_table_key(
            req.algorithm, req.n, req.source, req.destinations, req.ports, req.order
        )
        return await self._resolve(
            key,
            lambda: compute_schedule_table(
                req.algorithm, req.n, req.source, req.destinations, req.ports, req.order
            ),
        )

    async def verify(self, req: PlanRequest) -> PlanResult:
        return await self._resolve(verify_table_key(req), lambda: _compute_verify(req))

    async def simulate(self, req: PlanRequest) -> PlanResult:
        key = delay_stats_key(
            req.algorithm,
            req.n,
            req.source,
            req.destinations,
            req.size,
            req.timings,
            req.ports,
            req.order,
        )
        return await self._resolve(
            key,
            lambda: compute_delay_stats(
                req.algorithm,
                req.n,
                req.source,
                req.destinations,
                req.size,
                req.timings,
                req.ports,
                req.order,
            ),
        )

    # -- single-flight core --------------------------------------------

    def _build(self, build: Callable[[], dict]) -> dict:
        if self.build_delay_s > 0.0:
            time.sleep(self.build_delay_s)
        return build()

    async def _build_and_store(self, key: str, build: Callable[[], dict]) -> dict:
        loop = asyncio.get_running_loop()
        t0 = time.perf_counter()
        value = await loop.run_in_executor(self._executor, self._build, build)
        self.metrics.timer("sim.service.build_seconds").record(time.perf_counter() - t0)
        self.cache.put(key, value)
        return value

    async def _resolve(self, key: str, build: Callable[[], dict]) -> PlanResult:
        value = self.cache.get(key)
        if value is not None:
            return PlanResult(key, value, "cache")  # type: ignore[arg-type]
        task = self._inflight.get(key)
        if task is None:
            self.metrics.counter("sim.service.builds").inc()
            task = asyncio.ensure_future(self._build_and_store(key, build))
            self._inflight[key] = task
            task.add_done_callback(lambda t: self._finish(key, t))
        else:
            self.metrics.counter("sim.service.coalesced").inc()
        # shield: a cancelled waiter (deadline, dropped connection) must
        # not cancel the build the rest of the coalesced group awaits
        value = await asyncio.shield(task)
        return PlanResult(key, value, "build")

    def _finish(self, key: str, task: asyncio.Task) -> None:
        self._inflight.pop(key, None)
        if not task.cancelled() and task.exception() is not None:
            # retrieve so an all-waiters-cancelled failure never logs
            # "exception was never retrieved"
            self.metrics.counter("sim.service.build_errors").inc()

    def inflight_builds(self) -> int:
        return len(self._inflight)

    def close(self) -> None:
        self._executor.shutdown(wait=True, cancel_futures=True)
