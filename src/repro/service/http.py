"""A minimal stdlib-only asyncio HTTP/1.1 server.

Just enough HTTP for a JSON planning service: request line + headers +
``Content-Length`` bodies in, status + headers + body out, keep-alive
by default (HTTP/1.1 semantics), no chunked encoding, no TLS.  The
point is zero new runtime dependencies -- the repo's contract since
PR 1 -- while still speaking a protocol every load balancer, curl, and
Prometheus scraper understands.

The server tracks open connections and in-flight requests so
:meth:`HttpServer.drain` can implement graceful shutdown: stop
accepting, let in-flight requests finish (bounded by a grace period),
then close lingering keep-alive connections.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable
from urllib.parse import parse_qsl, urlsplit

__all__ = ["HttpError", "HttpServer", "Request", "Response", "STATUS_REASONS"]

STATUS_REASONS = {
    200: "OK",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Hard caps on the request head; a planning request is a few KB.
MAX_REQUEST_LINE = 8 * 1024
MAX_HEADERS = 100


class HttpError(Exception):
    """A malformed request the connection loop answers directly."""

    def __init__(self, status: int, reason: str) -> None:
        super().__init__(reason)
        self.status = status
        self.reason = reason


@dataclass(slots=True)
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]  # keys lower-cased
    body: bytes
    client: str  # "ip:port" of the peer

    def json(self) -> Any:
        """The body parsed as JSON; raises :class:`HttpError` (400)."""
        if not self.body:
            raise HttpError(400, "empty request body (expected JSON)")
        try:
            return json.loads(self.body)
        except ValueError as exc:
            raise HttpError(400, f"invalid JSON body: {exc}") from exc


@dataclass(slots=True)
class Response:
    """One HTTP response; exactly one of ``payload``/``body`` is used."""

    status: int = 200
    payload: Any = None  # JSON-serialized canonically when body is None
    body: bytes | None = None
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)

    def encode_body(self) -> bytes:
        if self.body is not None:
            return self.body
        from repro.service.protocol import encode_json

        return encode_json(self.payload)


Handler = Callable[[Request], Awaitable[Response]]


async def _read_head(reader: asyncio.StreamReader) -> tuple[str, str, str, dict[str, str]]:
    """Read and parse the request line and headers."""
    line = await reader.readline()
    if not line:
        raise asyncio.IncompleteReadError(b"", None)  # peer closed between requests
    if len(line) > MAX_REQUEST_LINE:
        raise HttpError(400, "request line too long")
    parts = line.decode("latin-1").rstrip("\r\n").split()
    if len(parts) != 3:
        raise HttpError(400, "malformed request line")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise HttpError(400, f"unsupported protocol {version}")
    headers: dict[str, str] = {}
    for _ in range(MAX_HEADERS + 1):
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        if len(headers) >= MAX_HEADERS:
            raise HttpError(400, "too many headers")
        text = raw.decode("latin-1").rstrip("\r\n")
        name, sep, value = text.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {text!r}")
        headers[name.strip().lower()] = value.strip()
    return method, target, version, headers


def _encode_response(resp: Response, *, keep_alive: bool) -> bytes:
    body = resp.encode_body()
    reason = STATUS_REASONS.get(resp.status, "Unknown")
    head = [
        f"HTTP/1.1 {resp.status} {reason}",
        f"Content-Type: {resp.content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in resp.headers.items():
        head.append(f"{name}: {value}")
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body


class HttpServer:
    """Serve ``handler`` over HTTP/1.1 with keep-alive and drain support."""

    def __init__(
        self,
        handler: Handler,
        host: str = "127.0.0.1",
        port: int = 0,
        max_body_bytes: int = 1 << 20,
    ) -> None:
        self.handler = handler
        self.host = host
        self.port = port
        self.max_body_bytes = max_body_bytes
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._draining = False

    async def start(self) -> None:
        self._server = await asyncio.start_server(self._serve_connection, self.host, self.port)
        # resolve the actual port for ``port=0`` (tests, CI, parallel soaks)
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def connections(self) -> int:
        return len(self._connections)

    async def _read_body(self, reader: asyncio.StreamReader, headers: dict[str, str]) -> bytes:
        raw = headers.get("content-length", "0")
        try:
            length = int(raw)
        except ValueError:
            raise HttpError(400, f"bad Content-Length {raw!r}") from None
        if length < 0:
            raise HttpError(400, f"bad Content-Length {raw!r}")
        if length > self.max_body_bytes:
            raise HttpError(413, f"body of {length} bytes exceeds {self.max_body_bytes}")
        if "chunked" in headers.get("transfer-encoding", "").lower():
            raise HttpError(400, "chunked request bodies are not supported")
        return await reader.readexactly(length) if length else b""

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        client = f"{peer[0]}:{peer[1]}" if isinstance(peer, tuple) else str(peer)
        self._connections.add(writer)
        try:
            while True:
                try:
                    method, target, version, headers = await _read_head(reader)
                    body = await self._read_body(reader, headers)
                except HttpError as exc:
                    writer.write(
                        _encode_response(
                            Response(status=exc.status, payload={"error": exc.reason}),
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    return
                split = urlsplit(target)
                request = Request(
                    method=method.upper(),
                    path=split.path,
                    query=dict(parse_qsl(split.query)),
                    headers=headers,
                    body=body,
                    client=client,
                )
                wants_close = (
                    headers.get("connection", "").lower() == "close"
                    or version == "HTTP/1.0"
                )
                keep_alive = not wants_close and not self._draining
                self._inflight += 1
                self._idle.clear()
                try:
                    try:
                        response = await self.handler(request)
                    except HttpError as exc:
                        response = Response(status=exc.status, payload={"error": exc.reason})
                    except Exception as exc:  # never leak a traceback as a hang
                        response = Response(
                            status=500, payload={"error": f"internal error: {exc}"}
                        )
                    writer.write(_encode_response(response, keep_alive=keep_alive))
                    await writer.drain()
                finally:
                    self._inflight -= 1
                    if self._inflight == 0:
                        self._idle.set()
                if not keep_alive:
                    return
        except (asyncio.IncompleteReadError, ConnectionResetError, BrokenPipeError):
            pass  # peer went away; nothing to answer
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def drain(self, grace_s: float = 5.0) -> bool:
        """Graceful shutdown: stop accepting, finish in-flight, close.

        Returns True when all in-flight requests finished within the
        grace period, False when lingering work was cut off.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        clean = True
        try:
            await asyncio.wait_for(self._idle.wait(), timeout=grace_s)
        except asyncio.TimeoutError:
            clean = False
        for writer in list(self._connections):
            writer.close()
        return clean
