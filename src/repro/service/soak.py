"""Soak harness: boot the service in-process, drive load, report.

One call -- :func:`run_soak` -- owns the whole lifecycle: start a
:class:`~repro.service.app.ServiceThread` on an ephemeral port, run the
configured :mod:`~repro.service.loadgen` workload against it over real
sockets, then drain and merge what both sides observed:

* client side: req/s, p50/p99 latency, observed hit ratio;
* server side: builds vs coalesced vs cache hits, admission rejections,
  the repository's own :meth:`~repro.parallel.cache.ScheduleCache.hit_ratio`.

The benchmark ledger (``repro.obs.ledger``) wraps this to commit
``service.*`` entries; the CI smoke job and ``examples/service_load.py``
use it directly.  A warm-up pass (same keys, not measured) is run first
so steady-state entries measure the cache-hit path, not one-time builds.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.service.app import ServiceConfig, ServiceThread
from repro.service.loadgen import LoadConfig, LoadSummary, run_load_sync

__all__ = ["SoakConfig", "SoakReport", "run_soak"]


@dataclass(frozen=True, slots=True)
class SoakConfig:
    """One self-contained soak: service knobs + workload knobs."""

    service: ServiceConfig = field(default_factory=lambda: ServiceConfig(port=0))
    load: LoadConfig = field(default_factory=LoadConfig)
    #: requests issued before measurement to populate the cache
    #: (0 disables; defaults to one pass over the key pool).
    warmup_requests: int | None = None


@dataclass(slots=True)
class SoakReport:
    """Client-side summary plus the server's own counters."""

    summary: LoadSummary
    server: dict

    def as_dict(self) -> dict:
        return {"client": self.summary.as_dict(), "server": self.server}


def run_soak(config: SoakConfig | None = None) -> SoakReport:
    """Run one soak end to end; blocking, suitable for benchmarks."""
    config = config if config is not None else SoakConfig()
    with ServiceThread(config.service) as svc:
        load = replace(config.load, host=svc.host, port=svc.port)
        warmup = (
            config.warmup_requests
            if config.warmup_requests is not None
            else load.keys
        )
        if warmup > 0:
            # cover every key deterministically: skew=0 with exactly one
            # pass is not guaranteed to touch all keys, so oversample
            run_load_sync(
                replace(
                    load,
                    requests=max(warmup, 3 * load.keys),
                    skew=0.0,
                    arrival="closed",
                    client_id="soak-warmup",
                )
            )
        summary = run_load_sync(load)
        app = svc.app
        assert app is not None
        counters = {
            name: app.metrics.counter(name).value
            for name in (
                "sim.service.requests",
                "sim.service.builds",
                "sim.service.coalesced",
                "sim.service.rejected_rate",
                "sim.service.rejected_capacity",
                "sim.service.build_errors",
            )
        }
        server = {
            "counters": counters,
            "cache": app.planner.cache.stats(),
        }
    return SoakReport(summary=summary, server=server)
