"""Multicast planning as a service.

A stdlib-only asyncio HTTP+JSON service exposing the repo's
schedule/verify/simulate pipeline as request/response endpoints, with
the mechanics a long-lived process needs: single-flight coalescing of
identical in-flight builds, bounded admission (in-flight cap, wait
queue, per-client token buckets), request deadlines, and graceful
drain on SIGTERM.

Layering (see ``docs/SERVICE.md``)::

    http.py       transport: HTTP/1.1 parsing, keep-alive, drain
    app.py        routing, deadlines, usage accounting, lifecycle
    admission.py  the front door: caps, queue, rate limits
    planner.py    single-flight builds over the schedule cache
    protocol.py   request validation and canonical JSON encoding
    loadgen.py    the load-generator client
    soak.py       in-process soak harness (service + load, one call)
"""

from repro.service.admission import AdmissionConfig, AdmissionController, Rejected
from repro.service.app import ServiceApp, ServiceConfig, ServiceThread, serve_async
from repro.service.planner import PlannerService, PlanResult
from repro.service.protocol import PlanRequest, ProtocolError, encode_json, parse_plan_request

# The client side (loadgen, soak) loads lazily so `python -m
# repro.service.loadgen` does not re-import the module runpy is about
# to execute (which would trip RuntimeWarning and double-run module
# state).
_LAZY = {
    "LoadConfig": "repro.service.loadgen",
    "LoadSummary": "repro.service.loadgen",
    "run_load": "repro.service.loadgen",
    "run_load_sync": "repro.service.loadgen",
    "SoakConfig": "repro.service.soak",
    "SoakReport": "repro.service.soak",
    "run_soak": "repro.service.soak",
}


def __getattr__(name: str):
    try:
        module = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module), name)
    globals()[name] = value
    return value

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "LoadConfig",
    "LoadSummary",
    "PlanRequest",
    "PlanResult",
    "PlannerService",
    "ProtocolError",
    "Rejected",
    "ServiceApp",
    "ServiceConfig",
    "ServiceThread",
    "SoakConfig",
    "SoakReport",
    "encode_json",
    "parse_plan_request",
    "run_load",
    "run_load_sync",
    "run_soak",
    "serve_async",
]
