"""Load generator for the schedule-planning service.

A stdlib-only async client that drives ``/v1/*`` endpoints over
keep-alive HTTP/1.1 connections and reports the numbers the soak
benchmark and CI smoke job gate on: sustained req/s, p50/p99 latency,
and observed cache hit ratio.

Workload shape is configurable along the two axes that matter for a
caching service:

* **Arrival process** -- ``closed`` (each worker fires its next request
  the moment the previous completes; measures capacity) or ``poisson``
  (exponential think time targeting an aggregate arrival rate;
  measures behaviour at a fixed offered load).

* **Destination-set skew** -- requests draw from a pool of
  destination sets (:func:`repro.analysis.workloads.random_destination_sets`)
  under a Zipf distribution with parameter ``skew``; ``skew=0`` is
  uniform, larger values concentrate traffic on a few hot keys the way
  real collective workloads revisit the same communicator shapes.

Latencies are recorded into a bounded-memory
:class:`~repro.obs.metrics.Histogram`, so arbitrarily long soaks cost
O(1) memory; quantiles come from :meth:`Histogram.quantile` (bucket
upper bounds -- conservative for SLO gates).

The client is a polite citizen of an overloaded service: a 429 is not
a failure but a scheduling hint -- the worker sleeps out the server's
``Retry-After`` (jittered, capped) and re-offers the same request --
and a connection reset or refused connect is retried up to
``retries`` times under jittered exponential backoff before it counts
as an error.  Both behaviours are what the resilience docs
(docs/RESILIENCE.md) prescribe for fleet clients generally.
"""

from __future__ import annotations

import argparse
import asyncio
import bisect
import json
import random
import sys
import time
from dataclasses import dataclass, field

from repro.analysis.workloads import random_destination_sets
from repro.obs.metrics import SERVICE_LATENCY_BUCKETS_MS, Histogram
from repro.obs.sink import RotatingJsonlSink
from repro.obs.telemetry import RunRecord, new_run_id

__all__ = ["LoadConfig", "LoadSummary", "run_load", "run_load_sync", "main"]


@dataclass(frozen=True, slots=True)
class LoadConfig:
    """One load run against a running service."""

    host: str = "127.0.0.1"
    port: int = 8421
    endpoint: str = "schedule"  # schedule | verify | simulate
    requests: int = 1000
    concurrency: int = 8
    #: arrival process: "closed" or "poisson".
    arrival: str = "closed"
    #: aggregate target arrival rate (req/s) for the poisson process.
    rate: float = 500.0
    #: key-pool shape: cube dimension, destinations per set, pool size.
    n: int = 6
    m: int = 8
    keys: int = 16
    #: Zipf skew over the key pool; 0 = uniform.
    skew: float = 1.1
    algorithm: str = "wsort"
    seed: int = 20260808
    client_id: str = "loadgen"
    deadline_ms: float | None = None
    #: transport-error / 429 retries per request before giving up.
    retries: int = 2
    #: first backoff delay for transport retries (doubles per attempt,
    #: jittered); also the fallback wait for a 429 with no Retry-After.
    backoff_s: float = 0.05
    #: ceiling on any single retry sleep (guards a hostile Retry-After).
    max_backoff_s: float = 5.0

    def __post_init__(self) -> None:
        if self.endpoint not in ("schedule", "verify", "simulate"):
            raise ValueError(f"unknown endpoint {self.endpoint!r}")
        if self.arrival not in ("closed", "poisson"):
            raise ValueError(f"unknown arrival process {self.arrival!r}")
        if self.requests < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
        if self.concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {self.concurrency}")
        if not 1 <= self.m < (1 << self.n):
            raise ValueError(f"m={self.m} invalid for an {self.n}-cube")
        if self.keys < 1:
            raise ValueError(f"keys must be >= 1, got {self.keys}")
        if self.skew < 0:
            raise ValueError(f"skew must be >= 0, got {self.skew}")
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_s <= 0:
            raise ValueError(f"backoff_s must be positive, got {self.backoff_s}")
        if self.max_backoff_s < self.backoff_s:
            raise ValueError(
                f"max_backoff_s {self.max_backoff_s} below backoff_s {self.backoff_s}"
            )


@dataclass(slots=True)
class LoadSummary:
    """What one load run measured."""

    requests: int = 0
    ok: int = 0
    cache_hits: int = 0
    builds: int = 0
    statuses: dict[int, int] = field(default_factory=dict)
    errors: int = 0
    #: transport failures retried (reset/refused that did not become errors).
    retried: int = 0
    #: 429 responses waited out per the server's Retry-After and re-offered.
    throttled: int = 0
    wall_seconds: float = 0.0
    latency: Histogram = field(
        default_factory=lambda: Histogram("loadgen.latency_ms", SERVICE_LATENCY_BUCKETS_MS)
    )

    @property
    def rps(self) -> float:
        return self.requests / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def hit_ratio(self) -> float:
        answered = self.cache_hits + self.builds
        return self.cache_hits / answered if answered else 0.0

    @property
    def p50_ms(self) -> float:
        return self.latency.quantile(0.50)

    @property
    def p99_ms(self) -> float:
        return self.latency.quantile(0.99)

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "ok": self.ok,
            "errors": self.errors,
            "retried": self.retried,
            "throttled": self.throttled,
            "statuses": {str(k): v for k, v in sorted(self.statuses.items())},
            "cache_hits": self.cache_hits,
            "builds": self.builds,
            "hit_ratio": round(self.hit_ratio, 6),
            "wall_seconds": round(self.wall_seconds, 6),
            "rps": round(self.rps, 3),
            "p50_ms": round(self.p50_ms, 4),
            "p99_ms": round(self.p99_ms, 4),
            "max_ms": round(self.latency.max, 4),
        }


class _ZipfPicker:
    """Zipf-skewed choice over ``count`` ranks (rank 0 hottest)."""

    def __init__(self, count: int, skew: float, rng: random.Random) -> None:
        weights = [1.0 / (rank + 1) ** skew for rank in range(count)]
        total = sum(weights)
        acc = 0.0
        self._cdf = []
        for w in weights:
            acc += w / total
            self._cdf.append(acc)
        self._rng = rng

    def pick(self) -> int:
        return bisect.bisect_left(self._cdf, self._rng.random())


class _Connection:
    """One keep-alive HTTP/1.1 connection speaking just enough HTTP."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(self.host, self.port)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._reader = self._writer = None

    async def request(
        self, method: str, path: str, body: bytes, headers: dict[str, str]
    ) -> tuple[int, dict[str, str], bytes]:
        """Send one request; reconnects once if the server closed on us."""
        for attempt in (0, 1):
            if self._writer is None:
                await self._connect()
            assert self._reader is not None and self._writer is not None
            head = [f"{method} {path} HTTP/1.1", f"Host: {self.host}:{self.port}"]
            head += [f"{k}: {v}" for k, v in headers.items()]
            head.append(f"Content-Length: {len(body)}")
            self._writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)
            try:
                await self._writer.drain()
                return await self._read_response()
            except (asyncio.IncompleteReadError, ConnectionResetError, BrokenPipeError):
                # stale keep-alive connection; reconnect and retry once
                await self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")

    async def _read_response(self) -> tuple[int, dict[str, str], bytes]:
        assert self._reader is not None
        status_line = await self._reader.readline()
        if not status_line:
            raise asyncio.IncompleteReadError(b"", None)
        parts = status_line.decode("latin-1").split(maxsplit=2)
        status = int(parts[1])
        resp_headers: dict[str, str] = {}
        while True:
            raw = await self._reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            resp_headers[name.strip().lower()] = value.strip()
        length = int(resp_headers.get("content-length", "0"))
        body = await self._reader.readexactly(length) if length else b""
        if resp_headers.get("connection", "").lower() == "close":
            await self.close()
        return status, resp_headers, body


def _request_bodies(config: LoadConfig) -> list[bytes]:
    """Pre-encoded request bodies, one per key in the pool."""
    dest_sets = random_destination_sets(config.n, config.m, config.keys, config.seed)
    bodies = []
    for dests in dest_sets:
        doc = {
            "algorithm": config.algorithm,
            "n": config.n,
            "source": 0,
            "destinations": dests,
        }
        bodies.append(json.dumps(doc).encode("utf-8"))
    return bodies


async def run_load(
    config: LoadConfig,
    telemetry: RotatingJsonlSink | None = None,
) -> LoadSummary:
    """Drive the configured load and return the measured summary."""
    bodies = _request_bodies(config)
    rng = random.Random(config.seed ^ 0x5EED)
    picker = _ZipfPicker(config.keys, config.skew, rng)
    path = f"/v1/{config.endpoint}"
    headers = {"X-Client-Id": config.client_id}
    if config.deadline_ms is not None:
        headers["X-Deadline-Ms"] = f"{config.deadline_ms:g}"
    summary = LoadSummary()
    run_id = new_run_id()  # one id joins every record of this load run
    remaining = config.requests
    # mean think time per worker for the aggregate poisson target rate
    think_mean = config.concurrency / config.rate if config.arrival == "poisson" else 0.0
    started = time.perf_counter()

    async def worker(worker_id: int) -> None:
        nonlocal remaining
        conn = _Connection(config.host, config.port)
        wrng = random.Random((config.seed << 8) ^ worker_id)
        try:
            while remaining > 0:
                remaining -= 1
                if think_mean > 0.0:
                    await asyncio.sleep(wrng.expovariate(1.0 / think_mean))
                body = bodies[picker.pick()]
                attempts = 0
                while True:
                    t0 = time.perf_counter()
                    try:
                        status, resp_headers, resp_body = await conn.request(
                            "POST", path, body, headers
                        )
                    except OSError:
                        # reset/refused mid-burst: back off (jittered,
                        # doubling) and re-offer rather than fail hard --
                        # a restarting or draining server is not an error
                        # until the budget is spent.
                        if attempts >= config.retries:
                            summary.errors += 1
                            break
                        attempts += 1
                        summary.retried += 1
                        pause = min(
                            config.backoff_s * (2 ** (attempts - 1)), config.max_backoff_s
                        )
                        await asyncio.sleep(wrng.uniform(0.0, pause))
                        continue
                    elapsed_ms = (time.perf_counter() - t0) * 1e3
                    summary.requests += 1
                    summary.latency.observe(elapsed_ms)
                    summary.statuses[status] = summary.statuses.get(status, 0) + 1
                    source = None
                    if status == 200:
                        summary.ok += 1
                        source = json.loads(resp_body).get("source")
                        if source == "cache":
                            summary.cache_hits += 1
                        elif source == "build":
                            summary.builds += 1
                    if telemetry is not None:
                        telemetry.write(
                            RunRecord(
                                run_id=run_id,
                                kind="service-request",
                                n=config.n,
                                algorithm=config.algorithm,
                                wall_seconds=elapsed_ms / 1e3,
                                extra={
                                    "t_s": round(time.perf_counter() - started, 6),
                                    "worker": worker_id,
                                    "endpoint": config.endpoint,
                                    "status": status,
                                    "latency_ms": round(elapsed_ms, 4),
                                    "source": source,
                                    "attempt": attempts,
                                },
                            )
                        )
                    if status == 429 and attempts < config.retries:
                        # the server said when to come back; believe it
                        # (capped), add jitter so throttled workers do
                        # not re-arrive in lockstep.
                        attempts += 1
                        summary.throttled += 1
                        try:
                            retry_after = float(resp_headers.get("retry-after", ""))
                        except ValueError:
                            retry_after = config.backoff_s
                        pause = min(max(retry_after, 0.0), config.max_backoff_s)
                        await asyncio.sleep(pause + wrng.uniform(0.0, config.backoff_s))
                        continue
                    break
        finally:
            await conn.close()

    await asyncio.gather(*(worker(i) for i in range(config.concurrency)))
    summary.wall_seconds = time.perf_counter() - started
    return summary


def run_load_sync(config: LoadConfig, telemetry: RotatingJsonlSink | None = None) -> LoadSummary:
    """Blocking wrapper around :func:`run_load` (own event loop)."""
    return asyncio.run(run_load(config, telemetry))


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: ``python -m repro.service.loadgen``.

    Exit codes follow the repo contract: 0 on success (gates pass),
    1 when a ``--min-hit-ratio`` / ``--max-p99-ms`` gate fails, 2 on
    bad arguments.
    """
    parser = argparse.ArgumentParser(
        prog="repro-loadgen", description="drive load at the schedule-planning service"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument(
        "--endpoint", choices=("schedule", "verify", "simulate"), default="schedule"
    )
    parser.add_argument("--requests", type=int, default=1000)
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--arrival", choices=("closed", "poisson"), default="closed")
    parser.add_argument("--rate", type=float, default=500.0, help="poisson target req/s")
    parser.add_argument("--n", type=int, default=6, help="cube dimension")
    parser.add_argument("--m", type=int, default=8, help="destinations per request")
    parser.add_argument("--keys", type=int, default=16, help="distinct key pool size")
    parser.add_argument("--skew", type=float, default=1.1, help="zipf skew (0=uniform)")
    parser.add_argument("--algorithm", default="wsort")
    parser.add_argument("--seed", type=int, default=20260808)
    parser.add_argument("--client-id", default="loadgen")
    parser.add_argument("--deadline-ms", type=float, default=None)
    parser.add_argument(
        "--retries", type=int, default=2, help="transport/429 retries per request"
    )
    parser.add_argument(
        "--backoff-s", type=float, default=0.05, help="initial retry backoff seconds"
    )
    parser.add_argument("--telemetry", default=None, help="JSONL telemetry path (rotated+gzipped)")
    parser.add_argument(
        "--telemetry-max-bytes", type=int, default=1 << 20, help="rotation threshold"
    )
    parser.add_argument("--json", action="store_true", help="print the summary as JSON")
    parser.add_argument("--min-hit-ratio", type=float, default=None, help="gate: fail below this")
    parser.add_argument("--max-p99-ms", type=float, default=None, help="gate: fail above this")
    args = parser.parse_args(argv)
    try:
        config = LoadConfig(
            host=args.host,
            port=args.port,
            endpoint=args.endpoint,
            requests=args.requests,
            concurrency=args.concurrency,
            arrival=args.arrival,
            rate=args.rate,
            n=args.n,
            m=args.m,
            keys=args.keys,
            skew=args.skew,
            algorithm=args.algorithm,
            seed=args.seed,
            client_id=args.client_id,
            deadline_ms=args.deadline_ms,
            retries=args.retries,
            backoff_s=args.backoff_s,
        )
    except ValueError as exc:
        parser.error(str(exc))  # exits 2
    telemetry = (
        RotatingJsonlSink(args.telemetry, max_bytes=args.telemetry_max_bytes)
        if args.telemetry
        else None
    )
    try:
        summary = run_load_sync(config, telemetry)
    except OSError as exc:
        print(f"error: cannot reach {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(summary.as_dict(), indent=2, sort_keys=True))
    else:
        print(
            f"{summary.requests} requests in {summary.wall_seconds:.2f}s "
            f"({summary.rps:.0f} req/s), p50 {summary.p50_ms:.2f} ms, "
            f"p99 {summary.p99_ms:.2f} ms, hit ratio {summary.hit_ratio:.3f}, "
            f"{summary.errors} transport error(s), {summary.retried} retried, "
            f"{summary.throttled} throttled"
        )
    failed = []
    if args.min_hit_ratio is not None and summary.hit_ratio < args.min_hit_ratio:
        failed.append(f"hit ratio {summary.hit_ratio:.3f} < {args.min_hit_ratio}")
    if args.max_p99_ms is not None and summary.p99_ms > args.max_p99_ms:
        failed.append(f"p99 {summary.p99_ms:.2f} ms > {args.max_p99_ms} ms")
    if summary.ok == 0:
        failed.append("no successful responses")
    for reason in failed:
        print(f"gate failed: {reason}", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
