"""The service application: router -> handlers -> planner -> repository.

Wires the HTTP layer (:mod:`repro.service.http`) to the planner
(:mod:`repro.service.planner`) behind admission control
(:mod:`repro.service.admission`), and adds the operational endpoints a
deployable service needs:

========================  ====================================================
``POST /v1/schedule``     step table for one multicast (cached, coalesced)
``POST /v1/verify``       structural + Definition-4 verification verdict
``POST /v1/simulate``     wormhole-simulation delay summary
``GET /v1/cache/<key>``   one content-addressed cache entry (fleet tier)
``PUT /v1/cache/<key>``   publish a checksum-validated cache entry
``GET /health``           liveness + drain/degraded state (JSON)
``GET /metrics``          Prometheus text exposition of the registry
``GET /v1/usage``         per-client request/byte/cache-hit accounting
========================  ====================================================

The cache routes are the server side of the fleet-shared schedule-cache
tier (:mod:`repro.parallel.fabric_cache`): keys are the planner's own
SHA-256 content addresses, the transported envelope carries the same
``checksum`` field the disk envelope does, and a PUT whose checksum
does not match its value is rejected (400) before it can poison the
store.  ``/health`` additionally reports ``degraded`` with a reason
(``"drain"`` or ``"overload"``) so load balancers can distinguish a
shutting-down instance from a saturated one.

Request deadlines: each planning request runs under ``asyncio.wait_for``
with the service default deadline, or the client's ``X-Deadline-Ms``
header if smaller; expiry returns ``504``.  Clients are identified by
the ``X-Client-Id`` header, falling back to the peer address.

``serve_async`` is the long-running entry point behind the ``serve``
CLI subcommand: it installs a SIGTERM handler that triggers graceful
drain (stop accepting, finish in-flight work, then exit cleanly).
"""

from __future__ import annotations

import asyncio
import signal
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Awaitable, Callable

from repro.obs.exporters import to_prometheus
from repro.obs.metrics import SERVICE_LATENCY_BUCKETS_MS, MetricsRegistry
from repro.parallel.cache import ScheduleCache, _value_checksum
from repro.parallel.fabric_cache import KEY_RE
from repro.service.admission import AdmissionConfig, AdmissionController, Rejected
from repro.service.http import HttpError, HttpServer, Request, Response
from repro.service.planner import PlannerService, PlanResult
from repro.service.protocol import ProtocolError, parse_plan_request

__all__ = ["ServiceApp", "ServiceConfig", "ServiceThread", "serve_async"]


@dataclass(frozen=True, slots=True)
class ServiceConfig:
    """Everything the ``serve`` subcommand can tune."""

    host: str = "127.0.0.1"
    port: int = 8421
    cache_dir: str | None = None
    workers: int = 4
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    #: default per-request deadline; ``X-Deadline-Ms`` can lower it.
    deadline_ms: float = 10_000.0
    #: seconds granted to in-flight requests during graceful drain.
    drain_grace_s: float = 5.0
    max_body_bytes: int = 1 << 20
    #: test/soak knob: artificial seconds added to every build.
    build_delay_s: float = 0.0


@dataclass(slots=True)
class _ClientUsage:
    requests: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    cache_hits: int = 0
    builds: int = 0
    rejected: int = 0
    errors: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "requests": self.requests,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "cache_hits": self.cache_hits,
            "builds": self.builds,
            "rejected": self.rejected,
            "errors": self.errors,
        }


class ServiceApp:
    """Route and serve planning requests; owns planner + admission."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.planner = PlannerService(
            cache=ScheduleCache(self.config.cache_dir, metrics=self.metrics),
            metrics=self.metrics,
            max_workers=self.config.workers,
            build_delay_s=self.config.build_delay_s,
        )
        self.admission = AdmissionController(self.config.admission, self.metrics)
        self.server = HttpServer(
            self.handle,
            host=self.config.host,
            port=self.config.port,
            max_body_bytes=self.config.max_body_bytes,
        )
        # uptime is a *duration*: anchor it on the monotonic clock so a
        # wall-clock step (NTP, DST) can never make it jump or go
        # negative; the unix timestamp is kept for display only.
        self.started_at_unix = time.time()  # repro: lint-ok[REP002] display-only timestamp
        self._started_monotonic = time.monotonic()
        self._usage: dict[str, _ClientUsage] = {}
        plan = self._plan_endpoint
        self._routes: dict[tuple[str, str], Callable[[Request], Awaitable[Response]]] = {
            ("POST", "/v1/schedule"): lambda req: plan(req, "schedule"),
            ("POST", "/v1/verify"): lambda req: plan(req, "verify"),
            ("POST", "/v1/simulate"): lambda req: plan(req, "simulate"),
            ("GET", "/health"): self._health,
            ("GET", "/metrics"): self._metrics_endpoint,
            ("GET", "/v1/usage"): self._usage_endpoint,
        }

    # -- plumbing ------------------------------------------------------

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    async def start(self) -> None:
        await self.server.start()

    async def drain(self) -> bool:
        """Graceful shutdown: drain HTTP, then release the executor."""
        clean = await self.server.drain(self.config.drain_grace_s)
        self.planner.close()
        return clean

    def _client_id(self, req: Request) -> str:
        return req.headers.get("x-client-id") or req.client.rsplit(":", 1)[0]

    def _usage_for(self, client: str) -> _ClientUsage:
        usage = self._usage.get(client)
        if usage is None:
            usage = self._usage[client] = _ClientUsage()
        return usage

    def _deadline_s(self, req: Request) -> float:
        deadline = self.config.deadline_ms
        raw = req.headers.get("x-deadline-ms")
        if raw is not None:
            try:
                requested = float(raw)
            except ValueError:
                raise ProtocolError(f"bad X-Deadline-Ms header {raw!r}") from None
            if requested > 0:
                deadline = min(deadline, requested)
        return deadline / 1000.0

    # -- dispatch ------------------------------------------------------

    async def handle(self, req: Request) -> Response:
        handler = self._routes.get((req.method, req.path))
        if handler is None and req.path.startswith("/v1/cache/"):
            # content-addressed routes carry the key in the path, so they
            # dispatch by prefix; the handler does its own method check.
            handler = self._cache_endpoint
        if handler is None:
            known_paths = {path for _, path in self._routes}
            if req.path in known_paths:
                return Response(status=405, payload={"error": f"method {req.method} not allowed"})
            return Response(status=404, payload={"error": f"no such endpoint {req.path}"})
        self.metrics.counter("sim.service.requests").inc()
        t0 = time.perf_counter()
        response = await handler(req)
        elapsed_ms = (time.perf_counter() - t0) * 1e3
        self.metrics.histogram(
            "sim.service.latency_ms", SERVICE_LATENCY_BUCKETS_MS
        ).observe(elapsed_ms)
        self.metrics.counter(f"sim.service.responses_{response.status // 100}xx").inc()
        return response

    async def _plan_endpoint(self, req: Request, kind: str) -> Response:
        client = self._client_id(req)
        usage = self._usage_for(client)
        usage.requests += 1
        usage.bytes_in += len(req.body)
        self.metrics.counter("sim.service.bytes_in").inc(len(req.body))
        if self.server.draining:
            usage.rejected += 1
            return Response(
                status=503,
                payload={"error": "draining"},
                headers={"Retry-After": "1"},
            )
        try:
            plan_req = parse_plan_request(req.json(), kind)
            deadline_s = self._deadline_s(req)
        except ProtocolError as exc:
            usage.errors += 1
            return Response(status=400, payload={"error": str(exc)})
        try:
            async with self.admission.slot(client):
                result: PlanResult = await asyncio.wait_for(
                    getattr(self.planner, kind)(plan_req), timeout=deadline_s
                )
        except Rejected as exc:
            usage.rejected += 1
            retry_after = max(1, int(-(-exc.retry_after_s // 1)))  # ceil, >= 1
            return Response(
                status=exc.status,
                payload={"error": exc.reason, "retry_after_s": exc.retry_after_s},
                headers={"Retry-After": str(retry_after)},
            )
        except asyncio.TimeoutError:
            usage.errors += 1
            self.metrics.counter("sim.service.deadline_timeouts").inc()
            return Response(
                status=504,
                payload={"error": f"deadline of {deadline_s * 1e3:g} ms exceeded"},
            )
        if result.source == "cache":
            usage.cache_hits += 1
        else:
            usage.builds += 1
        payload = {
            "request": plan_req.describe(),
            "key": result.key,
            "source": result.source,
            "result": result.value,
        }
        response = Response(payload=payload)
        body = response.encode_body()
        response.body = body
        usage.bytes_out += len(body)
        self.metrics.counter("sim.service.bytes_out").inc(len(body))
        return response

    # -- fleet cache tier ----------------------------------------------

    async def _cache_endpoint(self, req: Request) -> Response:
        """Serve the content-addressed store to fabric workers.

        GET returns the same self-verifying envelope the disk layer
        uses (``{"key", "checksum", "value"}``); PUT accepts one and
        re-derives the checksum before storing, so a corrupted or
        forged upload is turned away instead of cached.
        """
        key = req.path[len("/v1/cache/"):]
        if KEY_RE.fullmatch(key) is None:
            return Response(
                status=400, payload={"error": f"cache key must be 64 hex chars, got {key!r}"}
            )
        cache = self.planner.cache
        if req.method == "GET":
            value = cache.get(key)
            if value is None:
                return Response(status=404, payload={"error": f"no cache entry for {key}"})
            return Response(
                payload={"key": key, "checksum": _value_checksum(value), "value": value}
            )
        if req.method == "PUT":
            try:
                doc = req.json()
                value = doc["value"]
                intact = doc.get("key") == key and _value_checksum(value) == doc.get("checksum")
            except (HttpError, ValueError, KeyError, TypeError):
                intact = False
                value = None
            if not intact:
                self.metrics.counter("sim.service.cache_put_rejected").inc()
                return Response(
                    status=400,
                    payload={"error": "cache entry failed key/checksum validation"},
                )
            cache.put(key, value)
            return Response(status=201, payload={"key": key, "stored": True})
        return Response(status=405, payload={"error": f"method {req.method} not allowed"})

    # -- operational endpoints -----------------------------------------

    def _uptime_s(self) -> float:
        return time.monotonic() - self._started_monotonic

    def _degraded(self) -> tuple[bool, str | None]:
        """Whether the instance should be deprioritized, and why.

        ``"drain"`` means a deliberate shutdown is in progress;
        ``"overload"`` means admission is saturated (in-flight at its
        cap, or the queue past 80% of its limit).  Load balancers treat
        the two very differently -- drain never recovers, overload does
        -- so the reason travels with the flag.
        """
        if self.server.draining:
            return True, "drain"
        admission = self.config.admission
        if self.admission.inflight >= admission.max_inflight:
            return True, "overload"
        if admission.max_queue > 0 and self.admission.queued >= 0.8 * admission.max_queue:
            return True, "overload"
        return False, None

    async def _health(self, _req: Request) -> Response:
        degraded, reason = self._degraded()
        payload = {
            "status": "draining" if self.server.draining else "ok",
            "degraded": degraded,
            "uptime_s": round(self._uptime_s(), 3),
            "started_at_unix": round(self.started_at_unix, 3),
            "inflight": self.admission.inflight,
            "queued": self.admission.queued,
            "connections": self.server.connections,
            "cache_entries": len(self.planner.cache),
            "cache_hit_ratio": round(self.planner.cache.hit_ratio(), 6),
        }
        if reason is not None:
            payload["degraded_reason"] = reason
        return Response(payload=payload)

    async def _metrics_endpoint(self, _req: Request) -> Response:
        # surface repository effectiveness as first-class gauges so a
        # scraper needs no PromQL over raw counters
        cache = self.planner.cache
        self.metrics.gauge("sim.service.cache_hit_ratio").set(cache.hit_ratio())
        self.metrics.gauge("sim.service.cache_entries").set(float(len(cache)))
        self.metrics.gauge("sim.service.uptime_seconds").set(self._uptime_s())
        text = to_prometheus(self.metrics)
        return Response(body=text.encode("utf-8"), content_type="text/plain; version=0.0.4")

    async def _usage_endpoint(self, _req: Request) -> Response:
        return Response(
            payload={
                "uptime_s": round(self._uptime_s(), 3),
                "clients": {
                    client: usage.as_dict() for client, usage in sorted(self._usage.items())
                },
            }
        )


async def serve_async(
    config: ServiceConfig,
    ready: Callable[[ServiceApp], None] | None = None,
    stop_event: asyncio.Event | None = None,
) -> int:
    """Run the service until SIGTERM (or ``stop_event``), then drain.

    Returns the process exit code (0 for a clean drain).  ``ready`` is
    called with the started app -- the CLI prints the bound address,
    tests capture the port.
    """
    app = ServiceApp(config)
    await app.start()
    if ready is not None:
        ready(app)
    stop = stop_event if stop_event is not None else asyncio.Event()
    loop = asyncio.get_running_loop()
    try:
        loop.add_signal_handler(signal.SIGTERM, stop.set)
    except (NotImplementedError, RuntimeError):  # pragma: no cover - non-posix
        pass
    try:
        await stop.wait()
    finally:
        clean = await app.drain()
        try:
            loop.remove_signal_handler(signal.SIGTERM)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    print(
        f"drained: {'clean' if clean else 'grace period expired'}, "
        f"{app.metrics.counter('sim.service.requests').value:g} request(s) served",
        file=sys.stderr,
    )
    return 0 if clean else 1


class ServiceThread:
    """Run a :class:`ServiceApp` on a dedicated event-loop thread.

    The in-process harness used by tests, the soak benchmark, and the
    examples: ``start()`` returns once the socket is bound (with the
    resolved port), ``stop()`` drains and joins.  Usable as a context
    manager.
    """

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config if config is not None else ServiceConfig(port=0)
        self.app: ServiceApp | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._failure: BaseException | None = None

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            self.app = ServiceApp(self.config)
            loop.run_until_complete(self.app.start())
        except BaseException as exc:  # surface bind errors to start()
            self._failure = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
            loop.run_until_complete(self.app.drain())
        finally:
            loop.close()

    def start(self) -> "ServiceThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._failure is not None:
            raise RuntimeError(f"service failed to start: {self._failure}") from self._failure
        if self.app is None:
            raise RuntimeError("service thread did not start in time")
        return self

    @property
    def host(self) -> str:
        assert self.app is not None
        return self.app.host

    @property
    def port(self) -> int:
        assert self.app is not None
        return self.app.port

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is None or self._thread is None:
            return
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=timeout)
        self._thread = None

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
