"""Admission control: in-flight caps, a bounded queue, per-client rate limits.

A long-lived planning service fails differently from a batch sweep: the
danger is not a wrong answer but an unbounded backlog.  This module is
the front door that keeps the backlog bounded:

* a hard cap on *admitted* (in-flight) requests;
* a bounded FIFO wait queue in front of that cap -- requests past the
  queue bound are rejected immediately with ``503`` rather than parked
  forever;
* an optional per-client token bucket -- clients above their rate get
  ``429`` with a computed ``Retry-After``.

Rejections raise :exc:`Rejected`, which carries exactly what the HTTP
layer needs (status, reason, retry-after seconds).  Everything here is
event-loop-local: no locks, because all state is touched from the
single asyncio thread.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from contextlib import asynccontextmanager
from dataclasses import dataclass
from typing import AsyncIterator

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "Rejected",
    "TokenBucket",
]


class Rejected(Exception):
    """A request turned away at admission (rate limit or capacity)."""

    def __init__(self, status: int, reason: str, retry_after_s: float) -> None:
        super().__init__(reason)
        self.status = status
        self.reason = reason
        self.retry_after_s = retry_after_s


class TokenBucket:
    """The classic token bucket: ``rate`` tokens/s, capacity ``burst``."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float, now: float | None = None) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated = time.monotonic() if now is None else now

    def try_take(self, now: float | None = None) -> float:
        """Take one token; returns 0.0 on success, else seconds until
        one accrues (the ``Retry-After`` hint)."""
        if now is None:
            now = time.monotonic()
        self.tokens = min(self.burst, self.tokens + (now - self.updated) * self.rate)
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate


@dataclass(frozen=True, slots=True)
class AdmissionConfig:
    """Knobs of the admission controller (all per service instance)."""

    #: concurrently admitted requests; beyond this, requests queue.
    max_inflight: int = 64
    #: waiters allowed in front of the in-flight cap; beyond this, 503.
    max_queue: int = 128
    #: per-client sustained request rate (req/s); ``None`` disables.
    rate_per_client: float | None = None
    #: per-client burst allowance (token bucket capacity).
    burst: float = 20.0
    #: ``Retry-After`` seconds suggested on a 503 capacity rejection.
    retry_after_s: float = 1.0

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {self.max_inflight}")
        if self.max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {self.max_queue}")


class AdmissionController:
    """Gate requests through the config's caps; all asyncio-thread-local."""

    def __init__(self, config: AdmissionConfig, metrics: MetricsRegistry) -> None:
        self.config = config
        self.metrics = metrics
        self.inflight = 0
        self._waiters: deque[asyncio.Future] = deque()
        self._buckets: dict[str, TokenBucket] = {}

    @property
    def queued(self) -> int:
        return sum(1 for fut in self._waiters if not fut.done())

    def _check_rate(self, client: str) -> None:
        rate = self.config.rate_per_client
        if rate is None:
            return
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = self._buckets[client] = TokenBucket(rate, self.config.burst)
        wait = bucket.try_take()
        if wait > 0.0:
            self.metrics.counter("sim.service.rejected_rate").inc()
            raise Rejected(429, f"client {client!r} over {rate:g} req/s", wait)

    async def _acquire(self, client: str) -> None:
        self._check_rate(client)
        if self.inflight < self.config.max_inflight:
            self.inflight += 1
            self.metrics.gauge("sim.service.inflight").set(self.inflight)
            return
        if self.queued >= self.config.max_queue:
            self.metrics.counter("sim.service.rejected_capacity").inc()
            raise Rejected(
                503,
                f"at capacity ({self.config.max_inflight} in flight, "
                f"{self.config.max_queue} queued)",
                self.config.retry_after_s,
            )
        fut = asyncio.get_running_loop().create_future()
        self._waiters.append(fut)
        self.metrics.gauge("sim.service.queue_depth").set(self.queued)
        try:
            await fut  # resolved by _release with the slot pre-claimed
        except asyncio.CancelledError:
            # deadline fired while queued; if the slot was already
            # handed to us, pass it on instead of leaking it
            if fut.done() and not fut.cancelled():
                self._release()
            raise
        finally:
            self.metrics.gauge("sim.service.queue_depth").set(self.queued)

    def _release(self) -> None:
        while self._waiters:
            fut = self._waiters.popleft()
            if not fut.done():
                # hand the slot straight over: inflight stays constant
                fut.set_result(None)
                return
        self.inflight -= 1
        self.metrics.gauge("sim.service.inflight").set(self.inflight)

    @asynccontextmanager
    async def slot(self, client: str) -> AsyncIterator[None]:
        """``async with controller.slot(client):`` -- admit or reject."""
        await self._acquire(client)
        try:
            yield
        finally:
            self._release()
