"""Deterministic XY routing for 2D meshes.

XY routing is the mesh's dimension-ordered routing: correct the X
offset fully (east or west), then the Y offset (north or south).  Like
E-cube it is minimal, deterministic, and deadlock-free (the channel
dependency relation only ever goes X -> Y, which the deadlock tests
verify with the same Dally-Seitz machinery used for the hypercube).
"""

from __future__ import annotations

from repro.mesh.topology import EAST, Mesh2D, NORTH, SOUTH, WEST

__all__ = ["xy_arcs", "xy_path"]

Arc = tuple[int, int]


def xy_arcs(mesh: Mesh2D, src: int, dst: int) -> list[Arc]:
    """The directed channels of the XY route from ``src`` to ``dst``."""
    mesh.validate_node(src, "source")
    mesh.validate_node(dst, "destination")
    arcs: list[Arc] = []
    x, y = mesh.coords(src)
    dx, dy = mesh.coords(dst)
    cur = src
    while x != dx:
        d = EAST if dx > x else WEST
        arcs.append((cur, d))
        x += 1 if dx > x else -1
        cur = mesh.node(x, y)
    while y != dy:
        d = NORTH if dy > y else SOUTH
        arcs.append((cur, d))
        y += 1 if dy > y else -1
        cur = mesh.node(x, y)
    return arcs


def xy_path(mesh: Mesh2D, src: int, dst: int) -> list[int]:
    """The node sequence of the XY route, inclusive of both ends."""
    path = [src]
    for node, direction in xy_arcs(mesh, src, dst):
        nxt = mesh.neighbor(node, direction)
        assert nxt is not None
        path.append(nxt)
    return path
