"""Mesh multicast trees: scheduling, verification, simulation.

The mesh analogue of :class:`repro.multicast.base.MulticastTree`,
sharing the greedy step scheduler and the Definition 4 contention
verifier (both are topology-agnostic given the channel sets) and
running on the same wormhole network model with XY routes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean
from typing import Iterable, Sequence

from repro.core.contention import ContentionReport, Unicast, check_contention_free
from repro.mesh.routing import xy_arcs
from repro.mesh.topology import Mesh2D
from repro.multicast._scheduling import greedy_steps
from repro.multicast.ports import ALL_PORT, PortModel
from repro.simulator.engine import Simulator
from repro.simulator.message import Worm
from repro.simulator.network import WormholeNetwork
from repro.simulator.node import HostNode
from repro.simulator.params import NCUBE2, Timings

__all__ = ["MeshNetwork", "MeshResult", "MeshSchedule", "MeshTree", "simulate_mesh_multicast"]


@dataclass(frozen=True, slots=True)
class MeshSend:
    src: int
    dst: int
    seq: int


class MeshTree:
    """A tree of unicasts implementing one multicast on a 2D mesh."""

    def __init__(self, mesh: Mesh2D, source: int, destinations: Iterable[int]) -> None:
        self.mesh = mesh
        self.source = source
        self.destinations = frozenset(destinations)
        self._sends: list[MeshSend] = []
        self._by_sender: dict[int, list[MeshSend]] = {}

    def add_send(self, src: int, dst: int) -> MeshSend:
        self.mesh.validate_node(src, "sender")
        self.mesh.validate_node(dst, "receiver")
        if src == dst:
            raise ValueError(f"node {src} cannot send to itself")
        send = MeshSend(src, dst, len(self._sends))
        self._sends.append(send)
        self._by_sender.setdefault(src, []).append(send)
        return send

    @property
    def sends(self) -> list[MeshSend]:
        return list(self._sends)

    def sends_from(self, node: int) -> list[MeshSend]:
        return list(self._by_sender.get(node, ()))

    @property
    def relay_nodes(self) -> set[int]:
        involved = {s.src for s in self._sends} | {s.dst for s in self._sends}
        return involved - self.destinations - {self.source}

    def total_hops(self) -> int:
        return sum(self.mesh.distance(s.src, s.dst) for s in self._sends)

    def arcs_of(self, src: int, dst: int):
        return xy_arcs(self.mesh, src, dst)

    def schedule(self, ports: PortModel = ALL_PORT) -> "MeshSchedule":
        """Greedy step schedule; all-port on a mesh means 4 ports."""
        limit = 4 if ports.is_all_port else ports.limit(4)
        steps = greedy_steps(
            self.source,
            [(s.seq, s.src, s.dst) for s in self._sends],
            self.arcs_of,
            limit,
        )
        return MeshSchedule(self, ports, steps)


@dataclass(slots=True)
class MeshSchedule:
    tree: MeshTree
    ports: PortModel
    _steps: dict[int, int] = field(repr=False)

    @property
    def unicasts(self) -> list[Unicast]:
        out = [Unicast(s.src, s.dst, self._steps[s.seq]) for s in self.tree.sends]
        out.sort(key=lambda u: (u.step, u.src, u.dst))
        return out

    @property
    def max_step(self) -> int:
        return max(self._steps.values(), default=0)

    @property
    def dest_steps(self) -> dict[int, int]:
        return {s.dst: self._steps[s.seq] for s in self.tree.sends}

    def check_contention(self) -> ContentionReport:
        """Definition 4 with XY channel sets."""
        return check_contention_free(
            self.tree.source, self.unicasts, arcs_of=self.tree.arcs_of
        )


class MeshNetwork(WormholeNetwork):
    """The wormhole network model wired for a 2D mesh."""

    def __init__(self, sim: Simulator, mesh: Mesh2D, timings: Timings = NCUBE2, **kw) -> None:
        super().__init__(
            sim,
            n=1,  # unused; mesh validators below take over
            timings=timings,
            route=lambda u, v: xy_arcs(mesh, u, v),
            **kw,
        )
        self.mesh = mesh

    def validate_node(self, node: int, what: str) -> None:
        self.mesh.validate_node(node, what)

    def validate_arc(self, arc) -> None:
        self.mesh.validate_arc(arc)


@dataclass(slots=True)
class MeshResult:
    """Outcome of one simulated mesh multicast."""

    tree: MeshTree
    delays: dict[int, float]
    total_blocked_time: float
    events: int

    @property
    def avg_delay(self) -> float:
        d = self.tree.destinations
        return mean(self.delays[x] for x in d) if d else 0.0

    @property
    def max_delay(self) -> float:
        return max((self.delays[x] for x in self.tree.destinations), default=0.0)


def simulate_mesh_multicast(
    tree: MeshTree,
    size: int = 4096,
    timings: Timings = NCUBE2,
    ports: PortModel = ALL_PORT,
    max_events: int | None = 10_000_000,
) -> MeshResult:
    """Run a mesh multicast tree through the wormhole model."""
    sim = Simulator()
    limit = 4 if ports.is_all_port else ports.limit(4)
    nodes: dict[int, HostNode] = {}
    delays: dict[int, float] = {}

    def on_receive(host: HostNode, worm: Worm) -> None:
        delays[host.address] = sim.now
        sends = [(s.dst, size, None) for s in tree.sends_from(host.address)]
        if sends:
            host.submit_sends(sends, sim.now)

    def get_node(address: int) -> HostNode:
        node = nodes.get(address)
        if node is None:
            node = nodes[address] = HostNode(network, address, limit, on_receive)
        return node

    def on_delivered(worm: Worm) -> None:
        get_node(worm.src).release_port()
        get_node(worm.dst).deliver(worm)

    network = MeshNetwork(sim, tree.mesh, timings=timings, on_delivered=on_delivered)
    get_node(tree.source).submit_sends(
        [(s.dst, size, None) for s in tree.sends_from(tree.source)], 0.0
    )
    sim.run(max_events=max_events)
    network.assert_quiescent()

    missing = tree.destinations - delays.keys()
    if missing:
        raise AssertionError(f"mesh multicast never reached {sorted(missing)}")
    return MeshResult(
        tree=tree,
        delays=delays,
        total_blocked_time=network.total_blocked_time,
        events=sim.events_processed,
    )
