"""2D-mesh extension: XY routing and the U-mesh multicast algorithm.

The paper's U-cube baseline comes from McKinley, Xu, Esfahanian & Ni
[9], which introduces the *pair* of algorithms U-cube (hypercubes) and
U-mesh (2D meshes) for one-port wormhole-routed machines.  This
subpackage implements the mesh half of that substrate -- the topology
the Intel Paragon used (Section 1 of the paper) -- reusing the same
scheduling, contention (Definition 4 is topology-agnostic once channel
sets are known), and wormhole simulation machinery:

- :mod:`repro.mesh.topology` -- 2D mesh, coordinates, directed channels;
- :mod:`repro.mesh.routing` -- deterministic XY (dimension-ordered)
  routing, deadlock-free like E-cube;
- :mod:`repro.mesh.umesh` -- the U-mesh multicast algorithm
  (lexicographic chain, recursive halving toward both sides of the
  source) with the one-port contention-freedom property;
- :mod:`repro.mesh.tree` -- mesh multicast trees, step schedules, and
  timed simulation on the shared wormhole network model.
"""

from repro.mesh.routing import xy_arcs, xy_path
from repro.mesh.topology import Mesh2D
from repro.mesh.tree import MeshTree, simulate_mesh_multicast
from repro.mesh.umesh import UMesh

__all__ = [
    "Mesh2D",
    "MeshTree",
    "UMesh",
    "simulate_mesh_multicast",
    "xy_arcs",
    "xy_path",
]
