"""2D mesh topology.

Nodes are identified by integer ids ``y * cols + x`` with coordinates
``(x, y)``, ``x`` the column and ``y`` the row.  Channels are directed:
``(node, direction)`` with directions 0..3 = east (+x), west (-x),
north (+y), south (-y) -- mirroring the hypercube convention of
identifying a channel by its tail node and an outgoing label.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["EAST", "Mesh2D", "NORTH", "SOUTH", "WEST"]

EAST, WEST, NORTH, SOUTH = 0, 1, 2, 3
_DELTAS = {EAST: (1, 0), WEST: (-1, 0), NORTH: (0, 1), SOUTH: (0, -1)}


@dataclass(frozen=True, slots=True)
class Mesh2D:
    """A ``cols x rows`` 2D mesh (no wraparound links)."""

    cols: int
    rows: int

    def __post_init__(self) -> None:
        if self.cols < 1 or self.rows < 1:
            raise ValueError(f"mesh dimensions must be >= 1, got {self.cols}x{self.rows}")

    @property
    def size(self) -> int:
        return self.cols * self.rows

    def node(self, x: int, y: int) -> int:
        """Node id at column ``x``, row ``y``."""
        if not (0 <= x < self.cols and 0 <= y < self.rows):
            raise ValueError(f"({x}, {y}) outside a {self.cols}x{self.rows} mesh")
        return y * self.cols + x

    def coords(self, node: int) -> tuple[int, int]:
        """``(x, y)`` of a node id."""
        self.validate_node(node)
        return node % self.cols, node // self.cols

    def validate_node(self, node: int, what: str = "node") -> None:
        if not isinstance(node, int) or isinstance(node, bool):
            raise TypeError(f"{what} must be an int, got {type(node).__name__}")
        if not 0 <= node < self.size:
            raise ValueError(f"{what} {node} outside a {self.cols}x{self.rows} mesh")

    def neighbor(self, node: int, direction: int) -> int | None:
        """The neighbor across ``direction``, or None at the boundary."""
        x, y = self.coords(node)
        try:
            dx, dy = _DELTAS[direction]
        except KeyError:
            raise ValueError(f"unknown direction {direction}") from None
        nx, ny = x + dx, y + dy
        if 0 <= nx < self.cols and 0 <= ny < self.rows:
            return self.node(nx, ny)
        return None

    def validate_arc(self, arc: tuple[int, int]) -> None:
        node, direction = arc
        if self.neighbor(node, direction) is None:
            raise ValueError(f"channel {arc} leaves the mesh boundary")

    def distance(self, u: int, v: int) -> int:
        """Manhattan distance (XY-route hop count)."""
        ux, uy = self.coords(u)
        vx, vy = self.coords(v)
        return abs(ux - vx) + abs(uy - vy)

    def nodes(self) -> Iterator[int]:
        return iter(range(self.size))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.cols}x{self.rows} mesh"
