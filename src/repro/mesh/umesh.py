"""The U-mesh multicast algorithm (McKinley, Xu, Esfahanian & Ni [9]).

U-mesh is the 2D-mesh sibling of U-cube: destinations and source are
sorted into a chain in *dimension order* -- lexicographic on ``(x, y)``,
matching XY routing's resolve-X-first discipline -- and the chain is
recursively halved.  Because meshes admit no XOR translation, the
source generally sits in the chain's interior, so each halving step
splits the *whole* remaining range at its midpoint and hands the half
not containing the sender to that half's nearest end element:

- if the sender's position is below the midpoint, it transmits to the
  *first* node of the upper half, which becomes responsible for it;
- otherwise it transmits to the *last* node of the lower half.

Either way the sender's remaining range halves, so ``m`` destinations
are reached in the one-port-optimal ``ceil(log2(m + 1))`` steps, and
every receiver sits at an end of its own range, making the recursion
uniform.  Contention-freedom on one-port XY-routed meshes (the [9]
guarantee) is verified in the test suite via the Definition 4 checker
instantiated with XY channel sets, plus zero-blocking simulation.
"""

from __future__ import annotations

from typing import Sequence

from repro.mesh.topology import Mesh2D
from repro.mesh.tree import MeshTree

__all__ = ["UMesh", "mesh_dimension_key"]


def mesh_dimension_key(mesh: Mesh2D, node: int) -> tuple[int, int]:
    """Dimension-order sort key: X major, Y minor (XY routing order)."""
    x, y = mesh.coords(node)
    return (x, y)


class UMesh:
    """The U-mesh tree builder."""

    name = "umesh"

    def build_tree(self, mesh: Mesh2D, source: int, destinations: Sequence[int]) -> MeshTree:
        """Construct the U-mesh multicast tree.

        Raises:
            ValueError: on duplicate destinations or a destination equal
                to the source.
        """
        mesh.validate_node(source, "source")
        dests = list(destinations)
        if len(set(dests)) != len(dests):
            raise ValueError("destination addresses must be distinct")
        if source in dests:
            raise ValueError("source must not be among the destinations")
        for d in dests:
            mesh.validate_node(d, "destination")

        tree = MeshTree(mesh, source, dests)
        chain = sorted(dests + [source], key=lambda u: mesh_dimension_key(mesh, u))

        def process(left: int, right: int, pos: int) -> None:
            # chain[pos] (the current holder) is responsible for
            # chain[left..right]
            while left < right:
                mid = (left + right + 1) // 2  # first index of the upper half
                if pos < mid:
                    receiver = mid  # leftmost of the upper half
                    tree.add_send(chain[pos], chain[receiver])
                    process(receiver, right, receiver)
                    right = mid - 1
                else:
                    receiver = mid - 1  # rightmost of the lower half
                    tree.add_send(chain[pos], chain[receiver])
                    process(left, receiver, receiver)
                    left = mid

        process(0, len(chain) - 1, chain.index(source))
        return tree
