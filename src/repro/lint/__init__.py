"""Project-invariant static analysis: ``repro.lint``.

Every guarantee this reproduction makes -- Definition-4
contention-freedom, bit-identical parallel-vs-serial sweeps,
byte-identical crash resume, single-flight canonical-JSON responses --
rests on invariants that regression tests can only check *after the
fact*: seed discipline, no wall clock in timing paths, no unordered
iteration feeding schedules, no blocking calls on the asyncio event
loop, and stable exit-code / metric-name / telemetry-kind contracts.
This package enforces them *before* the fact, as an AST pass over the
source tree (stdlib :mod:`ast` only, no new dependencies):

- :mod:`repro.lint.rules` -- the rule-plugin registry and the six
  project rules REP001..REP006 (plus the REP000 tool-integrity rule);
- :mod:`repro.lint.waivers` -- inline ``# repro: lint-ok[RULE] reason``
  waivers;
- :mod:`repro.lint.baseline` -- the committed JSON baseline for
  grandfathered findings and the report-only counts over ``tests/``
  and ``examples/``;
- :mod:`repro.lint.engine` -- per-file analysis and the fan-out driver,
  which dogfoods :func:`repro.parallel.run_points` so linting a large
  tree parallelizes exactly like a figure sweep.

The ``repro-hypercube lint`` subcommand exposes it under the standard
exit-code contract (0 clean, 1 findings, 2 usage / corrupt baseline);
see docs/STATIC_ANALYSIS.md for the rule catalog and workflow.
"""

from repro.lint.baseline import (
    BaselineError,
    load_baseline,
    save_baseline,
    split_findings,
)
from repro.lint.engine import (
    LintResult,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.lint.findings import Finding
from repro.lint.rules import RULES, Rule, rule
from repro.lint.waivers import Waiver, collect_waivers

__all__ = [
    "BaselineError",
    "Finding",
    "LintResult",
    "RULES",
    "Rule",
    "Waiver",
    "collect_waivers",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "rule",
    "save_baseline",
    "split_findings",
]
