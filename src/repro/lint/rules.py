"""The rule-plugin registry and the project rules REP000..REP006.

A rule declares the AST node types it is interested in; the engine
walks each module exactly once and dispatches every node to the rules
registered for its type (a single-pass visitor, not one walk per rule).
Rules receive a :class:`FileContext` that resolves imported-module
aliases (``import time as _time`` -> ``_time.time`` is ``time.time``)
and tracks whether the node sits inside an ``async def``.

The contract rules (REP005, REP006) check against the *live*
registries: exit codes against :data:`ALLOWED_EXIT_CODES` (the CLI
contract documented in :mod:`repro.cli`), metric names against
:data:`repro.obs.metrics.METRIC_FAMILIES` /
:data:`repro.obs.metrics.CORE_METRIC_NAMES`, and telemetry kinds
against :data:`repro.obs.telemetry.KNOWN_KINDS` -- so adding a family
or kind in one place updates both the runtime and the linter.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.lint.findings import Finding
from repro.obs.metrics import CORE_METRIC_NAMES, METRIC_FAMILIES
from repro.obs.telemetry import KNOWN_KINDS

__all__ = [
    "ALLOWED_EXIT_CODES",
    "FileContext",
    "RULES",
    "Rule",
    "rule",
]

#: The CLI exit-code contract: 0 success, 1 runtime failure / findings,
#: 2 usage error, 130 Ctrl-C (see the :mod:`repro.cli` docstring).
ALLOWED_EXIT_CODES = frozenset({0, 1, 2, 130})

#: ``random``-module members that *are* the seed discipline.
_SEEDED_RANDOM_OK = frozenset({"Random", "SystemRandom"})

#: ``numpy.random`` members that construct seeded generators.
_SEEDED_NUMPY_OK = frozenset({"default_rng", "Generator", "SeedSequence", "PCG64"})

#: Calls that block the thread and must never run on the event loop.
_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "os.system",
        "os.popen",
        "os.wait",
        "socket.create_connection",
        "socket.getaddrinfo",
        "urllib.request.urlopen",
        "open",
        "input",
    }
)

#: Prefixes of call targets that are blocking wholesale.
_BLOCKING_PREFIXES = ("subprocess.", "requests.", "shutil.")

#: MetricsRegistry instrument-constructor method names.
_INSTRUMENT_METHODS = frozenset({"counter", "gauge", "timer", "histogram"})


@dataclass(slots=True)
class Rule:
    """One registered rule: metadata plus a node-check callback."""

    id: str
    title: str
    rationale: str
    interests: tuple[type[ast.AST], ...]
    check: Callable[[ast.AST, "FileContext"], Iterable[Finding]]


#: The plugin registry, id -> rule, populated by :func:`rule`.
RULES: dict[str, Rule] = {}


def rule(
    rule_id: str, title: str, rationale: str, interests: tuple[type[ast.AST], ...]
) -> Callable:
    """Class-level decorator registering a check function as a rule."""

    def register(fn: Callable[[ast.AST, "FileContext"], Iterable[Finding]]) -> Callable:
        if rule_id in RULES:
            raise ValueError(f"duplicate lint rule id {rule_id}")
        RULES[rule_id] = Rule(rule_id, title, rationale, interests, fn)
        return fn

    return register


@dataclass(slots=True)
class FileContext:
    """Per-file state shared by every rule during one pass."""

    path: str
    lines: list[str]
    #: local alias -> imported module dotted path (``np`` -> ``numpy``).
    module_aliases: dict[str, str] = field(default_factory=dict)
    #: local name -> ``module.member`` for ``from module import member``.
    from_imports: dict[str, str] = field(default_factory=dict)
    #: ``async def`` nesting depth at the node being visited.
    async_depth: int = 0

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        return Finding(
            rule=rule_id,
            path=self.path,
            line=line,
            col=col,
            message=message,
            snippet=self.snippet(line),
        )

    def collect_imports(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    self.from_imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def resolve_call(self, func: ast.expr) -> str | None:
        """Dotted target of a call, through import aliases.

        ``Name`` resolves through ``from``-imports, else to itself (the
        builtin case: ``hash``, ``open``).  ``Attribute`` chains resolve
        only when rooted at an imported module alias, so ``self.time()``
        or ``clock.time()`` never misfire as ``time.time()``.
        """
        if isinstance(func, ast.Name):
            return self.from_imports.get(func.id, func.id)
        if isinstance(func, ast.Attribute):
            parts: list[str] = []
            node: ast.expr = func
            while isinstance(node, ast.Attribute):
                parts.append(node.attr)
                node = node.value
            if not isinstance(node, ast.Name):
                return None
            base = self.module_aliases.get(node.id)
            if base is None:
                return None
            parts.append(base)
            return ".".join(reversed(parts))
        return None


def _is_unordered_iterable(node: ast.expr, ctx: FileContext) -> bool:
    """Set-typed expressions whose iteration order is unspecified."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return ctx.resolve_call(node.func) in ("set", "frozenset")
    return False


# -- REP000 is synthesized by the engine (parse failures) and the ------
# -- waiver parser (malformed waivers); registering it here gives it ---
# -- a catalog entry and a uniform appearance in reports. --------------

rule(
    "REP000",
    "lint tool integrity",
    "a file the linter cannot parse, or a waiver it cannot honor, is itself "
    "a hole in the invariant net and must be visible",
    (),
)(lambda node, ctx: ())


@rule(
    "REP001",
    "determinism",
    "schedules, cache keys, and sweep seeds must be pure functions of their "
    "inputs: unseeded RNGs, the per-process-salted builtin hash(), and "
    "unordered set iteration all break bit-identical replay",
    (ast.Call, ast.For, ast.AsyncFor, ast.comprehension),
)
def _check_determinism(node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
    if isinstance(node, ast.Call):
        target = ctx.resolve_call(node.func)
        if target is None:
            return
        if target.startswith("random.") and target.split(".", 1)[1] not in _SEEDED_RANDOM_OK:
            yield ctx.finding(
                "REP001",
                node,
                f"global-state RNG call {target}() -- use a seeded "
                "random.Random(seed) instance (see repro.parallel.seeds)",
            )
        elif (
            target.startswith("numpy.random.")
            and target.rsplit(".", 1)[1] not in _SEEDED_NUMPY_OK
        ):
            yield ctx.finding(
                "REP001",
                node,
                f"legacy global numpy RNG call {target}() -- use "
                "numpy.random.default_rng(seed)",
            )
        elif target == "hash":
            yield ctx.finding(
                "REP001",
                node,
                "builtin hash() is salted per process -- use hashlib or "
                "repro.parallel.seeds.derive_seed for keys and fingerprints",
            )
    elif isinstance(node, (ast.For, ast.AsyncFor, ast.comprehension)):
        iter_expr = node.iter
        if _is_unordered_iterable(iter_expr, ctx):
            yield ctx.finding(
                "REP001",
                iter_expr,
                "iteration over a set has unspecified order -- wrap in sorted() "
                "before it can feed a schedule, cache key, or exported table",
            )


@rule(
    "REP002",
    "timing hygiene",
    "durations and uptimes measured with the wall clock jump with NTP steps "
    "and DST; timing paths must use time.monotonic()/time.perf_counter(), "
    "keeping wall-clock reads for display-only timestamps",
    (ast.Call,),
)
def _check_timing(node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
    assert isinstance(node, ast.Call)
    if ctx.resolve_call(node.func) == "time.time":
        yield ctx.finding(
            "REP002",
            node,
            "time.time() is not monotonic -- use time.monotonic() or "
            "time.perf_counter() for durations; waive only display-only "
            "wall-clock timestamps",
        )


@rule(
    "REP003",
    "async hygiene",
    "a blocking call inside an async def stalls the whole event loop -- every "
    "connection, deadline, and drain in repro.service shares that loop",
    (ast.Call,),
)
def _check_async_blocking(node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
    assert isinstance(node, ast.Call)
    if ctx.async_depth == 0:
        return
    target = ctx.resolve_call(node.func)
    if target is None:
        return
    if target in _BLOCKING_CALLS or target.startswith(_BLOCKING_PREFIXES):
        yield ctx.finding(
            "REP003",
            node,
            f"blocking call {target}() inside an async def -- use the asyncio "
            "equivalent or offload via loop.run_in_executor()",
        )


def _handler_is_blanket(handler: ast.ExceptHandler) -> bool:
    node = handler.type
    if node is None:
        return True  # bare except:
    if isinstance(node, ast.Name):
        return node.id in ("Exception", "BaseException")
    if isinstance(node, ast.Tuple):
        return any(
            isinstance(el, ast.Name) and el.id in ("Exception", "BaseException")
            for el in node.elts
        )
    return False


@rule(
    "REP004",
    "exception hygiene",
    "a blanket `except Exception` that neither re-raises nor emits a metric / "
    "telemetry record makes failures invisible to the ledger, the resilience "
    "counters, and the operator",
    (ast.ExceptHandler,),
)
def _check_exception_swallow(node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
    assert isinstance(node, ast.ExceptHandler)
    if not _handler_is_blanket(node):
        return
    for stmt in node.body:
        for sub in ast.walk(stmt):
            if isinstance(sub, (ast.Raise, ast.Call)):
                return  # re-raised, or at least *did something* observable
    yield ctx.finding(
        "REP004",
        node,
        "blanket except swallows the failure silently -- re-raise, emit a "
        "metric/telemetry record, or waive with a reason",
    )


def _constant_int(node: ast.expr | None) -> int | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        if not isinstance(node.value, bool):
            return node.value
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, int)
    ):
        return -node.operand.value
    return None


@rule(
    "REP005",
    "CLI exit-code contract",
    "scripts and CI gate on the documented exit codes (0 success, 1 failure/"
    "findings, 2 usage, 130 interrupt); any other constant code silently "
    "breaks those gates",
    (ast.Call, ast.Raise),
)
def _check_exit_codes(node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
    call: ast.Call | None = None
    if isinstance(node, ast.Call) and ctx.resolve_call(node.func) == "sys.exit":
        call = node
    elif isinstance(node, ast.Raise) and isinstance(node.exc, ast.Call):
        target = ctx.resolve_call(node.exc.func)
        if target in ("SystemExit", "builtins.SystemExit"):
            call = node.exc
    if call is None or not call.args:
        return
    code = _constant_int(call.args[0])
    if code is not None and code not in ALLOWED_EXIT_CODES:
        allowed = ", ".join(str(c) for c in sorted(ALLOWED_EXIT_CODES))
        yield ctx.finding(
            "REP005",
            node,
            f"exit code {code} is outside the CLI contract {{{allowed}}} "
            "(see the repro.cli docstring)",
        )


def _metric_name_ok(name: str) -> bool:
    if name in CORE_METRIC_NAMES:
        return True
    return any(name.startswith(f"{family}.") for family in METRIC_FAMILIES)


def _metric_prefix_ok(prefix: str) -> bool:
    """An f-string metric name is checked by its literal prefix."""
    return any(prefix.startswith(f"{family}.") for family in METRIC_FAMILIES)


@rule(
    "REP006",
    "telemetry naming contract",
    "dashboards, the Prometheus exporter, and stats tooling key on the "
    "registered sim.* metric families and RunRecord kinds; an unregistered "
    "literal is a metric nobody will ever scrape",
    (ast.Call,),
)
def _check_telemetry_names(node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
    assert isinstance(node, ast.Call)
    func = node.func
    # registry.counter("sim.family.name") and friends
    if (
        isinstance(func, ast.Attribute)
        and func.attr in _INSTRUMENT_METHODS
        and node.args
    ):
        arg = node.args[0]
        families = ", ".join(sorted(METRIC_FAMILIES))
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            if not _metric_name_ok(arg.value):
                yield ctx.finding(
                    "REP006",
                    arg,
                    f"metric name {arg.value!r} is not in a registered family "
                    f"({families}) or the core sim.* set "
                    "(repro.obs.metrics.METRIC_FAMILIES / CORE_METRIC_NAMES)",
                )
        elif isinstance(arg, ast.JoinedStr) and arg.values:
            first = arg.values[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                if not _metric_prefix_ok(first.value):
                    yield ctx.finding(
                        "REP006",
                        arg,
                        f"dynamic metric name prefix {first.value!r} is not in a "
                        f"registered family ({families})",
                    )
    # RunRecord(kind="...") literals must be registered kinds
    is_runrecord = (isinstance(func, ast.Name) and func.id == "RunRecord") or (
        isinstance(func, ast.Attribute) and func.attr == "RunRecord"
    )
    if is_runrecord:
        for kw in node.keywords:
            if (
                kw.arg == "kind"
                and isinstance(kw.value, ast.Constant)
                and isinstance(kw.value.value, str)
                and kw.value.value not in KNOWN_KINDS
            ):
                kinds = ", ".join(sorted(KNOWN_KINDS))
                yield ctx.finding(
                    "REP006",
                    kw.value,
                    f"RunRecord kind {kw.value.value!r} is not registered "
                    f"({kinds}) -- add it to repro.obs.telemetry.KNOWN_KINDS "
                    "first",
                )
