"""The committed findings baseline: grandfather, then ratchet down.

A baseline lets the linter gate CI from day one without requiring every
historical finding to be fixed in the same change: findings whose
fingerprints are recorded in the baseline are reported as *baselined*
and do not fail the run; anything new does.  Removing entries (fixing
the code) only ever shrinks the file -- the ratchet direction.

The file also records report-only finding *counts* for trees the
linter does not gate on (``tests/``, ``examples/``), so their totals
are visible in review and future changes can ratchet them toward zero.

Schema (version 1)::

    {
      "schema": 1,
      "tool": "repro.lint",
      "findings": [
        {"fingerprint": "...", "rule": "REP002", "path": "...", "count": 1},
        ...
      ],
      "report_only": {"tests": 12, "examples": 0}
    }

A corrupt or schema-incompatible baseline raises :class:`BaselineError`,
which the CLI maps to exit code 2 (usage-level error) -- never silently
treated as empty, since a truncated or mangled file would otherwise
disable the gate without anyone noticing.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from pathlib import Path

from repro.lint.findings import Finding

__all__ = [
    "BASELINE_SCHEMA",
    "BaselineError",
    "DEFAULT_BASELINE",
    "load_baseline",
    "save_baseline",
    "split_findings",
]

BASELINE_SCHEMA = 1

#: Default committed location, relative to the invocation directory.
DEFAULT_BASELINE = "lint-baseline.json"


class BaselineError(ValueError):
    """The baseline file exists but cannot be trusted."""


def load_baseline(path: str | os.PathLike) -> dict:
    """Load and validate a baseline; a missing file is an empty one."""
    file_path = Path(path)
    if not file_path.exists():
        return {"schema": BASELINE_SCHEMA, "findings": [], "report_only": {}}
    try:
        data = json.loads(file_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"corrupt baseline {file_path}: {exc}") from exc
    if not isinstance(data, dict):
        raise BaselineError(f"corrupt baseline {file_path}: expected a JSON object")
    if data.get("schema") != BASELINE_SCHEMA:
        raise BaselineError(
            f"baseline {file_path} has unsupported schema {data.get('schema')!r} "
            f"(expected {BASELINE_SCHEMA})"
        )
    entries = data.get("findings", [])
    if not isinstance(entries, list):
        raise BaselineError(f"corrupt baseline {file_path}: 'findings' must be a list")
    for entry in entries:
        if not isinstance(entry, dict) or not isinstance(entry.get("fingerprint"), str):
            raise BaselineError(
                f"corrupt baseline {file_path}: every finding needs a string "
                "'fingerprint'"
            )
        if not isinstance(entry.get("count", 1), int) or entry.get("count", 1) < 1:
            raise BaselineError(
                f"corrupt baseline {file_path}: finding counts must be positive ints"
            )
    report_only = data.get("report_only", {})
    if not isinstance(report_only, dict):
        raise BaselineError(
            f"corrupt baseline {file_path}: 'report_only' must be an object"
        )
    return data


def save_baseline(
    path: str | os.PathLike,
    findings: list[Finding],
    report_only: dict[str, int] | None = None,
) -> dict:
    """Write a fresh baseline grandfathering ``findings``; returns it."""
    counts: Counter[str] = Counter(f.fingerprint() for f in findings)
    described: dict[str, Finding] = {}
    for finding in findings:
        described.setdefault(finding.fingerprint(), finding)
    data = {
        "schema": BASELINE_SCHEMA,
        "tool": "repro.lint",
        "findings": [
            {
                "fingerprint": fingerprint,
                "rule": described[fingerprint].rule,
                "path": described[fingerprint].path,
                "count": count,
            }
            for fingerprint, count in sorted(counts.items())
        ],
        "report_only": dict(sorted((report_only or {}).items())),
    }
    file_path = Path(path)
    file_path.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")
    return data


def split_findings(
    findings: list[Finding], baseline: dict
) -> tuple[list[Finding], int]:
    """Partition into (new findings, baselined count).

    Matching is a multiset consume: a baseline entry with ``count: 2``
    absorbs at most two identical findings; a third is new.
    """
    budget: Counter[str] = Counter()
    for entry in baseline.get("findings", []):
        budget[entry["fingerprint"]] += int(entry.get("count", 1))
    new: list[Finding] = []
    baselined = 0
    for finding in findings:
        fingerprint = finding.fingerprint()
        if budget[fingerprint] > 0:
            budget[fingerprint] -= 1
            baselined += 1
        else:
            new.append(finding)
    return new, baselined
