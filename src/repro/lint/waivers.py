"""Inline waivers: ``# repro: lint-ok[RULE] reason``.

A waiver suppresses named rules at one location *with a recorded
reason* -- the reason is mandatory, because an unexplained suppression
is exactly the silent convention-drift the linter exists to prevent.

Placement:

- on the offending line itself::

      self.started_at_unix = time.time()  # repro: lint-ok[REP002] display only

- or on its own line directly above the offending line (for statements
  that would blow the line-length budget)::

      # repro: lint-ok[REP002] cross-process heartbeat needs a shared clock
      heartbeats[chunk_id] = _time.time()

Several rules may share one waiver: ``lint-ok[REP001,REP004] reason``.
A waiver with no reason does not suppress anything; it is itself
reported under the REP000 tool-integrity rule.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.lint.findings import Finding

__all__ = ["Waiver", "apply_waivers", "collect_waivers"]

#: ``# repro: lint-ok[REP001,REP004] reason text``
WAIVER_RE = re.compile(r"#\s*repro:\s*lint-ok\[([A-Za-z0-9_,\s]*)\]\s*(.*)$")


@dataclass(slots=True)
class Waiver:
    """One parsed waiver comment."""

    rules: frozenset[str]
    reason: str
    line: int
    #: line the waiver suppresses: the comment's own line, or the next
    #: line when the comment stands alone.
    target_line: int
    used: bool = field(default=False)

    def covers(self, finding: Finding) -> bool:
        return finding.line == self.target_line and finding.rule in self.rules


def collect_waivers(source: str, path: str) -> tuple[list[Waiver], list[Finding]]:
    """Extract waivers from ``source``; malformed ones become findings.

    Uses :mod:`tokenize` rather than a regex over raw lines so waivers
    inside string literals are never misparsed as live waivers.
    """
    waivers: list[Waiver] = []
    findings: list[Finding] = []
    lines = source.splitlines()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        # the engine reports the parse failure itself; no waivers apply
        return [], []
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = WAIVER_RE.match(tok.string)
        if match is None:
            continue
        lineno = tok.start[0]
        text = lines[lineno - 1] if lineno - 1 < len(lines) else ""
        snippet = text.strip()
        rules = frozenset(
            token.strip().upper() for token in match.group(1).split(",") if token.strip()
        )
        reason = match.group(2).strip()
        if not rules or not reason:
            findings.append(
                Finding(
                    rule="REP000",
                    path=path,
                    line=lineno,
                    col=tok.start[1] + 1,
                    message=(
                        "waiver needs at least one rule id and a non-empty reason: "
                        "'# repro: lint-ok[RULE] reason'"
                    ),
                    snippet=snippet,
                )
            )
            continue
        own_line = text[: tok.start[1]].strip() == ""
        waivers.append(
            Waiver(
                rules=rules,
                reason=reason,
                line=lineno,
                target_line=lineno + 1 if own_line else lineno,
            )
        )
    return waivers, findings


def apply_waivers(
    findings: list[Finding], waivers: list[Waiver]
) -> tuple[list[Finding], int]:
    """Drop findings covered by a waiver; return ``(kept, waived)``."""
    kept: list[Finding] = []
    waived = 0
    for finding in findings:
        covered = False
        for waiver in waivers:
            if waiver.covers(finding):
                waiver.used = True
                covered = True
        if covered:
            waived += 1
        else:
            kept.append(finding)
    return kept, waived
