"""Per-file analysis and the sweep-engine-backed fan-out driver.

One file is one unit of work: parse, collect import aliases, collect
waivers, then walk the tree exactly once, dispatching each node to the
rules interested in its type (:data:`repro.lint.rules.RULES`).
:func:`lint_file` is a picklable module-level function over a plain
string spec, which lets :func:`lint_paths` fan a large tree across
worker processes through :func:`repro.parallel.run_points` -- the
linter dogfoods the same sweep engine the figure reproductions use,
with the same submission-order reassembly guarantee, so output order
is identical serial or parallel.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.findings import Finding
from repro.lint.rules import RULES, FileContext, Rule
from repro.lint.waivers import apply_waivers, collect_waivers
from repro.obs.metrics import MetricsRegistry
from repro.parallel.engine import run_points, sweep_context

__all__ = [
    "LintResult",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
]

#: Directory names never descended into during discovery.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules"})


def _dispatch_table(
    rules: Iterable[Rule],
) -> dict[type[ast.AST], list[Rule]]:
    table: dict[type[ast.AST], list[Rule]] = {}
    for rule in rules:
        for node_type in rule.interests:
            table.setdefault(node_type, []).append(rule)
    return table


class _Walker(ast.NodeVisitor):
    """Single-pass dispatcher tracking ``async def`` nesting."""

    def __init__(
        self,
        table: dict[type[ast.AST], list[Rule]],
        ctx: FileContext,
        findings: list[Finding],
    ) -> None:
        self._table = table
        self._ctx = ctx
        self._findings = findings

    def generic_visit(self, node: ast.AST) -> None:
        for rule in self._table.get(type(node), ()):
            self._findings.extend(rule.check(node, self._ctx))
        super().generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._ctx.async_depth += 1
        try:
            self.generic_visit(node)
        finally:
            self._ctx.async_depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # a sync def nested inside an async def runs off-loop (executor,
        # callback): its body is not event-loop context
        depth, self._ctx.async_depth = self._ctx.async_depth, 0
        try:
            self.generic_visit(node)
        finally:
            self._ctx.async_depth = depth


def lint_source(
    source: str, path: str, rule_ids: Sequence[str] | None = None
) -> tuple[list[Finding], int]:
    """Lint one module's source text.

    Returns ``(findings, waived)`` -- findings surviving waivers, in
    source order, and the number a waiver suppressed.  A file that does
    not parse yields one REP000 finding (the tree it hides is
    unchecked, which must be visible).
    """
    waivers, findings = collect_waivers(source, path)
    try:
        tree = ast.parse(source, filename=path)
    except (SyntaxError, ValueError) as exc:
        lineno = getattr(exc, "lineno", None) or 1
        findings.append(
            Finding(
                rule="REP000",
                path=path,
                line=lineno,
                col=(getattr(exc, "offset", None) or 1),
                message=f"file does not parse, so no invariants were checked: {exc.msg}"
                if isinstance(exc, SyntaxError)
                else f"file does not parse, so no invariants were checked: {exc}",
            )
        )
        return sorted(findings, key=Finding.sort_key), 0
    ctx = FileContext(path=path, lines=source.splitlines())
    ctx.collect_imports(tree)
    selected = (
        [RULES[rule_id] for rule_id in rule_ids] if rule_ids is not None else RULES.values()
    )
    _Walker(_dispatch_table(selected), ctx, findings).visit(tree)
    findings.sort(key=Finding.sort_key)
    kept, waived = apply_waivers(findings, waivers)
    return kept, waived


def lint_file(path: str) -> dict:
    """Point function for the sweep engine: lint one file by path.

    Returns a plain, picklable payload.  An unreadable file is a REP000
    finding, not an exception -- a crash in one worker must not abort
    the sweep (and the engine's in-process fallback would re-raise it).
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    except (OSError, UnicodeDecodeError) as exc:
        finding = Finding(
            rule="REP000",
            path=path,
            line=1,
            col=1,
            message=f"file could not be read: {exc}",
        )
        return {"path": path, "findings": [finding.to_dict()], "waived": 0}
    findings, waived = lint_source(source, path)
    return {
        "path": path,
        "findings": [finding.to_dict() for finding in findings],
        "waived": waived,
    }


def iter_python_files(paths: Sequence[str | os.PathLike]) -> list[str]:
    """Every ``.py`` file under ``paths``, sorted, caches skipped.

    Paths are kept exactly as given (relative stays relative), so
    invoking the linter from the repo root produces the repo-relative
    paths the committed baseline is keyed on.
    """
    files: set[str] = set()
    for root in paths:
        root_path = Path(root)
        if root_path.is_file():
            files.add(os.fspath(root_path))
            continue
        for current, dirnames, filenames in os.walk(root_path):
            dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS)
            for name in filenames:
                if name.endswith(".py"):
                    files.add(os.path.join(current, name))
    return sorted(files)


@dataclass(slots=True)
class LintResult:
    """Aggregated outcome of one :func:`lint_paths` run."""

    files: int
    findings: list[Finding] = field(default_factory=list)
    waived: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings


def lint_paths(
    paths: Sequence[str | os.PathLike],
    jobs: int | None = None,
    metrics: MetricsRegistry | None = None,
) -> LintResult:
    """Lint every Python file under ``paths``.

    ``jobs`` > 1 fans files across worker processes via
    :func:`repro.parallel.run_points` (``None``/1 runs serially through
    the same code path).  ``metrics`` receives ``sim.lint.*`` totals
    alongside the engine's own ``sim.parallel.*`` instruments.
    """
    files = iter_python_files(paths)
    registry = metrics if metrics is not None else MetricsRegistry()
    with sweep_context(jobs=jobs if jobs else 1, metrics=registry):
        payloads = run_points(lint_file, files, label="lint")
    result = LintResult(files=len(files))
    for payload in payloads:
        result.findings.extend(
            Finding.from_dict(item) for item in payload["findings"]
        )
        result.waived += payload["waived"]
    result.findings.sort(key=Finding.sort_key)
    registry.counter("sim.lint.files").inc(len(files))
    registry.counter("sim.lint.findings").inc(len(result.findings))
    registry.counter("sim.lint.waived").inc(result.waived)
    return result
