"""The :class:`Finding` envelope every lint rule produces.

A finding is one violation at one source location.  Its *fingerprint*
deliberately excludes the line number -- it hashes the rule id, the
file path, the stripped source line, and the message -- so a committed
baseline survives unrelated edits that only shift code up or down.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Mapping

__all__ = ["Finding"]


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one location.

    Attributes:
        rule: rule identifier (``"REP002"``).
        path: file path as given to the linter (repo-relative when the
            linter is invoked from the repo root, which is what keeps
            baselines portable).
        line: 1-based source line of the offending construct.
        col: 1-based column.
        message: human-readable description of the violation.
        snippet: the stripped source line, for context and for the
            line-number-independent fingerprint.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def fingerprint(self) -> str:
        """Stable identity for baseline matching (line-number free)."""
        payload = "|".join((self.rule, self.path, self.snippet, self.message))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def format(self) -> str:
        """One text-format line: ``path:line:col: RULE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Finding":
        return cls(
            rule=str(data["rule"]),
            path=str(data["path"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            col=int(data["col"]),  # type: ignore[arg-type]
            message=str(data["message"]),
            snippet=str(data.get("snippet", "")),
        )
