"""Optimal all-port broadcast via edge-disjoint spanning binomial trees.

Johnsson & Ho's *nESBT* broadcast -- reference [5] of the paper, and the
canonical demonstration of what all-port architectures buy: the root
splits an ``L``-byte message into ``n`` parts and pumps each part down
its own spanning binomial tree.  Because the ``n`` trees are pairwise
**arc-disjoint**, all ``n`` ports work concurrently with zero channel
contention, and for bandwidth-dominated messages broadcast time drops
by nearly a factor of ``n`` versus a single binomial tree.

Construction used here (verified arc-disjoint by the test suite up to
``n = 8``): tree ``i`` is the spanning binomial tree rooted at 0 with
its dimensions rotated left by ``i``, then translated by ``2**i`` (so it
is rooted at the root's dimension-``i`` neighbor), prefixed by the root
edge ``(root, root ^ 2**i)``.  Arbitrary roots follow by XOR
translation, which permutes channels bijectively and preserves
disjointness.
"""

from __future__ import annotations

from repro.core.addressing import require_address
from repro.core.paths import ResolutionOrder
from repro.collectives.graph import CommGraph

__all__ = ["esbt_broadcast_graph", "esbt_trees"]


def _rotl(v: int, i: int, n: int) -> int:
    i %= n
    if i == 0:
        return v
    mask = (1 << n) - 1
    return ((v << i) | (v >> (n - i))) & mask


def esbt_trees(n: int) -> list[dict[int, int]]:
    """The ``n`` arc-disjoint spanning trees, as child -> parent maps.

    Tree ``i`` spans every non-root node; its root-side entry maps
    ``2**i`` to 0.  Node 0 (the broadcast root before translation)
    appears in no tree as a child.
    """
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    trees: list[dict[int, int]] = []
    for i in range(n):
        parent: dict[int, int] = {}
        t = 1 << i
        for v in range(1, 1 << n):
            # SBT parent (clear lowest set bit), rotated by i, translated by 2^i
            p = v ^ (v & -v)
            child = _rotl(v, i, n) ^ t
            par = _rotl(p, i, n) ^ t
            if child == 0:
                continue  # the broadcast root needs no copy
            parent[child] = par
        parent[t] = 0
        trees.append(parent)
    return trees


def esbt_broadcast_graph(
    n: int,
    root: int,
    size: int,
    order: ResolutionOrder = ResolutionOrder.DESCENDING,
) -> CommGraph:
    """Broadcast ``size`` bytes from ``root`` over the ``n`` ESBTs.

    The message is split into ``n`` parts (block ids 0..n-1) of
    ``ceil(size / n)`` bytes; part ``i`` travels tree ``i``.  Every
    non-root node receives all ``n`` parts; channel contention is zero
    by arc-disjointness.
    """
    require_address(root, n, "root")
    if size < 1:
        raise ValueError(f"size must be >= 1, got {size}")
    part = max(1, (size + n - 1) // n)
    g = CommGraph(n, order)
    g.seed(root, range(n))

    for i, parent in enumerate(esbt_trees(n)):
        # children lists in the translated tree
        children: dict[int, list[int]] = {}
        for c, p in parent.items():
            children.setdefault(p, []).append(c)

        def emit(u: int, dep: int | None) -> None:
            for c in sorted(children.get(u, ())):
                sid = g.add(
                    u ^ root,
                    c ^ root,
                    size=part,
                    deps=() if dep is None else (dep,),
                    blocks=[i],
                )
                emit(c, sid)

        emit(0, None)
    g.validate()
    return g
