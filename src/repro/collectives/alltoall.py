"""All-to-all personalized exchange (complete exchange).

Every node holds one distinct block for every other node.  Two classic
hypercube schedules are provided:

- **dimension exchange** (``alltoall_graph``): ``n`` rounds; in round
  ``d`` each node sends across dimension ``d`` every block whose final
  destination differs from the node in bit ``d``.  Each round moves
  ``N/2`` blocks per node, so every message is ``(N / 2) * block``
  bytes; total traffic is ``n * N * (N / 2) * block``.  Single-hop
  exchanges in opposite directions are contention-free.
- **direct** (``alltoall_direct_graph``): ``N - 1`` rounds of pairwise
  XOR-scheduled unicasts (round ``r``: node ``u`` sends directly to
  ``u ^ r``); each message is a single block, total traffic is minimal,
  but messages traverse multi-hop paths and rounds are not dependency-
  chained, so contention is possible -- the test suite measures both.

The XOR schedule makes each direct round a perfect matching of the
nodes, the standard trick for complete exchanges on hypercubes.
"""

from __future__ import annotations

from repro.core.paths import ResolutionOrder
from repro.collectives.graph import CommGraph

__all__ = ["alltoall_direct_graph", "alltoall_graph"]


def _block_id(src: int, dst: int, n: int) -> int:
    """Globally unique id for the block travelling ``src`` -> ``dst``."""
    return (src << n) | dst


def alltoall_graph(
    n: int,
    block_size: int,
    order: ResolutionOrder = ResolutionOrder.DESCENDING,
) -> CommGraph:
    """Dimension-exchange (store-and-forward style) complete exchange."""
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    g = CommGraph(n, order)
    size = 1 << n
    # held[u] = block ids currently at node u
    held: dict[int, list[int]] = {
        u: [_block_id(u, dst, n) for dst in range(size)] for u in range(size)
    }
    for u in range(size):
        g.seed(u, held[u])
    pending: dict[int, list[int]] = {u: [] for u in range(size)}

    for d in range(n):
        bit = 1 << d
        outgoing: dict[int, list[int]] = {}
        sids: dict[int, int] = {}
        for u in range(size):
            moving = [b for b in held[u] if ((b & (size - 1)) ^ u) & bit]
            outgoing[u] = moving
            sids[u] = g.add(
                u,
                u ^ bit,
                size=max(1, block_size * len(moving)),
                deps=tuple(pending[u]),
                blocks=moving,
            )
        for u in range(size):
            peer = u ^ bit
            held[u] = [b for b in held[u] if b not in set(outgoing[u])] + outgoing[peer]
            pending[u] = pending[u] + [sids[peer]]

    g.validate()
    return g


def alltoall_direct_graph(
    n: int,
    block_size: int,
    order: ResolutionOrder = ResolutionOrder.DESCENDING,
) -> CommGraph:
    """Direct complete exchange: ``N - 1`` XOR-scheduled rounds of
    single-block unicasts.  Round ``r``'s sends depend on round
    ``r - 1``'s reception, keeping the rounds loosely synchronized."""
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    g = CommGraph(n, order)
    size = 1 << n
    for u in range(size):
        g.seed(u, [_block_id(u, dst, n) for dst in range(size)])
    last_recv: dict[int, int | None] = {u: None for u in range(size)}

    for r in range(1, size):
        new_recv: dict[int, int] = {}
        for u in range(size):
            dst = u ^ r
            dep = last_recv[u]
            sid = g.add(
                u,
                dst,
                size=block_size,
                deps=() if dep is None else (dep,),
                blocks=[_block_id(u, dst, n)],
            )
            new_recv[dst] = sid
        last_recv = dict(new_recv)

    g.validate()
    return g
