"""Scatter and gather: personalized distribution over the binomial tree.

*Scatter* (MPI_Scatter): the root holds one distinct block per node and
must deliver block ``u`` to node ``u``.  The classic hypercube
algorithm (Johnsson & Ho [5] of the paper) is recursive halving on the
spanning binomial tree: in round ``d`` (dimensions descending) every
node currently holding blocks for a ``(d+1)``-dimensional subcube sends
the half destined for the opposite ``d``-subcube across dimension ``d``
-- halving the payload each round, so the total bytes on the wire are
``(N - 1) * block`` and the critical path is
``sum_d (2^d * block * t_byte)`` plus per-round overheads.

*Gather* is the time-reversal: leaves send their block up the same
tree, with payloads doubling toward the root.
"""

from __future__ import annotations

from repro.core.addressing import require_address
from repro.core.paths import ResolutionOrder
from repro.collectives.graph import CommGraph

__all__ = ["gather_graph", "scatter_graph"]


def scatter_graph(
    n: int,
    root: int,
    block_size: int,
    order: ResolutionOrder = ResolutionOrder.DESCENDING,
) -> CommGraph:
    """Build the recursive-halving scatter from ``root``.

    Block ids are node addresses: node ``u`` must end up holding block
    ``u``.  Works for any root by XOR-relabeling (the tree is the
    binomial tree rooted at ``root``).
    """
    require_address(root, n, "root")
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    g = CommGraph(n, order)
    g.seed(root, range(1 << n))

    def rec(holder: int, dim: int, dep: int | None) -> None:
        # holder owns the blocks of the relative subcube spanned by the
        # low `dim` dimensions around it; peel off halves high-to-low.
        for d in range(dim - 1, -1, -1):
            mirror = holder ^ (1 << d)
            # blocks destined for the mirror's d-dimensional subcube
            sub = [u for u in range(1 << n) if (u ^ mirror) >> d == 0]
            sid = g.add(
                holder,
                mirror,
                size=block_size * len(sub),
                deps=() if dep is None else (dep,),
                blocks=sub,
            )
            rec(mirror, d, sid)

    rec(root, n, None)
    g.validate()
    return g


def gather_graph(
    n: int,
    root: int,
    block_size: int,
    order: ResolutionOrder = ResolutionOrder.DESCENDING,
) -> CommGraph:
    """Build the binomial-tree gather to ``root`` (scatter reversed).

    Every node starts holding its own block; in round ``d`` (dimensions
    ascending) the nodes whose low ``d`` bits match the root's forward
    their accumulated blocks across dimension ``d`` toward the root.
    """
    require_address(root, n, "root")
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    g = CommGraph(n, order)
    for u in range(1 << n):
        g.seed(u, [u])

    # last send id delivering into each node (the dependency chain)
    pending: dict[int, list[int]] = {u: [] for u in range(1 << n)}
    held: dict[int, list[int]] = {u: [u] for u in range(1 << n)}

    for d in range(n):
        bit = 1 << d
        for u in range(1 << n):
            rel = u ^ root
            # senders this round: low d bits equal root's, bit d differs
            if (rel & (bit - 1)) == 0 and (rel & bit):
                dst = u ^ bit
                sid = g.add(
                    u,
                    dst,
                    size=block_size * len(held[u]),
                    deps=tuple(pending[u]),
                    blocks=held[u],
                )
                held[dst] = held[dst] + held[u]
                pending[dst] = pending[dst] + [sid]
    g.validate()
    return g
