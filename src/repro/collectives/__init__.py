"""Collective communication operations built on the multicast substrate.

The paper motivates multicast as one member of the family of collective
operations (Section 1: multicast, reduction, barrier synchronization,
MPI).  This subpackage provides that family as a small library over the
wormhole simulator, with the paper's multicast algorithms as the
one-to-many primitive:

- :func:`~repro.collectives.api.HypercubeCollectives.multicast` /
  ``broadcast`` -- via any registered multicast algorithm;
- ``scatter`` / ``gather`` -- personalized distribution over the
  spanning binomial tree (Johnsson & Ho style recursive halving);
- ``allgather`` / ``allreduce`` / ``barrier`` -- recursive-doubling
  dimension exchanges;
- ``reduce`` -- binomial-tree combining.

All operations compile to a :class:`~repro.collectives.graph.CommGraph`
(a dependency DAG of sized unicasts) executed by the same wormhole
network model used for the paper's experiments.
"""

from repro.collectives.allgather import allgather_graph
from repro.collectives.alltoall import alltoall_direct_graph, alltoall_graph
from repro.collectives.api import HypercubeCollectives
from repro.collectives.broadcast import sbt_broadcast_graph
from repro.collectives.combine_tree import combining_graph, gather_subset, reduce_subset
from repro.collectives.esbt import esbt_broadcast_graph, esbt_trees
from repro.collectives.pipelined import optimal_segments, pipelined_multicast_graph
from repro.collectives.graph import CommGraph, CommResult, CommSend, simulate_comm
from repro.collectives.reduction import allreduce_graph, barrier_graph, reduce_graph
from repro.collectives.scatter import gather_graph, scatter_graph

__all__ = [
    "CommGraph",
    "CommResult",
    "CommSend",
    "HypercubeCollectives",
    "allgather_graph",
    "allreduce_graph",
    "alltoall_direct_graph",
    "alltoall_graph",
    "barrier_graph",
    "combining_graph",
    "esbt_broadcast_graph",
    "esbt_trees",
    "gather_graph",
    "gather_subset",
    "optimal_segments",
    "pipelined_multicast_graph",
    "reduce_graph",
    "reduce_subset",
    "sbt_broadcast_graph",
    "scatter_graph",
    "simulate_comm",
]
