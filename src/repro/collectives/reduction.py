"""Reduce, all-reduce, and barrier over dimension exchanges.

*Reduce* combines one fixed-size vector per node into the root using
the binomial tree (the mirror image of broadcast): in round ``d``
(dimensions ascending) half of the remaining nodes send their partial
result across dimension ``d`` and drop out.  Message size is constant
(element-wise combining does not grow the payload).

*All-reduce* uses recursive doubling: every node exchanges partials
with its dimension-``d`` neighbor each round; after ``n`` rounds all
nodes hold the full result.

*Barrier* is an all-reduce of an empty (1-byte) payload -- the
dissemination structure is what synchronizes.
"""

from __future__ import annotations

from repro.core.addressing import require_address
from repro.core.paths import ResolutionOrder
from repro.collectives.graph import CommGraph

__all__ = ["allreduce_graph", "barrier_graph", "reduce_graph"]


def reduce_graph(
    n: int,
    root: int,
    size: int,
    order: ResolutionOrder = ResolutionOrder.DESCENDING,
) -> CommGraph:
    """Binomial-tree reduction of a ``size``-byte vector to ``root``."""
    require_address(root, n, "root")
    if size < 1:
        raise ValueError(f"size must be >= 1, got {size}")
    g = CommGraph(n, order)
    pending: dict[int, list[int]] = {u: [] for u in range(1 << n)}

    for d in range(n):
        bit = 1 << d
        for u in range(1 << n):
            rel = u ^ root
            if (rel & (bit - 1)) == 0 and (rel & bit):
                dst = u ^ bit
                sid = g.add(u, dst, size=size, deps=tuple(pending[u]))
                pending[dst] = pending[dst] + [sid]
    return g


def allreduce_graph(
    n: int,
    size: int,
    order: ResolutionOrder = ResolutionOrder.DESCENDING,
) -> CommGraph:
    """Recursive-doubling all-reduce of a ``size``-byte vector."""
    if size < 1:
        raise ValueError(f"size must be >= 1, got {size}")
    g = CommGraph(n, order)
    pending: dict[int, list[int]] = {u: [] for u in range(1 << n)}

    for d in range(n):
        bit = 1 << d
        sids: dict[int, int] = {}
        for u in range(1 << n):
            sids[u] = g.add(u, u ^ bit, size=size, deps=tuple(pending[u]))
        for u in range(1 << n):
            pending[u] = pending[u] + [sids[u ^ bit]]
    return g


def barrier_graph(n: int, order: ResolutionOrder = ResolutionOrder.DESCENDING) -> CommGraph:
    """Barrier synchronization: an all-reduce of a token payload."""
    return allreduce_graph(n, size=1, order=order)
