"""Pipelined multicast: segmenting the message down the tree.

A multicast tree of depth ``d`` delivers an ``L``-byte message in about
``d * (t_setup + L * t_byte)``: each forwarding hop must receive the
*whole* message before relaying.  Splitting the message into ``k``
segments lets the relays forward segment 1 while segment 2 is still
arriving, cutting the bandwidth term to roughly
``(d + k - 1) * (L / k) * t_byte`` at the price of ``k`` per-hop
startups.  The optimum ``k`` balances the two (it grows with
``sqrt(L * t_byte * (d - 1) / t_setup)``).

This module compiles any multicast tree into the segmented
:class:`~repro.collectives.graph.CommGraph`: segment ``s`` from node
``u`` to child ``c`` depends on ``u``'s reception of segment ``s``,
and per-node send ordering (segment-major) lets the wormhole model's
port resources pipeline naturally.  Contention-freedom of the
underlying tree is inherited: all segments of one tree edge use the
same path, and distinct edges' paths behave as in the unsegmented
operation.
"""

from __future__ import annotations

import math

from repro.collectives.graph import CommGraph
from repro.multicast.base import MulticastTree
from repro.simulator.params import Timings

__all__ = ["optimal_segments", "pipelined_multicast_graph"]


def pipelined_multicast_graph(
    tree: MulticastTree,
    size: int,
    segments: int,
) -> CommGraph:
    """Compile ``tree`` into a ``segments``-way pipelined CommGraph.

    Block ``s`` (0-based segment index) is tracked end to end, so the
    tests can verify every destination assembles the full message.

    Raises:
        ValueError: for a non-positive size or segment count, or more
            segments than bytes.
    """
    if size < 1:
        raise ValueError(f"size must be >= 1, got {size}")
    if segments < 1:
        raise ValueError(f"segments must be >= 1, got {segments}")
    if segments > size:
        raise ValueError(f"cannot split {size} bytes into {segments} segments")
    seg_size = (size + segments - 1) // segments

    g = CommGraph(tree.n, tree.order)
    g.seed(tree.source, range(segments))

    # received[(node, s)] -> send id that delivered segment s to node
    received: dict[tuple[int, int], int] = {}
    # segment-major issue order: all segment-0 sends of a node first,
    # so the first segment races ahead and the pipeline fills behind it
    for s in range(segments):
        for send in tree.sends:
            dep = received.get((send.src, s))
            sid = g.add(
                send.src,
                send.dst,
                size=seg_size,
                deps=() if dep is None else (dep,),
                blocks=[s],
            )
            received[(send.dst, s)] = sid
    g.validate()
    return g


def optimal_segments(size: int, depth: int, timings: Timings) -> int:
    """Closed-form near-optimal segment count for a depth-``depth`` tree.

    Minimizes ``depth * t_setup * k  +  (depth + k - 1) * (size/k) *
    t_byte`` over ``k`` (the standard pipelining trade-off); clamped to
    ``[1, size]``.
    """
    if size < 1 or depth < 1:
        raise ValueError("size and depth must be >= 1")
    if timings.t_setup <= 0:
        return max(1, min(size, depth * 4))
    k = math.sqrt(max(1.0, (depth - 1) * size * timings.t_byte / timings.t_setup / depth))
    return max(1, min(size, round(k)))
