"""Dependency graphs of sized unicasts, and their timed execution.

A :class:`CommGraph` generalizes a multicast tree: every send has its
own message size, may depend on *several* prior receptions (a reduce
node combines all children before forwarding), and may carry a set of
abstract data *blocks* whose final placement the tests verify.

Execution semantics mirror :func:`repro.simulator.run.simulate_multicast`:
a node's CPU issues a send ``t_setup`` after all of the send's
dependencies have been received (and any earlier sends' setups have
finished); injection waits for a free port; ports are held until
delivery.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from statistics import mean
from time import perf_counter
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.core.paths import ResolutionOrder
from repro.multicast.ports import ALL_PORT, PortModel
from repro.obs import sink as _telemetry_sink
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import RunRecord, new_run_id
from repro.simulator.engine import Simulator
from repro.simulator.message import Worm
from repro.simulator.network import WormholeNetwork
from repro.simulator.node import HostNode
from repro.simulator.params import NCUBE2, Timings

if TYPE_CHECKING:  # pragma: no cover - type-only
    from repro.obs.probes import Probe

__all__ = ["CommGraph", "CommResult", "CommSend", "simulate_comm"]


@dataclass(frozen=True, slots=True)
class CommSend:
    """One sized unicast of a collective operation.

    Attributes:
        sid: unique id within the graph.
        src/dst: endpoints.
        size: bytes on the wire.
        deps: ids of sends that must have been *received by* ``src``
            before this send can be issued (empty: ready at t=0).
        blocks: abstract data blocks carried (for placement checks).
    """

    sid: int
    src: int
    dst: int
    size: int
    deps: tuple[int, ...] = ()
    blocks: frozenset[int] = frozenset()


class CommGraph:
    """A dependency DAG of unicasts implementing one collective."""

    def __init__(self, n: int, order: ResolutionOrder = ResolutionOrder.DESCENDING) -> None:
        self.n = n
        self.order = order
        self.sends: list[CommSend] = []
        #: blocks every node holds before the operation starts
        self.initial_blocks: dict[int, frozenset[int]] = {}

    def add(
        self,
        src: int,
        dst: int,
        size: int,
        deps: Iterable[int] = (),
        blocks: Iterable[int] = (),
    ) -> int:
        """Append a send; returns its id for use in later ``deps``."""
        deps = tuple(deps)
        for d in deps:
            if not 0 <= d < len(self.sends):
                raise ValueError(f"dependency {d} does not exist yet")
            if self.sends[d].dst != src:
                raise ValueError(
                    f"send from {src} cannot depend on send {d}, which "
                    f"delivers to {self.sends[d].dst}"
                )
        sid = len(self.sends)
        self.sends.append(CommSend(sid, src, dst, size, deps, frozenset(blocks)))
        return sid

    def seed(self, node: int, blocks: Iterable[int]) -> None:
        """Declare the blocks ``node`` holds before the operation."""
        self.initial_blocks[node] = self.initial_blocks.get(node, frozenset()) | frozenset(blocks)

    @property
    def total_bytes(self) -> int:
        return sum(s.size for s in self.sends)

    def relabel(self, fn, n: int | None = None) -> "CommGraph":
        """A copy of the graph with every node address mapped by ``fn``.

        Used to run a ``k``-dimensional collective inside a subcube of a
        larger machine (``fn`` embeds the small addresses).  Dependencies
        and block ids are preserved.
        """
        out = CommGraph(self.n if n is None else n, self.order)
        for node, blocks in self.initial_blocks.items():
            out.seed(fn(node), blocks)
        for s in self.sends:
            out.add(fn(s.src), fn(s.dst), s.size, deps=s.deps, blocks=s.blocks)
        return out

    @staticmethod
    def merge(graphs: "list[CommGraph]") -> "CommGraph":
        """Combine independent graphs into one (e.g. collectives running
        concurrently in disjoint subcubes).

        Send ids are re-based; block ids are namespaced by graph index
        (``block | index << 32``) so concurrent operations cannot be
        confused with each other.
        """
        if not graphs:
            raise ValueError("merge requires at least one graph")
        n = graphs[0].n
        order = graphs[0].order
        if any(g.n != n or g.order is not order for g in graphs):
            raise ValueError("merged graphs must share dimension and order")
        out = CommGraph(n, order)
        for gi, g in enumerate(graphs):
            base = len(out.sends)
            tag = gi << 32
            for node, blocks in g.initial_blocks.items():
                out.seed(node, [b | tag for b in blocks])
            for s in g.sends:
                out.add(
                    s.src,
                    s.dst,
                    s.size,
                    deps=tuple(d + base for d in s.deps),
                    blocks=[b | tag for b in s.blocks],
                )
        return out

    def validate(self) -> None:
        """Check block causality: every send only carries blocks its
        source initially held or obtained through its declared
        dependencies.  (Acyclicity is guaranteed by ``add``: a send can
        only depend on already-created sends, so ids are topological.)"""
        have: dict[int, set[int]] = {u: set(b) for u, b in self.initial_blocks.items()}
        for s in self.sends:
            avail = have.setdefault(s.src, set())
            for d in s.deps:
                avail |= set(self.sends[d].blocks)
            if not set(s.blocks) <= avail:
                raise ValueError(f"send {s.sid} carries blocks its source never held")


@dataclass(slots=True)
class CommResult:
    """Outcome of one simulated collective."""

    graph: CommGraph
    timings: Timings
    ports: PortModel
    send_received_at: dict[int, float]  # send id -> CPU receive time at dst
    node_done_at: dict[int, float]  # node -> last CPU receive time
    final_blocks: dict[int, frozenset[int]]
    total_blocked_time: float
    events: int

    @property
    def completion_time(self) -> float:
        """Time at which the whole operation has finished."""
        return max(self.node_done_at.values(), default=0.0)

    @property
    def avg_node_time(self) -> float:
        return mean(self.node_done_at.values()) if self.node_done_at else 0.0


def simulate_comm(
    graph: CommGraph,
    timings: Timings = NCUBE2,
    ports: PortModel = ALL_PORT,
    trace: bool = False,
    max_events: int | None = 10_000_000,
    metrics: MetricsRegistry | None = None,
    probes: "Sequence[Probe] | None" = None,
    label: str | None = None,
) -> CommResult:
    """Execute a :class:`CommGraph` on the wormhole network model.

    ``metrics``, ``probes``, and ``label`` mirror
    :func:`repro.simulator.run.simulate_multicast`; with a telemetry
    sink active one ``kind="comm"`` record is emitted per call.
    """
    wall_start = perf_counter()
    sim = Simulator(probes)
    limit = ports.limit(graph.n)

    nodes: dict[int, HostNode] = {}
    received_at: dict[int, float] = {}
    node_done: dict[int, float] = {}
    blocks: dict[int, set[int]] = {u: set(b) for u, b in graph.initial_blocks.items()}

    # per send: number of unsatisfied dependencies
    waiting = [len(s.deps) for s in graph.sends]
    dependents: dict[int, list[int]] = {}
    for s in graph.sends:
        for d in s.deps:
            dependents.setdefault(d, []).append(s.sid)

    def on_receive(host: HostNode, worm: Worm) -> None:
        sid = worm.payload
        received_at[sid] = sim.now
        node_done[host.address] = sim.now
        send = graph.sends[sid]
        blocks.setdefault(send.dst, set()).update(send.blocks)
        ready = []
        for dep_sid in dependents.get(sid, ()):
            waiting[dep_sid] -= 1
            if waiting[dep_sid] == 0:
                ready.append(dep_sid)
        if ready:
            _submit(ready, sim.now)

    def get_node(address: int) -> HostNode:
        node = nodes.get(address)
        if node is None:
            node = nodes[address] = HostNode(network, address, limit, on_receive)
        return node

    def on_delivered(worm: Worm) -> None:
        get_node(worm.src).release_port()
        get_node(worm.dst).deliver(worm)

    network = WormholeNetwork(
        sim, graph.n, timings=timings, order=graph.order, trace=trace, on_delivered=on_delivered
    )

    def _submit(sids: Sequence[int], when: float) -> None:
        by_src: dict[int, list[int]] = {}
        for sid in sids:
            by_src.setdefault(graph.sends[sid].src, []).append(sid)
        for src, group in by_src.items():
            get_node(src).submit_sends(
                [(graph.sends[sid].dst, graph.sends[sid].size, sid) for sid in group],
                when,
            )

    _submit([s.sid for s in graph.sends if not s.deps], 0.0)
    sim.run(max_events=max_events)
    network.assert_quiescent()

    undelivered = [s.sid for s in graph.sends if s.sid not in received_at]
    if undelivered:
        raise AssertionError(
            f"collective deadlocked: sends never delivered: {undelivered[:10]}"
        )

    result = CommResult(
        graph=graph,
        timings=timings,
        ports=ports,
        send_received_at=received_at,
        node_done_at=node_done,
        final_blocks={u: frozenset(b) for u, b in blocks.items()},
        total_blocked_time=network.total_blocked_time,
        events=sim.events_processed,
    )

    wall_seconds = perf_counter() - wall_start
    if metrics is not None:
        from repro.simulator.run import record_sim_metrics

        record_sim_metrics(
            metrics,
            events=result.events,
            worms=network.worms,
            delays=node_done,
            completion_us=result.completion_time,
            blocked_us=result.total_blocked_time,
            wall_seconds=wall_seconds,
        )
    telemetry = _telemetry_sink.get_sink()
    if telemetry is not None:
        telemetry.write(
            RunRecord(
                run_id=new_run_id(),
                kind="comm",
                n=graph.n,
                algorithm=label,
                ports=ports.name,
                size=None,
                timings=asdict(timings),
                wall_seconds=wall_seconds,
                sim_time_us=sim.now,
                events=result.events,
                metrics=metrics.snapshot() if metrics is not None else {},
                extra={
                    "sends": len(graph.sends),
                    "total_bytes": graph.total_bytes,
                    "completion_us": result.completion_time,
                    "avg_node_us": result.avg_node_time,
                    "total_blocked_us": result.total_blocked_time,
                    "nodes": len(node_done),
                },
            )
        )
    return result
