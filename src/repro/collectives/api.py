"""User-facing facade: a communicator-style API over the simulator.

Modeled loosely on MPI communicators: construct one
:class:`HypercubeCollectives` for a machine configuration (cube size,
port model, timing constants, multicast algorithm) and invoke
collective operations on it.  Every call runs a fresh discrete-event
simulation and returns the timed result.

Example::

    from repro.collectives import HypercubeCollectives

    comm = HypercubeCollectives(n=6, algorithm="wsort")
    r = comm.multicast(source=0, destinations=[1, 5, 9, 63], size=4096)
    print(r.avg_delay, r.max_delay)
    print(comm.barrier().completion_time)
"""

from __future__ import annotations

from typing import Sequence

from repro.core.paths import ResolutionOrder
from repro.core.subcube import Subcube
from repro.collectives.allgather import allgather_graph
from repro.collectives.alltoall import alltoall_direct_graph, alltoall_graph
from repro.collectives.graph import CommGraph, CommResult, simulate_comm
from repro.collectives.reduction import allreduce_graph, barrier_graph, reduce_graph
from repro.collectives.scatter import gather_graph, scatter_graph
from repro.multicast.ports import ALL_PORT, PortModel
from repro.multicast.registry import get_algorithm
from repro.obs.metrics import MetricsRegistry
from repro.simulator.params import NCUBE2, Timings
from repro.simulator.run import MulticastResult, simulate_multicast

__all__ = ["HypercubeCollectives", "SubcubeCommunicator"]


class HypercubeCollectives:
    """Collective operations on a simulated wormhole hypercube.

    Args:
        n: hypercube dimension (``2**n`` nodes).
        timings: wormhole cost model (defaults to nCUBE-2-like).
        ports: port model for every node (defaults to all-port).
        algorithm: registry name of the multicast algorithm used by
            ``multicast`` and ``broadcast`` (default ``"wsort"``).
        order: E-cube resolution order.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`
            shared by every operation this communicator runs, so delay
            histograms and event counters aggregate across calls.
    """

    def __init__(
        self,
        n: int,
        timings: Timings = NCUBE2,
        ports: PortModel = ALL_PORT,
        algorithm: str = "wsort",
        order: ResolutionOrder = ResolutionOrder.DESCENDING,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if n < 1:
            raise ValueError(f"hypercube dimension must be >= 1, got {n}")
        self.n = n
        self.timings = timings
        self.ports = ports
        self.order = order
        self.algorithm = get_algorithm(algorithm)
        self.metrics = metrics

    def _run(self, graph, label: str) -> CommResult:
        """Execute a comm graph with this communicator's instrumentation."""
        return simulate_comm(
            graph, self.timings, self.ports, metrics=self.metrics, label=label
        )

    @property
    def size(self) -> int:
        """Number of nodes."""
        return 1 << self.n

    # -- one-to-many ----------------------------------------------------

    def multicast(
        self, source: int, destinations: Sequence[int], size: int = 4096
    ) -> MulticastResult:
        """Deliver ``size`` bytes from ``source`` to ``destinations``."""
        tree = self.algorithm.build_tree(self.n, source, destinations, self.order)
        return simulate_multicast(
            tree,
            size,
            self.timings,
            self.ports,
            metrics=self.metrics,
            label=f"multicast/{self.algorithm.name}",
        )

    def broadcast(self, root: int = 0, size: int = 4096) -> MulticastResult:
        """Multicast to every other node."""
        dests = [u for u in range(self.size) if u != root]
        return self.multicast(root, dests, size)

    def broadcast_esbt(self, root: int = 0, size: int = 4096) -> CommResult:
        """Johnsson-Ho nESBT broadcast: the message split over ``n``
        edge-disjoint spanning binomial trees, all ports concurrent
        (optimal for bandwidth-dominated messages on all-port nodes)."""
        from repro.collectives.esbt import esbt_broadcast_graph

        g = esbt_broadcast_graph(self.n, root, size, self.order)
        return self._run(g, "broadcast_esbt")

    def multicast_pipelined(
        self,
        source: int,
        destinations: Sequence[int],
        size: int = 4096,
        segments: int | None = None,
    ) -> CommResult:
        """Multicast with the message segmented down the tree.

        ``segments=None`` picks the closed-form near-optimal count for
        the tree's depth and this machine's timing constants.
        """
        from repro.collectives.pipelined import optimal_segments, pipelined_multicast_graph

        tree = self.algorithm.build_tree(self.n, source, destinations, self.order)
        if segments is None:
            segments = optimal_segments(size, max(1, tree.depth()), self.timings)
        g = pipelined_multicast_graph(tree, size, segments)
        return self._run(g, f"multicast_pipelined/{self.algorithm.name}")

    def scatter(self, root: int = 0, block_size: int = 1024) -> CommResult:
        """Personalized distribution: block ``u`` ends at node ``u``."""
        g = scatter_graph(self.n, root, block_size, self.order)
        return self._run(g, "scatter")

    # -- many-to-one / many-to-many --------------------------------------

    def gather(self, root: int = 0, block_size: int = 1024) -> CommResult:
        """Collect one block per node at ``root``."""
        g = gather_graph(self.n, root, block_size, self.order)
        return self._run(g, "gather")

    def allgather(self, block_size: int = 1024) -> CommResult:
        """Every node ends with every node's block."""
        g = allgather_graph(self.n, block_size, self.order)
        return self._run(g, "allgather")

    def reduce(self, root: int = 0, size: int = 4096) -> CommResult:
        """Element-wise combine one vector per node into ``root``."""
        g = reduce_graph(self.n, root, size, self.order)
        return self._run(g, "reduce")

    def allreduce(self, size: int = 4096) -> CommResult:
        """Combine and distribute the result to every node."""
        g = allreduce_graph(self.n, size, self.order)
        return self._run(g, "allreduce")

    def subcube(self, sub: "Subcube") -> "SubcubeCommunicator":
        """A communicator restricted to one subcube of this machine.

        Collective operations on the returned communicator involve only
        the subcube's nodes and (by Theorem 2) only channels internal to
        the subcube, so communicators on disjoint subcubes never
        interfere -- which the test suite verifies on merged runs.
        """
        return SubcubeCommunicator(self, sub)

    def alltoall(self, block_size: int = 1024, direct: bool = False) -> CommResult:
        """Complete exchange: every node sends a distinct block to every
        other node.  ``direct=True`` uses N-1 XOR-scheduled unicast
        rounds instead of the n dimension-exchange rounds."""
        g = (
            alltoall_direct_graph(self.n, block_size, self.order)
            if direct
            else alltoall_graph(self.n, block_size, self.order)
        )
        return self._run(g, "alltoall_direct" if direct else "alltoall")

    def barrier(self) -> CommResult:
        """Synchronize all nodes."""
        return self._run(barrier_graph(self.n, self.order), "barrier")


class SubcubeCommunicator:
    """Collectives confined to one subcube of a larger machine.

    Operations are built at the subcube's dimensionality and embedded
    by address translation (``rank -> (mask << dim) | rank``); they run
    on the *full* machine's network model, but E-cube routing keeps all
    of their traffic inside the subcube (Theorem 2).

    Graph-building methods (``scatter_graph`` etc.) are exposed so
    that operations on several communicators can be merged with
    :meth:`CommGraph.merge` and simulated concurrently.
    """

    def __init__(self, parent: HypercubeCollectives, sub: "Subcube") -> None:
        if sub.n != parent.n:
            raise ValueError(
                f"subcube belongs to a {sub.n}-cube, communicator is a {parent.n}-cube"
            )
        if sub.dim < 1:
            raise ValueError("a 0-dimensional subcube has no collectives")
        self.parent = parent
        self.sub = sub

    @property
    def size(self) -> int:
        return self.sub.size

    def translate(self, rank: int) -> int:
        """Map a subcube-local rank to its machine address."""
        if not 0 <= rank < self.sub.size:
            raise ValueError(f"rank {rank} out of range for {self.sub}")
        return (self.sub.mask << self.sub.dim) | rank

    def _embed(self, graph: CommGraph) -> CommGraph:
        return graph.relabel(self.translate, n=self.parent.n)

    # -- graph builders (merge-able) -------------------------------------

    def scatter_graph(self, root_rank: int = 0, block_size: int = 1024) -> CommGraph:
        return self._embed(
            scatter_graph(self.sub.dim, root_rank, block_size, self.parent.order)
        )

    def gather_graph(self, root_rank: int = 0, block_size: int = 1024) -> CommGraph:
        return self._embed(
            gather_graph(self.sub.dim, root_rank, block_size, self.parent.order)
        )

    def allgather_graph(self, block_size: int = 1024) -> CommGraph:
        return self._embed(allgather_graph(self.sub.dim, block_size, self.parent.order))

    def allreduce_graph(self, size: int = 4096) -> CommGraph:
        return self._embed(allreduce_graph(self.sub.dim, size, self.parent.order))

    def barrier_graph(self) -> CommGraph:
        return self._embed(barrier_graph(self.sub.dim, self.parent.order))

    # -- direct execution -------------------------------------------------

    def scatter(self, root_rank: int = 0, block_size: int = 1024) -> CommResult:
        return self.parent._run(self.scatter_graph(root_rank, block_size), "subcube/scatter")

    def gather(self, root_rank: int = 0, block_size: int = 1024) -> CommResult:
        return self.parent._run(self.gather_graph(root_rank, block_size), "subcube/gather")

    def allgather(self, block_size: int = 1024) -> CommResult:
        return self.parent._run(self.allgather_graph(block_size), "subcube/allgather")

    def allreduce(self, size: int = 4096) -> CommResult:
        return self.parent._run(self.allreduce_graph(size), "subcube/allreduce")

    def barrier(self) -> CommResult:
        return self.parent._run(self.barrier_graph(), "subcube/barrier")

    def multicast(
        self, source_rank: int, destination_ranks: Sequence[int], size: int = 4096
    ) -> MulticastResult:
        tree = self.parent.algorithm.build_tree(
            self.parent.n,
            self.translate(source_rank),
            [self.translate(r) for r in destination_ranks],
            self.parent.order,
        )
        return simulate_multicast(
            tree,
            size,
            self.parent.timings,
            self.parent.ports,
            metrics=self.parent.metrics,
            label=f"subcube/multicast/{self.parent.algorithm.name}",
        )
