"""Broadcast: the spanning-binomial-tree reference schedule.

Broadcast is the ``m = N - 1`` special case of multicast, and the
facade implements it that way (any registered multicast algorithm).
This module provides the classic *spanning binomial tree* (SBT)
broadcast as an independent :class:`~repro.collectives.graph.CommGraph`
reference: in round ``d`` (descending) every informed node forwards
across dimension ``d``.  On a full broadcast U-cube builds exactly the
binomial tree, so the two formulations must agree -- a cross-check the
test suite performs.
"""

from __future__ import annotations

from repro.core.addressing import require_address
from repro.core.paths import ResolutionOrder
from repro.collectives.graph import CommGraph

__all__ = ["sbt_broadcast_graph"]


def sbt_broadcast_graph(
    n: int,
    root: int,
    size: int,
    order: ResolutionOrder = ResolutionOrder.DESCENDING,
) -> CommGraph:
    """Spanning-binomial-tree broadcast of ``size`` bytes from ``root``.

    Round ``d`` = dimensions descending: each node that already holds
    the message sends it across dimension ``d``.  All sends of a round
    are single-hop and pairwise channel-disjoint, so the schedule is
    contention-free by construction.
    """
    require_address(root, n, "root")
    if size < 1:
        raise ValueError(f"size must be >= 1, got {size}")
    g = CommGraph(n, order)
    g.seed(root, [0])
    informed: dict[int, int | None] = {root: None}  # node -> sid that delivered
    for d in range(n - 1, -1, -1):
        bit = 1 << d
        for u, dep in list(informed.items()):
            v = u ^ bit
            if v in informed:
                continue
            sid = g.add(u, v, size=size, deps=() if dep is None else (dep,), blocks=[0])
            informed[v] = sid
    g.validate()
    return g
