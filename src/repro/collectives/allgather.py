"""All-gather by recursive doubling (dimension exchanges).

Every node starts with its own block; in round ``d`` each node
exchanges everything it has accumulated with its neighbor across
dimension ``d``.  After ``n`` rounds every node holds all ``N``
blocks.  Total traffic is ``N * (N - 1) * block`` bytes; the critical
path doubles its payload each round.

Exchanges within a round are pairwise disjoint single-hop unicasts in
opposite directions, so the operation is contention-free by
construction (opposite directions use distinct channels).
"""

from __future__ import annotations

from repro.core.paths import ResolutionOrder
from repro.collectives.graph import CommGraph

__all__ = ["allgather_graph"]


def allgather_graph(
    n: int,
    block_size: int,
    order: ResolutionOrder = ResolutionOrder.DESCENDING,
) -> CommGraph:
    """Build the recursive-doubling all-gather on the full ``n``-cube."""
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    g = CommGraph(n, order)
    size = 1 << n
    held: dict[int, list[int]] = {u: [u] for u in range(size)}
    pending: dict[int, list[int]] = {u: [] for u in range(size)}
    for u in range(size):
        g.seed(u, [u])

    for d in range(n):
        bit = 1 << d
        new_sids: dict[int, int] = {}
        for u in range(size):
            peer = u ^ bit
            new_sids[u] = g.add(
                u,
                peer,
                size=block_size * len(held[u]),
                deps=tuple(pending[u]),
                blocks=held[u],
            )
        old_held = held
        held = {u: old_held[u] + old_held[u ^ bit] for u in range(size)}
        for u in range(size):
            pending[u] = pending[u] + [new_sids[u ^ bit]]

    g.validate()
    return g
