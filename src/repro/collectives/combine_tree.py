"""Combining (reduction/gather) over reversed multicast trees.

The paper solves one-to-many *distribution*; the natural dual is
many-to-one *combining*: the same set of nodes sends data back to the
source, merged up the tree (personalized gather or element-wise
reduction to an arbitrary subset root).

Reversing a multicast tree does **not** automatically preserve its
contention guarantees: the E-cube path from child to parent is not the
reverse of the parent-to-child path (both resolve dimensions
high-to-low), so Theorems 1/2 apply only in the forward direction.
Empirically -- and the test suite checks this on hundreds of random
instances -- the two families behave oppositely under reversal:

- reversed **U-cube** trees are contention-free: the chain-halving
  structure is symmetric enough that converging messages never share a
  channel concurrently;
- reversed **Maxport/W-sort** trees *do* block: two children of
  different parents routinely collide (a sibling's subcube is no
  barrier to a path *entering* it from outside).

Consequently :func:`combining_graph` defaults to U-cube trees, and
:func:`combining_result` reports the blocking time so callers can
evaluate other tree shapes.
"""

from __future__ import annotations

from repro.collectives.graph import CommGraph, CommResult, simulate_comm
from repro.multicast.base import MulticastTree
from repro.multicast.ports import ALL_PORT, PortModel
from repro.multicast.ucube import UCube
from repro.simulator.params import NCUBE2, Timings

__all__ = ["combining_graph", "gather_subset", "reduce_subset"]


def combining_graph(
    tree: MulticastTree,
    size: int = 4096,
    grow_payload: bool = False,
    block_size: int | None = None,
) -> CommGraph:
    """Reverse a multicast tree into a combining :class:`CommGraph`.

    Every tree node sends to its parent once it has received from all
    of its children (leaves send immediately).

    Args:
        tree: any multicast tree; its *source* becomes the combining
            root, its destinations the contributors.
        size: bytes per message when ``grow_payload`` is false
            (element-wise reduction: payload size is constant).
        grow_payload: personalized gather -- payloads accumulate, the
            message to the parent carries ``block_size`` bytes per
            contributor gathered so far.
        block_size: per-contributor bytes for ``grow_payload`` mode
            (defaults to ``size``).
    """
    block = block_size if block_size is not None else size
    g = CommGraph(tree.n, tree.order)
    parent: dict[int, int] = {}
    children: dict[int, list[int]] = {}
    for s in tree.sends:
        parent[s.dst] = s.src
        children.setdefault(s.src, []).append(s.dst)

    for u in tree.destinations:
        g.seed(u, [u])

    sids: dict[int, int] = {}
    counts: dict[int, int] = {}
    blocks: dict[int, list[int]] = {}

    def rec(u: int) -> None:
        deps = []
        gathered: list[int] = [u] if u in tree.destinations else []
        for c in children.get(u, ()):
            rec(c)
            deps.append(sids[c])
            gathered.extend(blocks[c])
        counts[u] = len(gathered)
        blocks[u] = gathered
        if u != tree.source:
            payload = block * max(1, len(gathered)) if grow_payload else size
            sids[u] = g.add(u, parent[u], payload, deps=deps, blocks=gathered)

    rec(tree.source)
    g.validate()
    return g


def reduce_subset(
    n: int,
    root: int,
    contributors,
    size: int = 4096,
    timings: Timings = NCUBE2,
    ports: PortModel = ALL_PORT,
) -> CommResult:
    """Element-wise reduction from an arbitrary subset to ``root``.

    Uses a reversed U-cube tree (see the module docstring for why).
    """
    tree = UCube().build_tree(n, root, sorted(contributors))
    return simulate_comm(combining_graph(tree, size), timings, ports)


def gather_subset(
    n: int,
    root: int,
    contributors,
    block_size: int = 1024,
    timings: Timings = NCUBE2,
    ports: PortModel = ALL_PORT,
) -> CommResult:
    """Personalized gather from an arbitrary subset to ``root``."""
    tree = UCube().build_tree(n, root, sorted(contributors))
    return simulate_comm(
        combining_graph(tree, block_size, grow_payload=True), timings, ports
    )
