"""A degraded-hypercube view: routing and reachability around faults.

:class:`DegradedHypercube` freezes a :class:`~repro.faults.model.FaultScenario`
at one instant and answers the questions the fault-aware layers need:
is this arc alive, does the E-cube path survive, what is the shortest
surviving detour, and which nodes remain reachable.

Detours are computed by breadth-first search over the alive arcs with
neighbours expanded in E-cube dimension order (high dimension first for
the paper's descending resolution order), so the detour is a shortest
surviving path, deterministic, and coincides with the E-cube path
whenever that path is intact -- "dimension-order around the faulty
subcube".  A detour is *not* in general an E-cube path, so it forfeits
the arc-disjointness guarantees of Theorems 1-2; the repair layer
(:mod:`repro.faults.repair`) therefore splits detours into E-cube-clean
segments and re-schedules them.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Iterable

from repro.core.addressing import require_address
from repro.core.paths import Arc, ResolutionOrder, ecube_arcs
from repro.faults.model import FaultScenario

__all__ = ["DegradedHypercube", "detour_path"]


def _dim_order(n: int, order: ResolutionOrder) -> tuple[int, ...]:
    dims = range(n - 1, -1, -1) if order.descending else range(n)
    return tuple(dims)


def detour_path(
    n: int,
    u: int,
    v: int,
    dead_arcs: Iterable[Arc],
    order: ResolutionOrder = ResolutionOrder.DESCENDING,
) -> list[int] | None:
    """Shortest surviving node path ``u -> v`` avoiding ``dead_arcs``.

    Deterministic BFS with neighbours expanded in E-cube dimension
    order; returns the inclusive node sequence, or None if ``v`` is
    unreachable.  ``detour_path(n, u, u, ...)`` is ``[u]``.
    """
    require_address(u, n, "detour source")
    require_address(v, n, "detour destination")
    if u == v:
        return [u]
    dead = dead_arcs if isinstance(dead_arcs, (set, frozenset)) else frozenset(dead_arcs)
    dims = _dim_order(n, order)
    parent: dict[int, int] = {u: u}
    frontier = deque([u])
    while frontier:
        cur = frontier.popleft()
        for d in dims:
            if (cur, d) in dead:
                continue
            nxt = cur ^ (1 << d)
            if nxt in parent:
                continue
            parent[nxt] = cur
            if nxt == v:
                path = [v]
                while path[-1] != u:
                    path.append(parent[path[-1]])
                path.reverse()
                return path
            frontier.append(nxt)
    return None


class DegradedHypercube:
    """An ``n``-cube minus the faults of a scenario, frozen at time ``at``.

    The default ``at=inf`` includes every timed fault -- the right view
    for planning a schedule that must survive the whole run.  Use
    ``at=0.0`` for the static-faults-only view.
    """

    def __init__(
        self,
        n: int,
        scenario: FaultScenario | None = None,
        order: ResolutionOrder = ResolutionOrder.DESCENDING,
        at: float = math.inf,
    ) -> None:
        if scenario is None:
            scenario = FaultScenario(n)
        if scenario.n != n:
            raise ValueError(f"scenario is for a {scenario.n}-cube, not an {n}-cube")
        self.n = n
        self.scenario = scenario
        self.order = order
        self.at = at
        self._dead_arcs = scenario.dead_arcs(at)
        self._dead_nodes = scenario.dead_nodes(at)

    # -- liveness -------------------------------------------------------

    @property
    def dead_arcs(self) -> frozenset[Arc]:
        return self._dead_arcs

    @property
    def dead_nodes(self) -> frozenset[int]:
        return self._dead_nodes

    def is_arc_alive(self, arc: Arc) -> bool:
        return arc not in self._dead_arcs

    def is_node_alive(self, node: int) -> bool:
        return node not in self._dead_nodes

    # -- routing --------------------------------------------------------

    def ecube_route(self, u: int, v: int) -> list[Arc] | None:
        """The E-cube arcs of ``P(u, v)`` if every one is alive, else None."""
        arcs = ecube_arcs(u, v, self.order)
        if self._dead_arcs and any(a in self._dead_arcs for a in arcs):
            return None
        return arcs

    def detour(self, u: int, v: int) -> list[int] | None:
        """Shortest surviving node path (see :func:`detour_path`)."""
        if u in self._dead_nodes or v in self._dead_nodes:
            return None
        return detour_path(self.n, u, v, self._dead_arcs, self.order)

    def route(self, u: int, v: int) -> list[Arc] | None:
        """A surviving arc route: the E-cube path when intact, otherwise
        the shortest deterministic detour; None when ``v`` is cut off.

        Drop-in for :class:`~repro.simulator.network.WormholeNetwork`'s
        ``route`` hook -- but note a detour is generally not E-cube, so
        deadlock freedom is no longer guaranteed by dimension ordering
        (docs/FAULTS.md discusses why this is acceptable for repair
        traffic).
        """
        direct = self.ecube_route(u, v)
        if direct is not None:
            return direct
        path = self.detour(u, v)
        if path is None:
            return None
        return [(a, (a ^ b).bit_length() - 1) for a, b in zip(path, path[1:])]

    def segments(self, u: int, v: int) -> list[tuple[int, int]] | None:
        """Split the detour ``u -> v`` into the fewest-greedy E-cube-clean
        unicast hops.

        Walks the surviving path and greedily extends each segment as
        far as its endpoints' own E-cube path stays fully alive; every
        segment is then a legal (fault-free) E-cube unicast, so the
        repaired schedule can be contention-checked and simulated with
        the ordinary machinery.  Single-hop segments always qualify, so
        the split succeeds whenever a detour exists.  Returns
        ``[(u, v)]`` when the direct path is intact, None when ``v`` is
        unreachable.
        """
        if self.ecube_route(u, v) is not None:
            return [(u, v)]
        path = self.detour(u, v)
        if path is None:
            return None
        segs: list[tuple[int, int]] = []
        i = 0
        while i < len(path) - 1:
            j = len(path) - 1
            while j > i + 1 and self.ecube_route(path[i], path[j]) is None:
                j -= 1
            segs.append((path[i], path[j]))
            i = j
        return segs

    # -- reachability ---------------------------------------------------

    def reachable_from(self, u: int) -> frozenset[int]:
        """All nodes a worm injected at ``u`` can still reach (including
        ``u`` itself); empty if ``u``'s own router is dead."""
        require_address(u, self.n, "reachability source")
        if u in self._dead_nodes:
            return frozenset()
        dims = _dim_order(self.n, self.order)
        seen = {u}
        frontier = deque([u])
        while frontier:
            cur = frontier.popleft()
            for d in dims:
                if (cur, d) in self._dead_arcs:
                    continue
                nxt = cur ^ (1 << d)
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return frozenset(seen)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<DegradedHypercube n={self.n} dead_arcs={len(self._dead_arcs)} "
            f"dead_nodes={len(self._dead_nodes)}>"
        )
