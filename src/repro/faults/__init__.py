"""Fault injection: degraded hypercubes, repair, and abort/retry simulation.

The paper's contention theory and all four multicast algorithms assume
a fault-free hypercube.  ``repro.faults`` models what happens when that
assumption breaks (docs/FAULTS.md has the full story):

- :mod:`repro.faults.model` -- declarative link/arc/node fault
  scenarios, static or timed, deterministic from an explicit seed;
- :mod:`repro.faults.degraded` -- the :class:`DegradedHypercube` view:
  liveness queries, surviving E-cube routes, shortest deterministic
  detours, reachability;
- :mod:`repro.faults.repair` -- fault-aware schedule construction: the
  :class:`FaultAware` wrapper repairs any registry algorithm's tree by
  splicing detour unicasts around dead arcs, and
  :func:`verify_degraded` independently re-checks coverage and
  contention-freedom;
- :mod:`repro.faults.sim` -- timed simulation with worm abort on
  dead-channel acquisition, source-side retry with capped backoff,
  delivery deadlines, and fault counters flowing into
  :mod:`repro.obs` metrics and telemetry.

Run ``repro-hypercube faults -n 6`` for a delivery-vs-failed-links
sweep of the paper's four algorithms.
"""

from repro.faults.degraded import DegradedHypercube, detour_path
from repro.faults.model import ArcFault, FaultScenario, LinkFault, NodeFault, all_links
from repro.faults.repair import (
    FaultAware,
    Repair,
    RepairReport,
    repair_multicast,
    verify_degraded,
)
from repro.faults.sim import DegradedResult, simulate_degraded_multicast

__all__ = [
    "ArcFault",
    "DegradedHypercube",
    "DegradedResult",
    "FaultAware",
    "FaultScenario",
    "LinkFault",
    "NodeFault",
    "Repair",
    "RepairReport",
    "all_links",
    "detour_path",
    "repair_multicast",
    "simulate_degraded_multicast",
    "verify_degraded",
]
