"""Declarative fault models: failed links, arcs, and nodes.

The paper's theory (Theorems 1-3) and all four algorithms assume a
fault-free hypercube.  This module describes departures from that
assumption as *data*: a :class:`FaultScenario` is an immutable record
of which links/arcs/nodes fail and when, generated either explicitly or
pseudo-randomly from an explicit seed -- the same seed always yields
the same scenario, so every degraded experiment is reproducible.

Conventions:

- A *link* is the undirected channel pair between two neighbours; a
  :class:`LinkFault` kills both directed arcs.  Its canonical form
  stores the endpoint whose ``dim`` bit is 0.
- An :class:`ArcFault` kills a single directed channel (one direction
  keeps working) -- useful for modelling unidirectional driver faults.
- A :class:`NodeFault` kills a router: all ``2n`` incident arcs die and
  the node can neither send, receive, nor forward.
- ``t_fail <= 0`` means the fault is present from the start (*static*);
  ``t_fail > 0`` is a *timed* fault that strikes mid-run at that
  simulated time (microseconds).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.addressing import require_address
from repro.core.paths import Arc

__all__ = ["ArcFault", "FaultScenario", "LinkFault", "NodeFault", "all_links"]


def all_links(n: int) -> list[tuple[int, int]]:
    """All ``n * 2**(n-1)`` undirected links of the ``n``-cube, as
    canonical ``(node, dim)`` pairs with bit ``dim`` of ``node`` clear,
    in deterministic (node-major) order."""
    return [(u, d) for u in range(1 << n) for d in range(n) if not (u >> d) & 1]


@dataclass(frozen=True, slots=True)
class LinkFault:
    """A failed bidirectional link ``{node, node ^ (1 << dim)}``."""

    node: int
    dim: int
    t_fail: float = 0.0

    def canonical(self) -> "LinkFault":
        if (self.node >> self.dim) & 1:
            return LinkFault(self.node ^ (1 << self.dim), self.dim, self.t_fail)
        return self

    def arcs(self) -> tuple[Arc, Arc]:
        return (self.node, self.dim), (self.node ^ (1 << self.dim), self.dim)


@dataclass(frozen=True, slots=True)
class ArcFault:
    """A failed directed channel ``(node, dim)`` (one direction only)."""

    node: int
    dim: int
    t_fail: float = 0.0

    def arcs(self) -> tuple[Arc, ...]:
        return ((self.node, self.dim),)


@dataclass(frozen=True, slots=True)
class NodeFault:
    """A failed router: every incident arc dies with it."""

    node: int
    t_fail: float = 0.0

    def arcs_in(self, n: int) -> tuple[Arc, ...]:
        """All ``2n`` arcs incident to the node (both directions)."""
        out = []
        for d in range(n):
            out.append((self.node, d))
            out.append((self.node ^ (1 << d), d))
        return tuple(out)


@dataclass(frozen=True, slots=True)
class FaultScenario:
    """An immutable set of link/arc/node faults for one ``n``-cube.

    Build explicitly, or deterministically at random::

        FaultScenario(4, links=[LinkFault(0b0000, 2)])
        FaultScenario.random_links(6, k=3, seed=42)

    Query with :meth:`dead_arcs` / :meth:`dead_nodes` (a *static view*
    at a given simulated time) and :meth:`timed_events` (the mid-run
    failure schedule).
    """

    n: int
    links: tuple[LinkFault, ...] = ()
    arcs: tuple[ArcFault, ...] = ()
    nodes: tuple[NodeFault, ...] = ()
    #: provenance: the seed used by the random constructors, if any
    seed: int | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"hypercube dimension must be >= 1, got {self.n}")
        object.__setattr__(self, "links", tuple(f.canonical() for f in self.links))
        object.__setattr__(self, "arcs", tuple(self.arcs))
        object.__setattr__(self, "nodes", tuple(self.nodes))
        for f in self.links + self.arcs:
            require_address(f.node, self.n, "fault endpoint")
            if not 0 <= f.dim < self.n:
                raise ValueError(f"fault dimension {f.dim} out of range for an {self.n}-cube")
        for f in self.nodes:
            require_address(f.node, self.n, "failed node")

    # -- random generation (deterministic from the seed) ---------------

    @classmethod
    def random_links(
        cls, n: int, k: int, seed: int, t_fail: float = 0.0
    ) -> "FaultScenario":
        """``k`` distinct links chosen uniformly with ``random.Random(seed)``."""
        universe = all_links(n)
        if not 0 <= k <= len(universe):
            raise ValueError(f"cannot fail {k} of {len(universe)} links")
        rng = random.Random(seed)
        picks = rng.sample(universe, k)
        return cls(
            n, links=tuple(LinkFault(u, d, t_fail) for u, d in sorted(picks)), seed=seed
        )

    @classmethod
    def random_nodes(
        cls, n: int, k: int, seed: int, t_fail: float = 0.0, spare: Iterable[int] = (0,)
    ) -> "FaultScenario":
        """``k`` distinct failed nodes, never drawn from ``spare``
        (default: node 0, the conventional multicast source)."""
        spared = set(spare)
        universe = [u for u in range(1 << n) if u not in spared]
        if not 0 <= k <= len(universe):
            raise ValueError(f"cannot fail {k} of {len(universe)} nodes")
        rng = random.Random(seed)
        picks = rng.sample(universe, k)
        return cls(n, nodes=tuple(NodeFault(u, t_fail) for u in sorted(picks)), seed=seed)

    # -- queries --------------------------------------------------------

    @property
    def is_fault_free(self) -> bool:
        return not (self.links or self.arcs or self.nodes)

    def _fault_arcs(self, fault: LinkFault | ArcFault | NodeFault) -> Sequence[Arc]:
        if isinstance(fault, NodeFault):
            return fault.arcs_in(self.n)
        return fault.arcs()

    def dead_arcs(self, at: float = math.inf) -> frozenset[Arc]:
        """Every directed arc dead at (or before) simulated time ``at``.

        ``at=0.0`` is the static view; the default ``inf`` includes all
        timed faults as well.
        """
        dead: set[Arc] = set()
        for fault in (*self.links, *self.arcs, *self.nodes):
            if fault.t_fail <= at:
                dead.update(self._fault_arcs(fault))
        return frozenset(dead)

    def dead_nodes(self, at: float = math.inf) -> frozenset[int]:
        """Every node whose router is dead at (or before) time ``at``."""
        return frozenset(f.node for f in self.nodes if f.t_fail <= at)

    def is_arc_dead(self, arc: Arc, at: float = math.inf) -> bool:
        return arc in self.dead_arcs(at)

    def timed_events(self) -> list[tuple[float, Arc]]:
        """The mid-run failure schedule: ``(t_fail, arc)`` for every arc
        of every fault with ``t_fail > 0``, sorted by time then arc."""
        events: list[tuple[float, Arc]] = []
        for fault in (*self.links, *self.arcs, *self.nodes):
            if fault.t_fail > 0:
                events.extend((fault.t_fail, arc) for arc in self._fault_arcs(fault))
        events.sort()
        return events

    def describe(self) -> str:
        """One-line human-readable summary (used by the CLI)."""
        parts = []
        if self.links:
            parts.append(f"{len(self.links)} link(s)")
        if self.arcs:
            parts.append(f"{len(self.arcs)} arc(s)")
        if self.nodes:
            parts.append(f"{len(self.nodes)} node(s)")
        if not parts:
            return f"{self.n}-cube, fault-free"
        tail = f", seed={self.seed}" if self.seed is not None else ""
        return f"{self.n}-cube, failed: " + ", ".join(parts) + tail
