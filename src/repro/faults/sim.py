"""Timed simulation of multicasts on a faulty wormhole network.

:func:`simulate_degraded_multicast` mirrors
:func:`repro.simulator.run.simulate_multicast` but drives the network
with a :class:`~repro.faults.model.FaultScenario` applied:

- static faults are marked dead before injection; timed faults are
  scheduled as :meth:`~repro.simulator.network.WormholeNetwork.fail_arc`
  events at their ``t_fail``;
- a worm that attempts to acquire a dead channel **aborts** (releasing
  every channel it holds -- the stall cascade a dead arc would
  otherwise cause is cut short);
- the source of an aborted worm **retries** with capped exponential
  backoff, re-routing around the channels known dead at retry time
  (the "detection by failed acquisition" model: senders are E-cube
  oblivious until a send bounces);
- an optional **delivery deadline** stops the run at a fixed simulated
  time; whatever has not arrived by then is counted undelivered.

Fault counters (aborted worms, retries, undelivered destinations) flow
into the shared metrics names and the exported
``kind="degraded-multicast"`` :class:`~repro.obs.telemetry.RunRecord`,
which also embeds the deadlock detector's verdict
(:func:`repro.simulator.deadlock.stall_report`) so a fault-stalled run
is distinguishable from ordinary contention in JSONL.

With a fault-free scenario the event sequence is identical to
:func:`simulate_multicast` -- the regression tests assert bit-identical
delays and event counts.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from statistics import mean
from time import perf_counter
from typing import TYPE_CHECKING, Sequence

from repro.core.paths import Arc, ecube_arcs
from repro.faults.degraded import DegradedHypercube, detour_path
from repro.faults.model import FaultScenario
from repro.multicast.base import MulticastTree
from repro.multicast.ports import ALL_PORT, PortModel
from repro.obs import sink as _telemetry_sink
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import RunRecord, new_run_id
from repro.simulator.deadlock import stall_report
from repro.simulator.engine import Simulator
from repro.simulator.message import Worm
from repro.simulator.network import WormholeNetwork
from repro.simulator.node import HostNode
from repro.simulator.params import NCUBE2, Timings
from repro.simulator.run import record_sim_metrics

if TYPE_CHECKING:  # pragma: no cover - type-only
    from repro.obs.probes import Probe

__all__ = ["DegradedResult", "simulate_degraded_multicast"]


@dataclass(slots=True)
class DegradedResult:
    """Outcome of one simulated multicast on a degraded cube."""

    tree: MulticastTree
    scenario: FaultScenario
    size: int
    timings: Timings
    ports: PortModel
    #: receipt time for every node that got the message (destinations
    #: and detour relays alike)
    delays: dict[int, float]
    #: requested destinations that never received the message
    undelivered: tuple[int, ...]
    #: subset of ``undelivered`` with no surviving path from the source
    #: under the static faults (nothing could ever deliver to them)
    unreachable: tuple[int, ...]
    aborted_worms: int
    retries: int
    #: sends abandoned after exhausting retries (or losing their route)
    gave_up: int
    deadline_us: float | None
    #: verdict of the deadlock detector at end of run (see
    #: :func:`repro.simulator.deadlock.stall_report`)
    deadlock: dict = field(repr=False)
    total_blocked_time: float
    events: int
    sim_time_us: float
    network: WormholeNetwork = field(repr=False)

    @property
    def delivered(self) -> frozenset[int]:
        return frozenset(self.tree.destinations & self.delays.keys())

    @property
    def delivery_ratio(self) -> float:
        """Delivered fraction of the *requested* destinations (1.0 for
        an empty destination set)."""
        total = len(self.tree.destinations | set(self.unreachable))
        if total == 0:
            return 1.0
        return len(self.delivered) / total

    @property
    def avg_delay(self) -> float:
        """Average delay over the destinations actually delivered."""
        got = self.delivered
        return mean(self.delays[d] for d in got) if got else 0.0

    @property
    def max_delay(self) -> float:
        return max((self.delays[d] for d in self.delivered), default=0.0)

    @property
    def completion_time(self) -> float:
        return max(self.delays.values(), default=0.0)


def simulate_degraded_multicast(
    tree: MulticastTree,
    scenario: FaultScenario | None = None,
    size: int = 4096,
    timings: Timings = NCUBE2,
    ports: PortModel = ALL_PORT,
    *,
    max_retries: int = 3,
    backoff_us: float = 50.0,
    backoff_cap_us: float = 800.0,
    deadline_us: float | None = None,
    trace: bool = False,
    max_events: int | None = 10_000_000,
    metrics: MetricsRegistry | None = None,
    probes: "Sequence[Probe] | None" = None,
    label: str | None = None,
    unreachable_hint: Sequence[int] = (),
) -> DegradedResult:
    """Run one multicast tree through the wormhole model with faults.

    Args:
        tree: any multicast tree -- a plain registry tree (sends may
            abort and retry) or a :func:`~repro.faults.repair.repair_multicast`
            output (whose sends avoid all static dead arcs).
        scenario: the faults to inject; None means fault-free.
        max_retries: per-send cap on retransmissions after aborts.
        backoff_us: base retry backoff; attempt ``k`` waits
            ``min(backoff_us * 2**(k-1), backoff_cap_us)``.
        deadline_us: optional hard stop; undelivered destinations are
            reported rather than raising.
        unreachable_hint: destinations the caller already dropped from
            the tree as unreachable (e.g. from a
            :class:`~repro.faults.repair.RepairReport`); folded into the
            result's accounting so delivery ratios stay comparable.

    The remaining arguments match :func:`~repro.simulator.run.simulate_multicast`.
    """
    if scenario is None:
        scenario = FaultScenario(tree.n)
    if scenario.n != tree.n:
        raise ValueError(f"scenario is for a {scenario.n}-cube, not a {tree.n}-cube")

    wall_start = perf_counter()
    sim = Simulator(probes)
    limit = ports.limit(tree.n)
    static_view = DegradedHypercube(tree.n, scenario, tree.order, at=0.0)

    nodes: dict[int, HostNode] = {}
    delays: dict[int, float] = {}
    forwarded: set[int] = set()
    attempts: dict[tuple[int, int], int] = {}
    route_overrides: dict[tuple[int, int], list[Arc]] = {}
    counters = {"retries": 0, "gave_up": 0}

    def route(u: int, v: int) -> list[Arc]:
        override = route_overrides.pop((u, v), None)
        return override if override is not None else ecube_arcs(u, v, tree.order)

    def on_receive(host: HostNode, worm: Worm) -> None:
        delays.setdefault(host.address, sim.now)
        if host.address in forwarded:
            return  # duplicate receipt (detour overlap): forward once
        forwarded.add(host.address)
        payload_sends = [
            (s.dst, size, None) for s in tree.sends_from(host.address)
        ]
        if payload_sends:
            host.submit_sends(payload_sends, sim.now)

    def get_node(address: int) -> HostNode:
        node = nodes.get(address)
        if node is None:
            node = nodes[address] = HostNode(network, address, limit, on_receive)
        return node

    def on_delivered(worm: Worm) -> None:
        get_node(worm.src).release_port()
        get_node(worm.dst).deliver(worm)

    def resubmit(src: int, dst: int) -> None:
        get_node(src).submit_sends([(dst, size, None)], sim.now)

    def on_aborted(worm: Worm) -> None:
        get_node(worm.src).release_port()
        key = (worm.src, worm.dst)
        attempt = attempts.get(key, 0) + 1
        attempts[key] = attempt
        if attempt > max_retries:
            counters["gave_up"] += 1
            return
        # re-route around every channel known dead *now* (timed faults
        # discovered so far included)
        path = detour_path(tree.n, worm.src, worm.dst, network.dead_arcs, tree.order)
        if path is None:
            counters["gave_up"] += 1
            return
        counters["retries"] += 1
        route_overrides[key] = [
            (a, (a ^ b).bit_length() - 1) for a, b in zip(path, path[1:])
        ]
        backoff = min(backoff_us * (2 ** (attempt - 1)), backoff_cap_us)
        sim.schedule(backoff, resubmit, worm.src, worm.dst)

    network = WormholeNetwork(
        sim,
        tree.n,
        timings=timings,
        order=tree.order,
        trace=trace,
        on_delivered=on_delivered,
        route=route,
        on_aborted=on_aborted,
    )
    for arc in sorted(scenario.dead_arcs(at=0.0)):
        network.fail_arc(arc)
    for t_fail, arc in scenario.timed_events():
        sim.schedule_at(t_fail, network.fail_arc, arc)

    source = get_node(tree.source)
    source.submit_sends(
        [(s.dst, size, None) for s in tree.sends_from(tree.source)], ready_time=0.0
    )
    forwarded.add(tree.source)
    sim.run(until=deadline_us, max_events=max_events)

    deadlock = stall_report(network)
    if deadline_us is None:
        network.assert_quiescent()

    reachable = static_view.reachable_from(tree.source)
    unreachable = sorted(
        set(unreachable_hint) | {d for d in tree.destinations if d not in reachable}
    )
    undelivered = sorted(
        (set(tree.destinations) | set(unreachable_hint)) - delays.keys()
    )

    result = DegradedResult(
        tree=tree,
        scenario=scenario,
        size=size,
        timings=timings,
        ports=ports,
        delays=delays,
        undelivered=tuple(undelivered),
        unreachable=tuple(unreachable),
        aborted_worms=network.aborted_count,
        retries=counters["retries"],
        gave_up=counters["gave_up"],
        deadline_us=deadline_us,
        deadlock=deadlock,
        total_blocked_time=network.total_blocked_time,
        events=sim.events_processed,
        sim_time_us=sim.now,
        network=network,
    )

    wall_seconds = perf_counter() - wall_start
    if metrics is not None:
        record_sim_metrics(
            metrics,
            events=result.events,
            worms=network.worms,
            delays=delays,
            completion_us=result.completion_time,
            blocked_us=result.total_blocked_time,
            wall_seconds=wall_seconds,
        )
        metrics.counter("sim.faults.dead_arcs").inc(len(scenario.dead_arcs()))
        metrics.counter("sim.faults.aborted_worms").inc(result.aborted_worms)
        metrics.counter("sim.faults.retries").inc(result.retries)
        metrics.counter("sim.faults.gave_up").inc(result.gave_up)
        metrics.counter("sim.faults.undelivered").inc(len(result.undelivered))
    telemetry = _telemetry_sink.get_sink()
    if telemetry is not None:
        telemetry.write(
            RunRecord(
                run_id=new_run_id(),
                kind="degraded-multicast",
                n=tree.n,
                algorithm=label,
                ports=ports.name,
                size=size,
                timings=asdict(timings),
                wall_seconds=wall_seconds,
                sim_time_us=sim.now,
                events=result.events,
                metrics=metrics.snapshot() if metrics is not None else {},
                extra={
                    "scenario": scenario.describe(),
                    "seed": scenario.seed,
                    "failed_links": len(scenario.links),
                    "failed_nodes": len(scenario.nodes),
                    "dead_arcs": len(scenario.dead_arcs()),
                    "destinations": len(tree.destinations) + len(unreachable_hint),
                    "delivered": len(result.delivered),
                    "delivery_ratio": result.delivery_ratio,
                    "undelivered": list(result.undelivered),
                    "unreachable": list(result.unreachable),
                    "aborted_worms": result.aborted_worms,
                    "retries": result.retries,
                    "gave_up": result.gave_up,
                    "deadline_us": deadline_us,
                    "deadlock": deadlock,
                    "avg_delay_us": result.avg_delay,
                    "max_delay_us": result.max_delay,
                    "completion_us": result.completion_time,
                    "total_blocked_us": result.total_blocked_time,
                    "worms": len(network.worms),
                },
            )
        )
    return result
