"""Fault-aware multicast: repair schedules whose paths cross dead arcs.

The registry algorithms (U-cube, Maxport, Combine, W-sort) construct
trees whose unicasts are E-cube routed; on a degraded cube some of
those paths cross dead arcs and the worm would abort.  This module
repairs such trees *before* injection:

1. destinations cut off from the source are reported (nothing can
   deliver to them -- the paper's fault-free theory simply does not
   apply);
2. every send whose E-cube path is intact is kept verbatim;
3. every broken send is replaced by a chain of **detour unicasts**: the
   shortest surviving path is split into E-cube-clean segments
   (:meth:`~repro.faults.degraded.DegradedHypercube.segments`), each
   forwarded by the intermediate node's CPU.

The repaired tree is an ordinary :class:`~repro.multicast.base.MulticastTree`,
so the greedy scheduler still serializes any two segment unicasts that
would share a channel: the repaired schedule is contention-free *by
construction*, though no longer by Theorems 1-2 (the detour segments
are extra traffic the theorems know nothing about).
:func:`verify_degraded` re-checks all of this independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.paths import ResolutionOrder
from repro.faults.degraded import DegradedHypercube
from repro.multicast.base import MulticastAlgorithm, MulticastTree, Schedule
from repro.multicast.ports import ALL_PORT, PortModel
from repro.multicast.registry import get_algorithm
from repro.obs import trace_spans

__all__ = ["FaultAware", "Repair", "RepairReport", "repair_multicast", "verify_degraded"]


@dataclass(frozen=True, slots=True)
class Repair:
    """One broken send and the detour chain that replaces it."""

    src: int
    dst: int
    #: intermediate relay nodes, in forwarding order (may be empty when
    #: the repair is a single re-routed E-cube segment)
    via: tuple[int, ...]


@dataclass(slots=True)
class RepairReport:
    """Outcome of :func:`repair_multicast`."""

    tree: MulticastTree
    degraded: DegradedHypercube
    #: the destinations originally requested
    requested: frozenset[int]
    #: requested destinations with no surviving path from the source
    unreachable: tuple[int, ...]
    #: broken sends that were replaced by detour chains
    repairs: tuple[Repair, ...]

    @property
    def reachable(self) -> frozenset[int]:
        return self.requested - set(self.unreachable)

    @property
    def detour_relays(self) -> frozenset[int]:
        """Nodes whose CPUs forward repair traffic without being
        destinations (a departure from the pure wormhole model)."""
        via = {node for r in self.repairs for node in r.via}
        return frozenset(via - self.requested - {self.tree.source})


def repair_multicast(
    algorithm: MulticastAlgorithm | str,
    degraded: DegradedHypercube,
    n: int,
    source: int,
    destinations: Sequence[int],
    order: ResolutionOrder = ResolutionOrder.DESCENDING,
) -> RepairReport:
    """Build ``algorithm``'s tree for the reachable destinations and
    repair every send whose E-cube path crosses a dead arc.

    Raises:
        ValueError: if the cube dimensions disagree or the source's own
            router is dead (no repair can originate anywhere).
    """
    alg = get_algorithm(algorithm) if isinstance(algorithm, str) else algorithm
    with trace_spans.span("repair.multicast", algorithm=alg.name, n=n) as _sp:
        report = _repair_multicast(alg, degraded, n, source, destinations, order)
        if _sp is not None:
            _sp.set(repairs=len(report.repairs), unreachable=len(report.unreachable))
        return report


def _repair_multicast(
    alg: MulticastAlgorithm,
    degraded: DegradedHypercube,
    n: int,
    source: int,
    destinations: Sequence[int],
    order: ResolutionOrder,
) -> RepairReport:
    if degraded.n != n:
        raise ValueError(f"degraded view is for a {degraded.n}-cube, not an {n}-cube")
    if not degraded.is_node_alive(source):
        raise ValueError(f"source {source}'s router is dead; nothing can be multicast")
    requested = frozenset(destinations)
    reachable = degraded.reachable_from(source)
    alive_dests = sorted(requested & reachable)
    unreachable = tuple(sorted(requested - reachable))

    tree = MulticastTree(n, source, alive_dests, order)
    repairs: list[Repair] = []
    # nodes already holding the message; a repair whose relay (or
    # target) is among them reuses that delivery rather than sending a
    # duplicate copy, keeping the tree free of double receives
    holding = {source}
    if alive_dests:
        base = alg.build_tree(n, source, alive_dests, order)
        for send in base.sends:
            if degraded.ecube_route(send.src, send.dst) is not None:
                if send.dst not in holding:
                    tree.add_send(send.src, send.dst, send.chain)
                    holding.add(send.dst)
                continue
            segs = degraded.segments(send.src, send.dst)
            assert segs is not None, "both endpoints reachable yet no detour found"
            via = tuple(b for _, b in segs[:-1])
            repairs.append(Repair(send.src, send.dst, via))
            for a, b in segs:
                if b in holding:
                    continue
                # relays carry the final target ahead of the original
                # address field so the payload chain stays meaningful
                chain = send.chain if b == send.dst else (send.dst, *send.chain)
                tree.add_send(a, b, chain)
                holding.add(b)
    return RepairReport(
        tree=tree,
        degraded=degraded,
        requested=requested,
        unreachable=unreachable,
        repairs=tuple(repairs),
    )


class FaultAware(MulticastAlgorithm):
    """Registry-compatible wrapper: any base algorithm, repaired against
    a fixed degraded view.

    Register for CLI/experiment use via the registry hook::

        from repro.multicast import register
        register("fault-wsort", lambda: FaultAware("wsort", degraded))

    The most recent :class:`RepairReport` is kept on ``last_report`` for
    callers that need the unreachable set or the repair details.
    """

    def __init__(
        self, base: MulticastAlgorithm | str, degraded: DegradedHypercube
    ) -> None:
        self.base = get_algorithm(base) if isinstance(base, str) else base
        self.degraded = degraded
        self.name = f"fault-{self.base.name}"
        self.last_report: RepairReport | None = None

    def build_tree(
        self,
        n: int,
        source: int,
        destinations: Sequence[int],
        order: ResolutionOrder = ResolutionOrder.DESCENDING,
    ) -> MulticastTree:
        report = repair_multicast(self.base, self.degraded, n, source, destinations, order)
        self.last_report = report
        return report.tree


@dataclass(slots=True)
class FaultVerificationResult:
    """Outcome of :func:`verify_degraded`."""

    ok: bool
    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    schedule: Schedule | None = None
    #: requested destinations with no surviving path (informational --
    #: their absence from the tree is not an error)
    unreachable: tuple[int, ...] = ()
    #: did the greedy schedule remain contention-free (Definition 4)?
    contention_free: bool = False

    def __bool__(self) -> bool:
        return self.ok

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise AssertionError(
                "degraded multicast verification failed:\n  " + "\n  ".join(self.errors)
            )


def verify_degraded(
    report: RepairReport, ports: PortModel = ALL_PORT
) -> FaultVerificationResult:
    """Independently verify a repaired multicast against its degraded view.

    Checks that

    - every *reachable* requested destination receives the message;
    - no scheduled unicast's E-cube path crosses a dead arc or touches a
      dead router (the repair missed nothing);
    - the greedy schedule is still contention-free (Definition 4).

    Duplicate deliveries (a detour relay that is also a destination) are
    reported as warnings, not errors: the simulator tolerates them and
    forwards only on first receipt.
    """
    with trace_spans.span(
        "verify.degraded", n=report.tree.n, sends=len(report.tree.sends)
    ) as sp:
        result = _verify_degraded(report, ports)
        if sp is not None:
            sp.set(ok=result.ok, errors=len(result.errors))
        return result


def _verify_degraded(
    report: RepairReport, ports: PortModel
) -> FaultVerificationResult:
    tree = report.tree
    degraded = report.degraded
    errors: list[str] = []
    warnings: list[str] = []

    received: dict[int, int] = {}
    for s in tree.sends:
        received[s.dst] = received.get(s.dst, 0) + 1
        if degraded.ecube_route(s.src, s.dst) is None:
            errors.append(f"send {s.src}->{s.dst} still crosses a dead arc")
        if not degraded.is_node_alive(s.src) or not degraded.is_node_alive(s.dst):
            errors.append(f"send {s.src}->{s.dst} touches a dead router")
    missing = report.reachable - received.keys()
    if missing:
        errors.append(f"reachable destinations never reached: {sorted(missing)}")
    for node, times in received.items():
        if times > 1:
            warnings.append(f"node {node} receives the message {times} times (detour overlap)")

    schedule = tree.schedule(ports)
    contention = schedule.check_contention()
    if not contention.ok:
        errors.append(contention.summary())
    return FaultVerificationResult(
        ok=not errors,
        errors=errors,
        warnings=warnings,
        schedule=schedule,
        unreachable=report.unreachable,
        contention_free=contention.ok,
    )
