"""Unicast-based multicast algorithms for wormhole-routed hypercubes.

This subpackage implements the paper's Section 4:

- :mod:`repro.multicast.ucube` -- the prior-art U-cube algorithm
  (Algorithm 1, Fig. 4), optimal for one-port architectures.
- :mod:`repro.multicast.maxport` -- the Maxport variant
  (``next = highdim``), which always forwards into distinct subcubes
  and hence uses the maximum number of ports.
- :mod:`repro.multicast.combine` -- the Combine variant
  (``next = max(highdim, center)``).
- :mod:`repro.multicast.wsort` -- ``weighted_sort`` (Fig. 7, both the
  centralized O(m^2) and a fast O(m log m) formulation) and the W-sort
  pipeline (weighted_sort + subcube Maxport).
- :mod:`repro.multicast.naive` -- baselines: separate addressing and a
  store-and-forward-era dimensional tree that involves relay CPUs.

Trees are built by :class:`~repro.multicast.base.MulticastAlgorithm`
subclasses and scheduled into discrete steps under a
:class:`~repro.multicast.ports.PortModel`.
"""

from repro.multicast.base import MulticastAlgorithm, MulticastTree, Schedule, Send
from repro.multicast.combine import Combine
from repro.multicast.maxport import Maxport
from repro.multicast.naive import DimensionalSAF, SeparateAddressing
from repro.multicast.ports import ALL_PORT, ONE_PORT, PortModel, k_port
from repro.multicast.registry import ALGORITHMS, PAPER_ALGORITHMS, get_algorithm, register
from repro.multicast.ucube import UCube
from repro.multicast.verify import verify_multicast
from repro.multicast.wsort import WSort, weighted_sort, weighted_sort_fast

__all__ = [
    "ALGORITHMS",
    "ALL_PORT",
    "Combine",
    "DimensionalSAF",
    "Maxport",
    "MulticastAlgorithm",
    "MulticastTree",
    "ONE_PORT",
    "PAPER_ALGORITHMS",
    "PortModel",
    "Schedule",
    "Send",
    "SeparateAddressing",
    "UCube",
    "WSort",
    "get_algorithm",
    "k_port",
    "register",
    "verify_multicast",
    "weighted_sort",
    "weighted_sort_fast",
]
