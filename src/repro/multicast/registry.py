"""Registry of multicast algorithms by name.

The evaluation harness, CLI, and benchmarks refer to algorithms by the
short names used in the paper's figure legends.
"""

from __future__ import annotations

from typing import Callable

from repro.multicast.base import MulticastAlgorithm
from repro.multicast.combine import Combine
from repro.multicast.maxport import Maxport, MaxportSubcube
from repro.multicast.naive import DimensionalSAF, SeparateAddressing
from repro.multicast.ucube import UCube
from repro.multicast.wsort import WSort

__all__ = ["ALGORITHMS", "PAPER_ALGORITHMS", "get_algorithm", "register"]

#: Factories for every algorithm in the library.
ALGORITHMS: dict[str, Callable[[], MulticastAlgorithm]] = {
    "ucube": UCube,
    "maxport": Maxport,
    "maxport-subcube": MaxportSubcube,
    "combine": Combine,
    "wsort": WSort,
    "separate": SeparateAddressing,
    "saf": DimensionalSAF,
}

#: The four algorithms compared in the paper's evaluation (Section 5),
#: in figure-legend order.
PAPER_ALGORITHMS: tuple[str, ...] = ("ucube", "maxport", "combine", "wsort")


def get_algorithm(name: str) -> MulticastAlgorithm:
    """Instantiate an algorithm by registry name.

    Raises:
        KeyError: with the list of known names, if ``name`` is unknown.
    """
    try:
        factory = ALGORITHMS[name]
    except KeyError:
        known = ", ".join(sorted(ALGORITHMS))
        raise KeyError(f"unknown algorithm {name!r}; known: {known}") from None
    return factory()


def register(
    name: str,
    factory: Callable[[], MulticastAlgorithm],
    *,
    replace: bool = False,
) -> Callable[[], MulticastAlgorithm]:
    """Register an algorithm factory so user code -- custom tree
    builders, the fault-aware wrapper of :mod:`repro.faults.repair` --
    can join the CLI, experiments, and benchmarks without editing this
    module::

        register("fault-wsort", lambda: FaultAware("wsort", degraded))
        get_algorithm("fault-wsort")

    Returns the factory, so it can be used as a decorator on a
    zero-argument class.

    Raises:
        ValueError: if ``name`` is taken and ``replace`` is False.
    """
    if not replace and name in ALGORITHMS:
        raise ValueError(
            f"algorithm {name!r} already registered (pass replace=True to override)"
        )
    ALGORITHMS[name] = factory
    return factory
