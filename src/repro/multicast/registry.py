"""Registry of multicast algorithms by name.

The evaluation harness, CLI, and benchmarks refer to algorithms by the
short names used in the paper's figure legends.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.paths import ResolutionOrder
from repro.multicast.base import MulticastAlgorithm, MulticastTree
from repro.multicast.combine import Combine
from repro.multicast.maxport import Maxport, MaxportSubcube
from repro.multicast.naive import DimensionalSAF, SeparateAddressing
from repro.multicast.ucube import UCube
from repro.multicast.wsort import WSort
from repro.obs import trace_spans

__all__ = ["ALGORITHMS", "PAPER_ALGORITHMS", "get_algorithm", "register"]

#: Factories for every algorithm in the library.
ALGORITHMS: dict[str, Callable[[], MulticastAlgorithm]] = {
    "ucube": UCube,
    "maxport": Maxport,
    "maxport-subcube": MaxportSubcube,
    "combine": Combine,
    "wsort": WSort,
    "separate": SeparateAddressing,
    "saf": DimensionalSAF,
}

#: The four algorithms compared in the paper's evaluation (Section 5),
#: in figure-legend order.
PAPER_ALGORITHMS: tuple[str, ...] = ("ucube", "maxport", "combine", "wsort")


class _TracedAlgorithm(MulticastAlgorithm):
    """Span-recording proxy around a registry algorithm.

    Installed by :func:`get_algorithm` only while a tracer is active, so
    every traced run gets a ``schedule.build`` span per tree (with the
    greedy scheduler's ``schedule.greedy`` span nesting underneath when
    the tree is scheduled) and an untraced run constructs the exact same
    object graph as before tracing existed.
    """

    def __init__(self, inner: MulticastAlgorithm) -> None:
        self._inner = inner
        self.name = inner.name

    def build_tree(
        self,
        n: int,
        source: int,
        destinations: Sequence[int],
        order: ResolutionOrder = ResolutionOrder.DESCENDING,
    ) -> MulticastTree:
        dests = list(destinations)
        with trace_spans.span(
            "schedule.build", algorithm=self.name, n=n, m=len(dests)
        ):
            return self._inner.build_tree(n, source, dests, order)

    def __getattr__(self, attr: str):
        # forward algorithm-specific state (e.g. FaultAware.last_report)
        return getattr(self._inner, attr)


def get_algorithm(name: str) -> MulticastAlgorithm:
    """Instantiate an algorithm by registry name.

    While a tracer is installed (see :mod:`repro.obs.trace_spans`), the
    instance is wrapped so each ``build_tree`` records a
    ``schedule.build`` span; otherwise the factory's object is returned
    untouched.

    Raises:
        KeyError: with the list of known names, if ``name`` is unknown.
    """
    try:
        factory = ALGORITHMS[name]
    except KeyError:
        known = ", ".join(sorted(ALGORITHMS))
        raise KeyError(f"unknown algorithm {name!r}; known: {known}") from None
    alg = factory()
    if trace_spans.get_tracer() is not None:
        return _TracedAlgorithm(alg)
    return alg


def register(
    name: str,
    factory: Callable[[], MulticastAlgorithm],
    *,
    replace: bool = False,
) -> Callable[[], MulticastAlgorithm]:
    """Register an algorithm factory so user code -- custom tree
    builders, the fault-aware wrapper of :mod:`repro.faults.repair` --
    can join the CLI, experiments, and benchmarks without editing this
    module::

        register("fault-wsort", lambda: FaultAware("wsort", degraded))
        get_algorithm("fault-wsort")

    Returns the factory, so it can be used as a decorator on a
    zero-argument class.

    Raises:
        ValueError: if ``name`` is taken and ``replace`` is False.
    """
    if not replace and name in ALGORITHMS:
        raise ValueError(
            f"algorithm {name!r} already registered (pass replace=True to override)"
        )
    ALGORITHMS[name] = factory
    return factory
