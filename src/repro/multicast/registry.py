"""Registry of multicast algorithms by name.

The evaluation harness, CLI, and benchmarks refer to algorithms by the
short names used in the paper's figure legends.
"""

from __future__ import annotations

from typing import Callable

from repro.multicast.base import MulticastAlgorithm
from repro.multicast.combine import Combine
from repro.multicast.maxport import Maxport, MaxportSubcube
from repro.multicast.naive import DimensionalSAF, SeparateAddressing
from repro.multicast.ucube import UCube
from repro.multicast.wsort import WSort

__all__ = ["ALGORITHMS", "PAPER_ALGORITHMS", "get_algorithm"]

#: Factories for every algorithm in the library.
ALGORITHMS: dict[str, Callable[[], MulticastAlgorithm]] = {
    "ucube": UCube,
    "maxport": Maxport,
    "maxport-subcube": MaxportSubcube,
    "combine": Combine,
    "wsort": WSort,
    "separate": SeparateAddressing,
    "saf": DimensionalSAF,
}

#: The four algorithms compared in the paper's evaluation (Section 5),
#: in figure-legend order.
PAPER_ALGORITHMS: tuple[str, ...] = ("ucube", "maxport", "combine", "wsort")


def get_algorithm(name: str) -> MulticastAlgorithm:
    """Instantiate an algorithm by registry name.

    Raises:
        KeyError: with the list of known names, if ``name`` is unknown.
    """
    try:
        factory = ALGORITHMS[name]
    except KeyError:
        known = ", ".join(sorted(ALGORITHMS))
        raise KeyError(f"unknown algorithm {name!r}; known: {known}") from None
    return factory()
