"""Port models: how many messages a node can send concurrently.

The *port model* of a system is the number of internal channel pairs
between each local processor and its router.  A one-port node must
serialize its sends; an all-port node has one internal channel per
external channel and can drive all ``n`` dimensions at once.  The
``k``-port generalization (1 < k < n) is included as an extension
beyond the paper, which evaluates the two extremes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ALL_PORT", "ONE_PORT", "PortModel", "k_port"]


@dataclass(frozen=True, slots=True)
class PortModel:
    """Number of internal channel pairs per node.

    Attributes:
        ports: concurrent send (and receive) limit per node, or ``None``
            for the all-port model, where the limit is the cube
            dimension ``n``.
        name: human-readable label used in reports.
    """

    ports: int | None
    name: str

    def __post_init__(self) -> None:
        if self.ports is not None and self.ports < 1:
            raise ValueError(f"port count must be >= 1, got {self.ports}")

    def limit(self, n: int) -> int:
        """Concurrent-send limit for a node of an ``n``-cube."""
        return n if self.ports is None else min(self.ports, n)

    @property
    def is_all_port(self) -> bool:
        return self.ports is None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


#: One internal channel pair: sends are fully serialized.
ONE_PORT = PortModel(1, "one-port")

#: One internal channel pair per external channel.
ALL_PORT = PortModel(None, "all-port")


def k_port(k: int) -> PortModel:
    """A ``k``-port model (extension; the paper evaluates 1 and ``n``)."""
    return PortModel(k, f"{k}-port")
