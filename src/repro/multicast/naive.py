"""Baseline multicast implementations (Section 2 / Fig. 3(a)).

Two baselines that predate the paper's contention-aware algorithms:

- :class:`SeparateAddressing` -- the source sends an individual copy of
  the message to every destination.  Correct but serial: even on an
  all-port node, copies whose E-cube paths leave on the same channel
  (or collide deeper in the network) must wait.
- :class:`DimensionalSAF` -- the recursive-doubling tree used by early
  store-and-forward hypercubes (Fig. 3(a)): the message enters each
  subcube that contains destinations through the sender's *neighbor* in
  that subcube, which may be a node that is not a destination at all.
  Every unicast is a single hop, so intermediate **CPUs** must relay the
  message -- the property the wormhole algorithms eliminate.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.addressing import require_address
from repro.core.paths import ResolutionOrder
from repro.multicast._chainloop import build_with_order
from repro.multicast.base import MulticastAlgorithm, MulticastTree

__all__ = ["DimensionalSAF", "SeparateAddressing"]


class SeparateAddressing(MulticastAlgorithm):
    """Send one unicast from the source to each destination."""

    name = "separate"

    def build_tree(
        self,
        n: int,
        source: int,
        destinations: Sequence[int],
        order: ResolutionOrder = ResolutionOrder.DESCENDING,
    ) -> MulticastTree:
        def build(n_: int, s_: int, dests: Sequence[int]) -> MulticastTree:
            tree = MulticastTree(n_, s_, dests)
            for d in sorted(dests):
                tree.add_send(s_, d)
            return tree

        return build_with_order(build, n, source, destinations, order)


class DimensionalSAF(MulticastAlgorithm):
    """Store-and-forward-era recursive-doubling multicast tree.

    The holder of subcube ``S`` walks the free dimensions from high to
    low; whenever the opposite half of ``S`` contains at least one
    destination, the holder forwards the message one hop across that
    dimension -- to its mirror node, destination or not -- and that node
    becomes the holder of the half.  Relay CPUs (the tree's
    ``relay_nodes``) handle messages they have no use for; with
    store-and-forward switching each of the single-hop unicasts was one
    full message time, giving the 4-step behaviour of Fig. 3(a).
    """

    name = "saf"

    def build_tree(
        self,
        n: int,
        source: int,
        destinations: Sequence[int],
        order: ResolutionOrder = ResolutionOrder.DESCENDING,
    ) -> MulticastTree:
        def build(n_: int, s_: int, dests: Sequence[int]) -> MulticastTree:
            require_address(s_, n_, "source")
            tree = MulticastTree(n_, s_, dests)
            dest_set = set(dests)

            def covers(holder: int, dim: int) -> bool:
                """Does the dim-subcube around `holder` contain a destination?"""
                prefix = holder >> dim
                return any((d >> dim) == prefix for d in dest_set)

            def process(holder: int, dim: int) -> None:
                # `holder` currently owns the subcube with `dim` free bits
                for d in range(dim - 1, -1, -1):
                    mirror = holder ^ (1 << d)
                    if covers(mirror, d):
                        tree.add_send(holder, mirror)
                        process(mirror, d)

            process(s_, n_)
            return tree

        return build_with_order(build, n, source, destinations, order)
