"""Topology-agnostic greedy step scheduling.

The greedy scheduler (earliest feasible step per unicast under port and
arc constraints) does not care what an "arc" is -- only that two
unicasts scheduled in the same step must not share one.  This module
holds the scheduling core so the hypercube trees
(:mod:`repro.multicast.base`) and the mesh trees (:mod:`repro.mesh`)
share a single implementation.
"""

from __future__ import annotations

import heapq
from typing import Callable, Hashable, Sequence

from repro.obs import trace_spans

__all__ = ["greedy_steps"]


def greedy_steps(
    source: int,
    sends: Sequence[tuple[int, int, int]],
    arcs_of: Callable[[int, int], Sequence[Hashable]],
    limit: int,
) -> dict[int, int]:
    """Assign each send the earliest feasible step.

    Args:
        source: the node that is ready before step 1.
        sends: ``(seq, src, dst)`` records; per-sender issue order is
            their order in this sequence.
        arcs_of: maps ``(src, dst)`` to the channels the unicast holds.
        limit: injection-port count per node.

    Returns:
        ``seq -> step``.  Semantics (see
        :meth:`repro.multicast.base.MulticastTree.schedule`): a node
        sends only after the step it received in; ports are
        interchangeable resources held until delivery; same-step
        unicasts must be pairwise arc-disjoint.

    Raises:
        ValueError: if some send's source never receives the message.
    """
    with trace_spans.span("schedule.greedy", sends=len(sends), limit=limit) as sp:
        steps = _greedy_steps(source, sends, arcs_of, limit)
        if sp is not None:
            sp.set(max_step=max(steps.values(), default=0))
        return steps


def _greedy_steps(
    source: int,
    sends: Sequence[tuple[int, int, int]],
    arcs_of: Callable[[int, int], Sequence[Hashable]],
    limit: int,
) -> dict[int, int]:
    by_sender: dict[int, list[tuple[int, int, int]]] = {}
    for rec in sends:
        by_sender.setdefault(rec[1], []).append(rec)

    ready: dict[int, int] = {source: 0}
    arcs_by_step: dict[int, set[Hashable]] = {}
    steps: dict[int, int] = {}

    heap: list[tuple[int, int, int]] = [(0, -1, source)]
    seen: set[int] = set()
    while heap:
        r, _, node = heapq.heappop(heap)
        if node in seen:
            continue
        seen.add(node)
        node_sends = by_sender.get(node, ())
        port_free = [r] * min(limit, len(node_sends))
        heapq.heapify(port_free)
        for seq, src, dst in node_sends:
            arcs = arcs_of(src, dst)
            s = max(r + 1, heapq.heappop(port_free) + 1)
            while True:
                used = arcs_by_step.get(s)
                if used is None or not any(a in used for a in arcs):
                    break
                s += 1
            steps[seq] = s
            heapq.heappush(port_free, s)
            arcs_by_step.setdefault(s, set()).update(arcs)
            ready[dst] = s
            heapq.heappush(heap, (s, seq, dst))

    unplaced = [rec for rec in sends if rec[0] not in steps]
    if unplaced:
        raise ValueError(
            f"tree is not connected: {len(unplaced)} send(s) from nodes "
            "that never receive the message"
        )
    return steps
