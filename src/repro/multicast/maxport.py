"""The Maxport multicast algorithm (Section 4.1).

Maxport changes a single statement of the U-cube loop:
``next = highdim`` -- each sender transmits to the *leftmost* chain node
whose address differs from the sender's in the chain's highest differing
dimension.  Consequently every unicast a node issues leaves on a
different outgoing channel (a different subcube), so an all-port node
can transmit all of them in parallel, contention-free by Theorem 1.

The price is that a single receiver can be left responsible for a large
subcube of destinations: for source 0000 and destinations
{1001, 1010, 1011} Maxport needs three steps where U-cube needs two
(Fig. 6) -- the deficiency that Combine and W-sort repair.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.paths import ResolutionOrder
from repro.multicast._chainloop import build_with_order, chain_loop_tree, cube_ordered_tree
from repro.multicast.base import MulticastAlgorithm, MulticastTree

__all__ = ["Maxport"]


class Maxport(MulticastAlgorithm):
    """Maxport: ``next = highdim`` in the Fig. 4 loop."""

    name = "maxport"

    def build_tree(
        self,
        n: int,
        source: int,
        destinations: Sequence[int],
        order: ResolutionOrder = ResolutionOrder.DESCENDING,
    ) -> MulticastTree:
        return build_with_order(
            lambda n_, s_, d_: chain_loop_tree(
                n_, s_, d_, select_next=lambda highdim, center: highdim, needs_highdim=True
            ),
            n,
            source,
            destinations,
            order,
        )


class MaxportSubcube(MulticastAlgorithm):
    """The subcube-recursive formulation of Maxport (Section 4.2).

    Emits exactly the same sends as :class:`Maxport` on dimension-ordered
    chains (verified in the tests) but accepts any cube-ordered chain;
    it is the routing half of W-sort.
    """

    name = "maxport-subcube"

    def build_tree(
        self,
        n: int,
        source: int,
        destinations: Sequence[int],
        order: ResolutionOrder = ResolutionOrder.DESCENDING,
    ) -> MulticastTree:
        return build_with_order(
            lambda n_, s_, d_: cube_ordered_tree(n_, s_, d_),
            n,
            source,
            destinations,
            order,
        )
