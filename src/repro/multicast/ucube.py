"""The U-cube multicast algorithm (Algorithm 1 / Fig. 4 of the paper).

U-cube [McKinley, Xu, Esfahanian & Ni 1992] is the prior-art algorithm
the paper builds on.  It sorts the source and destinations into a
``d0``-relative dimension-ordered chain and repeatedly sends to the
first node of the chain's upper half (``next = center``), halving the
set of nodes each sender is responsible for.

On a one-port architecture it is optimal: it reaches ``m`` destinations
in exactly ``ceil(log2(m + 1))`` steps and is contention-free regardless
of startup latency and message length.  It makes no attempt to use
multiple ports, which is precisely the deficiency the paper's Maxport,
Combine, and W-sort address.
"""

from __future__ import annotations

from math import ceil, log2
from typing import Sequence

from repro.core.paths import ResolutionOrder
from repro.multicast._chainloop import build_with_order, chain_loop_tree
from repro.multicast.base import MulticastAlgorithm, MulticastTree

__all__ = ["UCube", "ucube_optimal_steps"]


def ucube_optimal_steps(m: int) -> int:
    """Tight lower bound ``ceil(log2(m + 1))`` on one-port steps to
    reach ``m`` destinations; U-cube achieves it."""
    if m < 0:
        raise ValueError(f"destination count must be >= 0, got {m}")
    return ceil(log2(m + 1)) if m else 0


class UCube(MulticastAlgorithm):
    """U-cube: ``next = center`` in the Fig. 4 loop."""

    name = "ucube"

    def build_tree(
        self,
        n: int,
        source: int,
        destinations: Sequence[int],
        order: ResolutionOrder = ResolutionOrder.DESCENDING,
    ) -> MulticastTree:
        return build_with_order(
            lambda n_, s_, d_: chain_loop_tree(
                n_, s_, d_, select_next=lambda highdim, center: center, needs_highdim=False
            ),
            n,
            source,
            destinations,
            order,
        )
