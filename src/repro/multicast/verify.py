"""End-to-end verification of a multicast implementation.

Ties together the structural checks (coverage, CPU involvement) and the
Definition 4 contention verifier.  Used by the test suite and available
to library users who implement their own tree builders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.paths import ResolutionOrder
from repro.multicast.base import MulticastAlgorithm, MulticastTree, Schedule
from repro.multicast.ports import ALL_PORT, PortModel
from repro.obs import trace_spans

__all__ = ["VerificationResult", "verify_multicast", "verify_tree"]


@dataclass(slots=True)
class VerificationResult:
    """Outcome of :func:`verify_multicast`."""

    ok: bool
    errors: list[str] = field(default_factory=list)
    schedule: Schedule | None = None

    def __bool__(self) -> bool:
        return self.ok

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise AssertionError("multicast verification failed:\n  " + "\n  ".join(self.errors))


def verify_tree(tree: MulticastTree, allow_relays: bool = False) -> list[str]:
    """Structural checks on a multicast tree; returns a list of errors.

    - every destination receives the message exactly once;
    - nothing is delivered twice to any node;
    - unless ``allow_relays``, no CPU other than the source's and the
      destinations' handles the message (the wormhole requirement).
    """
    errors: list[str] = []
    received: dict[int, int] = {}
    for s in tree.sends:
        received[s.dst] = received.get(s.dst, 0) + 1
    for node, times in received.items():
        if times > 1:
            errors.append(f"node {node} receives the message {times} times")
    if tree.source in received:
        errors.append("the source receives its own message")
    missing = tree.destinations - received.keys()
    if missing:
        errors.append(f"destinations never reached: {sorted(missing)}")
    if not allow_relays:
        relays = tree.relay_nodes
        if relays:
            errors.append(f"non-destination CPUs involved: {sorted(relays)}")
    return errors


def verify_multicast(
    algorithm: MulticastAlgorithm,
    n: int,
    source: int,
    destinations: Sequence[int],
    ports: PortModel = ALL_PORT,
    order: ResolutionOrder = ResolutionOrder.DESCENDING,
    allow_relays: bool = False,
) -> VerificationResult:
    """Build, schedule, and fully verify one multicast operation.

    Checks tree structure (see :func:`verify_tree`) and that the greedy
    schedule is contention-free per Definition 4.
    """
    with trace_spans.span(
        "verify.multicast", algorithm=algorithm.name, n=n, m=len(destinations)
    ) as sp:
        tree = algorithm.build_tree(n, source, destinations, order)
        errors = verify_tree(tree, allow_relays=allow_relays)
        schedule = tree.schedule(ports)
        report = schedule.check_contention()
        if not report.ok:
            errors.append(report.summary())
        if sp is not None:
            sp.set(ok=not errors, errors=len(errors))
        return VerificationResult(ok=not errors, errors=errors, schedule=schedule)
