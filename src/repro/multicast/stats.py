"""Descriptive statistics of multicast trees and schedules.

Beyond the step count, the paper's design space trades off tree depth
(latency), fan-out (port usage), and traffic (channel-hops).  These
metrics make the trade-offs measurable and are used by the ablation
analyses and the examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean

from repro.core.addressing import delta, hamming
from repro.multicast.base import MulticastTree, Schedule

__all__ = ["TreeStats", "schedule_concurrency", "tree_stats"]


@dataclass(frozen=True, slots=True)
class TreeStats:
    """Structural metrics of one multicast tree.

    Attributes:
        sends: number of constituent unicasts.
        depth: tree height in unicasts (forwarding chain length).
        total_hops: total physical channel-hops (network traffic).
        mean_hops: average unicast path length.
        max_fanout: largest number of sends issued by any single node.
        mean_fanout: average sends per sending node.
        distinct_port_senders: nodes all of whose sends leave on
            distinct channels (these can use all ports in parallel).
        relay_cpus: non-destination CPUs that must handle the message.
    """

    sends: int
    depth: int
    total_hops: int
    mean_hops: float
    max_fanout: int
    mean_fanout: float
    distinct_port_senders: int
    relay_cpus: int

    def as_dict(self) -> dict[str, float]:
        return {
            "sends": self.sends,
            "depth": self.depth,
            "total_hops": self.total_hops,
            "mean_hops": self.mean_hops,
            "max_fanout": self.max_fanout,
            "mean_fanout": self.mean_fanout,
            "distinct_port_senders": self.distinct_port_senders,
            "relay_cpus": self.relay_cpus,
        }


def tree_stats(tree: MulticastTree) -> TreeStats:
    """Compute :class:`TreeStats` for a tree."""
    sends = tree.sends
    senders = {s.src for s in sends}
    fanouts = [len(tree.sends_from(u)) for u in senders]
    distinct = 0
    for u in senders:
        dims = [delta(s.src, s.dst) for s in tree.sends_from(u)]
        if len(set(dims)) == len(dims):
            distinct += 1
    hops = [hamming(s.src, s.dst) for s in sends]
    return TreeStats(
        sends=len(sends),
        depth=tree.depth() if sends else 0,
        total_hops=sum(hops),
        mean_hops=mean(hops) if hops else 0.0,
        max_fanout=max(fanouts, default=0),
        mean_fanout=mean(fanouts) if fanouts else 0.0,
        distinct_port_senders=distinct,
        relay_cpus=len(tree.relay_nodes),
    )


def schedule_concurrency(schedule: Schedule) -> dict[int, int]:
    """Number of unicasts in flight at each step of a schedule."""
    counts: dict[int, int] = {}
    for u in schedule.unicasts:
        counts[u.step] = counts.get(u.step, 0) + 1
    return counts
