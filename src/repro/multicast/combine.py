"""The Combine multicast algorithm (Section 4.1).

Combine takes ``next = max(highdim, center)`` in the Fig. 4 loop,
blending U-cube and Maxport: it uses multiple ports whenever the
destination set allows it (like Maxport), but never leaves a single
receiver responsible for more than half of the remaining chain (like
U-cube).  On the Fig. 6 example where Maxport degrades to three steps,
Combine matches U-cube's two.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.paths import ResolutionOrder
from repro.multicast._chainloop import build_with_order, chain_loop_tree
from repro.multicast.base import MulticastAlgorithm, MulticastTree

__all__ = ["Combine"]


class Combine(MulticastAlgorithm):
    """Combine: ``next = max(highdim, center)`` in the Fig. 4 loop."""

    name = "combine"

    def build_tree(
        self,
        n: int,
        source: int,
        destinations: Sequence[int],
        order: ResolutionOrder = ResolutionOrder.DESCENDING,
    ) -> MulticastTree:
        return build_with_order(
            lambda n_, s_, d_: chain_loop_tree(
                n_,
                s_,
                d_,
                select_next=lambda highdim, center: max(highdim, center),
                needs_highdim=True,
            ),
            n,
            source,
            destinations,
            order,
        )
