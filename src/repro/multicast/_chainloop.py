"""Shared machinery for the chain-based algorithms (Fig. 4 and Section 4.2).

U-cube, Maxport, and Combine differ in a *single statement* of the main
loop in Fig. 4 -- the choice of ``next``:

======== =============================
U-cube   ``next = center``
Maxport  ``next = highdim``
Combine  ``next = max(highdim, center)``
======== =============================

``chain_loop_tree`` implements the common loop over a ``d0``-relative
dimension-ordered chain.  ``cube_ordered_tree`` implements the
subcube-recursive formulation of Maxport from Section 4.2, which
accepts *any* cube-ordered chain (in particular the output of
``weighted_sort``); on a dimension-ordered chain it emits exactly the
same sends as the Fig. 4 loop with ``next = highdim``, which the test
suite verifies.

Both builders work in relative address space (the source is relative
address 0) and translate back to absolute addresses when emitting,
exploiting the XOR-translation invariance of E-cube routing.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Sequence

from repro.core.addressing import delta, require_address, reverse_bits
from repro.core.chains import is_cube_ordered_chain, relative_chain
from repro.core.paths import ResolutionOrder
from repro.multicast.base import MulticastTree

__all__ = ["build_with_order", "chain_loop_tree", "cube_ordered_tree"]

NextSelector = Callable[[int, int], int]


def _highdim_index(chain: Sequence[int], left: int, right: int, x: int) -> int:
    """Leftmost index ``i`` in ``(left, right]`` with ``delta(chain[left],
    chain[i]) == x``, assuming the segment is ascending and ``x`` is the
    highest bit differing anywhere in it.

    Elements differing from ``chain[left]`` at bit ``x`` are exactly
    those with bit ``x`` set (the segment minimum has it clear), and
    they form the segment's tail, so a binary search suffices.
    """
    threshold = ((chain[left] >> (x + 1)) << (x + 1)) | (1 << x)
    return bisect_left(chain, threshold, left + 1, right + 1)


def chain_loop_tree(
    n: int,
    source: int,
    destinations: Sequence[int],
    select_next: NextSelector,
    needs_highdim: bool,
) -> MulticastTree:
    """The Fig. 4 main loop, executed recursively for every receiver.

    Args:
        select_next: maps ``(highdim, center)`` to the chain position of
            the next receiver.  ``highdim`` is only meaningful when
            ``needs_highdim`` is true (U-cube never inspects it and the
            search is skipped).
    """
    tree = MulticastTree(n, source, destinations)
    chain = relative_chain(source, destinations)

    def process(left: int, right: int) -> None:
        while left < right:
            x = delta(chain[left], chain[right])
            highdim = _highdim_index(chain, left, right, x) if needs_highdim else -1
            center = left + (right - left + 1) // 2  # left + ceil((right-left)/2)
            nxt = select_next(highdim, center)
            payload = tuple(chain[i] ^ source for i in range(nxt + 1, right + 1))
            tree.add_send(chain[left] ^ source, chain[nxt] ^ source, payload)
            process(nxt, right)
            right = nxt - 1

    process(0, len(chain) - 1)
    return tree


def cube_ordered_tree(
    n: int,
    source: int,
    destinations: Sequence[int],
    reorder: Callable[[list[int], int], list[int]] | None = None,
) -> MulticastTree:
    """Subcube-recursive Maxport over a cube-ordered chain (Section 4.2).

    The relative chain is built (dimension-ordered, hence cube-ordered
    by Theorem 4), optionally permuted by ``reorder`` (e.g.
    ``weighted_sort``), and then routed: each holder sends one unicast
    into each maximal subcube of its own subcube that does not contain
    it and contains at least one destination.

    Args:
        reorder: optional permutation of the relative chain; must return
            a cube-ordered chain whose first element is still 0
            (Theorem 5 guarantees this for ``weighted_sort``).
    """
    tree = MulticastTree(n, source, destinations)
    chain = relative_chain(source, destinations)
    if reorder is not None:
        chain = reorder(chain, n)
        if chain[0] != 0:
            raise ValueError("reorder must keep the source first in the chain")
        if __debug__ and len(chain) <= 1 << 12:
            assert is_cube_ordered_chain(chain, n), "reorder broke cube order"

    def process(left: int, right: int, dim: int) -> None:
        while left < right:
            # descend to the level at which the holder's block splits
            split = right + 1
            while dim > 0:
                b = 1 << (dim - 1)
                head = chain[left] & b
                split = right + 1
                for i in range(left + 1, right + 1):
                    if (chain[i] & b) != head:
                        split = i
                        break
                if split <= right:
                    break
                dim -= 1
            if split > right:  # distinct addresses always split eventually
                raise AssertionError("cube-ordered chain failed to split")
            payload = tuple(chain[i] ^ source for i in range(split + 1, right + 1))
            tree.add_send(chain[left] ^ source, chain[split] ^ source, payload)
            process(split, right, dim - 1)
            right = split - 1
            dim -= 1

    process(0, len(chain) - 1, n)
    return tree


def build_with_order(
    build: Callable[[int, int, Sequence[int]], MulticastTree],
    n: int,
    source: int,
    destinations: Sequence[int],
    order: ResolutionOrder,
) -> MulticastTree:
    """Run a descending-order tree builder under either resolution order.

    Ascending-order (nCUBE-2 style) routing is the bit-reversal
    conjugate of descending-order routing, so the ascending tree is
    obtained by bit-reversing all addresses, building the canonical
    descending tree, and reversing back.  All structural and contention
    properties transfer (the paper notes the resolution order does not
    affect any result).
    """
    require_address(source, n, "source")
    if order is ResolutionOrder.DESCENDING:
        return build(n, source, destinations)
    rev = lambda x: reverse_bits(x, n)  # noqa: E731
    rtree = build(n, rev(source), [rev(d) for d in destinations])
    tree = MulticastTree(n, source, destinations, order=ResolutionOrder.ASCENDING)
    for s in rtree.sends:
        tree.add_send(rev(s.src), rev(s.dst), tuple(rev(c) for c in s.chain))
    return tree
