"""``weighted_sort`` (Fig. 7) and the W-sort multicast algorithm (Section 4.2).

A dimension-ordered chain is a legal input to Maxport, but not
necessarily the best one: performance improves if every (intermediate)
sender forwards first into the most "crowded" subcube.  ``weighted_sort``
permutes a cube-ordered chain by recursively exchanging subcube halves
so that the more populated half appears first, never moving the source
from position 0 (Theorem 5).  Feeding the permuted chain to the
subcube-recursive Maxport yields the *W-sort* algorithm, which is
contention-free (Theorem 6).

Two implementations of the sort are provided:

- :func:`weighted_sort` -- a literal transcription of Fig. 7, the
  centralized ``O(m^2)`` procedure;
- :func:`weighted_sort_fast` -- an ``O(m log m)`` reformulation that
  mirrors the distributed version the paper defers to its tech report
  [10]; it produces the identical permutation (property-tested).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.chains import is_cube_ordered_chain
from repro.core.paths import ResolutionOrder
from repro.multicast._chainloop import build_with_order, cube_ordered_tree
from repro.multicast.base import MulticastAlgorithm, MulticastTree

__all__ = ["WSort", "cube_center", "weighted_sort", "weighted_sort_fast"]


def cube_center(chain: Sequence[int], first: int, last: int, n_s: int) -> int:
    """Starting position of the second ``(n_s - 1)``-dimensional half of
    the subcube block ``chain[first..last]``.

    The block must lie within a single subcube with ``n_s`` free bits
    and be cube-ordered, so the elements sharing bit ``n_s - 1`` with
    ``chain[first]`` form a prefix; the returned index is the first
    position beyond that prefix, or ``last + 1`` when one half contains
    no nodes at all.
    """
    if n_s < 1:
        raise ValueError(f"subcube dimension must be >= 1, got {n_s}")
    b = 1 << (n_s - 1)
    head = chain[first] & b
    for i in range(first + 1, last + 1):
        if (chain[i] & b) != head:
            return i
    return last + 1


def weighted_sort(chain: Sequence[int], n: int) -> list[int]:
    """Fig. 7: permute a cube-ordered chain so the most populated subcube
    half always comes first, keeping position 0 (the source) fixed.

    Args:
        chain: a cube-ordered chain of dimension ``n`` whose first
            element is the (relative) source address.
        n: the hypercube dimension.

    Returns:
        A new list: a cube-ordered permutation of ``chain`` with
        ``chain[0]`` still first (Theorem 5).
    """
    if not is_cube_ordered_chain(chain, n):
        raise ValueError("weighted_sort requires a cube-ordered chain")
    d = list(chain)

    def rec(first: int, last: int, n_s: int) -> None:
        if last - first >= 2:
            center = cube_center(d, first, last, n_s)
            rec(first, center - 1, n_s - 1)
            rec(center, last, n_s - 1)
            if first != 0 and (center - first) < (last - center + 1):
                d[first : last + 1] = d[center : last + 1] + d[first:center]

    rec(0, len(d) - 1, n)
    return d


def weighted_sort_fast(chain: Sequence[int], n: int) -> list[int]:
    """``O(m log m)`` reformulation of :func:`weighted_sort`.

    Produces the identical permutation by recursing over value-space
    subcube halves of the *sorted* chain and concatenating the larger
    half first (except in the block containing the source, whose own
    half always stays first).  Requires the input to be dimension-ordered
    apart from its leading source element, which is how W-sort always
    invokes the sort; for arbitrary cube-ordered inputs use
    :func:`weighted_sort`.
    """
    if len(chain) <= 2:
        return list(chain)
    d = list(chain)
    body = d[1:]
    if any(body[i] >= body[i + 1] for i in range(len(body) - 1)) or (d[0] > body[0]):
        raise ValueError(
            "weighted_sort_fast requires a dimension-ordered chain "
            "(source first, destinations ascending)"
        )

    out: list[int] = []

    def rec(lo: int, hi: int, n_s: int, has_source: bool) -> None:
        # d[lo:hi] is the sorted block of one subcube with n_s free bits
        if hi - lo <= 1:
            out.extend(d[lo:hi])
            return
        b = 1 << (n_s - 1)
        head = d[lo] & b
        split = hi
        for i in range(lo + 1, hi):
            if (d[i] & b) != head:
                split = i
                break
        low_n, high_n = split - lo, hi - split
        if has_source or low_n >= high_n:
            rec(lo, split, n_s - 1, has_source)
            rec(split, hi, n_s - 1, False)
        else:
            rec(split, hi, n_s - 1, False)
            rec(lo, split, n_s - 1, False)

    rec(0, len(d), n, True)
    return out


class WSort(MulticastAlgorithm):
    """W-sort: dimension-order sort, then ``weighted_sort``, then the
    subcube-recursive Maxport (Section 4.2)."""

    name = "wsort"

    def __init__(self, fast_sort: bool = True) -> None:
        self._sort = weighted_sort_fast if fast_sort else weighted_sort

    def build_tree(
        self,
        n: int,
        source: int,
        destinations: Sequence[int],
        order: ResolutionOrder = ResolutionOrder.DESCENDING,
    ) -> MulticastTree:
        return build_with_order(
            lambda n_, s_, d_: cube_ordered_tree(n_, s_, d_, reorder=self._sort),
            n,
            source,
            destinations,
            order,
        )
