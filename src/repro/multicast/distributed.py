"""Distributed execution of the multicast algorithms.

The centralized builders in this package construct whole trees at once,
but on a real machine each node runs the algorithm *locally*: it
receives the message together with an **address field** (the chain of
destinations it is responsible for), decides its own forwards from that
field alone, and sends sub-fields onward (Fig. 4's ``Send a copy of
message M to node d_next with the address field D``).

This module provides that node-local execution model:

- a :class:`Kernel` is a pure function of ``(local relative address,
  received relative chain)`` producing the node's forwards;
- :func:`execute_distributed` runs a kernel over an actual message
  cascade -- *only* information physically carried by messages flows
  between nodes -- and returns the resulting tree.

The test suite verifies that distributed execution reproduces the
centralized trees send-for-send for every algorithm, which pins down
that the address fields attached to sends are exactly sufficient.

Kernels operate in source-relative address space.  ``chain`` always
begins with the local node's own relative address, mirroring the
``d_left`` convention of Fig. 4.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Protocol, Sequence

from repro.core.addressing import delta, reverse_bits
from repro.core.chains import relative_chain
from repro.core.paths import ResolutionOrder
from repro.multicast.base import MulticastTree
from repro.multicast.wsort import weighted_sort_fast

__all__ = [
    "Kernel",
    "KERNELS",
    "combine_kernel",
    "execute_distributed",
    "maxport_kernel",
    "ucube_kernel",
]


class Kernel(Protocol):
    """Node-local forwarding decision.

    Args:
        chain: the received address field, ``chain[0]`` being the local
            node's own (source-relative) address.

    Returns:
        ``(next_node, subchain)`` pairs in issue order; each subchain
        again starts with its receiver's relative address.
    """

    def __call__(self, chain: Sequence[int]) -> list[tuple[int, list[int]]]: ...


def _chain_loop_kernel(select_next: Callable[[int, int], int], needs_highdim: bool) -> Kernel:
    """The Fig. 4 loop as a node-local kernel (one node's sends only)."""

    def kernel(chain: Sequence[int]) -> list[tuple[int, list[int]]]:
        out: list[tuple[int, list[int]]] = []
        left, right = 0, len(chain) - 1
        while left < right:
            x = delta(chain[left], chain[right])
            if needs_highdim:
                threshold = ((chain[left] >> (x + 1)) << (x + 1)) | (1 << x)
                highdim = bisect_left(chain, threshold, left + 1, right + 1)
            else:
                highdim = -1
            center = left + (right - left + 1) // 2
            nxt = select_next(highdim, center)
            out.append((chain[nxt], list(chain[nxt : right + 1])))
            right = nxt - 1
        return out

    return kernel


#: U-cube's node-local rule: send to the first node of the upper half.
ucube_kernel: Kernel = _chain_loop_kernel(lambda highdim, center: center, False)

#: Combine's node-local rule.
combine_kernel: Kernel = _chain_loop_kernel(
    lambda highdim, center: max(highdim, center), True
)


def maxport_kernel(chain: Sequence[int]) -> list[tuple[int, list[int]]]:
    """Maxport's node-local rule, in the Section 4.2 subcube form.

    Works on any cube-ordered chain (in particular weighted_sort
    output), deciding purely from the received field: repeatedly find
    the highest dimension splitting the field and forward the far
    block.  The enclosing-subcube dimension is recovered from the chain
    itself, so no extra control information is needed.
    """
    out: list[tuple[int, list[int]]] = []
    left, right = 0, len(chain) - 1
    if left >= right:
        return out
    # smallest subcube containing the whole field
    spread = 0
    for v in chain:
        spread |= v ^ chain[0]
    dim = spread.bit_length()
    while left < right:
        split = right + 1
        while dim > 0:
            b = 1 << (dim - 1)
            head = chain[left] & b
            split = right + 1
            for i in range(left + 1, right + 1):
                if (chain[i] & b) != head:
                    split = i
                    break
            if split <= right:
                break
            dim -= 1
        out.append((chain[split], list(chain[split : right + 1])))
        right = split - 1
        dim -= 1
    return out


#: Kernels by algorithm name.  W-sort uses the maxport kernel -- the
#: weighted sort happens once, at the source, before injection.
KERNELS: dict[str, Kernel] = {
    "ucube": ucube_kernel,
    "maxport": maxport_kernel,
    "combine": combine_kernel,
    "wsort": maxport_kernel,
}


def execute_distributed(
    algorithm: str,
    n: int,
    source: int,
    destinations: Sequence[int],
    order: ResolutionOrder = ResolutionOrder.DESCENDING,
) -> MulticastTree:
    """Run a multicast as the nodes themselves would.

    The source sorts the destinations into the source-relative chain
    (W-sort additionally applies ``weighted_sort``), then every node --
    starting with the source -- applies its kernel to the address field
    it received and hands sub-fields onward.  No node sees anything but
    its own field.

    Returns the tree realized by the cascade, directly comparable with
    the centralized builders' output.
    """
    try:
        kernel = KERNELS[algorithm]
    except KeyError:
        known = ", ".join(KERNELS)
        raise KeyError(f"no distributed kernel for {algorithm!r}; known: {known}") from None

    if order is ResolutionOrder.ASCENDING:
        rev = lambda x: reverse_bits(x, n)  # noqa: E731
        rtree = execute_distributed(
            algorithm, n, rev(source), [rev(d) for d in destinations]
        )
        tree = MulticastTree(n, source, destinations, order=order)
        for s in rtree.sends:
            tree.add_send(rev(s.src), rev(s.dst), tuple(rev(c) for c in s.chain))
        return tree

    tree = MulticastTree(n, source, destinations, order=order)
    chain = relative_chain(source, destinations)
    if algorithm == "wsort":
        chain = weighted_sort_fast(chain, n)

    # message cascade: FIFO of (receiving node's field)
    pending: list[list[int]] = [list(chain)]
    while pending:
        field = pending.pop(0)
        local = field[0]
        for nxt_rel, subfield in kernel(field):
            tree.add_send(local ^ source, nxt_rel ^ source, tuple(v ^ source for v in subfield[1:]))
            pending.append(subfield)
    return tree
