"""Multicast trees, step scheduling, and the algorithm interface.

A multicast *tree* records which node forwards the message to which
other nodes, and in what local issue order.  A tree says nothing about
timing; a :class:`Schedule` assigns each constituent unicast a discrete
time step under a :class:`~repro.multicast.ports.PortModel`:

- a node can send only in steps strictly after the step in which it
  received the message (the multicast source is ready before step 1);
- a node issues at most ``port_limit`` unicasts per step, in its issue
  order;
- unicasts assigned to the same step must be pairwise arc-disjoint
  (two worms cannot share a channel concurrently) -- this is what
  penalizes U-cube on an all-port machine in Fig. 3(d), where two sends
  from node 0111 need the same outgoing channel and serialize.

The greedy scheduler assigns each unicast the earliest feasible step.
For the paper's algorithms, whose same-step unicasts are arc-disjoint
by construction (Theorems 1-2), the greedy schedule reproduces the step
counts reported in the paper's figures.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.addressing import hamming, require_address
from repro.core.contention import ContentionReport, Unicast, check_contention_free
from repro.core.paths import ResolutionOrder, ecube_arcs
from repro.multicast._scheduling import greedy_steps
from repro.multicast.ports import ALL_PORT, PortModel
from repro.obs import trace_spans

__all__ = ["MulticastAlgorithm", "MulticastTree", "Schedule", "Send"]


@dataclass(frozen=True, slots=True)
class Send:
    """One forwarding action: ``src`` transmits the message to ``dst``.

    Attributes:
        src: absolute address of the sending node.
        dst: absolute address of the receiving node.
        seq: global construction sequence number (stable tiebreaker).
        chain: the *address field* ``D`` carried with the message -- the
            (absolute) addresses the receiver is responsible for
            delivering to, excluding the receiver itself.
    """

    src: int
    dst: int
    seq: int
    chain: tuple[int, ...] = ()


class MulticastTree:
    """A tree of unicasts implementing one multicast operation."""

    def __init__(
        self,
        n: int,
        source: int,
        destinations: Iterable[int],
        order: ResolutionOrder = ResolutionOrder.DESCENDING,
    ) -> None:
        self.n = n
        self.source = require_address(source, n, "source")
        self.destinations = frozenset(destinations)
        for d in self.destinations:
            require_address(d, n, "destination")
        if self.source in self.destinations:
            raise ValueError("source must not be among the destinations")
        self.order = order
        self._sends: list[Send] = []
        self._by_sender: dict[int, list[Send]] = {}

    # -- construction -------------------------------------------------

    def add_send(self, src: int, dst: int, chain: Sequence[int] = ()) -> Send:
        """Append a forwarding action (in the sender's issue order)."""
        require_address(src, self.n, "sender")
        require_address(dst, self.n, "receiver")
        if src == dst:
            raise ValueError(f"node {src} cannot send to itself")
        send = Send(src, dst, len(self._sends), tuple(chain))
        self._sends.append(send)
        self._by_sender.setdefault(src, []).append(send)
        return send

    # -- structure ----------------------------------------------------

    @property
    def sends(self) -> list[Send]:
        """All forwarding actions in global construction order."""
        return list(self._sends)

    def sends_from(self, node: int) -> list[Send]:
        """The sends issued by ``node``, in issue order."""
        return list(self._by_sender.get(node, ()))

    @property
    def nodes_receiving(self) -> set[int]:
        """All nodes that receive a copy of the message."""
        return {s.dst for s in self._sends}

    @property
    def relay_nodes(self) -> set[int]:
        """Nodes whose *CPU* handles the message without being a
        destination (empty for all of the paper's wormhole algorithms)."""
        involved = {s.src for s in self._sends} | self.nodes_receiving
        return involved - self.destinations - {self.source}

    def parent_of(self, node: int) -> int | None:
        for s in self._sends:
            if s.dst == node:
                return s.src
        return None

    def depth(self) -> int:
        """Height of the tree in unicast hops (not physical hops)."""
        depth = {self.source: 0}
        changed = True
        best = 0
        # sends are appended parent-before-child by every builder, so a
        # single forward pass suffices; verify and fall back otherwise.
        for s in self._sends:
            if s.src not in depth:
                changed = False
                break
            depth[s.dst] = depth[s.src] + 1
            best = max(best, depth[s.dst])
        if changed:
            return best
        # generic fixpoint for adversarially-ordered trees (tests only)
        depth = {self.source: 0}
        remaining = list(self._sends)
        while remaining:
            progressed = False
            rest = []
            for s in remaining:
                if s.src in depth:
                    depth[s.dst] = depth[s.src] + 1
                    progressed = True
                else:
                    rest.append(s)
            if not progressed:
                raise ValueError("multicast tree is not connected to the source")
            remaining = rest
        return max(depth.values(), default=0)

    def total_hops(self) -> int:
        """Total physical channel-hops across all unicasts (traffic)."""
        return sum(hamming(s.src, s.dst) for s in self._sends)

    # -- scheduling ---------------------------------------------------

    def schedule(self, ports: PortModel = ALL_PORT) -> "Schedule":
        """Greedily assign each unicast the earliest feasible step.

        Injection ports are interchangeable resources, each held from a
        send's injection until its delivery completes.  A later-issued
        send may overtake an earlier one that is blocked in the network
        -- provided a port is free (this is what all-port DMA hardware
        does); with one port, sends serialize strictly.
        """
        steps = greedy_steps(
            self.source,
            [(s.seq, s.src, s.dst) for s in self._sends],
            lambda u, v: ecube_arcs(u, v, self.order),
            ports.limit(self.n),
        )
        return Schedule(self, ports, steps)


@dataclass(slots=True)
class Schedule:
    """A step assignment for every unicast of a multicast tree."""

    tree: MulticastTree
    ports: PortModel
    _steps: dict[int, int] = field(repr=False)

    @property
    def unicasts(self) -> list[Unicast]:
        """The schedule as ``(src, dst, step)`` records, by step order."""
        out = [
            Unicast(s.src, s.dst, self._steps[s.seq])
            for s in self.tree.sends
        ]
        out.sort(key=lambda u: (u.step, u.src, u.dst))
        return out

    def step_of(self, send: Send) -> int:
        return self._steps[send.seq]

    @property
    def max_step(self) -> int:
        """Number of steps for the multicast to complete (0 if empty)."""
        return max(self._steps.values(), default=0)

    @property
    def dest_steps(self) -> dict[int, int]:
        """Step in which each receiving node obtains the message."""
        return {s.dst: self._steps[s.seq] for s in self.tree.sends}

    def check_contention(self) -> ContentionReport:
        """Independently verify Definition 4 on this schedule."""
        with trace_spans.span(
            "verify.contention", n=self.tree.n, sends=len(self.tree.sends)
        ) as sp:
            report = check_contention_free(self.tree.source, self.unicasts, self.tree.order)
            if sp is not None:
                sp.set(ok=report.ok)
            return report


class MulticastAlgorithm(ABC):
    """Interface shared by all multicast tree builders."""

    #: short machine-readable name (used by the registry and the CLI)
    name: str = "abstract"

    @abstractmethod
    def build_tree(
        self,
        n: int,
        source: int,
        destinations: Sequence[int],
        order: ResolutionOrder = ResolutionOrder.DESCENDING,
    ) -> MulticastTree:
        """Construct the multicast tree for one operation."""

    def schedule(
        self,
        n: int,
        source: int,
        destinations: Sequence[int],
        ports: PortModel = ALL_PORT,
        order: ResolutionOrder = ResolutionOrder.DESCENDING,
    ) -> Schedule:
        """Convenience: build the tree and schedule it in one call."""
        return self.build_tree(n, source, destinations, order).schedule(ports)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"
