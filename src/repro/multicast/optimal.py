"""Exhaustive search for step-optimal all-port multicasts (small cases).

Figure 3(e) of the paper presents a 2-step tree as "optimal for
multicast to the given set of nodes on an all-port architecture".  To
check such claims -- and to quantify how close the heuristics get --
this module computes the true minimum number of steps by
iterative-deepening search over *step-synchronous* schedules:

- in each step, a set of unicasts is sent whose paths are pairwise
  arc-disjoint (the same conservative concurrency rule the greedy
  scheduler uses);
- senders must already hold the message, each sender issues at most
  ``n`` unicasts per step (all-port), and only the source and the
  destinations may handle the message;
- the search ends when every destination holds the message.

The cost is exponential in the number of destinations; intended for
``m`` up to ~8 in small cubes (it verifies the paper's examples and
serves as the ground truth for property tests on random small cases).
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Sequence

from repro.core.paths import Arc, ResolutionOrder, ecube_arcs
from repro.multicast.base import MulticastTree

__all__ = ["allport_lower_bound", "optimal_steps", "optimal_tree"]


def allport_lower_bound(m: int, n: int) -> int:
    """Information-theoretic bound: the number of informed nodes grows
    at most ``(n + 1)``-fold per step, so reaching ``m`` destinations
    needs at least ``ceil(log_{n+1}(m + 1))`` steps."""
    if m <= 0:
        return 0
    return max(1, math.ceil(math.log(m + 1, n + 1) - 1e-12))


class _Searcher:
    def __init__(self, n: int, source: int, dests: Sequence[int], order: ResolutionOrder):
        self.n = n
        self.source = source
        self.dests = tuple(sorted(dests))
        self.order = order
        self.participants = (source,) + self.dests

        @lru_cache(maxsize=None)
        def arcs(u: int, v: int) -> frozenset[Arc]:
            return frozenset(ecube_arcs(u, v, order))

        self._arcs = arcs
        self.best_plan: list[list[tuple[int, int]]] | None = None

    def search(self, limit: int) -> bool:
        self._seen: dict[frozenset[int], int] = {}
        return self._dfs(frozenset((self.source,)), limit, [])

    def _dfs(
        self,
        informed: frozenset[int],
        steps_left: int,
        plan: list[list[tuple[int, int]]],
    ) -> bool:
        uninformed = [d for d in self.dests if d not in informed]
        if not uninformed:
            self.best_plan = [list(step) for step in plan]
            return True
        if steps_left <= 0:
            return False
        # growth-rate prune
        if len(informed) * ((self.n + 1) ** steps_left) < len(informed) + len(uninformed):
            return False
        prev = self._seen.get(informed)
        if prev is not None and prev >= steps_left:
            return False
        self._seen[informed] = steps_left

        senders = sorted(informed)
        ports = {s: self.n for s in senders}

        # choose, for each uninformed destination (in order), either a
        # sender whose path is arc-disjoint from those already chosen
        # this step, or postponement
        chosen: list[tuple[int, int]] = []
        used_arcs: set[Arc] = set()

        def assign(idx: int) -> bool:
            if idx == len(uninformed):
                if not chosen:  # an empty step never helps
                    return False
                step_receivers = frozenset(dst for _, dst in chosen)
                plan.append(list(chosen))
                ok = self._dfs(informed | step_receivers, steps_left - 1, plan)
                plan.pop()
                return ok
            dst = uninformed[idx]
            for src in senders:
                if ports[src] == 0:
                    continue
                a = self._arcs(src, dst)
                if a & used_arcs:
                    continue
                ports[src] -= 1
                chosen.append((src, dst))
                used_arcs.update(a)
                if assign(idx + 1):
                    return True
                used_arcs.difference_update(a)
                chosen.pop()
                ports[src] += 1
            # postpone this destination
            return assign(idx + 1)

        return assign(0)


def optimal_steps(
    n: int,
    source: int,
    destinations: Sequence[int],
    order: ResolutionOrder = ResolutionOrder.DESCENDING,
    max_steps: int | None = None,
) -> int:
    """Minimum number of steps for an all-port multicast (exact).

    Raises:
        RuntimeError: if no schedule exists within ``max_steps``
            (cannot happen when ``max_steps`` is None: U-cube's
            ``ceil(log2(m + 1))`` is always feasible).
    """
    dests = sorted(set(destinations))
    if not dests:
        return 0
    m = len(dests)
    searcher = _Searcher(n, source, dests, order)
    lo = allport_lower_bound(m, n)
    hi = max_steps if max_steps is not None else max(lo, math.ceil(math.log2(m + 1)))
    for limit in range(lo, hi + 1):
        if searcher.search(limit):
            return limit
    raise RuntimeError(f"no schedule within {hi} steps (should be impossible)")


def optimal_tree(
    n: int,
    source: int,
    destinations: Sequence[int],
    order: ResolutionOrder = ResolutionOrder.DESCENDING,
) -> MulticastTree:
    """An actual step-optimal multicast tree found by the search."""
    dests = sorted(set(destinations))
    tree = MulticastTree(n, source, dests, order)
    if not dests:
        return tree
    searcher = _Searcher(n, source, dests, order)
    lo = allport_lower_bound(len(dests), n)
    hi = max(lo, math.ceil(math.log2(len(dests) + 1)))
    for limit in range(lo, hi + 1):
        if searcher.search(limit):
            break
    assert searcher.best_plan is not None, "U-cube bound guarantees feasibility"
    for step_sends in searcher.best_plan:
        for src, dst in step_sends:
            tree.add_send(src, dst)
    return tree
